//! Fig 16: CPU-partitioned vs GPU-partitioned join.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig16::print(&hw, &triton_bench::figs::PAPER_WORKLOADS);
}
