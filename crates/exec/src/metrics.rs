//! Aggregate serving metrics: throughput, latency percentiles, memory
//! high-water marks, shedding counts, and fault/recovery accounting for
//! one scheduler run.

use triton_hw::units::{Bytes, Ns};
use triton_metrics::{sim_ns, Log2Histogram};

use crate::scheduler::{Outcome, RejectReason};

/// Aggregated time and bytes of one `(operator, phase)` pair across every
/// completed query of a run — the paper's Fig 11 phase breakdown, lifted
/// to the serving runtime. Phase times are *stretched* onto each query's
/// scheduled `[start, finish]` window (plus a synthetic `queue` phase for
/// `[arrival, start]`), so for every query its rollup contributions sum
/// to its recorded latency within one simulated nanosecond.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRollup {
    /// Operator label (`triton`, `npj`, `cpu-part`, `cpu-radix`).
    pub operator: String,
    /// Normalised phase key (`ps_1`, `part_2`, `join`, `queue`, ...; see
    /// [`triton_core::phase_key`]).
    pub phase: String,
    /// Occurrences across completed queries.
    pub count: u64,
    /// Total wall time attributed to this phase.
    pub time: Ns,
    /// Total bytes the phase moved (interconnect payload plus GPU memory
    /// traffic; zero for CPU phases and queueing).
    pub bytes: Bytes,
}

/// Aggregate metrics over one serving run.
///
/// Derives `PartialEq` so chaos tests can assert byte-identical replay:
/// the same queries plus the same [`triton_hw::FaultPlan`] seed must
/// reproduce this struct exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerMetrics {
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries refused for any reason.
    pub rejected: u64,
    /// Of the rejected: shed for a missed deadline.
    pub shed_deadline: u64,
    /// Of the rejected: bounced off the full queue.
    pub shed_queue_full: u64,
    /// Of the rejected: floors exceeding the whole GPU (or OOM).
    pub shed_capacity: u64,
    /// Of the rejected: lost to a fault with resilience disabled (or
    /// stalled past recovery).
    pub shed_faulted: u64,
    /// Simulated wall time from first arrival to last completion.
    pub makespan: Ns,
    /// Tuples processed by completed queries.
    pub tuples: u64,
    /// Aggregate throughput in G tuples/s over the makespan.
    pub throughput_gtps: f64,
    /// Median end-to-end latency of completed queries, resolved by the
    /// streaming log2 histogram (nearest-rank bucket lower bound, within
    /// one sub-bucket — ≤ 6.25 % relative — of the exact sample; memory
    /// stays bounded under sustained load).
    pub latency_p50: Ns,
    /// 99th-percentile end-to-end latency (same histogram resolution).
    pub latency_p99: Ns,
    /// Worst-case latency (tracked exactly, not bucketed).
    pub latency_max: Ns,
    /// High-water mark of concurrently reserved GPU memory.
    pub peak_gpu_reserved: Bytes,
    /// The GPU capacity those reservations were drawn from (before any
    /// fault-driven retirement).
    pub gpu_capacity: Bytes,
    /// GPU bytes lost to ECC page retirement during the run.
    pub gpu_retired: Bytes,
    /// Most queries in flight at once.
    pub peak_concurrency: usize,
    /// Time-weighted mean queries in flight (while any ran).
    pub mean_concurrency: f64,
    /// Bytes of partitioned working sets the completed joins held
    /// GPU-resident (summed over each query's placement report).
    pub cache_hit_bytes: Bytes,
    /// Bytes of partitioned working sets spilled to CPU memory.
    pub cache_spilled_bytes: Bytes,
    /// Build-cache hits (probe batches reusing a partitioned build side,
    /// exact and prefix together).
    pub build_cache_hits: u64,
    /// Of the build-cache hits: queries whose build range was served by a
    /// *covering* resident build of the same family (prefix/subsume
    /// reuse) rather than an exact entry.
    pub build_cache_prefix_hits: u64,
    /// Build-cache misses (build sides partitioned from scratch).
    pub build_cache_misses: u64,
    /// Resident builds invalidated by the circuit breaker.
    pub builds_quarantined: u64,
    /// Fault events that struck the run (kernel faults landing on a
    /// victim plus capacity revocation rounds).
    pub faults_injected: u64,
    /// Transient-fault retries across all queries.
    pub retries: u64,
    /// Degradation-ladder downgrades across all queries.
    pub downgrades: u64,
    /// Reservation revocations across all queries.
    pub revocations: u64,
    /// Mid-query grant revisions (shrink-in-place and grow) the
    /// scheduler issued against running queries.
    pub grant_revisions: u64,
    /// Cache bytes reclaimed from running queries by shrink revisions.
    pub grant_reclaimed: Bytes,
    /// Operator pricings served from the cost/plan memo (repeat tenants
    /// skipping partitioning, planning, and the roofline entirely).
    pub cost_cache_hits: u64,
    /// Operator pricings that had to run. Zero when cost caching is
    /// disabled: the memo then never engages, keeping the disabled
    /// configuration byte-identical to the pre-cache scheduler.
    pub cost_cache_misses: u64,
    /// Per-`(operator, phase)` time/byte rollups over completed queries,
    /// sorted by operator then phase (deterministic order).
    pub phases: Vec<PhaseRollup>,
}

/// Non-outcome counters a run hands to [`SchedulerMetrics::from_run`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RunTotals {
    pub makespan: Ns,
    pub peak_gpu_reserved: Bytes,
    pub gpu_capacity: Bytes,
    pub gpu_retired: Bytes,
    pub peak_concurrency: usize,
    pub mean_concurrency: f64,
    pub build_cache_hits: u64,
    pub build_cache_prefix_hits: u64,
    pub build_cache_misses: u64,
    pub builds_quarantined: u64,
    pub faults_injected: u64,
    pub grant_revisions: u64,
    pub grant_reclaimed: Bytes,
    pub cost_cache_hits: u64,
    pub cost_cache_misses: u64,
}

/// `p`-th percentile (0..=100) of an unsorted sample, by the
/// **nearest-rank** method: the value at 1-based rank `⌈p/100 · n⌉` of
/// the sorted sample, with the rank clamped to `[1, n]` (so `p = 0`
/// returns the minimum and `p = 100` the maximum). Returns 0 for an
/// empty sample.
///
/// The rank product is computed with a small negative epsilon before the
/// ceiling: `p/100 · n` is evaluated in floating point, and when the
/// exact product is an integer the rounding error can land just *above*
/// it (e.g. `0.35 * 20 == 7.000000000000001`), which would shift the
/// ceiling one rank too high. The epsilon is far smaller than the gap to
/// the next meaningful product, so non-integer products are unaffected.
#[must_use]
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl SchedulerMetrics {
    /// Assemble from a finished run's outcomes, counters, and the phase
    /// rollups accumulated by the run's [`crate::observe::Recorder`].
    pub(crate) fn from_run(
        outcomes: &[Outcome],
        totals: RunTotals,
        phases: Vec<PhaseRollup>,
    ) -> Self {
        // Latencies stream through a bounded log2 histogram instead of a
        // per-query vector: under sustained load the scheduler's memory
        // for latency accounting no longer grows with completions.
        let mut latency_hist = Log2Histogram::new();
        let mut latency_max = 0.0f64;
        let mut tuples = 0u64;
        let (mut completed, mut rejected) = (0u64, 0u64);
        let (mut shed_deadline, mut shed_queue_full) = (0u64, 0u64);
        let (mut shed_capacity, mut shed_faulted) = (0u64, 0u64);
        let (mut retries, mut downgrades, mut revocations) = (0u64, 0u64, 0u64);
        let (mut cache_hit_bytes, mut cache_spilled_bytes) = (0u64, 0u64);
        for o in outcomes {
            match o {
                Outcome::Completed(c) => {
                    completed += 1;
                    tuples += c.report.tuples_actual;
                    latency_hist.record(sim_ns(c.latency().0));
                    latency_max = latency_max.max(c.latency().0);
                    if let Some(p) = &c.report.placement {
                        cache_hit_bytes += p.cache_hit_bytes;
                        cache_spilled_bytes += p.spilled_bytes;
                    }
                    retries += u64::from(c.fault.retries);
                    downgrades += u64::from(c.fault.downgrades);
                    revocations += u64::from(c.fault.revocations);
                }
                Outcome::Rejected { reason, .. } => {
                    rejected += 1;
                    match reason {
                        RejectReason::DeadlineExceeded { .. } => shed_deadline += 1,
                        RejectReason::QueueFull { .. } => shed_queue_full += 1,
                        RejectReason::OverCapacity { .. } | RejectReason::Oom(_) => {
                            shed_capacity += 1
                        }
                        RejectReason::Faulted { retries: r, .. } => {
                            shed_faulted += 1;
                            retries += u64::from(*r);
                        }
                    }
                }
            }
        }
        let throughput_gtps = if totals.makespan.0 > 0.0 {
            tuples as f64 / totals.makespan.as_secs() / 1e9
        } else {
            0.0
        };
        SchedulerMetrics {
            completed,
            rejected,
            shed_deadline,
            shed_queue_full,
            shed_capacity,
            shed_faulted,
            makespan: totals.makespan,
            tuples,
            throughput_gtps,
            latency_p50: Ns(latency_hist.value_at_percentile(50) as f64),
            latency_p99: Ns(latency_hist.value_at_percentile(99) as f64),
            latency_max: Ns(latency_max),
            peak_gpu_reserved: totals.peak_gpu_reserved,
            gpu_capacity: totals.gpu_capacity,
            gpu_retired: totals.gpu_retired,
            peak_concurrency: totals.peak_concurrency,
            mean_concurrency: totals.mean_concurrency,
            cache_hit_bytes: Bytes(cache_hit_bytes),
            cache_spilled_bytes: Bytes(cache_spilled_bytes),
            build_cache_hits: totals.build_cache_hits,
            build_cache_prefix_hits: totals.build_cache_prefix_hits,
            build_cache_misses: totals.build_cache_misses,
            builds_quarantined: totals.builds_quarantined,
            faults_injected: totals.faults_injected,
            retries,
            downgrades,
            revocations,
            grant_revisions: totals.grant_revisions,
            grant_reclaimed: totals.grant_reclaimed,
            cost_cache_hits: totals.cost_cache_hits,
            cost_cache_misses: totals.cost_cache_misses,
            phases,
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} done / {} rejected | makespan {} | {:.2} Gtps | p50 {} p99 {} | \
             peak mem {} of {} | peak conc {} (mean {:.2}) | cache {}h ({}p)/{}m",
            self.completed,
            self.rejected,
            self.makespan,
            self.throughput_gtps,
            self.latency_p50,
            self.latency_p99,
            self.peak_gpu_reserved,
            self.gpu_capacity,
            self.peak_concurrency,
            self.mean_concurrency,
            self.build_cache_hits,
            self.build_cache_prefix_hits,
            self.build_cache_misses,
        );
        if self.faults_injected > 0 || self.shed_faulted > 0 {
            s.push_str(&format!(
                " | faults {} (retry {} / downgrade {} / revoke {} / lost {}) | retired {}",
                self.faults_injected,
                self.retries,
                self.downgrades,
                self.revocations,
                self.shed_faulted,
                self.gpu_retired,
            ));
        }
        if self.grant_revisions > 0 {
            s.push_str(&format!(
                " | grants revised {} (reclaimed {})",
                self.grant_revisions, self.grant_reclaimed,
            ));
        }
        if self.cost_cache_hits + self.cost_cache_misses > 0 {
            s.push_str(&format!(
                " | cost cache {}h/{}m",
                self.cost_cache_hits, self.cost_cache_misses,
            ));
        }
        s
    }

    /// Stable JSON encoding (fixed key order, integers exact, floats via
    /// Rust's shortest round-trip formatting) — byte-identical across
    /// runs whenever the metrics are equal, for determinism checks and
    /// machine-readable reports.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut phases = String::from("[");
        for (i, r) in self.phases.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            phases.push_str(&format!(
                "{{\"op\":\"{}\",\"phase\":\"{}\",\"count\":{},\"time_ns\":{},\"bytes\":{}}}",
                r.operator, r.phase, r.count, r.time.0, r.bytes.0,
            ));
        }
        phases.push(']');
        format!(
            concat!(
                "{{\"completed\":{},\"rejected\":{},\"shed_deadline\":{},",
                "\"shed_queue_full\":{},\"shed_capacity\":{},\"shed_faulted\":{},",
                "\"makespan_ns\":{},\"tuples\":{},\"throughput_gtps\":{},",
                "\"latency_p50_ns\":{},\"latency_p99_ns\":{},\"latency_max_ns\":{},",
                "\"peak_gpu_reserved\":{},\"gpu_capacity\":{},\"gpu_retired\":{},",
                "\"peak_concurrency\":{},\"mean_concurrency\":{},",
                "\"cache_hit_bytes\":{},\"cache_spilled_bytes\":{},",
                "\"build_cache_hits\":{},\"build_cache_prefix_hits\":{},",
                "\"build_cache_misses\":{},",
                "\"builds_quarantined\":{},\"faults_injected\":{},",
                "\"retries\":{},\"downgrades\":{},\"revocations\":{},",
                "\"grant_revisions\":{},\"grant_reclaimed\":{},",
                "\"cost_cache_hits\":{},\"cost_cache_misses\":{},",
                "\"phases\":{}}}"
            ),
            self.completed,
            self.rejected,
            self.shed_deadline,
            self.shed_queue_full,
            self.shed_capacity,
            self.shed_faulted,
            self.makespan.0,
            self.tuples,
            self.throughput_gtps,
            self.latency_p50.0,
            self.latency_p99.0,
            self.latency_max.0,
            self.peak_gpu_reserved.0,
            self.gpu_capacity.0,
            self.gpu_retired.0,
            self.peak_concurrency,
            self.mean_concurrency,
            self.cache_hit_bytes.0,
            self.cache_spilled_bytes.0,
            self.build_cache_hits,
            self.build_cache_prefix_hits,
            self.build_cache_misses,
            self.builds_quarantined,
            self.faults_injected,
            self.retries,
            self.downgrades,
            self.revocations,
            self.grant_revisions,
            self.grant_reclaimed.0,
            self.cost_cache_hits,
            self.cost_cache_misses,
            phases,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        // n = 1: every p maps to rank 1.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42.0], p), 42.0, "p={p}");
        }
    }

    #[test]
    fn percentile_two_samples_split_at_the_median() {
        // n = 2: rank ⌈p/100 · 2⌉ is 1 for p <= 50, 2 above.
        let v = [10.0, 20.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 25.0), 10.0);
        assert_eq!(percentile(&v, 50.0), 10.0);
        assert_eq!(percentile(&v, 50.1), 20.0);
        assert_eq!(percentile(&v, 99.0), 20.0);
        assert_eq!(percentile(&v, 100.0), 20.0);
    }

    #[test]
    fn percentile_hundred_samples_hit_exact_ranks() {
        // n = 100, unsorted input: p maps straight to the p-th value.
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        v.reverse();
        assert_eq!(percentile(&v, 1.0), 1.0);
        assert_eq!(
            percentile(&v, 35.0),
            35.0,
            "exact-product rank must not round up"
        );
        assert_eq!(percentile(&v, 35.5), 36.0);
        assert_eq!(percentile(&v, 90.0), 90.0);
        assert_eq!(percentile(&v, 0.0), 1.0, "p=0 clamps to the minimum");
    }

    #[test]
    fn histogram_percentiles_agree_with_nearest_rank_within_one_bucket() {
        // The streaming histogram behind latency_p50/p99 must stay within
        // one bucket width of the exact nearest-rank percentile it
        // replaced. Deterministic LCG spread over several decades of
        // magnitude so multiple major buckets participate.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let samples: Vec<f64> = (0..2000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 50_000_000) as f64
            })
            .collect();
        let mut hist = Log2Histogram::new();
        for s in &samples {
            hist.record(sim_ns(*s));
        }
        for p in [50u64, 99] {
            let exact = percentile(&samples, p as f64);
            let approx = hist.value_at_percentile(p) as f64;
            let width = Log2Histogram::bucket_width_for(sim_ns(exact)) as f64;
            assert!(
                approx <= exact && exact - approx < width.max(1.0),
                "p{p}: approx {approx} vs exact {exact} (bucket width {width})"
            );
        }
        // Max is tracked exactly, not bucketed.
        let exact_max = samples.iter().cloned().fold(0.0, f64::max);
        assert_eq!(hist.max() as f64, exact_max);
    }

    #[test]
    fn json_is_stable_and_wellformed() {
        let m = SchedulerMetrics::from_run(&[], RunTotals::default(), Vec::new());
        let a = m.to_json();
        let b = m.clone().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"faults_injected\":0"));
        assert!(a.contains("\"cache_hit_bytes\":0,\"cache_spilled_bytes\":0"));
        assert!(a.contains("\"build_cache_prefix_hits\":0"));
        assert!(a.contains("\"cost_cache_hits\":0,\"cost_cache_misses\":0"));
        assert!(a.ends_with("\"phases\":[]}"));
        assert_eq!(m, m.clone(), "PartialEq must hold for identical runs");
    }

    #[test]
    fn json_encodes_phase_rollups() {
        let phases = vec![PhaseRollup {
            operator: "triton".into(),
            phase: "ps_1".into(),
            count: 3,
            time: Ns(1.5),
            bytes: Bytes(4096),
        }];
        let m = SchedulerMetrics::from_run(&[], RunTotals::default(), phases);
        let j = m.to_json();
        assert!(j.contains(
            "\"phases\":[{\"op\":\"triton\",\"phase\":\"ps_1\",\"count\":3,\"time_ns\":1.5,\"bytes\":4096}]"
        ), "{j}");
    }
}
