//! Fig 14: interconnect utilisation and IOMMU requests per tuple.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig14::print(&hw, &triton_bench::figs::PAPER_WORKLOADS);
}
