//! Address-translation model: GPU L2 TLB, the intermediate translation
//! layer the paper calls "L3 TLB*", and full IOMMU page-table walks.
//!
//! Section 3.4.2 measures, for GPU accesses to CPU memory over NVLink: an
//! L2 TLB covering 8 GiB (hit latency 449.7 ns), a second plateau up to
//! 32 GiB (532.9 ns, "L3 TLB*"), and a full-miss plateau above 37 GiB
//! (3186.4 ns, "Miss*"). For GPU memory: 8 GiB L2 coverage, 151.9 ns hit,
//! 226.7 ns miss. TLB entries cover 32 MiB (16 coalesced 2 MiB pages).
//!
//! We model each level as an LRU set of coalesced-entry tags. Kernels drive
//! lookups per distinct page region per warp transaction; the resulting
//! miss counts feed both the latency model (pointer chasing, Fig 7) and the
//! IOMMU walker throughput limit (the 100x collapse of the linear-probing
//! no-partitioning join, Section 6.2.2).

use std::collections::BTreeMap;

use crate::config::HwConfig;
use crate::units::{Bytes, Ns};

/// Which physical memory a virtual address resolves to (determines which
/// latency schedule applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSide {
    /// GPU on-board memory.
    Gpu,
    /// CPU memory accessed over the interconnect.
    Cpu,
}

/// Outcome of a translation lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// GPU L2 TLB hit.
    L2Hit,
    /// GPU L2 miss, intermediate layer (L3*/IOTLB) hit. CPU memory only.
    L3StarHit,
    /// Full miss serviced by an IOMMU page-table walk.
    FullMiss,
}

/// Counters accumulated by a [`TlbSim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit the GPU L2 TLB.
    pub l2_hits: u64,
    /// Lookups that missed L2 but hit the intermediate layer.
    pub l3_star_hits: u64,
    /// Full misses on *CPU-memory* addresses, i.e. IOMMU page-table walks.
    /// This is what the paper counts as "IOMMU requests" via the POWER9
    /// performance counters.
    pub full_misses: u64,
    /// GPU L2 TLB misses on *GPU-memory* addresses. Refilled locally from
    /// the system page table; they never reach the IOMMU.
    pub gpu_misses: u64,
    /// The subset of `full_misses` caused by *dependent random reads*:
    /// the execution stalls until the walk completes, so these serialise
    /// on the IOMMU's page-table walkers. Posted writes and prefetchable
    /// sequential scans miss too, but do not stall the pipeline.
    pub serialized_walks: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.l2_hits + self.l3_star_hits + self.full_misses + self.gpu_misses
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &TlbStats) {
        self.l2_hits += other.l2_hits;
        self.l3_star_hits += other.l3_star_hits;
        self.full_misses += other.full_misses;
        self.gpu_misses += other.gpu_misses;
        self.serialized_walks += other.serialized_walks;
    }

    /// Typed trace attributes (event counts carry no unit suffix per
    /// the `triton-trace` naming convention).
    pub fn trace_attrs(&self) -> Vec<triton_trace::Attr> {
        vec![
            triton_trace::Attr::u64("tlb_l2_hits", self.l2_hits),
            triton_trace::Attr::u64("tlb_l3_star_hits", self.l3_star_hits),
            triton_trace::Attr::u64("tlb_full_misses", self.full_misses),
            triton_trace::Attr::u64("tlb_gpu_misses", self.gpu_misses),
            triton_trace::Attr::u64("tlb_serialized_walks", self.serialized_walks),
        ]
    }
}

/// A fixed-capacity LRU set of u64 tags, implemented as an ordered map
/// into an intrusive doubly-linked list over a slab. Touch/insert/evict
/// are O(log n) over at most `cap` tags, with iteration order (and hence
/// any derived output) independent of the process's hash seed.
#[derive(Debug, Clone)]
pub struct Lru {
    cap: usize,
    map: BTreeMap<u64, usize>,
    // Slab of nodes: (tag, prev, next). usize::MAX is the null index.
    nodes: Vec<(u64, usize, usize)>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
}

const NIL: usize = usize::MAX;

impl Lru {
    /// Create an LRU with `cap` entries (cap >= 1).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        Lru {
            cap,
            map: BTreeMap::new(),
            nodes: Vec::with_capacity(cap),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Look up `tag`; if present move it to the front and return true,
    /// otherwise insert it (evicting the LRU entry if full) and return
    /// false.
    pub fn access(&mut self, tag: u64) -> bool {
        if let Some(&idx) = self.map.get(&tag) {
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            self.insert(tag);
            false
        }
    }

    /// Whether `tag` is resident, without updating recency.
    pub fn contains(&self, tag: u64) -> bool {
        self.map.contains_key(&tag)
    }

    /// Drop all entries (e.g. the CUDA runtime flushes GPU TLBs on kernel
    /// launch; mprotect flushes the IOTLB).
    pub fn flush(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn insert(&mut self, tag: u64) {
        if self.map.len() == self.cap {
            // Evict LRU (tail).
            let t = self.tail;
            debug_assert_ne!(t, NIL);
            let old_tag = self.nodes[t].0;
            self.unlink(t);
            self.map.remove(&old_tag);
            self.free.push(t);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = (tag, NIL, NIL);
            idx
        } else {
            self.nodes.push((tag, NIL, NIL));
            self.nodes.len() - 1
        };
        self.map.insert(tag, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (_, prev, next) = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].1 = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].1 = NIL;
        self.nodes[idx].2 = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].1 = NIL;
        self.nodes[idx].2 = self.head;
        if self.head != NIL {
            self.nodes[self.head].1 = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A set-associative cache of u64 tags: `sets` sets of `ways`-entry LRUs.
///
/// The GPU L2 TLB is modelled set-associatively because conflict misses are
/// what produce the paper's fanout knee (Fig 18d): a radix partitioner
/// keeps one write frontier per partition alive, and once the number of
/// concurrently-live translations approaches the TLB's capacity, conflicts
/// evict entries well before full capacity is reached.
#[derive(Debug, Clone)]
pub struct SetAssocLru {
    sets: Vec<Lru>,
}

impl SetAssocLru {
    /// Build with `entries` total entries and `ways` associativity.
    pub fn new(entries: usize, ways: usize) -> Self {
        let ways = ways.max(1).min(entries.max(1));
        let sets = (entries / ways).max(1);
        SetAssocLru {
            sets: (0..sets).map(|_| Lru::new(ways)).collect(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.sets[0].capacity()
    }

    fn set_of(&self, tag: u64) -> usize {
        // Mix the tag before indexing so strided tag sequences (partition
        // frontiers are evenly spaced) spread across sets.
        let h = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.sets.len()
    }

    /// Look up `tag`: true on hit; inserts on miss.
    pub fn access(&mut self, tag: u64) -> bool {
        let s = self.set_of(tag);
        self.sets[s].access(tag)
    }

    /// Drop all entries.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.flush();
        }
    }
}

/// The translation hierarchy simulator for one kernel's address stream.
#[derive(Debug, Clone)]
pub struct TlbSim {
    entry_reach: u64,
    gpu_l2: SetAssocLru,
    l3_star: Lru,
    stats: TlbStats,
    cfg_cpu_l2_hit_ns: f64,
    cfg_l3_star_hit_ns: f64,
    cfg_full_miss_ns: f64,
    cfg_gpu_l2_hit_ns: f64,
    cfg_gpu_l2_miss_ns: f64,
}

impl TlbSim {
    /// Build a simulator sized from the hardware config.
    pub fn new(hw: &HwConfig) -> Self {
        TlbSim {
            entry_reach: hw.tlb_entry_reach().0,
            gpu_l2: SetAssocLru::new(hw.gpu_l2_tlb_entries(), 4),
            l3_star: Lru::new(hw.l3_star_entries()),
            stats: TlbStats::default(),
            cfg_cpu_l2_hit_ns: hw.tlb.cpu_l2_hit_ns,
            cfg_l3_star_hit_ns: hw.tlb.l3_star_hit_ns,
            cfg_full_miss_ns: hw.tlb.full_miss_ns,
            cfg_gpu_l2_hit_ns: hw.tlb.gpu_l2_hit_ns,
            cfg_gpu_l2_miss_ns: hw.tlb.gpu_l2_miss_ns,
        }
    }

    /// Reach (bytes of address space) covered by one TLB entry.
    pub fn entry_reach(&self) -> Bytes {
        Bytes(self.entry_reach)
    }

    /// Translate a virtual address residing on `side`. Returns which level
    /// served it and records statistics.
    pub fn translate(&mut self, vaddr: u64, side: MemSide) -> TlbLevel {
        let tag = vaddr / self.entry_reach;
        if self.gpu_l2.access(tag) {
            self.stats.l2_hits += 1;
            return TlbLevel::L2Hit;
        }
        match side {
            MemSide::Gpu => {
                // GPU-memory misses are refilled from the system page table;
                // the measured miss latency already includes the refill, and
                // the request never reaches the IOMMU.
                self.stats.gpu_misses += 1;
                TlbLevel::FullMiss
            }
            MemSide::Cpu => {
                if self.l3_star.access(tag) {
                    self.stats.l3_star_hits += 1;
                    TlbLevel::L3StarHit
                } else {
                    self.stats.full_misses += 1;
                    TlbLevel::FullMiss
                }
            }
        }
    }

    /// Access latency for a lookup outcome on `side` (Fig 7 schedule).
    pub fn latency(&self, level: TlbLevel, side: MemSide) -> Ns {
        Ns(match (side, level) {
            (MemSide::Gpu, TlbLevel::L2Hit) => self.cfg_gpu_l2_hit_ns,
            (MemSide::Gpu, _) => self.cfg_gpu_l2_miss_ns,
            (MemSide::Cpu, TlbLevel::L2Hit) => self.cfg_cpu_l2_hit_ns,
            (MemSide::Cpu, TlbLevel::L3StarHit) => self.cfg_l3_star_hit_ns,
            (MemSide::Cpu, TlbLevel::FullMiss) => self.cfg_full_miss_ns,
        })
    }

    /// Translate-and-return-latency helper for pointer-chase style
    /// dependent accesses.
    pub fn access_latency(&mut self, vaddr: u64, side: MemSide) -> Ns {
        let lvl = self.translate(vaddr, side);
        self.latency(lvl, side)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Reset statistics, keeping TLB contents.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Flush all levels (kernel-launch semantics).
    pub fn flush(&mut self) {
        self.gpu_l2.flush();
        self.l3_star.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_basic_eviction() {
        let mut l = Lru::new(2);
        assert!(!l.access(1));
        assert!(!l.access(2));
        assert!(l.access(1)); // 1 now MRU, 2 LRU
        assert!(!l.access(3)); // evicts 2
        assert!(!l.contains(2));
        assert!(l.contains(1));
        assert!(l.contains(3));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn lru_flush() {
        let mut l = Lru::new(4);
        l.access(7);
        l.access(9);
        l.flush();
        assert!(l.is_empty());
        assert!(!l.access(7));
    }

    #[test]
    fn lru_reuses_freed_slots() {
        let mut l = Lru::new(2);
        for t in 0..100 {
            l.access(t);
        }
        assert_eq!(l.len(), 2);
        assert!(l.contains(99) && l.contains(98));
        // Slab should not have grown unboundedly.
        assert!(l.nodes.len() <= 3);
    }

    #[test]
    fn working_set_within_l2_coverage_hits() {
        let hw = HwConfig::ac922().scaled(1024);
        let mut tlb = TlbSim::new(&hw);
        let reach = tlb.entry_reach().0;
        let entries = hw.gpu_l2_tlb_entries() as u64;
        // Touch half the L2 coverage twice: second round must be all hits.
        for round in 0..2 {
            for i in 0..entries / 2 {
                let lvl = tlb.translate(i * reach, MemSide::Cpu);
                if round == 1 {
                    assert_eq!(lvl, TlbLevel::L2Hit);
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_l3_star_always_walks() {
        let hw = HwConfig::ac922().scaled(1024);
        let mut tlb = TlbSim::new(&hw);
        let reach = tlb.entry_reach().0;
        let beyond = (hw.l3_star_entries() as u64) * 4;
        // Cyclic sweep over 4x the L3* coverage: steady state is all misses.
        let mut walks = 0;
        let rounds = 3;
        for _ in 0..rounds {
            for i in 0..beyond {
                if tlb.translate(i * reach, MemSide::Cpu) == TlbLevel::FullMiss {
                    walks += 1;
                }
            }
        }
        assert_eq!(walks, rounds * beyond, "LRU under cyclic sweep must thrash");
    }

    #[test]
    fn latency_schedule_matches_fig7() {
        let hw = HwConfig::ac922();
        let tlb = TlbSim::new(&hw);
        assert_eq!(tlb.latency(TlbLevel::L2Hit, MemSide::Cpu), Ns(449.7));
        assert_eq!(tlb.latency(TlbLevel::L3StarHit, MemSide::Cpu), Ns(532.9));
        assert_eq!(tlb.latency(TlbLevel::FullMiss, MemSide::Cpu), Ns(3186.4));
        assert_eq!(tlb.latency(TlbLevel::L2Hit, MemSide::Gpu), Ns(151.9));
        assert_eq!(tlb.latency(TlbLevel::FullMiss, MemSide::Gpu), Ns(226.7));
    }

    #[test]
    fn gpu_side_has_no_l3_star() {
        let hw = HwConfig::ac922().scaled(1024);
        let mut tlb = TlbSim::new(&hw);
        let reach = tlb.entry_reach().0;
        let beyond = (hw.gpu_l2_tlb_entries() as u64) * 2;
        let mut seen_l3 = false;
        for _ in 0..2 {
            for i in 0..beyond {
                if tlb.translate(i * reach, MemSide::Gpu) == TlbLevel::L3StarHit {
                    seen_l3 = true;
                }
            }
        }
        assert!(!seen_l3);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let hw = HwConfig::ac922().scaled(1024);
        let mut tlb = TlbSim::new(&hw);
        tlb.translate(0, MemSide::Cpu);
        tlb.translate(0, MemSide::Cpu);
        let s = tlb.stats();
        assert_eq!(s.lookups(), 2);
        assert_eq!(s.full_misses, 1);
        assert_eq!(s.l2_hits, 1);
        tlb.reset_stats();
        assert_eq!(tlb.stats().lookups(), 0);
    }
}
