// Fixture: the real placement-plan idiom — ordered range lists and
// arithmetic through the unit newtypes' operators — is clean under
// D1/U1.
use std::collections::BTreeMap;

use triton_hw::units::Bytes;

pub fn resident_pages(ranges: &BTreeMap<u64, (u64, u64)>) -> u64 {
    ranges.values().map(|&(s, e)| e - s).sum()
}

pub fn resident_bytes(pages: u64, page_size: Bytes) -> Bytes {
    page_size * pages
}

pub fn gpu_fraction(gpu: Bytes, total: Bytes) -> f64 {
    gpu.ratio_of(total)
}
