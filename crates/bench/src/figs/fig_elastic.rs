//! Elastic vs fixed memory grants under admission bursts.
//!
//! A burst of deadline-holding tenants arrives at once. Under *fixed*
//! grants, early admissions keep their full optional cache share for
//! life, so late arrivals find no room for their pipeline floors, wait
//! out their deadline budget head-of-line, and are shed. Under *elastic*
//! grants the scheduler shrinks running queries' cache grants in place
//! (a priced, traced revision) to free the floor bytes, admits the
//! burst, and completes everything — with byte-identical join results,
//! since grants move placement and time, never answers.

use triton_core::reference_join;
use triton_datagen::WorkloadSpec;
use triton_exec::{JoinQuery, Scheduler, SchedulerConfig};
use triton_hw::units::Ns;
use triton_hw::HwConfig;

use crate::json::JsonObject;

/// Burst sizes swept (simultaneous deadline-holding arrivals). Capped
/// where all pipeline floors still fit the GPU together — beyond that
/// no grant policy can admit the whole burst at once.
pub const BURST_AXIS: [u64; 3] = [2, 4, 6];

/// Workload size per tenant in modeled M tuples.
pub const DEFAULT_M_TUPLES: u64 = 64;

/// Deadline budget as a multiple of one tenant's dedicated run time:
/// generous next to an immediate admission, fatal when a fixed-grant
/// scheduler parks the query behind a full-length head-of-line run.
pub const DEADLINE_FACTOR: f64 = 0.6;

/// One measured point: one policy serving one burst size.
#[derive(Debug, Clone)]
pub struct Row {
    /// `elastic` or `fixed`.
    pub policy: &'static str,
    /// Queries arriving together at t = 0.
    pub burst: u64,
    /// Queries that completed.
    pub completed: u64,
    /// Queries shed (deadline expired while waiting for memory).
    pub shed: u64,
    /// p99 completion latency over the burst.
    pub p99_ns: f64,
    /// End-to-end makespan.
    pub makespan_ns: f64,
    /// Grant revisions issued (always zero under the fixed policy).
    pub grant_revisions: u64,
    /// Cache bytes reclaimed by shrink revisions.
    pub grant_reclaimed_bytes: u64,
    /// Every completed result matched the reference join byte-for-byte.
    pub exact: bool,
}

/// The burst: `n` tenants, distinct workloads, all arriving at t = 0
/// with the same deadline budget.
fn burst(n: u64, m_tuples: u64, deadline: Ns) -> Vec<JoinQuery> {
    (0..n)
        .map(|i| {
            let mut spec = WorkloadSpec::paper_default(m_tuples, crate::scale());
            spec.seed ^= i << 32;
            let mut q = JoinQuery::new(format!("burst-{i}"), spec.generate(), Ns::ZERO);
            q.deadline = Some(deadline);
            q
        })
        .collect()
}

/// One tenant's dedicated run time on an otherwise idle machine — the
/// unit the deadline budget is expressed in.
pub fn dedicated_ns(hw: &HwConfig, m_tuples: u64) -> f64 {
    let one = burst(1, m_tuples, Ns(f64::INFINITY));
    Scheduler::new(hw.clone(), SchedulerConfig::serial())
        .run(one)
        .metrics
        .makespan
        .0
}

fn wide(config: SchedulerConfig) -> SchedulerConfig {
    SchedulerConfig {
        // Concurrency bounded by memory, not the inflight cap, so the
        // grant policy is the only difference between the two runs.
        max_inflight: 16,
        ..config
    }
}

fn measure(
    policy: &'static str,
    config: SchedulerConfig,
    queries: &[JoinQuery],
    hw: &HwConfig,
) -> Row {
    let res = Scheduler::new(hw.clone(), wide(config)).run(queries.to_vec());
    let exact = queries
        .iter()
        .zip(&res.outcomes)
        .all(|(q, o)| match o.completed() {
            Some(c) => c.report.result == reference_join(&q.workload),
            None => true,
        });
    Row {
        policy,
        burst: queries.len() as u64,
        completed: res.metrics.completed,
        shed: res.metrics.rejected,
        p99_ns: res.metrics.latency_p99.0,
        makespan_ns: res.metrics.makespan.0,
        grant_revisions: res.metrics.grant_revisions,
        grant_reclaimed_bytes: res.metrics.grant_reclaimed.0,
        exact,
    }
}

/// Run the sweep: both grant policies over [`BURST_AXIS`].
pub fn run(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let deadline = Ns(dedicated_ns(hw, m_tuples) * DEADLINE_FACTOR);
    let mut rows = Vec::new();
    for &n in &BURST_AXIS {
        let queries = burst(n, m_tuples, deadline);
        rows.push(measure("elastic", SchedulerConfig::default(), &queries, hw));
        rows.push(measure(
            "fixed",
            SchedulerConfig::fixed_grants(),
            &queries,
            hw,
        ));
    }
    rows
}

/// Render the sweep as a stable JSON document (fixed key order).
pub fn to_json(hw: &HwConfig, m_tuples: u64, rows: &[Row]) -> String {
    let header = JsonObject::new()
        .str("schema", "triton-bench/fig-elastic/v1")
        .int("scale", hw.scale)
        .int("m_tuples", m_tuples)
        .num("deadline_factor", DEADLINE_FACTOR)
        .render();
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .str("policy", r.policy)
                .int("burst", r.burst)
                .int("completed", r.completed)
                .int("shed", r.shed)
                .num("p99_ns", r.p99_ns)
                .num("makespan_ns", r.makespan_ns)
                .int("grant_revisions", r.grant_revisions)
                .int("grant_reclaimed_bytes", r.grant_reclaimed_bytes)
                .bool("exact", r.exact)
                .render()
        })
        .collect();
    format!(
        "{{\"config\":{},\"rows\":[\n{}\n]}}\n",
        header,
        body.join(",\n")
    )
}

/// The acceptance comparison: total sheds under each policy across the
/// sweep, plus whether every row stayed exact.
pub fn shed_totals(rows: &[Row]) -> (u64, u64, bool) {
    let shed = |policy: &str| {
        rows.iter()
            .filter(|r| r.policy == policy)
            .map(|r| r.shed)
            .sum()
    };
    (shed("elastic"), shed("fixed"), rows.iter().all(|r| r.exact))
}

/// Print the figure.
pub fn print(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    crate::banner(
        "Fig elastic",
        "admission bursts: elastic vs fixed memory grants",
    );
    let rows = run(hw, m_tuples);
    let mut t = crate::Table::new([
        "policy",
        "burst",
        "completed",
        "shed",
        "p99 (us)",
        "makespan (us)",
        "revisions",
        "reclaimed (KiB)",
    ]);
    for r in &rows {
        t.row([
            r.policy.to_string(),
            r.burst.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            format!("{:.1}", r.p99_ns / 1e3),
            format!("{:.1}", r.makespan_ns / 1e3),
            r.grant_revisions.to_string(),
            (r.grant_reclaimed_bytes / 1024).to_string(),
        ]);
    }
    t.print();
    let (elastic, fixed, exact) = shed_totals(&rows);
    println!("shed totals: elastic {elastic}, fixed {fixed}, exact results: {exact}");
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_absorbs_the_burst_fixed_sheds() {
        let hw = HwConfig::ac922().scaled(512);
        let rows = run(&hw, DEFAULT_M_TUPLES);
        let (elastic_shed, fixed_shed, exact) = shed_totals(&rows);
        assert!(exact, "every completed result must match the reference");
        assert_eq!(elastic_shed, 0, "elastic must absorb every burst");
        assert!(
            fixed_shed >= 1,
            "the sweep must include a burst the fixed policy sheds on"
        );
        for r in &rows {
            if r.policy == "fixed" {
                assert_eq!(r.grant_revisions, 0, "fixed grants never revise");
            } else {
                assert_eq!(r.completed, r.burst, "elastic completes the burst");
            }
        }
        let json = to_json(&hw, DEFAULT_M_TUPLES, &rows);
        assert!(json.contains("\"schema\":\"triton-bench/fig-elastic/v1\""));
        assert_eq!(json.matches("\"policy\"").count(), rows.len());
    }
}
