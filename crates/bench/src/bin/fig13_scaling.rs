//! Fig 13: scaling the build & probe relations against six operators.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig13::print(&hw, &triton_bench::figs::SCALING_AXIS);
}
