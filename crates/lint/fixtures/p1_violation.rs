// Fixture: panicking calls in library non-test code.
pub fn risky(v: &[u64]) -> u64 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("needs two elements");
    if *first == *second {
        panic!("duplicates");
    }
    first + second
}
