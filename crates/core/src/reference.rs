//! Reference join used to verify every operator's functional result.

use std::collections::BTreeMap;

use triton_datagen::Workload;

use crate::report::JoinResult;

/// Straightforward hash join over `(key -> rid)`; the ground truth all
/// simulated operators are checked against.
pub fn reference_join(w: &Workload) -> JoinResult {
    let mut map: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (k, r) in w.r.iter() {
        map.entry(k).or_default().push(r);
    }
    let mut result = JoinResult::empty();
    for (k, srid) in w.s.iter() {
        if let Some(rrids) = map.get(&k) {
            for &rrid in rrids {
                result.add(rrid, srid);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn fk_join_matches_probe_side_cardinality() {
        let w = WorkloadSpec::paper_default(1, 500).generate();
        let r = reference_join(&w);
        assert_eq!(r.matches, w.s.len() as u64);
    }

    #[test]
    fn empty_probe_side() {
        let mut spec = WorkloadSpec::paper_default(1, 1000);
        spec.s_tuples_modeled = 1; // -> 1 actual tuple minimum
        let w = spec.generate();
        let r = reference_join(&w);
        assert_eq!(r.matches, w.s.len() as u64);
    }
}
