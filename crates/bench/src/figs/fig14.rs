//! Fig 14: interconnect usage of the join algorithms — (a) interconnect
//! utilisation and (b) IOMMU translation requests per tuple.
//!
//! Explains *why* the Triton join outperforms no-partitioning joins
//! (Section 6.2.2): partitioning bounds the translation working set, so
//! Triton issues IOMMU requests orders of magnitude more rarely than a
//! linear-probing NPJ whose table outgrows the TLB range.

use triton_core::{NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

/// One bar group of Fig 14.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload size in modeled M tuples.
    pub m_tuples: u64,
    /// Operator label.
    pub operator: &'static str,
    /// Interconnect utilisation (0..1).
    pub link_utilization: f64,
    /// IOMMU translation requests per tuple.
    pub iommu_requests_per_tuple: f64,
}

/// Run for the given workloads. The Triton join uses a GPU prefix sum so
/// the whole profile is GPU-side, as in the paper.
pub fn run(hw: &HwConfig, sizes: &[u64]) -> Vec<Row> {
    let k = hw.scale;
    let mut rows = Vec::new();
    for &m in sizes {
        let w = WorkloadSpec::paper_default(m, k).generate();
        let lp = NoPartitioningJoin::linear_probing().run(&w, hw);
        let pf = NoPartitioningJoin::perfect().run(&w, hw);
        let triton = TritonJoin {
            gpu_prefix_sum: true,
            ..TritonJoin::default()
        }
        .run(&w, hw);
        for (op, rep) in [
            ("NPJ (Linear Probing)", &lp),
            ("NPJ (Perfect)", &pf),
            ("Triton (Bucket Chaining)", &triton),
        ] {
            rows.push(Row {
                m_tuples: m,
                operator: op,
                link_utilization: rep.link_utilization(hw),
                iommu_requests_per_tuple: rep.iommu_requests_per_tuple(hw),
            });
        }
    }
    rows
}

/// Print the figure.
pub fn print(hw: &HwConfig, sizes: &[u64]) {
    crate::banner(
        "Fig 14",
        "interconnect utilisation and IOMMU requests per tuple",
    );
    let mut t = crate::Table::new(["M tuples", "operator", "link util", "IOMMU req/tuple"]);
    for r in run(hw, sizes) {
        t.row([
            r.m_tuples.to_string(),
            r.operator.to_string(),
            crate::pct(r.link_utilization),
            format!("{:.2e}", r.iommu_requests_per_tuple),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_out_of_core_walks_constantly_triton_rarely() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[2048]);
        let lp = rows.iter().find(|r| r.operator.contains("Linear")).unwrap();
        let triton = rows.iter().find(|r| r.operator.contains("Triton")).unwrap();
        // Paper: 5.3 requests/tuple for LP vs ~1e-5 for Triton.
        assert!(lp.iommu_requests_per_tuple > 1.0, "{lp:?}");
        assert!(
            triton.iommu_requests_per_tuple < lp.iommu_requests_per_tuple / 100.0,
            "triton {triton:?} vs lp {lp:?}"
        );
    }

    #[test]
    fn lp_utilization_collapses_out_of_core() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[512, 2048]);
        let lp_small = &rows[0];
        let lp_large = &rows[3];
        assert!(lp_small.operator.contains("Linear") && lp_large.operator.contains("Linear"));
        // Paper Fig 14a: LP drops to 0.4% utilisation at 2048 M.
        assert!(lp_large.link_utilization < 0.05, "{lp_large:?}");
        assert!(lp_large.link_utilization < lp_small.link_utilization / 5.0);
    }

    #[test]
    fn triton_utilization_grows_with_spill() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[128, 2048]);
        let t_small = rows
            .iter()
            .find(|r| r.m_tuples == 128 && r.operator.contains("Triton"))
            .unwrap();
        let t_large = rows
            .iter()
            .find(|r| r.m_tuples == 2048 && r.operator.contains("Triton"))
            .unwrap();
        // More data -> smaller cached fraction -> higher link pressure.
        assert!(t_large.link_utilization >= t_small.link_utilization * 0.9);
        assert!(t_large.link_utilization > 0.35, "{t_large:?}");
    }
}
