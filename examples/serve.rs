//! Multi-tenant join serving: a bursty workload over one simulated
//! AC922, with admission control, priorities, deadlines, and a shared
//! build side.
//!
//! Three tenants share the machine:
//! * `dash` — a dashboard firing bursts of probe batches against one
//!   shared dimension relation (build-side sharing), tight deadlines;
//! * `etl`  — two big low-priority Triton joins;
//! * `cpu`  — ad-hoc CPU radix joins that cost no GPU memory at all.
//!
//! Run with `cargo run --example serve -p triton-exec [K]` (K = capacity
//! scale, default 512 — admission budgets scale with it just like the
//! workloads). Pass `--trace <path>` to export the run as Chrome
//! `trace_event` JSON (open in Perfetto / `chrome://tracing`) and print
//! an ASCII timeline of the per-query tracks. Pass `--metrics <path>`
//! to dump the telemetry registry's text exposition (deterministic:
//! two same-seed runs produce byte-identical files). Pass `--plan` to
//! add a fourth tenant running a TPC-H-Q3-shaped multi-operator plan
//! (select → Bloom → join → join → aggregate) alongside the joins —
//! admission reserves its peak concurrent operator footprint, not the
//! sum of all operators.

use triton_core::{CpuRadixJoin, HashScheme};
use triton_datagen::{TpchSpec, WorkloadSpec};
use triton_exec::{
    query_pid, to_chrome_json, validate_chrome, JoinQuery, Operator, Outcome, Scheduler,
    SchedulerConfig,
};
use triton_hw::units::Ns;
use triton_hw::{HwConfig, Timeline};
use triton_plan::tpch_query;

/// Parse `[K] [--trace <path>] [--metrics <path>] [--plan]` in any order.
fn parse_args() -> (u64, Option<String>, Option<String>, bool) {
    let mut k: Option<u64> = None;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut plan = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            trace = args.next();
        } else if a == "--metrics" {
            metrics = args.next();
        } else if a == "--plan" {
            plan = true;
        } else if let Ok(v) = a.parse() {
            k = Some(v);
        }
    }
    let k = k
        .or_else(|| std::env::var("TRITON_SCALE").ok()?.parse().ok())
        .unwrap_or(512);
    (k, trace, metrics, plan)
}

fn main() {
    let (k, trace_path, metrics_path, with_plan) = parse_args();
    let hw = HwConfig::ac922().scaled(k);
    println!("== multi-tenant join serving (K = {k}) ==\n");

    let mut queries: Vec<JoinQuery> = Vec::new();

    // The dashboard's shared dimension relation, probed in two bursts.
    let dim = WorkloadSpec::paper_default(16, k).generate();
    for burst in 0..2u64 {
        let at = Ns::millis(burst as f64 * 40.0);
        for i in 0..3u64 {
            let w = if burst == 0 && i == 0 {
                dim.clone()
            } else {
                JoinQuery::probe_batch(&dim, 0xD0 + burst * 16 + i)
            };
            let mut q = JoinQuery::new(format!("dash-{burst}.{i}"), w, at);
            q.priority = 4;
            q.deadline = Some(Ns::millis(200.0));
            q.build_key = Some(0xD1);
            queries.push(q);
        }
    }

    // Background ETL: large, patient, low priority.
    for i in 0..2u64 {
        let mut spec = WorkloadSpec::paper_default(64, k);
        spec.seed ^= i;
        let mut q = JoinQuery::new(format!("etl-{i}"), spec.generate(), Ns::ZERO);
        q.priority = 1;
        queries.push(q);
    }

    // Ad-hoc CPU joins: overlap with everything (no GPU demand).
    for i in 0..2u64 {
        let mut spec = WorkloadSpec::paper_default(24, k);
        spec.seed ^= 0xCC00 + i;
        let mut q = JoinQuery::new(
            format!("cpu-{i}"),
            spec.generate(),
            Ns::millis(5.0 * i as f64),
        );
        q.op = Operator::CpuRadix(CpuRadixJoin::power9(HashScheme::BucketChaining));
        queries.push(q);
    }

    // Optional plan tenant: a Q3-shaped multi-operator DAG next to the
    // single-join tenants, sharing the same admission budget.
    if with_plan {
        let w = TpchSpec::q3(8, k).generate();
        let mut q = JoinQuery::plan("plan-q3", tpch_query(&w), Ns::millis(2.0));
        q.priority = 2;
        queries.push(q);
    }

    let total = queries.len();
    let res = Scheduler::new(hw, SchedulerConfig::default()).run(queries);

    println!(
        "{:<10} {:>9} {:>11} {:>11} {:>11} {:>10}  note",
        "query", "op", "arrive", "start", "finish", "latency"
    );
    for o in &res.outcomes {
        match o {
            Outcome::Completed(c) => {
                let note = if c.build_cache_hit {
                    "build cached"
                } else {
                    ""
                };
                println!(
                    "{:<10} {:>9} {:>11} {:>11} {:>11} {:>10}  {}",
                    c.name,
                    c.report.name.split(' ').next().unwrap_or("?"),
                    format!("{}", c.arrival),
                    format!("{}", c.start),
                    format!("{}", c.finish),
                    format!("{}", c.latency()),
                    note
                );
            }
            Outcome::Rejected { name, reason, .. } => {
                println!("{name:<10} {:>9} -- rejected: {reason}", "");
            }
        }
    }

    println!("\nscheduler: {}", res.metrics.summary());
    println!(
        "submitted {total}: {} completed, {} rejected ({} deadline, {} queue, {} capacity)",
        res.metrics.completed,
        res.metrics.rejected,
        res.metrics.shed_deadline,
        res.metrics.shed_queue_full,
        res.metrics.shed_capacity
    );

    // Per-tenant SLO ledgers settled by the scheduler.
    for account in &res.slo {
        println!("slo: {}", account.summary());
    }

    if let Some(path) = metrics_path {
        let text = res.telemetry.expose_text();
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("metrics: failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("metrics: {} bytes of exposition -> {path}", text.len());
    }

    if let Some(path) = trace_path {
        let json = to_chrome_json(&res.trace);
        match validate_chrome(&json) {
            Ok(n) => println!("\ntrace: {n} events -> {path} (open in Perfetto)"),
            Err(e) => println!("\ntrace: INVALID ({e})"),
        }
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("trace: failed to write {path}: {e}");
            std::process::exit(1);
        }
        // ASCII rendering of the first few completed queries' tracks.
        let pids: Vec<u64> = res.completed().take(4).map(|c| query_pid(c.id)).collect();
        print!("{}", Timeline::from_trace(&res.trace, &pids).render(72));
    }
}
