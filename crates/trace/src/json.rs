//! Minimal JSON encoding helpers: string escaping and deterministic
//! number formatting. In-tree because the workspace is dependency-free.

use std::fmt::Write;

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub(crate) fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` as a JSON number using Rust's shortest
/// round-trip formatting (deterministic for equal inputs). Non-finite
/// values — which a correct simulation never produces — encode as 0 so
/// the output stays valid JSON.
pub(crate) fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_lit(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(lit("plain"), "\"plain\"");
        assert_eq!(lit("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(lit("x\ny"), "\"x\\ny\"");
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_are_finite_or_zero() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        out.push(',');
        push_f64(&mut out, f64::NAN);
        out.push(',');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1.5,0,0");
    }
}
