//! Peak-footprint math and intermediate-placement planning.
//!
//! The executor runs a plan's nodes one at a time (deterministic
//! topological order), so GPU memory must hold, at any step, only the
//! running operator's working state plus whichever intermediate edges
//! are pipelined GPU-resident across that step. Admission therefore
//! reserves the *peak* concurrent footprint along the schedule — not the
//! sum of all operators — and the same estimates drive the greedy
//! placement rule deciding which edges stay resident.

use triton_core::{BloomFilter, TritonJoin};
use triton_datagen::TUPLE_BYTES;
use triton_hw::HwConfig;

use crate::dag::{Plan, PlanNode};

/// The footprint analysis of one plan at one budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Footprint {
    /// Peak bytes needed at any single step: the admission reservation.
    pub peak: u64,
    /// Sum over all operators of floor + estimated output — what a
    /// naive per-operator admission would reserve. Kept for the
    /// peak-vs-sum comparison; never used to admit.
    pub sum: u64,
    /// Per node: does its output edge stay GPU-resident for consumers?
    /// Scans (base relations live in CPU memory) and the root are
    /// always `false`.
    pub resident: Vec<bool>,
    /// Per node: working-state bytes while the node itself runs (the
    /// operator's internal pipeline reservation).
    pub floors: Vec<u64>,
    /// Per node: estimated output cardinality (tuples, upper bound
    /// under the FK-join model).
    pub est_out: Vec<u64>,
}

/// Estimated output cardinality per node, in topological order. All
/// estimates are upper bounds under the workspace's workload model:
/// unique-keyed build sides make a join's output at most its probe
/// input, and Bloom filters only drop tuples.
pub fn estimate_cardinalities(plan: &Plan, input_tuples: &[u64]) -> Vec<u64> {
    let mut est = Vec::with_capacity(plan.nodes.len());
    for node in &plan.nodes {
        let e = match *node {
            PlanNode::Scan { input } => input_tuples.get(input).copied().unwrap_or(0),
            PlanNode::Select { child, pred } => pred.estimate(est[child]),
            PlanNode::Bloom { probe, .. } => est[probe],
            PlanNode::Join { probe, .. } => est[probe],
            PlanNode::Agg { child } => est[child],
        };
        est.push(e);
    }
    est
}

/// Working-state floor of one node: the bytes its operator reserves in
/// GPU memory while running, mirroring each operator's internal
/// reservation (`TritonJoin`: two first-pass partition pairs plus the
/// pipeline slack; `GpuAggregation`: the same shape over one relation;
/// `BloomFilter`: the filter array).
fn node_floor(node: &PlanNode, est: &[u64], hw: &HwConfig) -> u64 {
    let cap8 = hw.gpu.mem_capacity.0 / 8;
    match *node {
        PlanNode::Scan { .. } | PlanNode::Select { .. } => 0,
        PlanNode::Bloom { build, .. } => BloomFilter::build_side_bytes(est[build] as usize),
        PlanNode::Join { build, probe, .. } => {
            let r_bytes = est[build] * TUPLE_BYTES;
            let total = (est[build] + est[probe]) * TUPLE_BYTES;
            let b1 = TritonJoin::pass1_bits(r_bytes, total, hw);
            2 * (total >> b1).max(1) + cap8
        }
        PlanNode::Agg { child } => {
            let bytes = est[child] * TUPLE_BYTES;
            let b1 = TritonJoin::pass1_bits(bytes, bytes, hw);
            2 * (bytes >> b1).max(1) + cap8
        }
    }
}

/// Analyse a plan's footprint under `budget` bytes of GPU memory:
/// estimate cardinalities, compute per-node floors, greedily pin output
/// edges GPU-resident (in node order — earlier intermediates are hotter,
/// feeding the very next operator) whenever the edge fits beside every
/// floor and already-resident edge across its live range, and report the
/// resulting peak. `force_materialize` skips pinning entirely — the
/// degradation ladder's new top rung.
pub fn plan_footprint(
    plan: &Plan,
    input_tuples: &[u64],
    hw: &HwConfig,
    budget: u64,
    force_materialize: bool,
) -> Footprint {
    let n = plan.nodes.len();
    let est = estimate_cardinalities(plan, input_tuples);
    let floors: Vec<u64> = plan
        .nodes
        .iter()
        .map(|node| node_floor(node, &est, hw))
        .collect();
    let last = plan.last_consumer();

    // Greedy residency: edge i lives over steps [i, last[i]]; it may be
    // pinned iff floor + already-live resident bytes + this edge fit the
    // budget at every step of that range.
    let mut resident = vec![false; n];
    let mut live = vec![0u64; n];
    for i in 0..n {
        let is_edge = !matches!(plan.nodes[i], PlanNode::Scan { .. }) && last[i] > i;
        if force_materialize || !is_edge {
            continue;
        }
        let edge_bytes = est[i] * TUPLE_BYTES;
        if (i..=last[i]).all(|s| floors[s] + live[s] + edge_bytes <= budget) {
            resident[i] = true;
            for l in live.iter_mut().take(last[i] + 1).skip(i) {
                *l += edge_bytes;
            }
        }
    }

    let peak = (0..n).map(|s| floors[s] + live[s]).max().unwrap_or(0);
    let sum = (0..n)
        .filter(|&i| !matches!(plan.nodes[i], PlanNode::Scan { .. }))
        .map(|i| floors[i] + est[i] * TUPLE_BYTES)
        .sum();
    Footprint {
        peak,
        sum,
        resident,
        floors,
        est_out: est,
    }
}

/// Memoizes [`plan_footprint`] analyses for one fixed hardware model.
///
/// The footprint is a pure function of the plan shape, the input
/// cardinalities, the budget, and the materialization flag — admission
/// re-derives it on every scheduling decision for a plan query, and
/// repeat tenants re-derive it per arrival. The memo keys on a 128-bit
/// FNV-1a fingerprint of exactly those inputs (the plan's structural
/// debug encoding covers every node, predicate, and emit map), so a hit
/// returns a byte-identical [`Footprint`].
///
/// Bounded: a stream of distinct plans evicts in insertion order rather
/// than growing without limit.
#[derive(Debug, Default)]
pub struct FootprintCache {
    entries: std::collections::BTreeMap<(u64, u64), Footprint>,
    order: std::collections::VecDeque<(u64, u64)>,
    /// Analyses answered from the memo.
    pub hits: u64,
    /// Analyses that ran the full placement pass.
    pub misses: u64,
}

/// Entry bound: far above any realistic live tenant-plan population.
const FOOTPRINT_CACHE_CAP: usize = 1024;

impl FootprintCache {
    /// New empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// 128-bit FNV-1a fingerprint of the analysis inputs.
    fn key(plan: &Plan, input_tuples: &[u64], budget: u64, force_materialize: bool) -> (u64, u64) {
        let mut lo = 0xcbf2_9ce4_8422_2325u64;
        let mut hi = 0x6c62_272e_07bb_0142u64;
        let mut eat = |byte: u8| {
            lo = (lo ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
            hi = (hi ^ u64::from(byte).rotate_left(17)).wrapping_mul(0x0000_0100_0000_01B3);
        };
        for byte in format!("{:?}", plan.nodes).bytes() {
            eat(byte);
        }
        for &t in input_tuples {
            for byte in t.to_le_bytes() {
                eat(byte);
            }
        }
        for byte in budget.to_le_bytes() {
            eat(byte);
        }
        eat(u8::from(force_materialize));
        (lo, hi)
    }

    /// Memoized [`plan_footprint`]: identical output, cached by inputs.
    pub fn footprint(
        &mut self,
        plan: &Plan,
        input_tuples: &[u64],
        hw: &HwConfig,
        budget: u64,
        force_materialize: bool,
    ) -> Footprint {
        let key = Self::key(plan, input_tuples, budget, force_materialize);
        if let Some(fp) = self.entries.get(&key) {
            self.hits += 1;
            return fp.clone();
        }
        self.misses += 1;
        let fp = plan_footprint(plan, input_tuples, hw, budget, force_materialize);
        if self.entries.len() >= FOOTPRINT_CACHE_CAP {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        if self.entries.insert(key, fp.clone()).is_none() {
            self.order.push_back(key);
        }
        fp
    }

    /// Drop every memoized analysis (ECC retirement invalidation hook).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Cached analyses currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::EmitMap;

    fn two_join_plan() -> Plan {
        Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 },
                PlanNode::Scan { input: 1 },
                PlanNode::Scan { input: 2 },
                PlanNode::Join {
                    build: 0,
                    probe: 1,
                    emit: EmitMap::KeyFromProbeRid,
                },
                PlanNode::Join {
                    build: 3,
                    probe: 2,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 4 },
            ],
        }
    }

    #[test]
    fn estimates_follow_the_fk_model() {
        let est = estimate_cardinalities(&two_join_plan(), &[100, 400, 1600]);
        assert_eq!(est, vec![100, 400, 1600, 400, 1600, 1600]);
    }

    #[test]
    fn generous_budget_pins_all_edges() {
        let hw = HwConfig::ac922().scaled(512);
        let fp = plan_footprint(&two_join_plan(), &[100, 400, 1600], &hw, u64::MAX, false);
        assert_eq!(fp.resident, vec![false, false, false, true, true, false]);
        assert!(fp.peak < fp.sum, "peak {} vs sum {}", fp.peak, fp.sum);
    }

    #[test]
    fn zero_budget_pins_nothing() {
        let hw = HwConfig::ac922().scaled(512);
        let fp = plan_footprint(&two_join_plan(), &[100, 400, 1600], &hw, 0, false);
        assert!(fp.resident.iter().all(|&r| !r));
        // Peak falls back to the largest single floor.
        assert_eq!(fp.peak, *fp.floors.iter().max().unwrap());
    }

    #[test]
    fn force_materialize_matches_zero_budget_residency() {
        let hw = HwConfig::ac922().scaled(512);
        let fp = plan_footprint(&two_join_plan(), &[100, 400, 1600], &hw, u64::MAX, true);
        assert!(fp.resident.iter().all(|&r| !r));
    }

    #[test]
    fn footprint_cache_is_transparent_and_counts() {
        let hw = HwConfig::ac922().scaled(512);
        let plan = two_join_plan();
        let tuples = [100u64, 400, 1600];
        let mut memo = FootprintCache::new();
        let direct = plan_footprint(&plan, &tuples, &hw, hw.gpu.mem_capacity.0, false);
        let miss = memo.footprint(&plan, &tuples, &hw, hw.gpu.mem_capacity.0, false);
        let hit = memo.footprint(&plan, &tuples, &hw, hw.gpu.mem_capacity.0, false);
        assert_eq!(direct, miss);
        assert_eq!(direct, hit);
        assert_eq!((memo.hits, memo.misses), (1, 1));
        // A different budget is a different key, not a stale hit.
        let other = memo.footprint(&plan, &tuples, &hw, 0, false);
        assert_eq!(other, plan_footprint(&plan, &tuples, &hw, 0, false));
        assert_eq!((memo.hits, memo.misses), (1, 2));
        assert_eq!(memo.len(), 2);
        memo.flush();
        assert!(memo.is_empty());
    }

    #[test]
    fn placement_is_stable_at_its_own_peak() {
        // Re-running the analysis with budget = peak reproduces the same
        // placement: the admission grant is exactly what execution needs.
        let hw = HwConfig::ac922().scaled(512);
        let cap = hw.gpu.mem_capacity.0;
        let fp = plan_footprint(&two_join_plan(), &[100, 400, 1600], &hw, cap, false);
        let again = plan_footprint(&two_join_plan(), &[100, 400, 1600], &hw, fp.peak, false);
        assert_eq!(fp, again);
    }
}
