//! The project rules: determinism (D1–D3), unit safety (U1–U2), panic
//! hygiene (P1), cost fidelity (F1–F2), grant lifecycle (L1–L2), and
//! match exhaustiveness (E1), plus the waiver pragma that makes
//! exceptions explicit and countable.
//!
//! Every rule works on the lexed token stream of one file — never on raw
//! text — so occurrences inside strings, comments, and `#[cfg(test)]`
//! regions are structurally invisible to it. The F/L/E families
//! additionally parse the stream into a small AST (see [`crate::parser`]
//! and [`crate::semantic`]). See `DESIGN.md` §8 and §13 for the
//! rationale behind each rule.

use crate::lexer::{lex, test_regions, TokKind, Token};
use crate::{parser, semantic};

/// The rules `triton-lint` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in non-test code: iteration order is
    /// seeded per-process, so any observable iteration breaks replay.
    D1,
    /// No wall clock or ambient entropy (`Instant`, `SystemTime`,
    /// `RandomState`) outside `crates/bench`.
    D2,
    /// No `thread::spawn` / `rayon` outside approved modules: scheduling
    /// nondeterminism has no place in the simulator.
    D3,
    /// No re-wrapping raw `.0` arithmetic in unit constructors
    /// (`Bytes(a.0 + b.0)`) and no `.0 as` casts outside `units.rs`.
    U1,
    /// No float `==`/`!=` against float literals.
    U2,
    /// No `unwrap`/`expect`/`panic!` in library crates' non-test code.
    P1,
    /// `PhaseReport`/`JoinReport` time fields must not be fed literals;
    /// report times come from costs priced through `crates/hw`.
    F1,
    /// A `KernelCost` that accrues `.link` traffic must be priced
    /// (`.timing(hw)`) or escape the function — no silent drops.
    F2,
    /// Admission-grant results (`try_admit`/`try_admit_shrunk`) must not
    /// be discarded or bound to a dead name.
    L1,
    /// Allocator handles (`SimAllocator::{alloc*,resize}`) must not be
    /// discarded or bound to a dead name.
    L2,
    /// No `_` wildcard arms in matches over invariant-bearing enums
    /// (`FaultKind`, `RejectReason`, `GrantRevision`, `PlanNode`,
    /// `EventKind`) in library crates.
    E1,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 11] = [
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::U1,
    Rule::U2,
    Rule::P1,
    Rule::F1,
    Rule::F2,
    Rule::L1,
    Rule::L2,
    Rule::E1,
];

impl Rule {
    /// Lower-case code used in reports and waiver pragmas.
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::D3 => "d3",
            Rule::U1 => "u1",
            Rule::U2 => "u2",
            Rule::P1 => "p1",
            Rule::F1 => "f1",
            Rule::F2 => "f2",
            Rule::L1 => "l1",
            Rule::L2 => "l2",
            Rule::E1 => "e1",
        }
    }

    /// One-line description for the report header.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "nondeterministic iteration (HashMap/HashSet)",
            Rule::D2 => "wall clock / ambient entropy",
            Rule::D3 => "unmanaged threading",
            Rule::U1 => "unit-newtype bypass",
            Rule::U2 => "float equality",
            Rule::P1 => "panic in library code",
            Rule::F1 => "literal-fed report field",
            Rule::F2 => "unpriced link traffic",
            Rule::L1 => "dropped admission grant",
            Rule::L2 => "dropped allocation handle",
            Rule::E1 => "wildcard over invariant enum",
        }
    }
}

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// `crates/<name>/…` component, if any.
    pub crate_name: Option<String>,
    /// Under a `tests/` or `benches/` directory (integration tests and
    /// bench harnesses are test code for every rule).
    pub is_test_file: bool,
    /// Under an `examples/` directory.
    pub is_example: bool,
    /// Is `crates/hw/src/units.rs` itself (the one home of raw unit
    /// arithmetic).
    pub is_units_rs: bool,
}

/// Library crates: panics in their non-test code take the whole serving
/// process down, so P1 applies. `bench` is a reporting harness and
/// exempt; `lint` holds itself to the same bar as the libraries.
const LIB_CRATES: [&str; 10] = [
    "core", "hw", "mem", "part", "datagen", "plan", "exec", "lint", "trace", "metrics",
];

impl FileClass {
    /// Classify a workspace-relative path (forward slashes).
    pub fn classify(rel_path: &str) -> FileClass {
        let segments: Vec<&str> = rel_path.split('/').collect();
        let crate_name = segments
            .iter()
            .position(|s| *s == "crates")
            .and_then(|i| segments.get(i + 1))
            .map(|s| (*s).to_string());
        FileClass {
            crate_name,
            is_test_file: segments.iter().any(|s| *s == "tests" || *s == "benches"),
            is_example: segments.contains(&"examples"),
            is_units_rs: rel_path.ends_with("hw/src/units.rs"),
        }
    }

    fn crate_is(&self, name: &str) -> bool {
        self.crate_name.as_deref() == Some(name)
    }

    fn applies(&self, rule: Rule) -> bool {
        if self.is_test_file {
            return false;
        }
        match rule {
            Rule::D1 => true,
            Rule::D2 | Rule::D3 => !self.crate_is("bench"),
            Rule::U1 => !self.is_units_rs,
            Rule::U2 => true,
            // The flow-aware families hold library code to the cost and
            // lifecycle contracts; examples and the bench harness narrate
            // rather than serve.
            Rule::P1 | Rule::F1 | Rule::F2 | Rule::L1 | Rule::L2 | Rule::E1 => {
                !self.is_example
                    && self
                        .crate_name
                        .as_deref()
                        .is_some_and(|c| LIB_CRATES.contains(&c))
            }
        }
    }
}

/// One rule hit, possibly waived by a pragma.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message (what was matched and what to do).
    pub message: String,
    /// The waiver reason, when a `triton-lint: allow(...)` pragma with a
    /// written reason covers this line.
    pub waived: Option<String>,
}

/// A parsed `// triton-lint: allow(rule, ...) -- reason` pragma.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the pragma sits on (covers this line and the next).
    pub line: u32,
    /// Lower-case rule codes it allows.
    pub rules: Vec<String>,
    /// The mandatory written reason (empty ⇒ the pragma is inert and
    /// reported as a violation of the waiver policy itself).
    pub reason: String,
}

/// Everything the analyzer produced for one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Rule hits, waived or not, in line order.
    pub findings: Vec<Finding>,
    /// Pragmas found (used for the waiver-creep summary).
    pub waivers: Vec<Waiver>,
    /// Pragmas missing the mandatory `-- reason` clause.
    pub malformed_waivers: Vec<u32>,
    /// Well-formed pragmas that matched no finding: stale waivers hide
    /// future violations, so they fail the run like violations do.
    pub unused_waivers: Vec<Waiver>,
}

/// Parse `triton-lint: allow(d1, u2) -- reason` out of a comment.
///
/// The pragma must be the comment's own content (only `/`, `!`, `*`,
/// and whitespace may precede it), so prose or code examples that
/// *mention* the syntax — inside backticks, mid-sentence — never
/// register as live waivers. Rule codes are validated: an unknown code
/// would silently waive nothing, so it is rejected here and surfaces as
/// a malformed pragma.
fn parse_waiver(text: &str, line: u32) -> Option<Waiver> {
    let body = text.trim_start_matches(['/', '!', '*', ' ', '\t']);
    let rest = body.strip_prefix("triton-lint:")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let (rules_part, after) = rest.split_once(')')?;
    let rules: Vec<String> = rules_part
        .split(',')
        .map(|r| r.trim().to_ascii_lowercase())
        .filter(|r| !r.is_empty())
        .collect();
    let known = |r: &String| ALL_RULES.iter().any(|rule| rule.code() == r);
    if rules.is_empty() || !rules.iter().all(known) {
        // Present but unusable (no rules, or a typoed code): report as
        // malformed rather than silently ignoring it.
        return Some(Waiver {
            line,
            rules,
            reason: String::new(),
        });
    }
    let reason = after
        .split_once("--")
        .map(|(_, r)| r.trim().trim_end_matches("*/").trim().to_string())
        .unwrap_or_default();
    Some(Waiver {
        line,
        rules,
        reason,
    })
}

/// Analyze one file's source under its [`FileClass`].
pub fn analyze_source(class: &FileClass, src: &str) -> FileAnalysis {
    let (tokens, comments) = lex(src);
    let in_test = test_regions(&tokens);
    let mut findings = Vec::new();

    for rule in [Rule::D1, Rule::D2, Rule::D3, Rule::U1, Rule::U2, Rule::P1] {
        if class.applies(rule) {
            run_rule(rule, &tokens, &in_test, &mut findings);
        }
    }

    // The flow-aware families parse once and share the AST. A malformed
    // file degrades to a partial AST (the parser never fails), so the
    // token rules above always run at full strength.
    let ast = parser::parse(&tokens, &in_test);
    semantic::run(&ast, |rule| class.applies(rule), &mut findings);

    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for c in &comments {
        if let Some(w) = parse_waiver(&c.text, c.line) {
            if w.reason.is_empty() {
                malformed.push(w.line);
            } else {
                waivers.push(w);
            }
        }
    }

    // A pragma on line L covers findings on L (trailing comment) and on
    // the next line that holds any code — so a pragma above a doc
    // comment or a stacked pragma still reaches the flagged line.
    let covered_lines = |w: &Waiver| -> (u32, u32) {
        let next_code = tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > w.line)
            .min()
            .unwrap_or(w.line);
        (w.line, next_code)
    };
    let mut used = vec![false; waivers.len()];
    for f in &mut findings {
        let hit = waivers.iter().enumerate().find(|(_, w)| {
            let (own, next) = covered_lines(w);
            (f.line == own || f.line == next) && w.rules.iter().any(|r| r == f.rule.code())
        });
        if let Some((i, w)) = hit {
            f.waived = Some(w.reason.clone());
            used[i] = true;
        }
    }
    let unused_waivers = waivers
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(w, _)| w.clone())
        .collect();

    findings.sort_by_key(|f| (f.line, f.rule));
    FileAnalysis {
        findings,
        waivers,
        malformed_waivers: malformed,
        unused_waivers,
    }
}

fn push(findings: &mut Vec<Finding>, rule: Rule, line: u32, message: String) {
    findings.push(Finding {
        rule,
        line,
        message,
        waived: None,
    });
}

/// Unit newtypes whose `.0` must not leak into ad-hoc arithmetic.
const UNIT_TYPES: [&str; 5] = ["Bytes", "Ns", "Cycles", "BytesPerSec", "Tuples"];

fn run_rule(rule: Rule, tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    match rule {
        Rule::D1 => scan_idents(
            tokens,
            in_test,
            &["HashMap", "HashSet"],
            findings,
            Rule::D1,
            |name| {
                format!(
                    "{name} has nondeterministic iteration order; use BTreeMap/BTreeSet \
                 or a sorted drain (waive only for provably lookup-only use)"
                )
            },
        ),
        Rule::D2 => scan_idents(
            tokens,
            in_test,
            &["Instant", "SystemTime", "RandomState"],
            findings,
            Rule::D2,
            |name| {
                format!(
                    "{name} injects wall-clock time or ambient entropy; \
                     use the simulated clock / seeded RNG (allowed only in crates/bench)"
                )
            },
        ),
        Rule::D3 => rule_d3(tokens, in_test, findings),
        Rule::U1 => rule_u1(tokens, in_test, findings),
        Rule::U2 => rule_u2(tokens, in_test, findings),
        Rule::P1 => rule_p1(tokens, in_test, findings),
        // The flow-aware families run through `semantic::run`, not here.
        Rule::F1 | Rule::F2 | Rule::L1 | Rule::L2 | Rule::E1 => {}
    }
}

fn scan_idents(
    tokens: &[Token],
    in_test: &[bool],
    names: &[&str],
    findings: &mut Vec<Finding>,
    rule: Rule,
    msg: impl Fn(&str) -> String,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokKind::Ident && names.contains(&t.text.as_str()) && !in_test[i] {
            push(findings, rule, t.line, msg(&t.text));
        }
    }
}

/// D3: `thread::spawn`, and any `rayon` path.
fn rule_d3(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test[i] {
            continue;
        }
        if t.text == "rayon" {
            push(
                findings,
                Rule::D3,
                t.line,
                "rayon parallelism is nondeterministically scheduled; \
                 the simulator models concurrency explicitly"
                    .to_string(),
            );
        }
        if t.text == "thread"
            && matches(tokens, i + 1, ":")
            && matches(tokens, i + 2, ":")
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == "spawn")
        {
            push(
                findings,
                Rule::D3,
                t.line,
                "thread::spawn introduces scheduling nondeterminism; \
                 model concurrency through the scheduler instead"
                    .to_string(),
            );
        }
    }
}

fn matches(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.text == text)
}

/// Is `tokens[i]`+`tokens[i+1]` the tuple-index field access `.0`?
fn is_dot_zero(tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == TokKind::Punct
        && tokens[i].text == "."
        && tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Int && t.text == "0")
}

/// U1: unit constructors re-wrapping raw `.0` values, and `.0 as` casts.
fn rule_u1(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        // `.0 as` — casting the raw inner value instead of converting.
        if is_dot_zero(tokens, i)
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == "as")
        {
            push(
                findings,
                Rule::U1,
                t.line,
                "`.0 as …` casts the raw inner value; use the unit's \
                 conversion methods (as_f64, as_gib, …) instead"
                    .to_string(),
            );
        }
        // `Bytes( … .0 … )` — raw arithmetic smuggled back into a unit.
        if t.kind == TokKind::Ident
            && UNIT_TYPES.contains(&t.text.as_str())
            && matches(tokens, i + 1, "(")
        {
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut smuggles = false;
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                if depth > 0 && is_dot_zero(tokens, j) {
                    smuggles = true;
                }
                j += 1;
            }
            if smuggles {
                push(
                    findings,
                    Rule::U1,
                    t.line,
                    format!(
                        "{}(… .0 …) re-wraps raw inner-value arithmetic; \
                         use the unit type's operators/constructors instead",
                        t.text
                    ),
                );
            }
        }
    }
}

/// U2: `==` / `!=` where either operand is a float literal.
fn rule_u2(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        let (op, operand_right) = if matches(tokens, i, "=")
            && matches(tokens, i + 1, "=")
            && !matches(tokens, i + 2, "=")
            && (i == 0 || !is_cmp_punct(&tokens[i - 1]))
        {
            ("==", i + 2)
        } else if matches(tokens, i, "!")
            && matches(tokens, i + 1, "=")
            && !matches(tokens, i + 2, "=")
        {
            ("!=", i + 2)
        } else {
            continue;
        };
        let left_float = i > 0 && tokens[i - 1].kind == TokKind::Float;
        let right_float = tokens
            .get(operand_right)
            .is_some_and(|t| t.kind == TokKind::Float);
        if left_float || right_float {
            push(
                findings,
                Rule::U2,
                tokens[i].line,
                format!(
                    "float `{op}` against a literal is representation-fragile; \
                     compare with an epsilon or restructure around an integer state"
                ),
            );
        }
    }
}

fn is_cmp_punct(t: &Token) -> bool {
    t.kind == TokKind::Punct
        && matches!(
            t.text.as_str(),
            "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
        )
}

/// P1: `.unwrap()`, `.expect(`, `panic!` in library non-test code.
fn rule_p1(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test[i] {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0 && matches(tokens, i - 1, ".") && matches(tokens, i + 1, "(") =>
            {
                push(
                    findings,
                    Rule::P1,
                    t.line,
                    format!(
                        ".{}() panics at runtime; return a typed error or \
                         handle the None/Err arm (waive only with a written \
                         invariant argument)",
                        t.text
                    ),
                );
            }
            "panic" if matches(tokens, i + 1, "!") => {
                push(
                    findings,
                    Rule::P1,
                    t.line,
                    "panic! in library code takes the whole serving process \
                     down; return a typed error"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}
