//! The scheduler's observability recorder: per-query span tracks, a
//! scheduler-wide fault track, phase rollups, and a bounded flight
//! recorder dumped automatically on faults and ladder steps.
//!
//! # Track layout
//!
//! Chrome `trace_event` organises spans into *processes* and *threads*;
//! the recorder maps the serving runtime onto them as:
//!
//! * pid [`SCHEDULER_PID`] — the scheduler itself: tid
//!   [`SCHED_TID_FAULTS`] carries fault instants (`ecc-retirement`,
//!   `kernel-fault`), tid [`SCHED_TID_FLIGHT`] receives flight-recorder
//!   dumps (a `flight.dump` marker followed by the replayed ring).
//! * pid [`query_pid`]`(id)` — one process per query, named
//!   `q<id>:<name>`: tid [`TID_LIFECYCLE`] has the `queue` span plus
//!   lifecycle instants (`enqueue`, `admit`, `retry`, `downgrade`,
//!   `revoked`, `complete`, `shed`), tid [`TID_PHASES`] the per-phase
//!   span chain stretched over the execution window, and tids
//!   [`TID_SM_A`] / [`TID_SM_B`] the Section 5.2 SM-half overlap lanes
//!   when the operator pipelined its stages.
//!
//! All timestamps come from the simulated clock; event order is the
//! deterministic simulation order, so equal runs serialise to
//! byte-identical traces (pinned by `tests/replay.rs`).

use std::collections::BTreeMap;

use triton_core::{phase_bytes, phase_key, record_overlap, record_report};
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;
use triton_trace::{Attr, FlightRecorder, Trace, TraceEvent};

use crate::metrics::PhaseRollup;
use crate::query::{JoinQuery, QueryId};
use crate::scheduler::{CompletedQuery, RejectReason};

/// Track group of the scheduler itself.
pub const SCHEDULER_PID: u64 = 0;
/// Scheduler track carrying fault instants.
pub const SCHED_TID_FAULTS: u64 = 0;
/// Scheduler track receiving flight-recorder dumps.
pub const SCHED_TID_FLIGHT: u64 = 1;
/// Per-query track carrying the queue span and lifecycle instants.
pub const TID_LIFECYCLE: u64 = 0;
/// Per-query track carrying the stretched phase span chain.
pub const TID_PHASES: u64 = 1;
/// Per-query overlap lane of the second partitioning pass (SM half A).
pub const TID_SM_A: u64 = 2;
/// Per-query overlap lane of the join (SM half B).
pub const TID_SM_B: u64 = 3;

/// Track group of a query: scheduler ids are dense from 0, and pid 0 is
/// the scheduler, so queries shift up by one.
#[must_use]
pub fn query_pid(id: QueryId) -> u64 {
    id.0 + 1
}

/// Short label of a rejection for `shed` events and rollup keys.
fn reject_kind(reason: &RejectReason) -> &'static str {
    match reason {
        RejectReason::QueueFull { .. } => "queue-full",
        RejectReason::OverCapacity { .. } => "over-capacity",
        RejectReason::Oom(_) => "oom",
        RejectReason::DeadlineExceeded { .. } => "deadline",
        RejectReason::Faulted { .. } => "faulted",
    }
}

/// Collects one serving run's trace, flight-recorder ring, and phase
/// rollups. The scheduler drives it at every lifecycle transition; it
/// never influences scheduling decisions (pure observation).
#[derive(Debug)]
pub struct Recorder {
    trace: Trace,
    flight: FlightRecorder,
    /// `(operator, phase)` → `(count, time_ns, bytes)`; `BTreeMap` keeps
    /// the export order deterministic.
    rollup: BTreeMap<(String, String), (u64, f64, u64)>,
}

impl Recorder {
    /// New recorder with a flight ring of `flight_capacity` events.
    #[must_use]
    pub fn new(flight_capacity: usize) -> Self {
        let mut trace = Trace::new();
        trace.name_process(SCHEDULER_PID, "scheduler");
        trace.name_thread(SCHEDULER_PID, SCHED_TID_FAULTS, "faults");
        trace.name_thread(SCHEDULER_PID, SCHED_TID_FLIGHT, "flight-recorder");
        Recorder {
            trace,
            flight: FlightRecorder::new(flight_capacity),
            rollup: BTreeMap::new(),
        }
    }

    /// Record a lifecycle instant on a query's lifecycle track and mirror
    /// it into the flight ring.
    fn lifecycle(&mut self, id: QueryId, name: &str, ts: Ns, attrs: Vec<Attr>) {
        let ev = self
            .trace
            .instant(query_pid(id), TID_LIFECYCLE, name, ts.0)
            .attrs(attrs)
            .clone();
        self.flight.record(ev);
    }

    /// A query landed in the admission queue.
    pub fn enqueue(&mut self, id: QueryId, q: &JoinQuery, ts: Ns) {
        self.trace
            .name_process(query_pid(id), format!("{id}:{}", q.name));
        let mut attrs = vec![
            Attr::str("operator", q.op.label()),
            Attr::u64("priority", u64::from(q.priority)),
        ];
        if let Some(d) = q.deadline {
            attrs.push(Attr::f64("deadline_ns", d.0));
        }
        self.lifecycle(id, "enqueue", ts, attrs);
    }

    /// A query was admitted: memory reserved, operator chosen, running.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &mut self,
        id: QueryId,
        ts: Ns,
        operator: &'static str,
        reserved: Bytes,
        cache_grant: Bytes,
        build_cache_hit: bool,
        grant_shrinks: u32,
    ) {
        self.lifecycle(
            id,
            "admit",
            ts,
            vec![
                Attr::str("operator", operator),
                Attr::u64("reserved_bytes", reserved.0),
                Attr::u64("cache_grant_bytes", cache_grant.0),
                Attr::bool("build_cache_hit", build_cache_hit),
                Attr::u64("grant_shrinks", u64::from(grant_shrinks)),
            ],
        );
    }

    /// A faulted attempt re-entered the queue with backoff.
    pub fn retry(&mut self, id: QueryId, ts: Ns, cause: &'static str, attempt: u32, backoff: Ns) {
        self.lifecycle(
            id,
            "retry",
            ts,
            vec![
                Attr::str("cause", cause),
                Attr::u64("attempt", u64::from(attempt)),
                Attr::f64("backoff_ns", backoff.0),
            ],
        );
    }

    /// A query's reservation was revoked by capacity loss.
    pub fn revoked(&mut self, id: QueryId, ts: Ns) {
        self.lifecycle(id, "revoked", ts, Vec::new());
    }

    /// A running query's memory grant was revised in place (the
    /// shrink-in-place rungs above the drop-everything ladder steps).
    /// Revisions are part of the pressure story, so the flight ring is
    /// dumped alongside, with the priced reclaim traffic on the event.
    #[allow(clippy::too_many_arguments)]
    pub fn revise(
        &mut self,
        id: QueryId,
        ts: Ns,
        kind: &'static str,
        delta: Bytes,
        new_reserved: Bytes,
        reclaim: Ns,
        reason: &'static str,
    ) {
        self.lifecycle(
            id,
            "grant-revision",
            ts,
            vec![
                Attr::str("kind", kind),
                Attr::u64("delta_bytes", delta.0),
                Attr::u64("reserved_bytes", new_reserved.0),
                Attr::f64("reclaim_ns", reclaim.0),
                Attr::str("reason", reason),
            ],
        );
        self.dump("grant-revision", ts);
    }

    /// A query descended the degradation ladder. Ladder steps are part of
    /// the failure story, so the flight ring is dumped alongside.
    pub fn downgrade(
        &mut self,
        id: QueryId,
        ts: Ns,
        from: &'static str,
        to: &'static str,
        reason: &'static str,
    ) {
        self.lifecycle(
            id,
            "downgrade",
            ts,
            vec![
                Attr::str("from", from),
                Attr::str("to", to),
                Attr::str("reason", reason),
            ],
        );
        self.dump("downgrade", ts);
    }

    /// A query was refused with a typed reason.
    pub fn shed(&mut self, id: QueryId, ts: Ns, reason: &RejectReason) {
        self.lifecycle(
            id,
            "shed",
            ts,
            vec![
                Attr::str("kind", reject_kind(reason)),
                Attr::str("reason", reason.to_string()),
            ],
        );
    }

    /// A hardware fault struck the run: recorded on the scheduler's fault
    /// track, mirrored into the ring, and the ring is dumped.
    pub fn fault(&mut self, kind: &'static str, ts: Ns, attrs: Vec<Attr>) {
        let ev = self
            .trace
            .instant(SCHEDULER_PID, SCHED_TID_FAULTS, kind, ts.0)
            .attrs(attrs)
            .clone();
        self.flight.record(ev);
        self.dump(kind, ts);
    }

    /// Dump the flight ring onto the scheduler's flight track.
    fn dump(&mut self, reason: &str, ts: Ns) {
        self.flight.dump(
            &mut self.trace,
            SCHEDULER_PID,
            SCHED_TID_FLIGHT,
            reason,
            ts.0,
        );
    }

    /// A query completed: emit its queue span, stretched phase chain,
    /// overlap lanes, and `complete` instant, and fold its phases into
    /// the rollup. For every query the rollup contributions sum to
    /// `latency()` within one simulated nanosecond: `queue` covers
    /// `[arrival, start]` and the stretched phases cover exactly
    /// `[start, finish]`.
    pub fn complete(&mut self, c: &CompletedQuery, hw: &HwConfig) {
        let pid = query_pid(c.id);
        let queue_wait = (c.start - c.arrival).0.max(0.0);
        self.trace
            .span(pid, TID_LIFECYCLE, "queue", c.arrival.0, queue_wait);
        self.add_rollup(c.operator, "queue", queue_wait, 0);

        let window = (c.finish - c.start).0.max(0.0);
        let iso: f64 = c.report.phases.iter().map(|p| p.time.0).sum();
        self.trace.name_thread(pid, TID_PHASES, "phases");
        if iso > 0.0 {
            let stretch = window / iso;
            record_report(
                &mut self.trace,
                pid,
                TID_PHASES,
                c.start.0,
                stretch,
                &c.report,
                hw,
            );
            for p in &c.report.phases {
                self.add_rollup(
                    c.operator,
                    &phase_key(&p.name),
                    p.time.0 * stretch,
                    phase_bytes(p),
                );
            }
        } else {
            // Degenerate report (no phases): one opaque span.
            self.trace.span(pid, TID_PHASES, "run", c.start.0, window);
            self.add_rollup(c.operator, "run", window, 0);
        }

        if let Some(lanes) = &c.report.overlap {
            if c.report.total.0 > 0.0 {
                // The overlap pipeline is the tail of the report; scale it
                // with the same factor that maps the report onto the
                // scheduled window so the lanes end exactly at `finish`.
                let scale = window / c.report.total.0;
                let tail = lanes.total().0 * scale;
                self.trace.name_thread(pid, TID_SM_A, "sm-half-a");
                self.trace.name_thread(pid, TID_SM_B, "sm-half-b");
                record_overlap(
                    &mut self.trace,
                    pid,
                    TID_SM_A,
                    TID_SM_B,
                    c.finish.0 - tail,
                    scale,
                    lanes,
                    c.report.placement.as_ref(),
                );
            }
        }

        let mut attrs = vec![
            Attr::str("operator", c.operator),
            Attr::f64("latency_ns", c.latency().0),
            Attr::f64("dedicated_ns", c.dedicated.0),
            Attr::u64("reserved_bytes", c.reserved.0),
            Attr::bool("build_cache_hit", c.build_cache_hit),
            Attr::u64("retries", u64::from(c.fault.retries)),
            Attr::u64("downgrades", u64::from(c.fault.downgrades)),
            Attr::u64("revocations", u64::from(c.fault.revocations)),
        ];
        if let Some(p) = &c.report.placement {
            attrs.push(Attr::str("placement_policy", p.policy.clone()));
            attrs.push(Attr::u64("cache_hit_bytes", p.cache_hit_bytes));
            attrs.push(Attr::u64("cache_spilled_bytes", p.spilled_bytes));
            attrs.push(Attr::u64("pairs_cached", p.pairs_cached()));
        }
        self.lifecycle(c.id, "complete", c.finish, attrs);
    }

    fn add_rollup(&mut self, operator: &str, phase: &str, time_ns: f64, bytes: u64) {
        let cell = self
            .rollup
            .entry((operator.to_string(), phase.to_string()))
            .or_insert((0, 0.0, 0));
        cell.0 += 1;
        cell.1 += time_ns;
        cell.2 += bytes;
    }

    /// The accumulated phase rollups, sorted by `(operator, phase)`.
    #[must_use]
    pub fn rollups(&self) -> Vec<PhaseRollup> {
        self.rollup
            .iter()
            .map(|((op, phase), &(count, time_ns, bytes))| PhaseRollup {
                operator: op.clone(),
                phase: phase.clone(),
                count,
                time: Ns(time_ns),
                bytes: Bytes(bytes),
            })
            .collect()
    }

    /// Events currently buffered in the flight ring (most recent last).
    #[must_use]
    pub fn flight_snapshot(&self) -> Vec<TraceEvent> {
        self.flight.snapshot()
    }

    /// Finish the run and take the trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_dumps_the_preceding_lifecycle() {
        let mut obs = Recorder::new(8);
        let q = JoinQuery::new(
            "t",
            triton_datagen::WorkloadSpec::paper_default(2, 256).generate(),
            Ns::ZERO,
        );
        obs.enqueue(QueryId(0), &q, Ns(0.0));
        obs.admit(
            QueryId(0),
            Ns(5.0),
            "triton",
            Bytes(128),
            Bytes(64),
            false,
            0,
        );
        obs.fault("kernel-fault", Ns(9.0), vec![Attr::str("victim", "q0")]);
        let trace = obs.into_trace();
        // The dump replays enqueue + admit + the fault itself onto the
        // scheduler's flight track, after a flight.dump marker.
        let flight: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.pid == SCHEDULER_PID && e.tid == SCHED_TID_FLIGHT)
            .collect();
        assert_eq!(flight.len(), 4, "marker + 3 replayed events");
        assert_eq!(flight[0].name, "flight.dump");
        assert_eq!(flight[1].name, "enqueue");
        assert_eq!(flight[2].name, "admit");
        assert_eq!(flight[3].name, "kernel-fault");
    }

    #[test]
    fn rollups_sorted_and_accumulated() {
        let mut obs = Recorder::new(4);
        obs.add_rollup("triton", "queue", 5.0, 0);
        obs.add_rollup("cpu-radix", "join", 2.0, 7);
        obs.add_rollup("triton", "queue", 3.0, 0);
        let r = obs.rollups();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].operator, "cpu-radix");
        assert_eq!(r[1].phase, "queue");
        assert_eq!(r[1].count, 2);
        assert_eq!(r[1].time, Ns(8.0));
    }
}
