// Fixture: a pragma without `-- reason` is inert AND reported; a
// pragma naming a different rule does not waive this one.
use std::collections::HashMap; // triton-lint: allow(d1)

// triton-lint: allow(u2) -- wrong rule: does not cover the d1 below
pub fn counts() -> HashMap<u64, u64> {
    HashMap::new()
}
