//! Run every reproduced table and figure in sequence.
//!
//! `TRITON_SCALE` (default 512) selects the capacity scale factor; larger
//! values run faster at coarser granularity.
fn main() {
    use triton_bench::figs::{self, PAPER_WORKLOADS, SCALING_AXIS};
    let hw = triton_bench::hw();
    figs::fig13::print_headline(&hw, &SCALING_AXIS);
    figs::fig04::print(&hw);
    figs::fig06::print(&hw);
    figs::fig07::print(&hw);
    figs::fig13::print(&hw, &SCALING_AXIS);
    figs::fig14::print(&hw, &PAPER_WORKLOADS);
    figs::fig15::print(&hw, &PAPER_WORKLOADS);
    figs::fig16::print(&hw, &PAPER_WORKLOADS);
    figs::fig17::print(&hw, &[128, 512, 1024, 1536, 2048]);
    figs::fig18::print(&hw, 3840);
    figs::fig19::print(&hw, &PAPER_WORKLOADS);
    figs::fig20::print(&hw, &PAPER_WORKLOADS);
    figs::fig21::print(&hw, &PAPER_WORKLOADS);
    figs::fig22::print(&hw, 512);
    figs::fig23::print(&hw, &PAPER_WORKLOADS);
    figs::fig24::print(&hw, 512);
    figs::table1::print(&hw);
    figs::ablations::print(&hw);
}
