//! Aggregate serving metrics: throughput, latency percentiles, memory
//! high-water marks, and shedding counts for one scheduler run.

use triton_hw::units::{Bytes, Ns};

use crate::scheduler::{Outcome, RejectReason};

/// Aggregate metrics over one serving run.
#[derive(Debug, Clone)]
pub struct SchedulerMetrics {
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries refused for any reason.
    pub rejected: u64,
    /// Of the rejected: shed for a missed deadline.
    pub shed_deadline: u64,
    /// Of the rejected: bounced off the full queue.
    pub shed_queue_full: u64,
    /// Of the rejected: floors exceeding the whole GPU (or OOM).
    pub shed_capacity: u64,
    /// Simulated wall time from first arrival to last completion.
    pub makespan: Ns,
    /// Tuples processed by completed queries.
    pub tuples: u64,
    /// Aggregate throughput in G tuples/s over the makespan.
    pub throughput_gtps: f64,
    /// Median end-to-end latency of completed queries.
    pub latency_p50: Ns,
    /// 99th-percentile end-to-end latency.
    pub latency_p99: Ns,
    /// Worst-case latency.
    pub latency_max: Ns,
    /// High-water mark of concurrently reserved GPU memory.
    pub peak_gpu_reserved: Bytes,
    /// The GPU capacity those reservations were drawn from.
    pub gpu_capacity: Bytes,
    /// Most queries in flight at once.
    pub peak_concurrency: usize,
    /// Time-weighted mean queries in flight (while any ran).
    pub mean_concurrency: f64,
    /// Build-cache hits (probe batches reusing a partitioned build side).
    pub build_cache_hits: u64,
    /// Build-cache misses (build sides partitioned from scratch).
    pub build_cache_misses: u64,
}

/// `p`-th percentile (0..=100) of an unsorted sample, by the
/// nearest-rank method. Returns 0 for an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl SchedulerMetrics {
    /// Assemble from a finished run's outcomes and counters.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_run(
        outcomes: &[Outcome],
        makespan: Ns,
        peak_gpu_reserved: Bytes,
        gpu_capacity: Bytes,
        peak_concurrency: usize,
        mean_concurrency: f64,
        build_cache_hits: u64,
        build_cache_misses: u64,
    ) -> Self {
        let mut latencies: Vec<f64> = Vec::new();
        let mut tuples = 0u64;
        let (mut completed, mut rejected) = (0u64, 0u64);
        let (mut shed_deadline, mut shed_queue_full, mut shed_capacity) = (0u64, 0u64, 0u64);
        for o in outcomes {
            match o {
                Outcome::Completed(c) => {
                    completed += 1;
                    tuples += c.report.tuples_actual;
                    latencies.push(c.latency().0);
                }
                Outcome::Rejected { reason, .. } => {
                    rejected += 1;
                    match reason {
                        RejectReason::DeadlineExceeded { .. } => shed_deadline += 1,
                        RejectReason::QueueFull { .. } => shed_queue_full += 1,
                        RejectReason::OverCapacity { .. } | RejectReason::Oom(_) => {
                            shed_capacity += 1
                        }
                    }
                }
            }
        }
        let throughput_gtps = if makespan.0 > 0.0 {
            tuples as f64 / makespan.as_secs() / 1e9
        } else {
            0.0
        };
        SchedulerMetrics {
            completed,
            rejected,
            shed_deadline,
            shed_queue_full,
            shed_capacity,
            makespan,
            tuples,
            throughput_gtps,
            latency_p50: Ns(percentile(&latencies, 50.0)),
            latency_p99: Ns(percentile(&latencies, 99.0)),
            latency_max: Ns(latencies.iter().cloned().fold(0.0, f64::max)),
            peak_gpu_reserved,
            gpu_capacity,
            peak_concurrency,
            mean_concurrency,
            build_cache_hits,
            build_cache_misses,
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} done / {} rejected | makespan {} | {:.2} Gtps | p50 {} p99 {} | \
             peak mem {} of {} | peak conc {} (mean {:.2}) | cache {}h/{}m",
            self.completed,
            self.rejected,
            self.makespan,
            self.throughput_gtps,
            self.latency_p50,
            self.latency_p99,
            self.peak_gpu_reserved,
            self.gpu_capacity,
            self.peak_concurrency,
            self.mean_concurrency,
            self.build_cache_hits,
            self.build_cache_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
