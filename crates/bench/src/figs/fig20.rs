//! Fig 20: computing the prefix sum on the CPU vs on the GPU — (a) the
//! effect on the end-to-end Triton join and (b) the prefix-sum
//! throughput itself.
//!
//! Expected shape (Section 6.2.8): the CPU nearly saturates its memory
//! bandwidth (up to ~129.6 GiB/s) while the GPU is pinned at the
//! unidirectional link bandwidth (~63 GiB/s), making the CPU variant of
//! the join ~1.1x faster.

use triton_core::TritonJoin;
use triton_datagen::{WorkloadSpec, KEY_BYTES};
use triton_hw::HwConfig;
use triton_part::{cpu_prefix_sum_cost, gpu_prefix_sum, PassConfig, Span};

/// One workload group.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload in modeled M tuples.
    pub m_tuples: u64,
    /// Join throughput with a CPU prefix sum (G tuples/s).
    pub join_cpu_ps: f64,
    /// Join throughput with a GPU prefix sum.
    pub join_gpu_ps: f64,
    /// CPU prefix-sum scan throughput (GiB/s).
    pub ps_cpu_gibs: f64,
    /// GPU prefix-sum scan throughput (GiB/s).
    pub ps_gpu_gibs: f64,
}

/// Run for the given workloads.
pub fn run(hw: &HwConfig, sizes: &[u64]) -> Vec<Row> {
    let k = hw.scale;
    let gib = (1u64 << 30) as f64;
    sizes
        .iter()
        .map(|&m| {
            let w = WorkloadSpec::paper_default(m, k).generate();
            let n = w.r.len() as u64;
            let bytes = (n * KEY_BYTES) as f64;

            let cpu_join = TritonJoin::default().run(&w, hw).throughput_gtps();
            let gpu_join = TritonJoin {
                gpu_prefix_sum: true,
                ..TritonJoin::default()
            }
            .run(&w, hw)
            .throughput_gtps();

            let t_cpu = cpu_prefix_sum_cost(n, hw);
            let pass = PassConfig::new(9, 0);
            let (_, c) = gpu_prefix_sum(&w.r.keys, &Span::cpu(0), &pass, hw, false);
            let t_gpu = c.timing(hw).total;

            Row {
                m_tuples: m,
                join_cpu_ps: cpu_join,
                join_gpu_ps: gpu_join,
                ps_cpu_gibs: bytes / gib / t_cpu.as_secs(),
                ps_gpu_gibs: bytes / gib / t_gpu.as_secs(),
            }
        })
        .collect()
}

/// Print both panels.
pub fn print(hw: &HwConfig, sizes: &[u64]) {
    crate::banner("Fig 20", "prefix sum on the CPU vs on the GPU");
    let mut t = crate::Table::new([
        "M tuples",
        "join w/ CPU PS (G/s)",
        "join w/ GPU PS (G/s)",
        "CPU PS (GiB/s)",
        "GPU PS (GiB/s)",
    ]);
    for r in run(hw, sizes) {
        t.row([
            r.m_tuples.to_string(),
            crate::f3(r.join_cpu_ps),
            crate::f3(r.join_gpu_ps),
            crate::f1(r.ps_cpu_gibs),
            crate::f1(r.ps_gpu_gibs),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_prefix_sum_faster_than_gpu() {
        let hw = HwConfig::ac922().scaled(2048);
        for r in run(&hw, &[128, 2048]) {
            // Paper: CPU 1.6-2.2x faster at the scan itself.
            let ratio = r.ps_cpu_gibs / r.ps_gpu_gibs;
            assert!(
                (1.3..=2.6).contains(&ratio),
                "{} M: ratio {ratio}",
                r.m_tuples
            );
            // GPU pinned near the unidirectional link bandwidth.
            assert!((50.0..=66.0).contains(&r.ps_gpu_gibs), "{r:?}");
            // CPU near its scan bandwidth (paper: up to 129.6 GiB/s).
            assert!((95.0..=135.0).contains(&r.ps_cpu_gibs), "{r:?}");
        }
    }

    #[test]
    fn join_prefers_cpu_prefix_sum() {
        let hw = HwConfig::ac922().scaled(2048);
        for r in run(&hw, &[512, 2048]) {
            let speedup = r.join_cpu_ps / r.join_gpu_ps;
            // Paper: ~1.1x; the prefix sum is a small share of the join.
            assert!(
                (1.0..=1.35).contains(&speedup),
                "{} M: speedup {speedup}",
                r.m_tuples
            );
        }
    }
}
