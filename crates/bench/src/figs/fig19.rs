//! Fig 19: scaling the GPU memory cache size from 0 to ~14.9 GiB for the
//! no-partitioning join (caching part of the hash table) and the Triton
//! join (caching part of the partitioned working set).
//!
//! Expected shape (Section 6.2.7): caching the whole NPJ table gives
//! 4.6-4.8x for in-TLB workloads but nothing for 2048 M (the table
//! exceeds the TLB range either way); Triton improves smoothly by
//! 1.1-1.4x and robustly avoids cliffs — with a slight dip when *all*
//! of the working set is cached, because GPU memory plus the interconnect
//! together out-bandwidth GPU memory alone.

use triton_core::{NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::units::Bytes;
use triton_hw::HwConfig;

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Operator label.
    pub operator: &'static str,
    /// Workload in modeled M tuples.
    pub m_tuples: u64,
    /// Cache size in modeled GiB (paper axis).
    pub cache_gib: f64,
    /// Throughput in G tuples/s.
    pub gtps: f64,
}

/// The paper's cache-size axis in modeled GiB.
pub const CACHE_AXIS: [f64; 7] = [0.0, 2.0, 4.0, 8.0, 10.0, 12.0, 14.9];

/// Run the sweep for NPJ (perfect hashing) and Triton (bucket chaining).
pub fn run(hw: &HwConfig, sizes: &[u64]) -> Vec<Row> {
    let k = hw.scale;
    let gib = 1u64 << 30;
    let mut rows = Vec::new();
    for &m in sizes {
        let w = WorkloadSpec::paper_default(m, k).generate();
        for &cache_gib in &CACHE_AXIS {
            let cache = Bytes(((cache_gib * gib as f64) as u64) / k);
            let npj = NoPartitioningJoin {
                cache_bytes: Some(cache),
                ..NoPartitioningJoin::perfect()
            };
            rows.push(Row {
                operator: "NPJ (Perfect)",
                m_tuples: m,
                cache_gib,
                gtps: npj.run(&w, hw).throughput_gtps(),
            });
            let triton = TritonJoin {
                cache_bytes: Some(cache),
                ..TritonJoin::default()
            };
            rows.push(Row {
                operator: "Triton (BC)",
                m_tuples: m,
                cache_gib,
                gtps: triton.run(&w, hw).throughput_gtps(),
            });
        }
    }
    rows
}

/// Print the figure.
pub fn print(hw: &HwConfig, sizes: &[u64]) {
    crate::banner("Fig 19", "scaling the GPU memory cache size");
    let mut t = crate::Table::new(["operator", "M tuples", "cache (GiB)", "G tuples/s"]);
    for r in run(hw, sizes) {
        t.row([
            r.operator.to_string(),
            r.m_tuples.to_string(),
            format!("{:.1}", r.cache_gib),
            crate::f3(r.gtps),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rows: &[Row], op: &str, m: u64) -> Vec<f64> {
        rows.iter()
            .filter(|r| r.operator == op && r.m_tuples == m)
            .map(|r| r.gtps)
            .collect()
    }

    #[test]
    fn npj_caching_pays_off_for_small_workloads() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[512]);
        let s = series(&rows, "NPJ (Perfect)", 512);
        // Full cache vs no cache: large gain (paper: 4.6-4.8x for
        // perfect hashing on in-TLB workloads).
        let gain = s.last().unwrap() / s.first().unwrap();
        assert!(gain > 2.0, "NPJ cache gain {gain}");
    }

    #[test]
    fn triton_robust_across_cache_sizes() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[512, 2048]);
        for m in [512u64, 2048] {
            let s = series(&rows, "Triton (BC)", m);
            let min = s.iter().copied().fold(f64::INFINITY, f64::min);
            let max = s.iter().copied().fold(0.0f64, f64::max);
            // Paper: 1.1-1.4x smooth improvement, no cliffs.
            assert!(max / min < 2.0, "{m} M: Triton spread {}", max / min);
            // Larger cache should never be catastrophically worse.
            assert!(s.last().unwrap() / max > 0.8, "{m} M");
        }
    }

    #[test]
    fn triton_gains_more_at_smaller_sizes() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[512, 2048]);
        let gain = |m: u64| {
            let s = series(&rows, "Triton (BC)", m);
            s.last().unwrap() / s.first().unwrap()
        };
        // Paper: 1.4x for 128/512 M vs 1.1x for 2048 M.
        assert!(
            gain(512) >= gain(2048) * 0.95,
            "{} vs {}",
            gain(512),
            gain(2048)
        );
    }
}
