//! The scheduler's observability recorder: per-query span tracks, a
//! scheduler-wide fault track, phase rollups, and a bounded flight
//! recorder dumped automatically on faults and ladder steps.
//!
//! # Track layout
//!
//! Chrome `trace_event` organises spans into *processes* and *threads*;
//! the recorder maps the serving runtime onto them as:
//!
//! * pid [`SCHEDULER_PID`] — the scheduler itself: tid
//!   [`SCHED_TID_FAULTS`] carries fault instants (`ecc-retirement`,
//!   `kernel-fault`), tid [`SCHED_TID_FLIGHT`] receives flight-recorder
//!   dumps (a `flight.dump` marker followed by the replayed ring).
//! * pid [`query_pid`]`(id)` — one process per query, named
//!   `q<id>:<name>`: tid [`TID_LIFECYCLE`] has the `queue` span plus
//!   lifecycle instants (`enqueue`, `admit`, `retry`, `downgrade`,
//!   `revoked`, `complete`, `shed`), tid [`TID_PHASES`] the per-phase
//!   span chain stretched over the execution window, and tids
//!   [`TID_SM_A`] / [`TID_SM_B`] the Section 5.2 SM-half overlap lanes
//!   when the operator pipelined its stages.
//!
//! All timestamps come from the simulated clock; event order is the
//! deterministic simulation order, so equal runs serialise to
//! byte-identical traces (pinned by `tests/replay.rs`).

use std::collections::BTreeMap;

use triton_core::{phase_bytes, phase_key, phase_progress, record_overlap, record_report};
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;
use triton_metrics::{sim_ns, MetricsRegistry};
use triton_trace::{Attr, FlightRecorder, Trace, TraceEvent};

use crate::metrics::PhaseRollup;
use crate::query::{JoinQuery, QueryId};
use crate::scheduler::{CompletedQuery, RejectReason};
use crate::slo::{tenant_of, SloAccount};

/// Track group of the scheduler itself.
pub const SCHEDULER_PID: u64 = 0;
/// Scheduler track carrying fault instants.
pub const SCHED_TID_FAULTS: u64 = 0;
/// Scheduler track receiving flight-recorder dumps.
pub const SCHED_TID_FLIGHT: u64 = 1;
/// Scheduler track carrying gauge counter lanes (Perfetto `ph: "C"`
/// series: GPU memory occupancy, resource utilization, in-flight count).
pub const SCHED_TID_GAUGES: u64 = 2;
/// Rollup window of the time-series registry: 1 simulated millisecond.
pub const METRICS_WINDOW_NS: u64 = 1_000_000;
/// Per-query track carrying the queue span and lifecycle instants.
pub const TID_LIFECYCLE: u64 = 0;
/// Per-query track carrying the stretched phase span chain.
pub const TID_PHASES: u64 = 1;
/// Per-query overlap lane of the second partitioning pass (SM half A).
pub const TID_SM_A: u64 = 2;
/// Per-query overlap lane of the join (SM half B).
pub const TID_SM_B: u64 = 3;

/// Track group of a query: scheduler ids are dense from 0, and pid 0 is
/// the scheduler, so queries shift up by one.
#[must_use]
pub fn query_pid(id: QueryId) -> u64 {
    id.0 + 1
}

/// Short label of a rejection for `shed` events and rollup keys.
fn reject_kind(reason: &RejectReason) -> &'static str {
    match reason {
        RejectReason::QueueFull { .. } => "queue-full",
        RejectReason::OverCapacity { .. } => "over-capacity",
        RejectReason::Oom(_) => "oom",
        RejectReason::DeadlineExceeded { .. } => "deadline",
        RejectReason::Faulted { .. } => "faulted",
    }
}

/// One gauge observation the scheduler takes per decision-loop
/// iteration: allocator occupancy from triton-mem and resource
/// utilization priced off the triton-hw cost model (already in integer
/// ppm, so the registry stays float-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSample {
    /// GPU bytes currently reserved (page-rounded).
    pub gpu_used: Bytes,
    /// GPU capacity the reservations draw from.
    pub gpu_capacity: Bytes,
    /// GPU bytes callers actually asked for.
    pub gpu_requested: Bytes,
    /// Page-rounding waste: used − requested.
    pub gpu_fragmentation: Bytes,
    /// GPU occupancy in ppm of capacity (may exceed 1 M under
    /// overcommit).
    pub gpu_occupancy_ppm: u64,
    /// Aggregate interconnect utilization in ppm.
    pub link_util_ppm: u64,
    /// Aggregate SM (compute) utilization in ppm.
    pub sm_util_ppm: u64,
    /// Aggregate GPU memory-bandwidth utilization in ppm.
    pub gpu_mem_util_ppm: u64,
    /// Aggregate CPU utilization in ppm.
    pub cpu_util_ppm: u64,
    /// Queries currently running.
    pub running: u64,
    /// Queries waiting in the admission queue.
    pub queued: u64,
}

/// Collects one serving run's trace, flight-recorder ring, phase
/// rollups, time-series registry, and per-tenant SLO accounts. The
/// scheduler drives it at every lifecycle transition; it never
/// influences scheduling decisions (pure observation).
#[derive(Debug)]
pub struct Recorder {
    trace: Trace,
    flight: FlightRecorder,
    /// `(operator, phase)` → `(count, time_ns, bytes)`; `BTreeMap` keeps
    /// the export order deterministic.
    rollup: BTreeMap<(String, String), (u64, f64, u64)>,
    /// Windowed counters/gauges/histograms on the simulated clock.
    registry: MetricsRegistry,
    /// Per-tenant SLO accounts, keyed by tenant label.
    slo: BTreeMap<String, SloAccount>,
    /// Per-query `(tenant, deadline_ns)` captured at enqueue so terminal
    /// events can settle the SLO without re-threading the query.
    meta: BTreeMap<QueryId, (String, Option<f64>)>,
    /// Latest gauge snapshot as trace attributes, stamped onto every
    /// flight-recorder dump marker.
    gauge_ctx: Vec<Attr>,
}

impl Recorder {
    /// New recorder with a flight ring of `flight_capacity` events.
    #[must_use]
    pub fn new(flight_capacity: usize) -> Self {
        let mut trace = Trace::new();
        trace.name_process(SCHEDULER_PID, "scheduler");
        trace.name_thread(SCHEDULER_PID, SCHED_TID_FAULTS, "faults");
        trace.name_thread(SCHEDULER_PID, SCHED_TID_FLIGHT, "flight-recorder");
        trace.name_thread(SCHEDULER_PID, SCHED_TID_GAUGES, "gauges");
        Recorder {
            trace,
            flight: FlightRecorder::new(flight_capacity),
            rollup: BTreeMap::new(),
            registry: MetricsRegistry::new(METRICS_WINDOW_NS),
            slo: BTreeMap::new(),
            meta: BTreeMap::new(),
            gauge_ctx: Vec::new(),
        }
    }

    /// The tenant account for `tenant`, created on first touch.
    fn slo_entry(&mut self, tenant: &str) -> &mut SloAccount {
        self.slo
            .entry(tenant.to_string())
            .or_insert_with(|| SloAccount::new(tenant))
    }

    /// Record a lifecycle instant on a query's lifecycle track and mirror
    /// it into the flight ring.
    fn lifecycle(&mut self, id: QueryId, name: &str, ts: Ns, attrs: Vec<Attr>) {
        let ev = self
            .trace
            .instant(query_pid(id), TID_LIFECYCLE, name, ts.0)
            .attrs(attrs)
            .clone();
        self.flight.record(ev);
    }

    /// A query landed in the admission queue.
    pub fn enqueue(&mut self, id: QueryId, q: &JoinQuery, ts: Ns) {
        self.trace
            .name_process(query_pid(id), format!("{id}:{}", q.name));
        let mut attrs = vec![
            Attr::str("operator", q.op.label()),
            Attr::u64("priority", u64::from(q.priority)),
        ];
        if let Some(d) = q.deadline {
            attrs.push(Attr::f64("deadline_ns", d.0));
        }
        self.lifecycle(id, "enqueue", ts, attrs);
        let tenant = tenant_of(&q.name).to_string();
        self.registry
            .counter_inc(&format!("tenant.{tenant}.enqueued"), sim_ns(ts.0));
        self.registry.counter_inc("sched.enqueued", sim_ns(ts.0));
        self.meta.insert(id, (tenant, q.deadline.map(|d| d.0)));
    }

    /// A query was admitted: memory reserved, operator chosen, running.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &mut self,
        id: QueryId,
        ts: Ns,
        operator: &'static str,
        reserved: Bytes,
        cache_grant: Bytes,
        build_cache_hit: bool,
        grant_shrinks: u32,
    ) {
        self.lifecycle(
            id,
            "admit",
            ts,
            vec![
                Attr::str("operator", operator),
                Attr::u64("reserved_bytes", reserved.0),
                Attr::u64("cache_grant_bytes", cache_grant.0),
                Attr::bool("build_cache_hit", build_cache_hit),
                Attr::u64("grant_shrinks", u64::from(grant_shrinks)),
            ],
        );
    }

    /// A faulted attempt re-entered the queue with backoff.
    pub fn retry(&mut self, id: QueryId, ts: Ns, cause: &'static str, attempt: u32, backoff: Ns) {
        self.lifecycle(
            id,
            "retry",
            ts,
            vec![
                Attr::str("cause", cause),
                Attr::u64("attempt", u64::from(attempt)),
                Attr::f64("backoff_ns", backoff.0),
            ],
        );
        self.registry.counter_inc("sched.retries", sim_ns(ts.0));
    }

    /// A query's reservation was revoked by capacity loss.
    pub fn revoked(&mut self, id: QueryId, ts: Ns) {
        self.lifecycle(id, "revoked", ts, Vec::new());
        self.registry.counter_inc("sched.revocations", sim_ns(ts.0));
    }

    /// A running query's memory grant was revised in place (the
    /// shrink-in-place rungs above the drop-everything ladder steps).
    /// Revisions are part of the pressure story, so the flight ring is
    /// dumped alongside, with the priced reclaim traffic on the event.
    #[allow(clippy::too_many_arguments)]
    pub fn revise(
        &mut self,
        id: QueryId,
        ts: Ns,
        kind: &'static str,
        delta: Bytes,
        new_reserved: Bytes,
        reclaim: Ns,
        reason: &'static str,
    ) {
        self.lifecycle(
            id,
            "grant-revision",
            ts,
            vec![
                Attr::str("kind", kind),
                Attr::u64("delta_bytes", delta.0),
                Attr::u64("reserved_bytes", new_reserved.0),
                Attr::f64("reclaim_ns", reclaim.0),
                Attr::str("reason", reason),
            ],
        );
        self.registry
            .counter_inc("sched.grant_revisions", sim_ns(ts.0));
        self.registry
            .counter_inc(&format!("sched.grant_revisions.{kind}"), sim_ns(ts.0));
        if let Some((tenant, _)) = self.meta.get(&id).cloned() {
            self.slo_entry(&tenant).grant_revisions += 1;
        }
        self.dump("grant-revision", ts);
    }

    /// A query descended the degradation ladder. Ladder steps are part of
    /// the failure story, so the flight ring is dumped alongside.
    pub fn downgrade(
        &mut self,
        id: QueryId,
        ts: Ns,
        from: &'static str,
        to: &'static str,
        reason: &'static str,
    ) {
        self.lifecycle(
            id,
            "downgrade",
            ts,
            vec![
                Attr::str("from", from),
                Attr::str("to", to),
                Attr::str("reason", reason),
            ],
        );
        self.registry.counter_inc("sched.downgrades", sim_ns(ts.0));
        self.dump("downgrade", ts);
    }

    /// A query was refused with a typed reason. A shed of a
    /// deadline-holding query settles its tenant's SLO as a violation.
    pub fn shed(&mut self, id: QueryId, ts: Ns, reason: &RejectReason) {
        let kind = reject_kind(reason);
        self.lifecycle(
            id,
            "shed",
            ts,
            vec![
                Attr::str("kind", kind),
                Attr::str("reason", reason.to_string()),
            ],
        );
        self.registry.counter_inc("sched.shed", sim_ns(ts.0));
        self.registry
            .counter_inc(&format!("sched.shed.{kind}"), sim_ns(ts.0));
        if let Some((tenant, deadline)) = self.meta.remove(&id) {
            self.registry
                .counter_inc(&format!("tenant.{tenant}.shed"), sim_ns(ts.0));
            let account = self.slo_entry(&tenant);
            account.shed += 1;
            if deadline.is_some() {
                account.slo_total += 1;
            }
        }
    }

    /// An operator pricing was resolved through the cost/plan memo:
    /// `sched.cost_cache.hit` when the memo served a cached report,
    /// `sched.cost_cache.miss` when the operator had to run. Registry
    /// counters only — no trace events, so the trace stays byte-identical
    /// with the memo on or off, and a disabled memo (which never calls
    /// this) differs from an enabled one in exactly these counter lanes.
    pub fn cost_cache(&mut self, hit: bool, ts: Ns) {
        let name = if hit {
            "sched.cost_cache.hit"
        } else {
            "sched.cost_cache.miss"
        };
        self.registry.counter_inc(name, sim_ns(ts.0));
    }

    /// A shared-build acquire was served: `sched.build_cache.exact_hit`,
    /// `sched.build_cache.prefix_hit`, or `sched.build_cache.miss`.
    /// Registry counters only, recorded identically in every scheduler
    /// configuration (build sharing is independent of the cost-cache
    /// knob).
    pub fn build_cache(&mut self, hit: crate::build_cache::BuildHit, ts: Ns) {
        let name = match hit {
            crate::build_cache::BuildHit::Exact => "sched.build_cache.exact_hit",
            crate::build_cache::BuildHit::Prefix => "sched.build_cache.prefix_hit",
            crate::build_cache::BuildHit::Miss => "sched.build_cache.miss",
        };
        self.registry.counter_inc(name, sim_ns(ts.0));
    }

    /// A hardware fault struck the run: recorded on the scheduler's fault
    /// track, mirrored into the ring, and the ring is dumped.
    pub fn fault(&mut self, kind: &'static str, ts: Ns, attrs: Vec<Attr>) {
        let ev = self
            .trace
            .instant(SCHEDULER_PID, SCHED_TID_FAULTS, kind, ts.0)
            .attrs(attrs)
            .clone();
        self.flight.record(ev);
        self.registry.counter_inc("sched.faults", sim_ns(ts.0));
        self.registry
            .counter_inc(&format!("sched.faults.{kind}"), sim_ns(ts.0));
        self.dump(kind, ts);
    }

    /// Dump the flight ring onto the scheduler's flight track, stamping
    /// the marker with the latest gauge snapshot so forensics carry the
    /// machine state (occupancy, utilization) at the decision point.
    fn dump(&mut self, reason: &str, ts: Ns) {
        self.flight.dump_with_context(
            &mut self.trace,
            SCHEDULER_PID,
            SCHED_TID_FLIGHT,
            reason,
            ts.0,
            &self.gauge_ctx,
        );
    }

    /// Take one gauge observation at a scheduler decision point: update
    /// the registry's gauges, refresh the flight-dump context, and emit
    /// Perfetto counter lanes on [`SCHED_TID_GAUGES`]. Counter events are
    /// only appended when a series member actually changed, so an idle
    /// loop iteration costs nothing in the trace.
    pub fn sample_gauges(&mut self, ts: Ns, s: &GaugeSample) {
        let t = sim_ns(ts.0);
        let mem_changed = self.registry.gauge_set("gpu.used_bytes", s.gpu_used.0, t)
            | self
                .registry
                .gauge_set("gpu.requested_bytes", s.gpu_requested.0, t)
            | self
                .registry
                .gauge_set("gpu.fragmentation_bytes", s.gpu_fragmentation.0, t)
            | self
                .registry
                .gauge_set("gpu.occupancy_ppm", s.gpu_occupancy_ppm, t);
        let util_changed = self.registry.gauge_set("util.link_ppm", s.link_util_ppm, t)
            | self.registry.gauge_set("util.sm_ppm", s.sm_util_ppm, t)
            | self
                .registry
                .gauge_set("util.gpu_mem_ppm", s.gpu_mem_util_ppm, t)
            | self.registry.gauge_set("util.cpu_ppm", s.cpu_util_ppm, t);
        let flight_changed = self.registry.gauge_set("sched.running", s.running, t)
            | self.registry.gauge_set("sched.queued", s.queued, t);
        if mem_changed {
            self.trace
                .counter(SCHEDULER_PID, SCHED_TID_GAUGES, "gpu_mem", ts.0)
                .attr(Attr::u64("used_bytes", s.gpu_used.0))
                .attr(Attr::u64("requested_bytes", s.gpu_requested.0))
                .attr(Attr::u64("fragmentation_bytes", s.gpu_fragmentation.0))
                .attr(Attr::u64("occupancy_ppm", s.gpu_occupancy_ppm));
        }
        if util_changed {
            self.trace
                .counter(SCHEDULER_PID, SCHED_TID_GAUGES, "utilization", ts.0)
                .attr(Attr::u64("link_ppm", s.link_util_ppm))
                .attr(Attr::u64("sm_ppm", s.sm_util_ppm))
                .attr(Attr::u64("gpu_mem_ppm", s.gpu_mem_util_ppm))
                .attr(Attr::u64("cpu_ppm", s.cpu_util_ppm));
        }
        if flight_changed {
            self.trace
                .counter(SCHEDULER_PID, SCHED_TID_GAUGES, "inflight", ts.0)
                .attr(Attr::u64("running", s.running))
                .attr(Attr::u64("queued", s.queued));
        }
        self.gauge_ctx = vec![
            Attr::u64("gpu_used_bytes", s.gpu_used.0),
            Attr::u64("gpu_occupancy_ppm", s.gpu_occupancy_ppm),
            Attr::u64("gpu_fragmentation_bytes", s.gpu_fragmentation.0),
            Attr::u64("link_util_ppm", s.link_util_ppm),
            Attr::u64("sm_util_ppm", s.sm_util_ppm),
            Attr::u64("running", s.running),
            Attr::u64("queued", s.queued),
        ];
    }

    /// A query completed: emit its queue span, stretched phase chain,
    /// overlap lanes, and `complete` instant, and fold its phases into
    /// the rollup. For every query the rollup contributions sum to
    /// `latency()` within one simulated nanosecond: `queue` covers
    /// `[arrival, start]` and the stretched phases cover exactly
    /// `[start, finish]`.
    pub fn complete(&mut self, c: &CompletedQuery, hw: &HwConfig) {
        let pid = query_pid(c.id);
        let queue_wait = (c.start - c.arrival).0.max(0.0);
        self.trace
            .span(pid, TID_LIFECYCLE, "queue", c.arrival.0, queue_wait);
        self.add_rollup(c.operator, "queue", queue_wait, 0);

        let window = (c.finish - c.start).0.max(0.0);
        let iso: f64 = c.report.phases.iter().map(|p| p.time.0).sum();
        self.trace.name_thread(pid, TID_PHASES, "phases");
        if iso > 0.0 {
            let stretch = window / iso;
            record_report(
                &mut self.trace,
                pid,
                TID_PHASES,
                c.start.0,
                stretch,
                &c.report,
                hw,
            );
            for p in &c.report.phases {
                self.add_rollup(
                    c.operator,
                    &phase_key(&p.name),
                    p.time.0 * stretch,
                    phase_bytes(p),
                );
            }
        } else {
            // Degenerate report (no phases): one opaque span.
            self.trace.span(pid, TID_PHASES, "run", c.start.0, window);
            self.add_rollup(c.operator, "run", window, 0);
        }

        if let Some(lanes) = &c.report.overlap {
            if c.report.total.0 > 0.0 {
                // The overlap pipeline is the tail of the report; scale it
                // with the same factor that maps the report onto the
                // scheduled window so the lanes end exactly at `finish`.
                let scale = window / c.report.total.0;
                let tail = lanes.total().0 * scale;
                self.trace.name_thread(pid, TID_SM_A, "sm-half-a");
                self.trace.name_thread(pid, TID_SM_B, "sm-half-b");
                record_overlap(
                    &mut self.trace,
                    pid,
                    TID_SM_A,
                    TID_SM_B,
                    c.finish.0 - tail,
                    scale,
                    lanes,
                    c.report.placement.as_ref(),
                );
            }
        }

        let mut attrs = vec![
            Attr::str("operator", c.operator),
            Attr::f64("latency_ns", c.latency().0),
            Attr::f64("dedicated_ns", c.dedicated.0),
            Attr::u64("reserved_bytes", c.reserved.0),
            Attr::bool("build_cache_hit", c.build_cache_hit),
            Attr::u64("retries", u64::from(c.fault.retries)),
            Attr::u64("downgrades", u64::from(c.fault.downgrades)),
            Attr::u64("revocations", u64::from(c.fault.revocations)),
        ];
        if let Some(p) = &c.report.placement {
            attrs.push(Attr::str("placement_policy", p.policy.clone()));
            attrs.push(Attr::u64("cache_hit_bytes", p.cache_hit_bytes));
            attrs.push(Attr::u64("cache_spilled_bytes", p.spilled_bytes));
            attrs.push(Attr::u64("pairs_cached", p.pairs_cached()));
        }
        self.lifecycle(c.id, "complete", c.finish, attrs);

        // Registry counters/histograms and SLO settlement. All values
        // cross the float boundary once, through `sim_ns`.
        let t = sim_ns(c.finish.0);
        let latency_ns = sim_ns(c.latency().0);
        self.registry.counter_inc("sched.completed", t);
        self.registry
            .counter_add("sched.tuples", c.report.tuples_actual, t);
        self.registry.observe("sched.latency_ns", latency_ns, t);
        self.registry
            .observe("sched.queue_wait_ns", sim_ns(queue_wait), t);
        for (key, time_ns, bytes) in phase_progress(&c.report) {
            let op = c.operator;
            self.registry
                .counter_inc(&format!("phase.{op}.{key}.count"), t);
            self.registry
                .counter_add(&format!("phase.{op}.{key}.time_ns"), time_ns, t);
            self.registry
                .counter_add(&format!("phase.{op}.{key}.bytes"), bytes, t);
        }
        if let Some((tenant, deadline)) = self.meta.remove(&c.id) {
            self.registry
                .counter_inc(&format!("tenant.{tenant}.completed"), t);
            let account = self.slo_entry(&tenant);
            account.completed += 1;
            account.latency.record(latency_ns);
            if let Some(d) = deadline {
                account.slo_total += 1;
                if c.latency().0 <= d {
                    account.slo_met += 1;
                }
            }
        }
    }

    fn add_rollup(&mut self, operator: &str, phase: &str, time_ns: f64, bytes: u64) {
        let cell = self
            .rollup
            .entry((operator.to_string(), phase.to_string()))
            .or_insert((0, 0.0, 0));
        cell.0 += 1;
        cell.1 += time_ns;
        cell.2 += bytes;
    }

    /// The accumulated phase rollups, sorted by `(operator, phase)`.
    #[must_use]
    pub fn rollups(&self) -> Vec<PhaseRollup> {
        self.rollup
            .iter()
            .map(|((op, phase), &(count, time_ns, bytes))| PhaseRollup {
                operator: op.clone(),
                phase: phase.clone(),
                count,
                time: Ns(time_ns),
                bytes: Bytes(bytes),
            })
            .collect()
    }

    /// Events currently buffered in the flight ring (most recent last).
    #[must_use]
    pub fn flight_snapshot(&self) -> Vec<TraceEvent> {
        self.flight.snapshot()
    }

    /// The run's time-series registry so far.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The per-tenant SLO accounts so far, sorted by tenant label.
    #[must_use]
    pub fn slo_accounts(&self) -> Vec<SloAccount> {
        self.slo.values().cloned().collect()
    }

    /// Finish the run and take the trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Finish the run and take every artifact: the trace, the
    /// time-series registry, and the per-tenant SLO accounts.
    #[must_use]
    pub fn into_parts(self) -> (Trace, MetricsRegistry, Vec<SloAccount>) {
        let slo = self.slo.into_values().collect();
        (self.trace, self.registry, slo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_dumps_the_preceding_lifecycle() {
        let mut obs = Recorder::new(8);
        let q = JoinQuery::new(
            "t",
            triton_datagen::WorkloadSpec::paper_default(2, 256).generate(),
            Ns::ZERO,
        );
        obs.enqueue(QueryId(0), &q, Ns(0.0));
        obs.admit(
            QueryId(0),
            Ns(5.0),
            "triton",
            Bytes(128),
            Bytes(64),
            false,
            0,
        );
        obs.fault("kernel-fault", Ns(9.0), vec![Attr::str("victim", "q0")]);
        let trace = obs.into_trace();
        // The dump replays enqueue + admit + the fault itself onto the
        // scheduler's flight track, after a flight.dump marker.
        let flight: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.pid == SCHEDULER_PID && e.tid == SCHED_TID_FLIGHT)
            .collect();
        assert_eq!(flight.len(), 4, "marker + 3 replayed events");
        assert_eq!(flight[0].name, "flight.dump");
        assert_eq!(flight[1].name, "enqueue");
        assert_eq!(flight[2].name, "admit");
        assert_eq!(flight[3].name, "kernel-fault");
    }

    #[test]
    fn gauge_sampling_is_change_driven_and_stamps_dumps() {
        let mut obs = Recorder::new(8);
        let s = GaugeSample {
            gpu_used: Bytes(4096),
            gpu_occupancy_ppm: 250_000,
            running: 1,
            ..GaugeSample::default()
        };
        obs.sample_gauges(Ns(10.0), &s);
        // Identical snapshot: gauges unchanged, no new counter lanes.
        obs.sample_gauges(Ns(20.0), &s);
        obs.fault("kernel-fault", Ns(30.0), Vec::new());
        let trace = obs.into_trace();
        let lanes: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.pid == SCHEDULER_PID && e.tid == SCHED_TID_GAUGES)
            .collect();
        assert_eq!(lanes.len(), 3, "one counter event per group, once");
        let marker = trace
            .events()
            .iter()
            .find(|e| e.name == "flight.dump")
            .expect("fault dumps the ring");
        assert!(
            marker
                .attrs
                .iter()
                .any(|a| a.key == "gpu_used_bytes"
                    && a.value == triton_trace::AttrValue::U64(4096)),
            "dump marker carries the latest gauge snapshot"
        );
    }

    #[test]
    fn terminal_events_settle_tenant_slo() {
        let mut obs = Recorder::new(8);
        let mut q = JoinQuery::new(
            "dash-0",
            triton_datagen::WorkloadSpec::paper_default(2, 256).generate(),
            Ns::ZERO,
        );
        q.deadline = Some(Ns(100.0));
        obs.enqueue(QueryId(0), &q, Ns(0.0));
        obs.shed(QueryId(0), Ns(5.0), &RejectReason::QueueFull { limit: 1 });
        let accounts = obs.slo_accounts();
        assert_eq!(accounts.len(), 1);
        assert_eq!(accounts[0].tenant, "dash");
        assert_eq!(accounts[0].shed, 1);
        assert_eq!(accounts[0].slo_total, 1, "shed deadline holder violates");
        assert_eq!(accounts[0].slo_met, 0);
        assert_eq!(obs.registry().counter("sched.shed.queue-full"), 1);
        assert_eq!(obs.registry().counter("tenant.dash.enqueued"), 1);
    }

    #[test]
    fn rollups_sorted_and_accumulated() {
        let mut obs = Recorder::new(4);
        obs.add_rollup("triton", "queue", 5.0, 0);
        obs.add_rollup("cpu-radix", "join", 2.0, 7);
        obs.add_rollup("triton", "queue", 3.0, 0);
        let r = obs.rollups();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].operator, "cpu-radix");
        assert_eq!(r[1].phase, "queue");
        assert_eq!(r[1].count, 2);
        assert_eq!(r[1].time, Ns(8.0));
    }
}
