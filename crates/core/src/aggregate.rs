//! Group-by aggregation and duplicate elimination on the GPU-partitioned
//! strategy.
//!
//! Section 2.2 of the paper: "This technique also applies to other
//! hash-based relational operators, such as group-based aggregations and
//! duplicate elimination." This module delivers on that sentence with the
//! same substrate the Triton join uses — a Hierarchical first pass that
//! spills group state over the interconnect into a hybrid cached array,
//! then per-partition scratchpad hash tables — plus the no-partitioning
//! baseline it outperforms once the group state outgrows GPU memory.

use std::collections::BTreeMap;

use triton_datagen::{Relation, TUPLE_BYTES};
use triton_hw::kernel::{pipeline2, KernelCost};
use triton_hw::power::Executor;
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;
use triton_mem::SimAllocator;
use triton_part::{
    compute_histogram, cpu_prefix_sum_cost, make_partitioner, Algorithm, PassConfig, Span,
};

use crate::report::{JoinReport, JoinResult, PhaseReport};
use crate::triton::TritonJoin;

/// The aggregate computed per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupAggregate {
    /// COUNT(*).
    pub count: u64,
    /// SUM(rid) (wrapping, as a verifiable checksum aggregate).
    pub sum: u64,
}

/// Result of an aggregation: per-group state folded into a verifiable
/// digest (group count plus order-independent checksums).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateResult {
    /// Number of distinct groups.
    pub groups: u64,
    /// Wrapping sum over `hash(key) * count` — order-independent.
    pub count_digest: u64,
    /// Wrapping sum over `hash(key) + sum` — order-independent.
    pub sum_digest: u64,
}

impl AggregateResult {
    fn empty() -> Self {
        AggregateResult {
            groups: 0,
            count_digest: 0,
            sum_digest: 0,
        }
    }

    fn fold(&mut self, key: u64, agg: GroupAggregate) {
        let h = triton_datagen::multiply_shift(key);
        self.groups += 1;
        self.count_digest = self.count_digest.wrapping_add(h.wrapping_mul(agg.count));
        self.sum_digest = self.sum_digest.wrapping_add(h.wrapping_add(agg.sum));
    }
}

/// Reference aggregation (ground truth).
pub fn reference_aggregate(rel: &Relation) -> AggregateResult {
    let mut map: BTreeMap<u64, GroupAggregate> = BTreeMap::new();
    for (k, r) in rel.iter() {
        let e = map.entry(k).or_default();
        e.count += 1;
        e.sum = e.sum.wrapping_add(r);
    }
    let mut out = AggregateResult::empty();
    for (k, agg) in map {
        out.fold(k, agg);
    }
    out
}

/// GPU-partitioned group-by aggregation (the Triton strategy applied to
/// aggregation): one Hierarchical pass into a hybrid cached array, then
/// per-partition scratchpad hash aggregation.
///
/// ```
/// use triton_core::{GpuAggregation, reference_aggregate};
/// use triton_datagen::WorkloadSpec;
/// use triton_hw::HwConfig;
/// let hw = HwConfig::ac922().scaled(4096);
/// let rel = WorkloadSpec::paper_default(4, 2048).generate().s;
/// let (agg, _report) = GpuAggregation::default().run(&rel, &hw);
/// assert_eq!(agg, reference_aggregate(&rel));
/// ```
#[derive(Debug, Clone)]
pub struct GpuAggregation {
    /// First-pass partitioning algorithm.
    pub pass1: Algorithm,
    /// Disable the hybrid cache (spill everything).
    pub caching_enabled: bool,
}

impl Default for GpuAggregation {
    fn default() -> Self {
        GpuAggregation {
            pass1: Algorithm::Hierarchical,
            caching_enabled: true,
        }
    }
}

impl GpuAggregation {
    /// Execute over `rel`; `tuples_modeled` only labels the report.
    pub fn run(&self, rel: &Relation, hw: &HwConfig) -> (AggregateResult, JoinReport) {
        self.run_with(rel, hw, false)
    }

    /// Execute as one node of a query plan: when `input_resident`, the
    /// input is a pipelined upstream intermediate already in GPU memory,
    /// so the first pass reads GPU bandwidth instead of the interconnect.
    /// With `input_resident = false` this is exactly [`Self::run`].
    pub fn run_with(
        &self,
        rel: &Relation,
        hw: &HwConfig,
        input_resident: bool,
    ) -> (AggregateResult, JoinReport) {
        let n = rel.len();
        let bytes = n as u64 * TUPLE_BYTES;
        // Group state is bounded by the input: size the fanout like the
        // join's first pass sizes R.
        let b1 = TritonJoin::pass1_bits(bytes, bytes, hw);
        let half_sms = (hw.gpu.num_sms / 2).max(1);

        let mut alloc = SimAllocator::new(hw);
        let reserve = 2 * (bytes >> b1).max(1) + hw.gpu.mem_capacity.0 / 8;
        let cache = if self.caching_enabled {
            hw.gpu.mem_capacity.0.saturating_sub(reserve)
        } else {
            0
        };
        let layout = alloc
            .alloc_hybrid(Bytes(bytes), Bytes(cache))
            // triton-lint: allow(p1) -- sim-allocator exhaustion means a misconfigured scale, not a runtime condition; mirrors TritonJoin::run
            .expect("CPU memory exhausted");
        let span = Span::hybrid(layout);
        let input = if input_resident {
            Span::gpu(1 << 43)
        } else {
            Span::cpu(0)
        };

        let mut phases = Vec::new();

        // PS 1 on the CPU (Section 6.2.8's faster choice).
        let hist = compute_histogram(&rel.keys, 1, b1, 0);
        let ps1 = cpu_prefix_sum_cost(n as u64, hw);
        phases.push(PhaseReport::cpu("PS 1", ps1));

        // Part 1: out-of-core partition of the input by group-key hash.
        let p1 = make_partitioner(self.pass1);
        let cfg = PassConfig::new(b1, 0);
        let (parts, mut c1) = p1.partition(&rel.keys, &rel.rids, &hist, &input, &span, &cfg, hw);
        c1.name = "Part 1".into();
        let part1 = PhaseReport::gpu(c1, hw);
        let part1_time = part1.time;
        phases.push(part1);

        // Per-partition aggregation: read the partition (hybrid), build a
        // scratchpad hash-aggregate table.
        let mut result = AggregateResult::empty();
        let mut agg_all = KernelCost::new("Aggregate");
        let mut stage: Vec<Ns> = Vec::new();
        for p in 0..parts.fanout() {
            let (ks, rs) = parts.partition(p);
            if ks.is_empty() {
                stage.push(Ns::ZERO);
                continue;
            }
            let mut c = KernelCost::new("Aggregate");
            c.sms = half_sms;
            c.tuples_in = ks.len() as u64;
            let off = parts.offsets[p] as u64 * TUPLE_BYTES;
            let slice = span.slice(off);
            let (g, cpu_bytes) = slice.split_range(0, ks.len() as u64 * TUPLE_BYTES);
            c.gpu_mem.read += Bytes(g);
            c.link.seq_read += Bytes(cpu_bytes);
            c.instructions = ks.len() as u64 * 14;

            let mut table: BTreeMap<u64, GroupAggregate> = BTreeMap::new();
            for (&k, &r) in ks.iter().zip(rs) {
                let e = table.entry(k).or_default();
                e.count += 1;
                e.sum = e.sum.wrapping_add(r);
            }
            c.tuples_out = table.len() as u64;
            // Group results stream back to CPU memory.
            c.link.seq_write += Bytes(table.len() as u64 * TUPLE_BYTES);
            for (k, agg) in table {
                result.fold(k, agg);
            }
            stage.push(c.timing(hw).total);
            agg_all.merge(&c);
        }
        let agg_time: Ns = stage.iter().copied().sum();
        phases.push(PhaseReport {
            time: agg_time,
            ..PhaseReport::gpu(agg_all, hw)
        });

        // The aggregate stage overlaps the spill reload the same way the
        // join overlaps its second pass: pipeline against itself. The
        // lanes go into the report so trace rollups reconcile the
        // pipelined window with the isolated phase times, like the join.
        let halves: Vec<Ns> = stage.iter().map(|&t| t / 2.0).collect();
        let total = ps1 + part1_time + pipeline2(&halves, &halves);

        let report = JoinReport {
            name: format!("GPU Aggregation ({})", self.pass1.name()),
            phases,
            total,
            tuples_actual: n as u64,
            tuples_modeled: n as u64,
            result: JoinResult {
                matches: result.groups,
                checksum: result.sum_digest,
            },
            executor: Executor::Gpu,
            overlap: Some(crate::report::OverlapLanes {
                stage_a: halves.clone(),
                stage_b: halves,
                order: Vec::new(),
            }),
            placement: None,
        };
        (result, report)
    }
}

/// No-partitioning GPU aggregation baseline: one global hash table of
/// group state, spilled to a hybrid array when it outgrows GPU memory —
/// with the same random-access pathologies as the no-partitioning join.
pub fn npj_style_aggregate(rel: &Relation, hw: &HwConfig) -> (AggregateResult, JoinReport) {
    use triton_hw::link::LinkModel;
    use triton_hw::tlb::TlbSim;
    use triton_part::ChargeCtx;

    let n = rel.len();
    // Worst-case group state: one slot per input tuple, doubled by a 50%
    // load factor.
    let table_bytes = (n as u64 * TUPLE_BYTES * 2).next_power_of_two();
    let mut alloc = SimAllocator::new(hw);
    let budget = hw.gpu.mem_capacity.0 - hw.gpu.mem_capacity.0 / 8;
    let layout = alloc
        .alloc_hybrid(Bytes(table_bytes), Bytes(budget))
        // triton-lint: allow(p1) -- sim-allocator exhaustion means a misconfigured scale, not a runtime condition
        .expect("CPU memory exhausted");
    let span = Span::hybrid(layout);
    let input = Span::cpu(0);

    let mut cost = KernelCost::new("Aggregate (no partitioning)");
    cost.tuples_in = n as u64;
    let link = LinkModel::new(&hw.link);
    let mut tlb = TlbSim::new(hw);
    let slots = (table_bytes / TUPLE_BYTES) as usize;
    let mask = slots - 1;
    let mut table: Vec<Option<(u64, GroupAggregate)>> = vec![None; slots];
    {
        let mut ctx = ChargeCtx {
            cost: &mut cost,
            link: &link,
            tlb: &mut tlb,
        };
        for (i, (k, r)) in rel.iter().enumerate() {
            ctx.seq_read(&input, i as u64 * TUPLE_BYTES, TUPLE_BYTES);
            let mut s = triton_datagen::table_slot(k, slots.trailing_zeros());
            loop {
                ctx.random_read(&span, s as u64 * TUPLE_BYTES, TUPLE_BYTES);
                match &mut table[s] {
                    Some((key, agg)) if *key == k => {
                        agg.count += 1;
                        agg.sum = agg.sum.wrapping_add(r);
                        ctx.scatter_write(&span, s as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        break;
                    }
                    Some(_) => s = (s + 1) & mask,
                    empty @ None => {
                        *empty = Some((k, GroupAggregate { count: 1, sum: r }));
                        ctx.scatter_write(&span, s as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        break;
                    }
                }
            }
            ctx.cost.instructions += 44;
        }
    }
    let mut result = AggregateResult::empty();
    for e in table.into_iter().flatten() {
        result.fold(e.0, e.1);
    }
    let phase = PhaseReport::gpu(cost, hw);
    let total = phase.time;
    let report = JoinReport {
        name: "GPU Aggregation (No Partitioning)".into(),
        phases: vec![phase],
        total,
        tuples_actual: n as u64,
        tuples_modeled: n as u64,
        result: JoinResult {
            matches: result.groups,
            checksum: result.sum_digest,
        },
        executor: Executor::Gpu,
        overlap: None,
        placement: None,
    };
    (result, report)
}

/// Duplicate elimination (DISTINCT) on the GPU-partitioned strategy:
/// aggregation with the payload ignored. Returns the distinct-key count
/// and the execution report.
pub fn gpu_distinct(rel: &Relation, hw: &HwConfig) -> (u64, JoinReport) {
    let (agg, mut report) = GpuAggregation::default().run(rel, hw);
    report.name = "GPU Distinct (Hierarchical)".into();
    (agg.groups, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;

    fn skewed_input() -> Relation {
        // The probe side of a skewed workload has heavy duplication:
        // a real aggregation input.
        WorkloadSpec::skewed(8, 0.9, 512).generate().s
    }

    #[test]
    fn partitioned_aggregation_matches_reference() {
        let hw = HwConfig::ac922().scaled(2048);
        let rel = skewed_input();
        let expect = reference_aggregate(&rel);
        let (got, report) = GpuAggregation::default().run(&rel, &hw);
        assert_eq!(got, expect);
        assert_eq!(report.result.matches, expect.groups);
        assert!(report.total.0 > 0.0);
    }

    #[test]
    fn npj_aggregation_matches_reference() {
        let hw = HwConfig::ac922().scaled(2048);
        let rel = skewed_input();
        assert_eq!(npj_style_aggregate(&rel, &hw).0, reference_aggregate(&rel));
    }

    #[test]
    fn distinct_counts_unique_keys() {
        let hw = HwConfig::ac922().scaled(2048);
        let rel = skewed_input();
        let mut uniq: Vec<u64> = rel.keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let (n, _) = gpu_distinct(&rel, &hw);
        assert_eq!(n, uniq.len() as u64);
    }

    #[test]
    fn partitioned_wins_out_of_core() {
        // Group state beyond GPU memory: the partitioned strategy avoids
        // the random-access collapse, as for joins.
        let hw = HwConfig::ac922().scaled(512);
        let rel = WorkloadSpec::paper_default(1024, 512).generate().s;
        let (a, rep_part) = GpuAggregation::default().run(&rel, &hw);
        let (b, rep_npj) = npj_style_aggregate(&rel, &hw);
        assert_eq!(a, b);
        assert!(
            rep_part.total.0 < rep_npj.total.0,
            "partitioned {} vs npj {}",
            rep_part.total,
            rep_npj.total
        );
    }

    #[test]
    fn aggregation_all_algorithms_agree() {
        let hw = HwConfig::ac922().scaled(2048);
        let rel = skewed_input();
        let expect = reference_aggregate(&rel);
        for alg in Algorithm::all() {
            let (got, _) = GpuAggregation {
                pass1: alg,
                ..Default::default()
            }
            .run(&rel, &hw);
            assert_eq!(got, expect, "{alg:?}");
        }
    }
}
