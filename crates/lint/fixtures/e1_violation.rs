//! E1 fixture: `_` wildcard arms in matches over invariant-bearing
//! enums. Three hits expected (a guard does not exempt a wildcard).

pub fn wildcard_over_faults(k: &FaultKind) -> f64 {
    match k {
        FaultKind::LinkDegrade { factor } => *factor,
        _ => 1.0,
    }
}

pub fn guarded_wildcards(rev: &GrantRevision, big: bool) -> bool {
    match rev {
        GrantRevision::Shrink(_) => true,
        _ if big => false,
        _ => false,
    }
}
