//! Plan shapes for the TPC-H-style workloads of
//! `triton_datagen::tpch`: the Q3-like and Q9-like
//! select → join → join → aggregate chains.

use triton_datagen::{TpchQuery, TpchWorkload};

use crate::dag::{EmitMap, Plan, PlanNode, Predicate};
use crate::query::PlanQuery;

/// The plan DAG for a TPC-H-shaped query, over inputs in
/// [`TpchQuery::input_names`] order.
///
/// * **Q3**: scan customer/orders/lineitem; select ~1/5 of customers;
///   Bloom-prefilter orders against the surviving custkeys; join
///   customers ⋈ orders re-keying by orderkey; join that against
///   lineitem; aggregate by orderkey. Exercises all five node kinds.
/// * **Q9**: scan part/lineitem/orders; select ~1/16 of parts; join
///   parts ⋈ lineitem re-keying by lineitem's orderkey FK; join with
///   orders as a *base-relation build side* over the intermediate
///   probe; aggregate by orderkey.
pub fn plan_for(query: TpchQuery) -> Plan {
    match query {
        TpchQuery::Q3 => Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 }, // customer
                PlanNode::Scan { input: 1 }, // orders
                PlanNode::Scan { input: 2 }, // lineitem
                PlanNode::Select {
                    child: 0,
                    pred: Predicate::KeyMod {
                        modulus: 5,
                        keep: 2,
                    },
                },
                PlanNode::Bloom { build: 3, probe: 1 },
                PlanNode::Join {
                    build: 3,
                    probe: 4,
                    // Output keyed by orders' orderkey (unique): a valid
                    // build side for the lineitem join.
                    emit: EmitMap::KeyFromProbeRid,
                },
                PlanNode::Join {
                    build: 5,
                    probe: 2,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 6 },
            ],
        },
        TpchQuery::Q9 => Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 }, // part
                PlanNode::Scan { input: 1 }, // lineitem
                PlanNode::Scan { input: 2 }, // orders
                PlanNode::Select {
                    child: 0,
                    pred: Predicate::KeyMod {
                        modulus: 16,
                        keep: 5,
                    },
                },
                PlanNode::Join {
                    build: 3,
                    probe: 1,
                    // Output keyed by lineitem's orderkey FK.
                    emit: EmitMap::KeyFromProbeRid,
                },
                PlanNode::Join {
                    build: 2,
                    probe: 4,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 5 },
            ],
        },
    }
}

/// Package a generated TPC-H workload as a ready-to-serve [`PlanQuery`].
pub fn tpch_query(workload: &TpchWorkload) -> PlanQuery {
    let q = PlanQuery::new(plan_for(workload.spec.query), workload.inputs.clone());
    // triton-lint: allow(p1) -- plan_for shapes are validated by construction (pinned by tests)
    q.expect("tpch plan shapes are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::TpchSpec;

    #[test]
    fn shapes_validate() {
        plan_for(TpchQuery::Q3).validate(3).unwrap();
        plan_for(TpchQuery::Q9).validate(3).unwrap();
    }

    #[test]
    fn q3_uses_all_five_node_kinds() {
        let plan = plan_for(TpchQuery::Q3);
        let kinds: Vec<&str> = plan.nodes.iter().map(|n| n.kind()).collect();
        for k in ["scan", "select", "bloom", "join", "agg"] {
            assert!(kinds.contains(&k), "missing {k}");
        }
    }

    #[test]
    fn packaged_queries_run() {
        let hw = triton_hw::HwConfig::ac922().scaled(2048);
        for spec in [TpchSpec::q3(4, 2048), TpchSpec::q9(4, 2048)] {
            let w = spec.generate();
            let q = tpch_query(&w);
            let run = q.run(&hw).unwrap();
            assert_eq!(
                run.agg,
                crate::oracle::reference_plan(q.plan(), q.inputs()),
                "{:?}",
                spec.query
            );
            assert!(run.agg.groups > 0);
        }
    }
}
