//! A small hand-written Rust lexer — just enough fidelity for the lint
//! rules: identifiers, numeric literals (with tuple-index `.0` kept
//! distinct from float literals), string/char/lifetime disambiguation,
//! and comments collected out-of-band so rules never match inside them.
//!
//! The lexer is deliberately forgiving: on malformed input it produces
//! *some* token stream rather than erroring, because the analyzer must
//! never block a build on code `rustc` itself will reject with a better
//! message.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `spawn`, ...).
    Ident,
    /// Integer literal (`0`, `42u64`, `0xFF`). Tuple indices lex as this.
    Int,
    /// Float literal (`0.0`, `1e9`, `2.5f64`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) — distinct from [`TokKind::Char`].
    Lifetime,
    /// A single punctuation character (`.`, `(`, `=`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokKind,
    /// Source text (single character for [`TokKind::Punct`]).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line, block, or doc) with the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(c) = self.peek() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenize `src`, returning the token stream and the comments
/// separately (so rules can match tokens without comment noise, while
/// the waiver parser still sees every comment).
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                cur.eat_while(|c| c != b'\n');
                comments.push(Comment {
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                comments.push(Comment {
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                lex_raw_or_byte_string(&mut cur, &mut tokens, line);
            }
            b'"' => {
                cur.bump();
                lex_quoted(&mut cur, b'"');
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime is `'` + ident with no closing `'`.
                let is_lifetime = match (cur.peek_at(1), cur.peek_at(2)) {
                    (Some(c1), Some(c2)) => is_ident_start(c1) && c1 != b'\\' && c2 != b'\'',
                    (Some(c1), None) => is_ident_start(c1),
                    _ => false,
                };
                cur.bump();
                if is_lifetime {
                    cur.eat_while(is_ident_continue);
                    tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: String::new(),
                        line,
                    });
                } else {
                    lex_quoted(&mut cur, b'\'');
                    tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = cur.pos;
                let kind = lex_number(&mut cur);
                tokens.push(Token {
                    kind,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = cur.pos;
                cur.eat_while(is_ident_continue);
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                });
            }
            _ => {
                cur.bump();
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
            }
        }
    }
    (tokens, comments)
}

/// Does the cursor sit on `r"`, `r#"`, `b"`, `br"`, `b'`, or `br#"`?
fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    let c0 = cur.peek();
    match c0 {
        Some(b'r') => {
            let mut i = 1;
            while cur.peek_at(i) == Some(b'#') {
                i += 1;
            }
            cur.peek_at(i) == Some(b'"')
        }
        Some(b'b') => match cur.peek_at(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => {
                let mut i = 2;
                while cur.peek_at(i) == Some(b'#') {
                    i += 1;
                }
                cur.peek_at(i) == Some(b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

fn lex_raw_or_byte_string(cur: &mut Cursor<'_>, tokens: &mut Vec<Token>, line: u32) {
    let mut raw = false;
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'r') {
        raw = true;
        cur.bump();
    }
    if raw {
        let mut hashes = 0usize;
        while cur.peek() == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        loop {
            match cur.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek() == Some(b'#') {
                        seen += 1;
                        cur.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
        tokens.push(Token {
            kind: TokKind::Str,
            text: String::new(),
            line,
        });
    } else {
        let quote = cur.bump().unwrap_or(b'"'); // `"` or `'`
        lex_quoted(cur, quote);
        tokens.push(Token {
            kind: if quote == b'\'' {
                TokKind::Char
            } else {
                TokKind::Str
            },
            text: String::new(),
            line,
        });
    }
}

/// Consume a quoted literal body (opening quote already consumed),
/// honoring backslash escapes, through the closing `quote`.
fn lex_quoted(cur: &mut Cursor<'_>, quote: u8) {
    loop {
        match cur.bump() {
            Some(b'\\') => {
                cur.bump();
            }
            Some(c) if c == quote => break,
            Some(_) => {}
            None => break,
        }
    }
}

/// Consume a numeric literal; decide integer vs float.
///
/// `1.0`, `1.`, `1e9`, `1.5e-3`, `2f64` are floats; `0`, `0xFF`,
/// `42_000u64` are integers. A `.` is part of the number only when *not*
/// followed by an identifier or another `.` — so `x.0` and `0..n` keep
/// their `0` an integer (which is what the unit-bypass rule matches on).
fn lex_number(cur: &mut Cursor<'_>) -> TokKind {
    let mut float = false;
    if cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x') | Some(b'X') | Some(b'b') | Some(b'B') | Some(b'o') | Some(b'O')
        )
    {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == b'_');
        return TokKind::Int;
    }
    cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
    if cur.peek() == Some(b'.') {
        let next = cur.peek_at(1);
        let part_of_float = match next {
            Some(c) => c.is_ascii_digit(),
            // Trailing `1.` at end of input is a float.
            None => true,
        };
        let range_or_field = matches!(next, Some(b'.')) || next.is_some_and(is_ident_start);
        if part_of_float && !range_or_field {
            float = true;
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
        }
    }
    if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
        let (sign, digit) = (cur.peek_at(1), cur.peek_at(2));
        let exp = match sign {
            Some(b'+') | Some(b'-') => digit.is_some_and(|d| d.is_ascii_digit()),
            Some(d) => d.is_ascii_digit(),
            None => false,
        };
        if exp {
            float = true;
            cur.bump();
            if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
                cur.bump();
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
        }
    }
    // Type suffix (`u64`, `f64`, ...). `f32`/`f64` forces float.
    if cur.peek() == Some(b'f') && (cur.peek_at(1) == Some(b'3') || cur.peek_at(1) == Some(b'6')) {
        float = true;
    }
    cur.eat_while(is_ident_continue);
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

/// Per-token flag: is this token inside test-only code?
///
/// Marks the body of any item annotated `#[cfg(test)]` / `#[test]`
/// (modules, functions), so rules can exempt test code. `#[cfg(not(test))]`
/// is *not* a test region.
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Punct
            && tokens[i].text == "#"
            && tokens.get(i + 1).is_some_and(|t| t.text == "[")
        {
            // Collect the attribute's tokens to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut idents: Vec<&str> = Vec::new();
            while j < tokens.len() && depth > 0 {
                match (tokens[j].kind, tokens[j].text.as_str()) {
                    (TokKind::Punct, "[" | "(") => depth += 1,
                    (TokKind::Punct, "]" | ")") => depth -= 1,
                    (TokKind::Ident, name) => idents.push(name),
                    _ => {}
                }
                j += 1;
            }
            let first = idents.first().copied().unwrap_or("");
            let is_test_attr = idents.contains(&"test")
                && !idents.contains(&"not")
                && matches!(first, "cfg" | "test" | "cfg_attr");
            if is_test_attr {
                // Skip any further attributes, then mark to the end of
                // the annotated item: its brace-matched body, or the
                // first `;` when it has none.
                let mut k = j;
                while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
                    let mut d = 1u32;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        match tokens[k].text.as_str() {
                            "[" | "(" => d += 1,
                            "]" | ")" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let mut end = k;
                let mut braces = 0u32;
                let mut entered = false;
                while end < tokens.len() {
                    match tokens[end].text.as_str() {
                        "{" => {
                            braces += 1;
                            entered = true;
                        }
                        "}" => braces = braces.saturating_sub(1),
                        ";" if !entered => break,
                        _ => {}
                    }
                    if entered && braces == 0 {
                        break;
                    }
                    end += 1;
                }
                let end = end.min(tokens.len().saturating_sub(1));
                for flag in in_test.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}
