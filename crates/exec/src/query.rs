//! Query descriptors submitted to the serving runtime.

use triton_core::{
    CpuPartitionedJoin, CpuRadixJoin, JoinReport, NoPartitioningJoin, SkewPolicy, TritonJoin,
};
use triton_datagen::{Rng, Workload, WorkloadSpec};
use triton_hw::units::Ns;
use triton_hw::HwConfig;
use triton_mem::OutOfMemory;
use triton_plan::PlanQuery;

/// Identifier assigned to a submitted query, in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The join operator a query runs.
#[derive(Debug, Clone)]
pub enum Operator {
    /// The Triton join (GPU-partitioned hybrid hash join).
    Triton(TritonJoin),
    /// GPU no-partitioning join (one global hash table).
    NoPartitioning(NoPartitioningJoin),
    /// CPU-partitioned GPU join: the CPU radix-partitions, the GPU joins
    /// working sets — needs far less GPU memory than the Triton join
    /// (the degradation ladder's middle rung under memory pressure).
    CpuPartitioned(CpuPartitionedJoin),
    /// CPU radix join — consumes no GPU memory or SMs.
    CpuRadix(CpuRadixJoin),
    /// A multi-operator query plan (`triton-plan`): select/Bloom/join/agg
    /// DAG with GPU-resident pipelining. Admission reserves the plan's
    /// *peak* concurrent operator footprint, not the sum of all
    /// operators.
    Plan(Box<PlanQuery>),
}

impl Operator {
    /// Default Triton configuration.
    pub fn triton() -> Self {
        Operator::Triton(TritonJoin::default())
    }

    /// Triton with the skew-aware policy (hotness-weighted placement,
    /// LPT pipeline scheduling, heavy-hitter splitting) enabled.
    pub fn triton_skew_aware() -> Self {
        Operator::Triton(TritonJoin {
            skew: SkewPolicy::aware(),
            ..TritonJoin::default()
        })
    }

    /// The skew policy this operator runs with, when it is a Triton join
    /// or a plan (plans apply the policy to every join node).
    pub fn skew(&self) -> Option<SkewPolicy> {
        match self {
            Operator::Triton(j) => Some(j.skew),
            Operator::Plan(p) => Some(p.skew),
            _ => None,
        }
    }

    /// Execute the operator functionally, surfacing simulated OOM. Plans
    /// carry their own inputs and ignore `w`.
    pub fn run(&self, w: &Workload, hw: &HwConfig) -> Result<JoinReport, OutOfMemory> {
        match self {
            Operator::Triton(j) => j.try_run(w, hw),
            Operator::NoPartitioning(j) => Ok(j.run(w, hw)),
            Operator::CpuPartitioned(j) => Ok(j.run(w, hw)),
            Operator::CpuRadix(j) => Ok(j.run(w, hw)),
            Operator::Plan(p) => p.run(hw).map(|r| r.report),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Operator::Triton(_) => "triton",
            Operator::NoPartitioning(_) => "npj",
            Operator::CpuPartitioned(_) => "cpu-part",
            Operator::CpuRadix(_) => "cpu-radix",
            Operator::Plan(_) => "plan",
        }
    }

    /// Whether the operator occupies the GPU at all (transient kernel
    /// faults can only hit GPU-resident operators).
    pub fn uses_gpu(&self) -> bool {
        !matches!(self, Operator::CpuRadix(_))
    }
}

/// One join query submitted to the scheduler.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Human-readable tag (tenant, statement id, ...).
    pub name: String,
    /// The workload to join. Queries sharing a build relation should carry
    /// the same `build_key` and byte-identical `w.r` (see
    /// [`JoinQuery::probe_batch`]).
    pub workload: Workload,
    /// Operator choice.
    pub op: Operator,
    /// Scheduling weight: relative share of machine resources while
    /// running, and queue ordering. 1 = normal; must be >= 1.
    pub priority: u32,
    /// Optional latency budget relative to arrival (simulated time). The
    /// scheduler sheds the query rather than starting it once the budget
    /// cannot be met.
    pub deadline: Option<Ns>,
    /// Simulated arrival time.
    pub arrival: Ns,
    /// Cache key identifying the build relation for build-side sharing;
    /// `None` disables sharing for this query.
    pub build_key: Option<u64>,
}

impl JoinQuery {
    /// A plain query: default Triton join, normal priority, no deadline.
    pub fn new(name: impl Into<String>, workload: Workload, arrival: Ns) -> Self {
        JoinQuery {
            name: name.into(),
            workload,
            op: Operator::triton(),
            priority: 1,
            deadline: None,
            arrival,
            build_key: None,
        }
    }

    /// A multi-operator plan query. The scheduler's bookkeeping (shed
    /// accounting, probe-batch sharing) keys off a `Workload`, so a
    /// placeholder is synthesized from the plan's first and last base
    /// relations; execution and admission use the plan itself.
    pub fn plan(name: impl Into<String>, plan: PlanQuery, arrival: Ns) -> Self {
        let r = plan.inputs().first().cloned().unwrap_or_default();
        let s = plan.inputs().last().cloned().unwrap_or_default();
        let spec = WorkloadSpec {
            r_tuples_modeled: r.len() as u64,
            s_tuples_modeled: s.len() as u64,
            scale: 1,
            payload_cols: 0,
            zipf_theta: 0.0,
            match_fraction: 1.0,
            seed: 0,
        };
        JoinQuery {
            name: name.into(),
            workload: Workload { r, s, spec },
            op: Operator::Plan(Box::new(plan)),
            priority: 1,
            deadline: None,
            arrival,
            build_key: None,
        }
    }

    /// Set the skew policy of this query's Triton or plan operator; a
    /// no-op for the other operators.
    #[must_use]
    pub fn with_skew(mut self, policy: SkewPolicy) -> Self {
        match &mut self.op {
            Operator::Triton(j) => j.skew = policy,
            Operator::Plan(p) => p.skew = policy,
            _ => {}
        }
        self
    }

    /// Derive a probe batch against the same build relation: keeps `R`
    /// (and the `build_key` must be set by the caller to enable reuse),
    /// regenerates `S` with `probe_seed` — foreign keys uniform over R's
    /// key range, like the base workload generator.
    pub fn probe_batch(base: &Workload, probe_seed: u64) -> Workload {
        let mut rng = Rng::seed_from_u64(probe_seed);
        let n_r = base.r.len() as u64;
        let n_s = base.s.len();
        let s_keys: Vec<u64> = (0..n_s).map(|_| rng.gen_range_u64(1, n_r)).collect();
        let s_rids: Vec<u64> = (0..n_s).map(|_| rng.next_u64()).collect();
        Workload {
            r: base.r.clone(),
            s: triton_datagen::Relation::from_columns(s_keys, s_rids),
            spec: base.spec.clone(),
        }
    }

    /// Total tuples this query processes (throughput numerator). Plans
    /// count every base relation, not the placeholder workload.
    pub fn tuples(&self) -> u64 {
        match &self.op {
            Operator::Plan(p) => p.input_tuples(),
            _ => self.workload.total_tuples(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn probe_batch_shares_r_and_varies_s() {
        let base = WorkloadSpec::paper_default(2, 2048).generate();
        let a = JoinQuery::probe_batch(&base, 1);
        let b = JoinQuery::probe_batch(&base, 2);
        assert_eq!(a.r.keys, base.r.keys);
        assert_eq!(b.r.keys, base.r.keys);
        assert_ne!(a.s.keys, b.s.keys);
        // All probe keys land in R's key domain (full match fraction).
        let n_r = base.r.len() as u64;
        assert!(a.s.keys.iter().all(|&k| (1..=n_r).contains(&k)));
    }
}
