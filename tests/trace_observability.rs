//! End-to-end observability tests: scheduler runs produce valid Chrome
//! traces, phase rollups reconcile with recorded latencies, and the
//! flight recorder dumps the events leading up to every fault.

use triton_datagen::WorkloadSpec;
use triton_exec::{
    query_pid, to_chrome_json, validate_chrome, FaultPlan, JoinQuery, Scheduler, SchedulerConfig,
    SCHEDULER_PID, SCHED_TID_FLIGHT, TID_LIFECYCLE,
};
use triton_hw::units::Ns;
use triton_hw::{HwConfig, Timeline};
use triton_trace::EventKind;

fn hw() -> HwConfig {
    HwConfig::ac922().scaled(512)
}

fn batch(n: usize) -> Vec<JoinQuery> {
    (0..n)
        .map(|i| {
            let mut spec = WorkloadSpec::paper_default(32, 512);
            spec.seed ^= i as u64;
            JoinQuery::new(format!("t{i}"), spec.generate(), Ns::ZERO)
        })
        .collect()
}

#[test]
fn clean_run_trace_validates_and_covers_every_query() {
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(batch(3));
    let json = to_chrome_json(&res.trace);
    let events = validate_chrome(&json).expect("chrome trace must validate");
    assert!(events >= res.trace.len(), "metadata rows add to the count");
    // Every completed query has enqueue/admit/complete on its lifecycle
    // track.
    for c in res.completed() {
        let pid = query_pid(c.id);
        let names: Vec<&str> = res
            .trace
            .events()
            .iter()
            .filter(|e| e.pid == pid && e.tid == TID_LIFECYCLE)
            .map(|e| e.name.as_str())
            .collect();
        assert!(names.contains(&"enqueue"), "{names:?}");
        assert!(names.contains(&"admit"), "{names:?}");
        assert!(names.contains(&"complete"), "{names:?}");
    }
    // No fault dumps on a clean run.
    assert!(!json.contains("flight.dump"));
}

#[test]
fn per_query_spans_sum_to_latency() {
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(batch(4));
    assert_eq!(res.metrics.completed, 4);
    for c in res.completed() {
        let pid = query_pid(c.id);
        // Sum the queue span plus the stretched phase chain.
        let spanned: f64 = res
            .trace
            .events()
            .iter()
            .filter(|e| {
                e.pid == pid && (e.name == "queue" || e.tid == triton_exec::observe::TID_PHASES)
            })
            .filter_map(|e| match e.kind {
                EventKind::Span { dur_ns } => Some(dur_ns),
                EventKind::Instant | EventKind::Counter => None,
            })
            .sum();
        let latency = c.latency().0;
        assert!(
            (spanned - latency).abs() <= 1.0,
            "{}: spans {spanned} vs latency {latency}",
            c.name
        );
    }
}

#[test]
fn rollups_reconcile_with_total_latency() {
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(batch(4));
    let rolled: f64 = res.metrics.phases.iter().map(|p| p.time.0).sum();
    let latency_total: f64 = res.completed().map(|c| c.latency().0).sum();
    let tolerance = res.metrics.completed as f64; // one simulated ns per query
    assert!(
        (rolled - latency_total).abs() <= tolerance,
        "rollups {rolled} vs latencies {latency_total}"
    );
    // The rollups made it into the JSON encoding.
    let json = res.metrics.to_json();
    assert!(json.contains("\"phases\":[{\"op\":"), "{json}");
    assert!(json.contains("\"phase\":\"queue\""), "{json}");
    // Deterministic order: sorted by (operator, phase).
    let mut keys: Vec<(String, String)> = res
        .metrics
        .phases
        .iter()
        .map(|p| (p.operator.clone(), p.phase.clone()))
        .collect();
    let sorted = {
        let mut s = keys.clone();
        s.sort();
        s
    };
    assert_eq!(keys, sorted);
    keys.dedup();
    assert_eq!(keys.len(), res.metrics.phases.len(), "no duplicate keys");
}

#[test]
fn fault_dump_replays_the_events_preceding_the_fault() {
    let clean = Scheduler::new(hw(), SchedulerConfig::default()).run(batch(2));
    let mid = clean.metrics.makespan.0 * 0.5;
    let plan = FaultPlan::with_seed(11).kernel_fault(Ns(mid));
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(batch(2), &plan);
    assert_eq!(res.metrics.faults_injected, 1);

    let flight: Vec<_> = res
        .trace
        .events()
        .iter()
        .filter(|e| e.pid == SCHEDULER_PID && e.tid == SCHED_TID_FLIGHT)
        .collect();
    let marker = flight
        .iter()
        .position(|e| e.name == "flight.dump")
        .expect("a kernel fault must dump the flight ring");
    let replayed: Vec<&str> = flight[marker + 1..]
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    // The ring replay carries the admissions that preceded the strike
    // and ends with the fault itself.
    assert!(replayed.contains(&"enqueue"), "{replayed:?}");
    assert!(replayed.contains(&"admit"), "{replayed:?}");
    assert!(replayed.contains(&"kernel-fault"), "{replayed:?}");
    // The victim's retry is traced on its lifecycle track.
    assert!(res
        .trace
        .events()
        .iter()
        .any(|e| e.tid == TID_LIFECYCLE && e.name == "retry"));
    // And the whole faulted trace still validates as Chrome JSON.
    validate_chrome(&to_chrome_json(&res.trace)).expect("faulted trace must validate");
}

#[test]
fn second_fault_dump_contains_the_first_retry() {
    let clean = Scheduler::new(hw(), SchedulerConfig::default()).run(batch(2));
    let span = clean.metrics.makespan.0;
    let plan = FaultPlan::with_seed(7)
        .kernel_fault(Ns(span * 0.4))
        .kernel_fault(Ns(span * 0.9));
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(batch(2), &plan);
    if res.metrics.faults_injected < 2 {
        // The second strike found an idle GPU and fizzled; nothing to
        // assert beyond the first dump existing.
        assert!(to_chrome_json(&res.trace).contains("flight.dump"));
        return;
    }
    // Events replayed by the LAST dump (highest dump_seq) include the
    // retry recorded after the first fault.
    let flight: Vec<_> = res
        .trace
        .events()
        .iter()
        .filter(|e| e.pid == SCHEDULER_PID && e.tid == SCHED_TID_FLIGHT)
        .collect();
    let last_marker = flight
        .iter()
        .rposition(|e| e.name == "flight.dump")
        .expect("dumps must exist");
    let replayed: Vec<&str> = flight[last_marker + 1..]
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    assert!(
        replayed.contains(&"retry"),
        "second dump must replay the first fault's retry: {replayed:?}"
    );
}

#[test]
fn timeline_renders_real_scheduler_runs() {
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(batch(2));
    let pids: Vec<u64> = res.completed().map(|c| query_pid(c.id)).collect();
    let timeline = Timeline::from_trace(&res.trace, &pids);
    let art = timeline.render(72);
    assert!(art.lines().count() >= 3, "{art}");
    // Lanes are labeled with the query names given at submission.
    assert!(art.contains("t0"), "{art}");
    assert!(art.contains("phases"), "{art}");
}
