// Fixture: placement-plan bookkeeping (the skew-aware planner's
// GPU-resident page ranges in crates/mem) must stay deterministic and
// unit-honest — hash-ordered plan ranges trip D1, raw page/byte
// arithmetic re-wrapped in `Bytes` trips U1.
use std::collections::HashMap;

use triton_hw::units::Bytes;

pub fn resident_pages(ranges: &HashMap<u64, (u64, u64)>) -> u64 {
    ranges.values().map(|&(s, e)| e - s).sum()
}

pub fn resident_bytes(pages: u64, page_size: Bytes) -> Bytes {
    Bytes(pages * page_size.0)
}

pub fn gpu_fraction(gpu: Bytes, total: Bytes) -> f64 {
    gpu.0 as f64 / total.as_f64()
}
