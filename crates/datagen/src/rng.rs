//! In-tree pseudo-random number generation (no external dependencies).
//!
//! The workspace must build with zero network access, so instead of the
//! `rand` crate the generators use SplitMix64 for seeding and
//! xoshiro256** for the stream — the same algorithms `rand`'s `SmallRng`
//! family builds on (Blackman & Vigna, "Scrambled linear pseudorandom
//! number generators"). Deterministic for a given seed, which every
//! workload spec relies on for reproducibility.

/// SplitMix64 step: used to expand a 64-bit seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator: fast, full 256-bit state, passes BigCrush.
///
/// ```
/// use triton_datagen::Rng;
/// let mut rng = Rng::seed_from_u64(7);
/// let v = rng.gen_range_u64(1, 100);
/// assert!((1..=100).contains(&v));
/// assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed deterministically from a single 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`, via Lemire's
    /// nearly-divisionless bounded sampling (unbiased).
    #[inline]
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let bound = span + 1;
        // Rejection sampling over the biased tail of the 128-bit product.
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.gen_range_u64(0, n as u64 - 1) as usize
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..32)
            .map({
                let mut r = Rng::seed_from_u64(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..32)
            .map({
                let mut r = Rng::seed_from_u64(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let c = Rng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn range_is_inclusive_and_unbiased_enough() {
        let mut r = Rng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            let v = r.gen_range_u64(5, 14);
            assert!((5..=14).contains(&v));
            counts[(v - 5) as usize] += 1;
        }
        for c in counts {
            let dev = (c as f64 - n as f64 / 10.0).abs() / (n as f64 / 10.0);
            assert!(dev < 0.05, "uniform deviation {dev}");
        }
    }

    #[test]
    fn float_in_unit_interval() {
        let mut r = Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..1000).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u64>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
