// Fixture: non-panicking alternatives, and unwrap confined to test
// code, are fine. `should_panic` and `unwrap_or` must not match.
pub fn safe(v: &[u64]) -> u64 {
    let first = v.first().copied().unwrap_or(0);
    let second = v.get(1).copied().unwrap_or_else(|| 0);
    first + second
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn test_code_may_panic() {
        let v: Vec<u64> = vec![];
        let _ = v[0];
    }

    #[test]
    fn test_code_may_unwrap() {
        assert_eq!([7u64].first().copied().unwrap(), safe(&[7]));
    }
}
