//! Report assembly: the per-file analyses roll up into one
//! [`WorkspaceReport`] with text and JSON renderings. The JSON mode
//! follows the workspace's bench conventions (`triton_bench::json`):
//! JSON Lines, one object per row, stable key order.

use triton_bench::json::JsonObject;

use crate::rules::{FileAnalysis, Finding, Rule, ALL_RULES};

/// One file's findings, tagged with its workspace-relative path.
#[derive(Debug)]
pub struct FileReport {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The analysis for this file.
    pub analysis: FileAnalysis,
}

/// The whole run's results.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Per-file reports, in path order.
    pub files: Vec<FileReport>,
    /// Total files scanned (including clean ones).
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// Findings that no waiver covers, as `(path, finding)` pairs.
    pub fn unwaived(&self) -> impl Iterator<Item = (&str, &Finding)> {
        self.files.iter().flat_map(|f| {
            f.analysis
                .findings
                .iter()
                .filter(|v| v.waived.is_none())
                .map(move |v| (f.path.as_str(), v))
        })
    }

    /// Findings a waiver covers, as `(path, finding)` pairs.
    pub fn waived(&self) -> impl Iterator<Item = (&str, &Finding)> {
        self.files.iter().flat_map(|f| {
            f.analysis
                .findings
                .iter()
                .filter(|v| v.waived.is_some())
                .map(move |v| (f.path.as_str(), v))
        })
    }

    /// `(path, line)` of every pragma missing its mandatory reason.
    pub fn malformed_waivers(&self) -> impl Iterator<Item = (&str, u32)> {
        self.files.iter().flat_map(|f| {
            f.analysis
                .malformed_waivers
                .iter()
                .map(move |&l| (f.path.as_str(), l))
        })
    }

    /// Does the run fail (any unwaived finding, or any reasonless
    /// pragma)?
    pub fn failed(&self) -> bool {
        self.unwaived().next().is_some() || self.malformed_waivers().next().is_some()
    }

    /// Count of findings for `rule`, waived or not.
    pub fn count_for(&self, rule: Rule) -> usize {
        self.files
            .iter()
            .flat_map(|f| f.analysis.findings.iter())
            .filter(|v| v.rule == rule)
            .count()
    }

    /// Human-readable report: violations, then the waiver inventory
    /// (waiver creep must stay visible), then a per-rule summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (path, v) in self.unwaived() {
            out.push_str(&format!(
                "{path}:{line}: {rule} — {msg}\n",
                line = v.line,
                rule = v.rule.code().to_ascii_uppercase(),
                msg = v.message
            ));
        }
        for (path, line) in self.malformed_waivers() {
            out.push_str(&format!(
                "{path}:{line}: WAIVER — pragma without a `-- reason` clause; \
                 every waiver must say why\n"
            ));
        }
        let waived: Vec<(&str, &Finding)> = self.waived().collect();
        if !waived.is_empty() {
            out.push_str(&format!("\nwaivers in effect ({}):\n", waived.len()));
            for (path, v) in &waived {
                let reason = v.waived.as_deref().unwrap_or("");
                out.push_str(&format!(
                    "  {path}:{line}: {rule} — {reason}\n",
                    line = v.line,
                    rule = v.rule.code().to_ascii_uppercase(),
                ));
            }
        }
        let unwaived = self.unwaived().count();
        let malformed = self.malformed_waivers().count();
        out.push_str(&format!(
            "\n{files} files scanned; {unwaived} violations, {} waived",
            waived.len(),
            files = self.files_scanned,
        ));
        if malformed > 0 {
            out.push_str(&format!(", {malformed} reasonless waivers"));
        }
        out.push('\n');
        for rule in ALL_RULES {
            let n = self.count_for(rule);
            if n > 0 {
                out.push_str(&format!(
                    "  {}: {} ({})\n",
                    rule.code().to_ascii_uppercase(),
                    n,
                    rule.describe()
                ));
            }
        }
        out
    }

    /// JSON Lines report: one `finding` row per hit (waived included),
    /// one `waiver` row per pragma, and a final `summary` row.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for f in &self.files {
            for v in &f.analysis.findings {
                let mut row = JsonObject::new()
                    .str("kind", "finding")
                    .str("file", &f.path)
                    .int("line", u64::from(v.line))
                    .str("rule", v.rule.code())
                    .str("message", &v.message)
                    .bool("waived", v.waived.is_some());
                if let Some(reason) = &v.waived {
                    row = row.str("reason", reason);
                }
                out.push_str(&row.render());
                out.push('\n');
            }
            for w in &f.analysis.waivers {
                out.push_str(
                    &JsonObject::new()
                        .str("kind", "waiver")
                        .str("file", &f.path)
                        .int("line", u64::from(w.line))
                        .str("rules", &w.rules.join(","))
                        .str("reason", &w.reason)
                        .render(),
                );
                out.push('\n');
            }
            for &l in &f.analysis.malformed_waivers {
                out.push_str(
                    &JsonObject::new()
                        .str("kind", "malformed_waiver")
                        .str("file", &f.path)
                        .int("line", u64::from(l))
                        .render(),
                );
                out.push('\n');
            }
        }
        let mut summary = JsonObject::new()
            .str("kind", "summary")
            .int("files_scanned", self.files_scanned as u64)
            .int("violations", self.unwaived().count() as u64)
            .int("waived", self.waived().count() as u64)
            .int("malformed_waivers", self.malformed_waivers().count() as u64)
            .bool("failed", self.failed());
        for rule in ALL_RULES {
            summary = summary.int(rule.code(), self.count_for(rule) as u64);
        }
        out.push_str(&summary.render());
        out.push('\n');
        out
    }
}
