//! Fixed-boundary log2-bucket streaming histogram.
//!
//! The bucket layout is an HDR-style two-level scheme computed with
//! integer arithmetic only — no floats touch the bucket math, so two
//! replays of the same value stream produce byte-identical state on any
//! host:
//!
//! * values `0..16` land in sixteen exact single-value buckets;
//! * every larger value lands in one of 16 linear sub-buckets of its
//!   power-of-two major bucket: bucket boundaries are
//!   `(16 + sub) << (major - 1)` for `major >= 1`, `sub` in `0..16`.
//!
//! The relative bucket width is therefore at most 1/16 (6.25 %) of the
//! value, the index space is a fixed 976 slots, and storage is a sparse
//! map of the buckets actually hit — bounded regardless of how many
//! samples stream through, which is what lets the scheduler keep one
//! histogram per window without ever holding a latency vector.

use std::collections::BTreeMap;

/// log2 of the sub-bucket count per major bucket.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two major bucket.
const SUB: u64 = 1 << SUB_BITS;
/// One past the largest reachable bucket index (`msb = 63`).
const NUM_BUCKETS: u64 = (64 - SUB_BITS as u64) * SUB + SUB;

/// Streaming histogram over `u64` values (simulated nanoseconds, bytes,
/// counts — any non-negative integer series).
///
/// Bounded memory: at most [`Log2Histogram::num_buckets`] sparse slots
/// plus five scalars, however many values are recorded. Byte-identical
/// across replays: all state transitions are integer arithmetic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Log2Histogram {
    /// Sparse bucket index → sample count.
    buckets: BTreeMap<u16, u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact sum of recorded values (saturating).
    sum: u64,
    /// Smallest recorded value (exact, not bucketed).
    min: u64,
    /// Largest recorded value (exact, not bucketed).
    max: u64,
}

/// Bucket index for a value. Integer-only.
fn index_of(v: u64) -> u16 {
    if v < SUB {
        return v as u16;
    }
    let msb = 63 - v.leading_zeros();
    let major = (msb - SUB_BITS + 1) as u64;
    let sub = (v >> (msb - SUB_BITS)) & (SUB - 1);
    (major * SUB + sub) as u16
}

/// Inclusive lower boundary of a bucket index. Integer-only.
fn lower_of(idx: u16) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let major = idx / SUB;
    let sub = idx % SUB;
    (SUB + sub) << (major - 1)
}

/// Width of a bucket index (its value range covers `[lower, lower + width)`).
fn width_of(idx: u16) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        1
    } else {
        1 << (idx / SUB - 1)
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// The fixed size of the bucket index space (memory upper bound).
    pub fn num_buckets() -> u64 {
        NUM_BUCKETS
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let slot = self.buckets.entry(index_of(v)).or_insert(0);
        *slot = slot.saturating_add(1);
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
    }

    /// Fold another histogram into this one. Merging the per-window
    /// histograms of a run reproduces the run-total histogram exactly
    /// (equality, not approximation) — the reconciliation invariant.
    pub fn merge(&mut self, other: &Log2Histogram) {
        if other.count == 0 {
            return;
        }
        for (&idx, &n) in &other.buckets {
            let slot = self.buckets.entry(idx).or_insert(0);
            *slot = slot.saturating_add(n);
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact (saturating) sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Nearest-rank percentile (`p` in 0..=100), resolved to the lower
    /// boundary of the bucket holding that rank, clamped to the exact
    /// recorded `[min, max]`. The error versus the exact nearest-rank
    /// sample is therefore below one bucket width (≤ 1/16 relative).
    pub fn value_at_percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.min(100);
        let rank = (p * self.count).div_ceil(100).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return lower_of(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Width of the bucket the value `v` falls in — the agreement bound
    /// between [`Log2Histogram::value_at_percentile`] and the exact
    /// nearest-rank percentile of the raw samples.
    pub fn bucket_width_for(v: u64) -> u64 {
        width_of(index_of(v))
    }

    /// Non-empty buckets as `(lower_bound, count)` in ascending order —
    /// the exposition encoding.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&idx, &n)| (lower_of(idx), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Log2Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for p in [0, 1, 50, 100] {
            let v = h.value_at_percentile(p);
            assert!(v < 16, "p{p} -> {v}");
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_boundaries_are_log2_with_16_subbuckets() {
        // Boundary values map to sub-bucket lower bounds exactly.
        for (v, lower) in [
            (16u64, 16u64),
            (17, 17),
            (31, 31),
            (32, 32),
            (33, 32),
            (48, 48),
            (1 << 20, 1 << 20),
            ((1 << 20) + 1, 1 << 20),
            (u64::MAX, (2 * SUB - 1) << 59),
        ] {
            let idx = index_of(v);
            assert_eq!(lower_of(idx), lower, "v={v}");
            assert!(lower_of(idx) <= v, "v={v}");
            assert!(v - lower_of(idx) < width_of(idx), "v={v}");
        }
    }

    #[test]
    fn relative_error_is_bounded_by_one_subbucket() {
        for shift in 4..63u32 {
            let v = (1u64 << shift) + (1u64 << shift.saturating_sub(1)) / 3;
            let idx = index_of(v);
            let w = width_of(idx);
            assert!(w * SUB <= v.next_power_of_two().max(SUB), "v={v} w={w}");
        }
    }

    #[test]
    fn merge_reproduces_the_union_exactly() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut whole = Log2Histogram::new();
        for i in 0..1000u64 {
            let v = i * i % 7919 + i;
            whole.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn percentile_within_one_bucket_of_exact_nearest_rank() {
        let mut h = Log2Histogram::new();
        let mut raw: Vec<u64> = (0..500u64).map(|i| (i * 2654435761) % 1_000_000).collect();
        for &v in &raw {
            h.record(v);
        }
        raw.sort_unstable();
        for p in [50u64, 90, 99] {
            let rank = (p * raw.len() as u64)
                .div_ceil(100)
                .clamp(1, raw.len() as u64);
            let exact = raw[(rank - 1) as usize];
            let approx = h.value_at_percentile(p);
            let width = Log2Histogram::bucket_width_for(exact);
            assert!(
                approx <= exact && exact - approx < width,
                "p{p}: approx {approx} exact {exact} width {width}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_percentile(99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn index_space_is_bounded() {
        assert!(u64::from(index_of(u64::MAX)) < NUM_BUCKETS);
        assert_eq!(NUM_BUCKETS, 976);
    }
}
