//! Hash tables used by the joins (Section 6.1 of the paper).
//!
//! * [`BucketChainTable`] — the bucket-chaining scheme of the radix joins:
//!   a fixed 2048-entry bucket array plus a chain of tuple indices, built
//!   per partition in scratchpad memory.
//! * [`LinearProbeTable`] — open addressing at a 50% load factor, used by
//!   the no-partitioning join.
//! * [`PerfectArrayTable`] — the "perfect hashing" array join: primary
//!   keys are dense, so key `k` lives at slot `k - 1`.
//!
//! All tables are functional; the joins charge their *accesses* against
//! the hardware model, using the per-operation access counts these tables
//! report.

use triton_datagen::{multiply_shift, table_slot};

/// Hashing scheme selector (the paper's three variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashScheme {
    /// Bucket chaining with 2048 buckets (radix joins).
    BucketChaining,
    /// Linear probing at 50% load factor (no-partitioning join).
    LinearProbing,
    /// Perfect/array hashing over dense primary keys.
    Perfect,
}

impl HashScheme {
    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            HashScheme::BucketChaining => "Bucket Chaining",
            HashScheme::LinearProbing => "Linear Probing",
            HashScheme::Perfect => "Perfect",
        }
    }
}

/// Number of buckets in the scratchpad bucket-chaining table
/// (Section 6.1: "a bucket-chaining hash table with 2048 entries").
pub const BUCKET_CHAIN_ENTRIES: usize = 2048;

/// Bucket-chaining hash table over `(key, rid)` pairs.
///
/// `buckets[h]` holds the index of the first tuple in bucket `h`;
/// `next[i]` chains to the following tuple. Indices are offset by one so
/// that 0 means "empty".
#[derive(Debug, Clone)]
pub struct BucketChainTable {
    buckets: Vec<u32>,
    next: Vec<u32>,
    keys: Vec<u64>,
    rids: Vec<u64>,
    mask: u64,
    skip_bits: u32,
}

impl BucketChainTable {
    /// Build from a build-side partition. `O(n)`.
    ///
    /// `skip_bits` must be the number of low hash bits the radix
    /// partitioning already consumed: every tuple of a partition shares
    /// those bits, so the bucket index uses the bits *above* them —
    /// otherwise all tuples would collapse into a handful of buckets.
    pub fn build(keys: &[u64], rids: &[u64], entries: usize, skip_bits: u32) -> Self {
        assert!(entries.is_power_of_two());
        assert!(skip_bits < 64);
        let mut t = BucketChainTable {
            buckets: vec![0; entries],
            next: vec![0; keys.len()],
            keys: keys.to_vec(),
            rids: rids.to_vec(),
            mask: entries as u64 - 1,
            skip_bits,
        };
        for (i, &k) in keys.iter().enumerate() {
            let h = ((multiply_shift(k) >> t.skip_bits) & t.mask) as usize;
            t.next[i] = t.buckets[h];
            t.buckets[h] = i as u32 + 1;
        }
        t
    }

    /// Probe for `key`; returns the rid of the first match plus the number
    /// of chain links traversed (the access count for cost models).
    pub fn probe(&self, key: u64) -> (Option<u64>, u32) {
        let h = ((multiply_shift(key) >> self.skip_bits) & self.mask) as usize;
        let mut cur = self.buckets[h];
        let mut steps = 1; // bucket head access
        while cur != 0 {
            let i = (cur - 1) as usize;
            steps += 1;
            if self.keys[i] == key {
                return (Some(self.rids[i]), steps);
            }
            cur = self.next[i];
        }
        (None, steps)
    }

    /// Iterate all matches for `key` (non-unique build keys).
    pub fn probe_all<'a>(&'a self, key: u64) -> impl Iterator<Item = u64> + 'a {
        let h = ((multiply_shift(key) >> self.skip_bits) & self.mask) as usize;
        let mut cur = self.buckets[h];
        std::iter::from_fn(move || {
            while cur != 0 {
                let i = (cur - 1) as usize;
                cur = self.next[i];
                if self.keys[i] == key {
                    return Some(self.rids[i]);
                }
            }
            None
        })
    }

    /// Bytes this table occupies (buckets + chain + tuple columns).
    pub fn bytes(&self) -> u64 {
        (self.buckets.len() * 4 + self.next.len() * 4 + self.keys.len() * 16) as u64
    }
}

/// Linear-probing hash table at a configurable load factor.
#[derive(Debug, Clone)]
pub struct LinearProbeTable {
    slots: Vec<(u64, u64)>, // (key+1, rid); key 0 encodes empty
    bits: u32,
    mask: usize,
}

impl LinearProbeTable {
    /// Capacity (slots, a power of two) needed for `n` tuples at
    /// `load_factor`.
    pub fn capacity_for(n: usize, load_factor: f64) -> usize {
        let min = ((n as f64 / load_factor).ceil() as usize).max(2);
        min.next_power_of_two()
    }

    /// Build from the build relation. Returns the table and the total
    /// number of slot accesses performed while inserting.
    pub fn build(keys: &[u64], rids: &[u64], load_factor: f64) -> (Self, u64) {
        let cap = Self::capacity_for(keys.len(), load_factor);
        let bits = cap.trailing_zeros();
        let mut t = LinearProbeTable {
            slots: vec![(0, 0); cap],
            bits,
            mask: cap - 1,
        };
        let mut accesses = 0u64;
        for (&k, &r) in keys.iter().zip(rids) {
            let mut s = table_slot(k, t.bits);
            loop {
                accesses += 1;
                if t.slots[s].0 == 0 {
                    t.slots[s] = (k + 1, r);
                    break;
                }
                s = (s + 1) & t.mask;
            }
        }
        (t, accesses)
    }

    /// Probe for `key`: `(rid if found, slot accesses, slot index probed
    /// first)`.
    pub fn probe(&self, key: u64) -> (Option<u64>, u32, usize) {
        let first = table_slot(key, self.bits);
        let mut s = first;
        let mut accesses = 0;
        loop {
            accesses += 1;
            let (k1, r) = self.slots[s];
            if k1 == key + 1 {
                return (Some(r), accesses, first);
            }
            if k1 == 0 {
                return (None, accesses, first);
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Slot index of the first probe for `key` (for address modelling).
    pub fn first_slot(&self, key: u64) -> usize {
        table_slot(key, self.bits)
    }

    /// Table size in bytes (16-byte slots).
    pub fn bytes(&self) -> u64 {
        self.slots.len() as u64 * 16
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Perfect/array hash table: dense primary keys `1..=n` map to slot
/// `key - 1`.
#[derive(Debug, Clone)]
pub struct PerfectArrayTable {
    rids: Vec<u64>,
    present: Vec<bool>,
}

impl PerfectArrayTable {
    /// Build from the build relation (keys must lie in `1..=n_max`).
    pub fn build(keys: &[u64], rids: &[u64], n_max: usize) -> Self {
        let mut t = PerfectArrayTable {
            rids: vec![0; n_max],
            present: vec![false; n_max],
        };
        for (&k, &r) in keys.iter().zip(rids) {
            let i = (k - 1) as usize;
            t.rids[i] = r;
            t.present[i] = true;
        }
        t
    }

    /// Probe for `key`: exactly one access.
    pub fn probe(&self, key: u64) -> Option<u64> {
        let i = (key - 1) as usize;
        if i < self.rids.len() && self.present[i] {
            Some(self.rids[i])
        } else {
            None
        }
    }

    /// Slot index of `key`.
    pub fn slot(&self, key: u64) -> usize {
        (key - 1) as usize
    }

    /// Table size in bytes (16 bytes per dense slot).
    pub fn bytes(&self) -> u64 {
        self.rids.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_chain_finds_all_keys() {
        let keys: Vec<u64> = (1..=500).collect();
        let rids: Vec<u64> = keys.iter().map(|k| k * 10).collect();
        let t = BucketChainTable::build(&keys, &rids, 256, 0);
        for &k in &keys {
            let (r, steps) = t.probe(k);
            assert_eq!(r, Some(k * 10));
            assert!(steps >= 2);
        }
        assert_eq!(t.probe(9999).0, None);
    }

    #[test]
    fn bucket_chain_probe_all_duplicates() {
        let keys = vec![7, 7, 7, 8];
        let rids = vec![1, 2, 3, 4];
        let t = BucketChainTable::build(&keys, &rids, 8, 0);
        let mut all: Vec<u64> = t.probe_all(7).collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
        assert_eq!(t.probe_all(9).count(), 0);
    }

    #[test]
    fn linear_probe_roundtrip_and_load_factor() {
        let keys: Vec<u64> = (1..=1000).collect();
        let rids: Vec<u64> = keys.iter().map(|k| k + 5).collect();
        let (t, build_acc) = LinearProbeTable::build(&keys, &rids, 0.5);
        assert!(t.capacity() >= 2000);
        assert!(t.capacity().is_power_of_two());
        // At 50% load, average probe length should be short.
        assert!(build_acc < 2500, "build accesses {build_acc}");
        let mut probe_acc = 0u64;
        for &k in &keys {
            let (r, acc, _) = t.probe(k);
            assert_eq!(r, Some(k + 5));
            probe_acc += acc as u64;
        }
        let avg = probe_acc as f64 / keys.len() as f64;
        assert!(avg < 2.5, "avg probe length {avg}");
        assert_eq!(t.probe(123456).0, None);
    }

    #[test]
    fn linear_probe_capacity_rounds_to_power_of_two() {
        assert_eq!(LinearProbeTable::capacity_for(1000, 0.5), 2048);
        assert_eq!(LinearProbeTable::capacity_for(1024, 0.5), 2048);
        assert_eq!(LinearProbeTable::capacity_for(1025, 0.5), 4096);
    }

    #[test]
    fn perfect_table_is_exact() {
        let keys: Vec<u64> = vec![3, 1, 4, 2];
        let rids: Vec<u64> = vec![30, 10, 40, 20];
        let t = PerfectArrayTable::build(&keys, &rids, 6);
        assert_eq!(t.probe(1), Some(10));
        assert_eq!(t.probe(4), Some(40));
        assert_eq!(t.probe(5), None);
        assert_eq!(t.probe(6), None);
        assert_eq!(t.bytes(), 96);
    }

    #[test]
    fn table_sizes_match_paper_ratio() {
        // Section 6.2.2: at 2048 M tuples linear probing needs 64 GiB vs
        // 30.5 GiB for perfect hashing (2x from the load factor, rounded
        // up to a power of two).
        let n = 1 << 20;
        let keys: Vec<u64> = (1..=n as u64).collect();
        let rids = keys.clone();
        let (lp, _) = LinearProbeTable::build(&keys, &rids, 0.5);
        let pf = PerfectArrayTable::build(&keys, &rids, n);
        assert_eq!(lp.bytes(), 2 * pf.bytes());
    }
}
