//! L1/L2 fixture: admission grants and allocator handles dropped on the
//! floor. Two L1 and two L2 hits expected.

pub fn drops_grant_result(ac: &mut AdmissionController, q: &JoinQuery, hw: &HwConfig) {
    ac.try_admit(QueryId(7), q, hw);
}

pub fn dead_grant_binding(ac: &mut AdmissionController, q: &JoinQuery, hw: &HwConfig) -> bool {
    let grant = ac.try_admit_shrunk(QueryId(8), q, hw, 2);
    true
}

pub fn discards_alloc_handle(alloc: &mut SimAllocator, len: Bytes) {
    let _ = alloc.alloc(MemSide::Gpu, len);
}

pub fn dead_resize_binding(allocator: &mut SimAllocator, a: Allocation, len: Bytes) -> u32 {
    let next = allocator.resize(a, len);
    0
}
