//! Workload construction (Section 6.1 of the paper).
//!
//! The default workload scales |R| = |S| ∈ {128, 512, 2048} million tuples
//! at paper scale; a [`WorkloadSpec`] expresses sizes in *modeled* million
//! tuples and divides by the capacity scale factor K to obtain the actual
//! tuple counts executed functionally. Build-to-probe ratios (Fig 21) and
//! wide tuples (Fig 22) are parameters of the spec.

use crate::distributions::Zipf;
use crate::relation::Relation;
use crate::rng::Rng;

/// One million, the paper's workload unit.
pub const M: u64 = 1_000_000;

/// Specification of an R ⋈ S workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Build-relation cardinality in *modeled* tuples (paper scale).
    pub r_tuples_modeled: u64,
    /// Probe-relation cardinality in modeled tuples.
    pub s_tuples_modeled: u64,
    /// Capacity scale factor K; actual tuples = modeled / K.
    pub scale: u64,
    /// Extra 8-byte payload attributes on S (Fig 22).
    pub payload_cols: usize,
    /// Zipf exponent of the foreign-key distribution (0 = the paper's
    /// uniform default; larger values skew the probe side towards hot
    /// build keys — the robustness scenario of Section 1).
    pub zipf_theta: f64,
    /// Fraction of probe tuples that find a match (1.0 = the paper's
    /// FK-join default). Lower values draw the remainder from a disjoint
    /// key range — the selective-join scenario where Bloom-filter
    /// pre-filtering (Section 7, "filtering the outer relation") pays.
    pub match_fraction: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's default workload: |R| = |S| = `m_tuples` million
    /// modeled tuples at scale `k`.
    pub fn paper_default(m_tuples: u64, k: u64) -> Self {
        WorkloadSpec {
            r_tuples_modeled: m_tuples * M,
            s_tuples_modeled: m_tuples * M,
            scale: k,
            payload_cols: 0,
            zipf_theta: 0.0,
            match_fraction: 1.0,
            seed: 0x0712_1701,
        }
    }

    /// Skewed variant: uniform build side, Zipf(θ) foreign keys.
    pub fn skewed(m_tuples: u64, theta: f64, k: u64) -> Self {
        WorkloadSpec {
            zipf_theta: theta,
            ..Self::paper_default(m_tuples, k)
        }
    }

    /// Build-to-probe ratio variant (Fig 21): total modeled tuples stay at
    /// `2 * m_tuples` million while R:S = 1:`ratio`.
    pub fn with_ratio(m_tuples: u64, ratio: u64, k: u64) -> Self {
        let total = 2 * m_tuples * M;
        let r = total / (ratio + 1);
        WorkloadSpec {
            r_tuples_modeled: r,
            s_tuples_modeled: total - r,
            scale: k,
            payload_cols: 0,
            zipf_theta: 0.0,
            match_fraction: 1.0,
            seed: 0x0712_1702,
        }
    }

    /// Selective-join variant: only `fraction` of probe tuples match.
    pub fn selective(m_tuples: u64, fraction: f64, k: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        WorkloadSpec {
            match_fraction: fraction,
            ..Self::paper_default(m_tuples, k)
        }
    }

    /// Actual build-side tuples executed functionally.
    pub fn r_tuples(&self) -> usize {
        (self.r_tuples_modeled / self.scale).max(1) as usize
    }

    /// Actual probe-side tuples executed functionally.
    pub fn s_tuples(&self) -> usize {
        (self.s_tuples_modeled / self.scale).max(1) as usize
    }

    /// Generate the workload.
    pub fn generate(&self) -> Workload {
        let mut rng = Rng::seed_from_u64(self.seed);
        let n_r = self.r_tuples();
        let n_s = self.s_tuples();

        // R: shuffled unique primary keys 1..=|R|, random record ids.
        let mut r_keys: Vec<u64> = (1..=n_r as u64).collect();
        rng.shuffle(&mut r_keys);
        let r_rids: Vec<u64> = (0..n_r).map(|_| rng.next_u64()).collect();

        // S: foreign keys in [1, |R|] — uniform by default, Zipf when a
        // skew exponent is configured. Non-matching probes (when
        // `match_fraction` < 1) draw from the disjoint range above |R|.
        let zipf = (self.zipf_theta > 0.0).then(|| Zipf::new(n_r, self.zipf_theta));
        let s_keys: Vec<u64> = (0..n_s)
            .map(|_| {
                if self.match_fraction < 1.0 && rng.next_f64() >= self.match_fraction {
                    rng.gen_range_u64(n_r as u64 + 1, 2 * n_r as u64)
                } else if let Some(z) = &zipf {
                    z.sample(&mut rng)
                } else {
                    rng.gen_range_u64(1, n_r as u64)
                }
            })
            .collect();
        let s_rids: Vec<u64> = (0..n_s).map(|_| rng.next_u64()).collect();

        let mut s = Relation::from_columns(s_keys, s_rids);
        for _ in 0..self.payload_cols {
            s.payload_cols
                .push((0..n_s).map(|_| rng.next_u64()).collect());
        }

        Workload {
            r: Relation::from_columns(r_keys, r_rids),
            s,
            spec: self.clone(),
        }
    }
}

/// A generated R ⋈ S workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Build (inner) relation with unique primary keys.
    pub r: Relation,
    /// Probe (outer) relation with foreign keys into R.
    pub s: Relation,
    /// The spec that produced it.
    pub spec: WorkloadSpec,
}

impl Workload {
    /// Total actual tuples (|R| + |S|), the numerator of the paper's
    /// throughput metric.
    pub fn total_tuples(&self) -> u64 {
        (self.r.len() + self.s.len()) as u64
    }

    /// Total modeled tuples at paper scale.
    pub fn total_tuples_modeled(&self) -> u64 {
        self.spec.r_tuples_modeled + self.spec.s_tuples_modeled
    }

    /// Total modeled data volume in bytes at paper scale (base columns).
    pub fn total_bytes_modeled(&self) -> u64 {
        self.total_tuples_modeled() * crate::relation::TUPLE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn r_keys_are_unique_permutation() {
        let w = WorkloadSpec::paper_default(1, 10).generate();
        let n = w.r.len() as u64;
        let set: HashSet<u64> = w.r.keys.iter().copied().collect();
        assert_eq!(set.len() as u64, n);
        assert_eq!(*w.r.keys.iter().min().unwrap(), 1);
        assert_eq!(*w.r.keys.iter().max().unwrap(), n);
        // Shuffled: not the identity permutation.
        assert!(w.r.keys.windows(2).any(|p| p[0] > p[1]));
    }

    #[test]
    fn s_keys_reference_r() {
        let w = WorkloadSpec::paper_default(1, 10).generate();
        let n = w.r.len() as u64;
        assert!(w.s.keys.iter().all(|&k| (1..=n).contains(&k)));
    }

    #[test]
    fn s_keys_roughly_uniform() {
        let w = WorkloadSpec::paper_default(2, 10).generate();
        let n = w.r.len();
        let mut counts = [0u32; 11];
        for &k in &w.s.keys {
            counts[((k - 1) as usize * 10 / n).min(10)] += 1;
        }
        let expected = w.s.len() as f64 / 10.0;
        for c in &counts[..10] {
            let dev = (*c as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "decile deviates {dev}");
        }
    }

    #[test]
    fn ratio_splits_total() {
        let spec = WorkloadSpec::with_ratio(128, 32, 1);
        assert_eq!(spec.r_tuples_modeled + spec.s_tuples_modeled, 2 * 128 * M);
        let ratio = spec.s_tuples_modeled as f64 / spec.r_tuples_modeled as f64;
        assert!((ratio - 32.0).abs() < 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = WorkloadSpec::paper_default(1, 100).generate();
        let b = WorkloadSpec::paper_default(1, 100).generate();
        assert_eq!(a.r.keys, b.r.keys);
        assert_eq!(a.s.keys, b.s.keys);
    }

    #[test]
    fn payload_columns_generated() {
        let mut spec = WorkloadSpec::paper_default(1, 100);
        spec.payload_cols = 4;
        let w = spec.generate();
        assert_eq!(w.s.payload_cols.len(), 4);
        assert!(w.s.payload_cols.iter().all(|c| c.len() == w.s.len()));
    }

    #[test]
    fn selective_spec_reduces_matches() {
        let w = WorkloadSpec::selective(1, 0.25, 100).generate();
        let n = w.r.len() as u64;
        let matching = w.s.keys.iter().filter(|&&k| k <= n).count() as f64;
        let frac = matching / w.s.len() as f64;
        assert!((0.2..0.3).contains(&frac), "match fraction {frac}");
        // Non-matching keys stay within the documented disjoint range.
        assert!(w.s.keys.iter().all(|&k| k >= 1 && k <= 2 * n));
    }

    #[test]
    fn skewed_spec_concentrates_keys() {
        let uniform = WorkloadSpec::paper_default(1, 100).generate();
        let skewed = WorkloadSpec::skewed(1, 1.0, 100).generate();
        let head_count = |w: &Workload| {
            let head = (w.r.len() / 100).max(1) as u64;
            w.s.keys.iter().filter(|&&k| k <= head).count()
        };
        assert!(
            head_count(&skewed) > head_count(&uniform) * 3,
            "skew must concentrate probes on hot keys"
        );
    }

    #[test]
    fn modeled_vs_actual_scale() {
        let spec = WorkloadSpec::paper_default(128, 256);
        assert_eq!(spec.r_tuples(), (128 * M / 256) as usize);
        let w = spec.generate();
        assert_eq!(w.total_tuples_modeled(), 2 * 128 * M);
    }
}
