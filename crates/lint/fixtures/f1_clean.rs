//! F1 clean fixture: report times derived from priced costs, plus the
//! shapes F1 must not flag (variables, zero, functional update from a
//! priced report).

pub fn priced_phase(cost: KernelCost, hw: &HwConfig) -> PhaseReport {
    PhaseReport::gpu(cost, hw)
}

pub fn derived_cpu_phase(link: &LinkModel, bytes: Bytes) -> PhaseReport {
    let t = link.seq_transfer_time(bytes);
    PhaseReport::cpu("exchange", t)
}

pub fn zero_time_is_legitimate() -> PhaseReport {
    PhaseReport::cpu("idle", Ns(0.0))
}

pub fn updated_from_priced(cost: KernelCost, hw: &HwConfig, t: Ns) -> PhaseReport {
    PhaseReport {
        time: t,
        ..PhaseReport::gpu(cost, hw)
    }
}

pub fn total_from_phases(name: &str, phases: Vec<PhaseReport>, slowest: Ns, t_exchange: Ns) -> JoinReport {
    JoinReport {
        name: name.to_string(),
        phases,
        total: slowest + t_exchange,
        tuples_actual: 0,
    }
}
