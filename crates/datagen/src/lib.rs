//! # triton-datagen
//!
//! Workload generation for the Triton-join reproduction, following the
//! paper's Section 6.1: columnar relations of 16-byte `<key, record-id>`
//! tuples, R carrying shuffled unique primary keys and S uniform foreign
//! keys; build-to-probe ratio and wide-tuple variants; the multiply-shift
//! hash family; and the full-period LCG driving the random-access
//! microbenchmarks.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod distributions;
pub mod hash;
pub mod lcg;
pub mod relation;
pub mod rng;
pub mod tpch;
pub mod workload;

pub use distributions::Zipf;
pub use hash::{multiply_shift, radix, table_slot};
pub use lcg::Lcg;
pub use relation::{Relation, KEY_BYTES, PAYLOAD_BYTES, TUPLE_BYTES};
pub use rng::Rng;
pub use tpch::{TpchQuery, TpchSpec, TpchWorkload};
pub use workload::{Workload, WorkloadSpec, M};
