//! CPU cost model for the baseline joins.
//!
//! The CPU baselines (radix join on POWER9/Xeon, the CPU side of the
//! CPU-partitioned strategy, and the CPU prefix sum) execute functionally
//! like the GPU kernels but are timed with a simpler two-term model: a
//! memory-bandwidth term for streaming passes and a core-throughput term
//! for per-tuple work. The per-tuple cycle constants in [`CpuConfig`] are
//! calibrated against Section 6.2.1 (POWER9 radix join at 1.1 declining to
//! 0.9 G tuples/s; Xeon 1.0 to 0.6) and Fig 4 (~29 GiB/s CPU partitioning).
//!
//! [`CpuConfig`]: crate::config::CpuConfig

use crate::config::CpuConfig;
use crate::units::{Bytes, Ns};

/// Resource demand of one CPU phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuPhaseCost {
    /// Bytes streamed from memory.
    pub bytes_read: Bytes,
    /// Bytes streamed to memory.
    pub bytes_written: Bytes,
    /// Tuples processed.
    pub tuples: u64,
    /// Cycles of per-tuple work per core (hashing, buffering, probing).
    pub cycles_per_tuple: f64,
    /// Multiplier > 1 when the working set spills out of the LLC and
    /// per-tuple work stalls on memory (e.g. out-of-cache histograms).
    pub cache_spill_factor: f64,
}

impl CpuPhaseCost {
    /// Streaming phase over `bytes_read`/`bytes_written` with `cpt` cycles
    /// of work per tuple.
    pub fn new(bytes_read: Bytes, bytes_written: Bytes, tuples: u64, cpt: f64) -> Self {
        CpuPhaseCost {
            bytes_read,
            bytes_written,
            tuples,
            cycles_per_tuple: cpt,
            cache_spill_factor: 1.0,
        }
    }

    /// Time of this phase on `cpu`: max of the bandwidth term (reads and
    /// writes share the memory controllers) and the compute term across
    /// all cores (SMT contributes ~30% extra issue throughput).
    pub fn time(&self, cpu: &CpuConfig) -> Ns {
        let bw = cpu.scan_bandwidth().0;
        let t_mem = Ns((self.bytes_read.as_f64() + self.bytes_written.as_f64()) / bw * 1e9);
        let smt_boost = 1.0 + 0.3 * (cpu.smt.saturating_sub(1) as f64 / 3.0);
        let core_rate = cpu.cores as f64 * cpu.clock_ghz * smt_boost; // cycles/ns
        let spill = self.cache_spill_factor.max(1.0);
        let t_cpu = Ns(self.tuples as f64 * self.cycles_per_tuple * spill / core_rate);
        t_mem.max(t_cpu)
    }
}

/// Timing report of a multi-phase CPU operator.
#[derive(Debug, Clone, Default)]
pub struct CpuReport {
    /// (phase name, time) pairs in execution order.
    pub phases: Vec<(String, Ns)>,
}

impl CpuReport {
    /// Record a phase.
    pub fn push(&mut self, name: impl Into<String>, t: Ns) {
        self.phases.push((name.into(), t));
    }

    /// Total serial time.
    pub fn total(&self) -> Ns {
        self.phases.iter().map(|(_, t)| *t).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    #[test]
    fn bandwidth_bound_phase() {
        let cpu = CpuConfig::power9();
        // Pure scan of 13.26 GB at ~132.6 GB/s effective -> ~100 ms.
        let c = CpuPhaseCost::new(Bytes(13_260_000_000), Bytes(0), 0, 0.0);
        let t = c.time(&cpu);
        assert!((t.as_millis() - 100.0).abs() < 5.0, "{t}");
    }

    #[test]
    fn compute_bound_phase() {
        let cpu = CpuConfig::power9();
        // 1 G tuples x 60.8 cycles at 16 cores x 3.8 GHz x 1.3 SMT = 79 G
        // cycles/s -> ~0.77 s, far above the trivial memory term.
        let c = CpuPhaseCost::new(Bytes(1), Bytes(0), 1_000_000_000, 60.8);
        let t = c.time(&cpu);
        assert!((0.7..0.85).contains(&t.as_secs()), "{t}");
    }

    #[test]
    fn spill_factor_slows_compute() {
        let cpu = CpuConfig::power9();
        let mut c = CpuPhaseCost::new(Bytes(0), Bytes(0), 1_000_000, 30.0);
        let base = c.time(&cpu);
        c.cache_spill_factor = 2.0;
        assert!((c.time(&cpu).0 / base.0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_totals() {
        let mut r = CpuReport::default();
        r.push("partition", Ns(100.0));
        r.push("join", Ns(50.0));
        assert_eq!(r.total(), Ns(150.0));
    }
}
