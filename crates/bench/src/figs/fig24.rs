//! Fig 24: compute power required for high throughput — Triton join
//! throughput while scaling the number of streaming multiprocessors, plus
//! the time breakdown explaining the scaling.
//!
//! Expected shape (Section 6.2.12): fast scaling up to ~25 SMs while the
//! partitioning passes are compute bound, then the first pass becomes
//! interconnect bound and the curve flattens; 28 SMs reach 75% and 55 SMs
//! 95% of peak. Conclusion: the Triton join is interconnect bound — a
//! faster GPU would not help, a faster interconnect would.

use triton_core::TritonJoin;
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

/// One SM-count point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of SMs enabled.
    pub sms: u32,
    /// Workload in modeled M tuples.
    pub m_tuples: u64,
    /// Throughput as a percentage of the 80-SM throughput.
    pub pct_of_max: f64,
    /// Per-kernel time shares at this SM count.
    pub breakdown: Vec<(String, f64)>,
}

/// The SM axis.
pub const SM_AXIS: [u32; 9] = [5, 10, 15, 20, 28, 40, 55, 70, 80];

/// Run the sweep for one workload.
pub fn run(hw_base: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw_base.scale;
    let w = WorkloadSpec::paper_default(m_tuples, k).generate();
    let join = TritonJoin {
        gpu_prefix_sum: true,
        ..TritonJoin::default()
    };
    let full = join.run(&w, &hw_base.clone().with_sms(80));
    let max_tput = full.throughput_gtps();
    SM_AXIS
        .iter()
        .map(|&sms| {
            let hw = hw_base.clone().with_sms(sms);
            let rep = join.run(&w, &hw);
            Row {
                sms,
                m_tuples,
                pct_of_max: rep.throughput_gtps() / max_tput * 100.0,
                breakdown: rep.time_breakdown(),
            }
        })
        .collect()
}

/// Print the figure.
pub fn print(hw: &HwConfig, m_tuples: u64) {
    crate::banner("Fig 24", "compute-power scaling (SM count)");
    let mut t = crate::Table::new(["SMs", "% of max", "Part 1 share", "Join share"]);
    for r in run(hw, m_tuples) {
        let share = |name: &str| {
            r.breakdown
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, f)| *f)
                .unwrap_or(0.0)
        };
        t.row([
            r.sms.to_string(),
            crate::f1(r.pct_of_max),
            crate::pct(share("Part 1")),
            crate::pct(share("Join")),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_saturates_before_full_sm_count() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, 512);
        let at = |sms: u32| rows.iter().find(|r| r.sms == sms).unwrap().pct_of_max;
        // Paper: 28 SMs -> >= 75% of peak; 55 SMs -> >= 95%.
        assert!(at(28) >= 70.0, "28 SMs at {}%", at(28));
        assert!(at(55) >= 90.0, "55 SMs at {}%", at(55));
        // Monotone (within noise).
        for w in rows.windows(2) {
            assert!(w[1].pct_of_max >= w[0].pct_of_max - 3.0);
        }
    }

    #[test]
    fn diminishing_returns_at_the_top() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, 512);
        let at = |sms: u32| rows.iter().find(|r| r.sms == sms).unwrap().pct_of_max;
        let low_gain = at(20) - at(10);
        let high_gain = at(80) - at(70);
        assert!(
            low_gain > high_gain,
            "scaling must flatten: +{low_gain} early vs +{high_gain} late"
        );
    }
}
