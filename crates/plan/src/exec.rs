//! The deterministic topological plan executor.
//!
//! Nodes run one at a time in plan order, composing the existing
//! operators functionally: selections and Bloom filters actually drop
//! tuples, joins run the full Triton pipeline with a match sink, and the
//! root aggregation folds the final intermediate into the shared digest.
//! Every intermediate edge is either **GPU-resident** (the producer's
//! output stays on the device and the consumer reads it at GPU memory
//! bandwidth) or **materialized** (an explicit priced `Materialize`
//! phase evicts it over the interconnect right after the producer, and
//! the consumer later streams it back link-priced — the same
//! two-different-pipeline-steps discipline as the join's Spill phase).
//! The placement comes from [`crate::plan_footprint`]'s roofline-driven
//! greedy rule, so execution stays within the admission grant.

use triton_core::{
    AggregateResult, BloomFilter, GpuAggregation, JoinReport, JoinResult, JoinRunOptions,
    PhaseReport, SkewPolicy, TritonJoin,
};
use triton_datagen::{Relation, Workload, WorkloadSpec, TUPLE_BYTES};
use triton_hw::kernel::KernelCost;
use triton_hw::power::Executor;
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;
use triton_trace::{Attr, Trace};

use crate::dag::{Plan, PlanError, PlanNode};
use crate::footprint::{plan_footprint, Footprint};

/// Instructions per tuple for predicate evaluation (a compare + branch
/// per tuple, cheap next to the join kernels).
const SELECT_INSTR: u64 = 4;

/// Execution configuration of one plan run.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Skip residency planning entirely and materialize every edge —
    /// the degradation ladder's new top rung.
    pub force_materialize: bool,
    /// GPU-memory budget for intermediate placement; `None` = full
    /// device capacity (standalone runs). The scheduler sets this to
    /// the admission grant.
    pub budget: Option<Bytes>,
    /// Explicit working-set cache budget handed to each join node;
    /// `None` = each join's own auto-sizing.
    pub cache: Option<Bytes>,
    /// Skew policy applied to every join node.
    pub skew: SkewPolicy,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            force_materialize: false,
            budget: None,
            cache: None,
            skew: SkewPolicy::Off,
        }
    }
}

/// What one node did: the per-node metrics reported through triton-trace.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Stable label, `kind#index` (e.g. `join#4`).
    pub label: String,
    /// Node kind (`scan`, `select`, `bloom`, `join`, `agg`).
    pub kind: &'static str,
    /// Actual output cardinality.
    pub output_tuples: u64,
    /// Whether the output edge stayed GPU-resident.
    pub resident: bool,
    /// Isolated node time (operator total plus its Materialize evict,
    /// when the edge spilled).
    pub time: Ns,
    /// Extra trace attributes (e.g. Bloom filter geometry).
    pub attrs: Vec<Attr>,
}

/// A completed plan run.
#[derive(Debug, Clone)]
pub struct PlanRun {
    /// The root aggregate (the query's answer).
    pub agg: AggregateResult,
    /// Merged execution report: every node's phases in schedule order
    /// (including per-edge `Materialize` phases), with the plan total.
    pub report: JoinReport,
    /// Per-node outcomes, in schedule order.
    pub nodes: Vec<NodeOutcome>,
    /// The footprint analysis execution ran under.
    pub footprint: Footprint,
}

impl PlanRun {
    /// Total time spent in `Materialize` evict phases. Folds from
    /// [`Ns::ZERO`]: an empty float sum is `-0.0`, which would leak a
    /// negative zero into reports of fully pipelined runs.
    pub fn materialize_time(&self) -> Ns {
        self.report
            .phases
            .iter()
            .filter(|p| p.name == "Materialize")
            .fold(Ns::ZERO, |acc, p| acc + p.time)
    }

    /// Number of edges that stayed GPU-resident / were materialized.
    pub fn edge_counts(&self) -> (u64, u64) {
        let mut resident = 0;
        let mut spilled = 0;
        for n in &self.nodes {
            if n.kind == "scan" || n.kind == "agg" {
                continue;
            }
            if n.resident {
                resident += 1;
            } else {
                spilled += 1;
            }
        }
        (resident, spilled)
    }
}

/// The evict leg of a materialized edge: stream the producer's
/// GPU-resident output over the interconnect into CPU memory. The
/// reload leg is priced by the consumer reading a CPU-side input — the
/// two legs sit in different pipeline steps and never overlap.
fn materialize_phase(tuples: u64, hw: &HwConfig) -> PhaseReport {
    let bytes = Bytes(tuples * TUPLE_BYTES);
    let mut c = KernelCost::new("Materialize");
    c.tuples_in = tuples;
    c.gpu_mem.read += bytes;
    c.link.seq_write += bytes;
    PhaseReport::gpu(c, hw)
}

/// Execute `plan` over `inputs`. Deterministic: same plan, inputs, and
/// config produce identical results, reports, and node outcomes.
pub fn execute(
    plan: &Plan,
    inputs: &[Relation],
    hw: &HwConfig,
    cfg: &PlanConfig,
) -> Result<PlanRun, PlanError> {
    plan.validate(inputs.len())?;
    let input_tuples: Vec<u64> = inputs.iter().map(|r| r.len() as u64).collect();
    let budget = cfg.budget.map(|b| b.0).unwrap_or(hw.gpu.mem_capacity.0);
    let fp = plan_footprint(plan, &input_tuples, hw, budget, cfg.force_materialize);

    let mut outs: Vec<Relation> = Vec::with_capacity(plan.nodes.len());
    let mut phases: Vec<PhaseReport> = Vec::new();
    let mut nodes: Vec<NodeOutcome> = Vec::new();
    let mut total = Ns::ZERO;
    let mut agg = AggregateResult {
        groups: 0,
        count_digest: 0,
        sum_digest: 0,
    };
    let root = plan.nodes.len() - 1;

    for (i, node) in plan.nodes.iter().enumerate() {
        let mut attrs: Vec<Attr> = Vec::new();
        let mut node_time = Ns::ZERO;
        let out: Relation = match *node {
            // Scans move no data: the consumer prices the stream.
            PlanNode::Scan { input } => inputs[input].clone(),
            PlanNode::Select { child, pred } => {
                let rel = &outs[child];
                let mut keys = Vec::new();
                let mut rids = Vec::new();
                for (k, r) in rel.iter() {
                    if pred.keep(k) {
                        keys.push(k);
                        rids.push(r);
                    }
                }
                let mut c = KernelCost::new("Select");
                c.tuples_in = rel.len() as u64;
                c.tuples_out = keys.len() as u64;
                c.instructions = rel.len() as u64 * SELECT_INSTR;
                let in_bytes = Bytes(rel.len() as u64 * TUPLE_BYTES);
                if fp.resident[child] {
                    c.gpu_mem.read += in_bytes;
                } else {
                    c.link.seq_read += in_bytes;
                }
                // Survivors land GPU-resident first; a non-resident
                // edge is evicted by the Materialize phase below.
                c.gpu_mem.write += Bytes(keys.len() as u64 * TUPLE_BYTES);
                let p = PhaseReport::gpu(c, hw);
                node_time += p.time;
                phases.push(p);
                Relation::from_columns(keys, rids)
            }
            PlanNode::Bloom { build, probe } => {
                let mut filter = BloomFilter::for_build_side(outs[build].len());
                for &k in &outs[build].keys {
                    filter.insert(k);
                }
                let rel = &outs[probe];
                let mut keys = Vec::new();
                let mut rids = Vec::new();
                for (k, r) in rel.iter() {
                    if filter.may_contain(k) {
                        keys.push(k);
                        rids.push(r);
                    }
                }
                let dropped = (rel.len() - keys.len()) as u64;
                let mut c = filter.kernel_cost(
                    outs[build].len() as u64,
                    rel.len() as u64,
                    dropped,
                    fp.resident[build],
                    fp.resident[probe],
                );
                c.tuples_out = keys.len() as u64;
                c.gpu_mem.write += Bytes(keys.len() as u64 * TUPLE_BYTES);
                attrs.extend(filter.trace_attrs());
                let p = PhaseReport::gpu(c, hw);
                node_time += p.time;
                phases.push(p);
                Relation::from_columns(keys, rids)
            }
            PlanNode::Join { build, probe, emit } => {
                let w = Workload {
                    r: outs[build].clone(),
                    s: outs[probe].clone(),
                    spec: WorkloadSpec {
                        r_tuples_modeled: outs[build].len() as u64,
                        s_tuples_modeled: outs[probe].len() as u64,
                        scale: 1,
                        payload_cols: 0,
                        zipf_theta: 0.0,
                        match_fraction: 1.0,
                        seed: 0,
                    },
                };
                let join = TritonJoin {
                    cache_bytes: cfg.cache,
                    skew: cfg.skew,
                    ..TritonJoin::default()
                };
                let mut matches: Vec<(u64, u64, u64)> = Vec::new();
                let report = join.try_run_with(
                    &w,
                    hw,
                    JoinRunOptions {
                        r_resident: fp.resident[build],
                        s_resident: fp.resident[probe],
                        output_resident: true,
                        sink: Some(&mut matches),
                    },
                )?;
                node_time += report.total;
                phases.extend(report.phases);
                let mut keys = Vec::with_capacity(matches.len());
                let mut rids = Vec::with_capacity(matches.len());
                for (k, r_rid, s_rid) in matches {
                    let (ok, orid) = emit.apply(k, r_rid, s_rid);
                    keys.push(ok);
                    rids.push(orid);
                }
                Relation::from_columns(keys, rids)
            }
            PlanNode::Agg { child } => {
                let (result, report) =
                    GpuAggregation::default().run_with(&outs[child], hw, fp.resident[child]);
                agg = result;
                node_time += report.total;
                phases.extend(report.phases);
                Relation::default()
            }
        };

        // Materialize the edge right after the producer when placement
        // declined residency (scans and the root carry no edge).
        let is_edge = !matches!(node, PlanNode::Scan { .. }) && i != root;
        if is_edge && !fp.resident[i] {
            let p = materialize_phase(out.len() as u64, hw);
            node_time += p.time;
            phases.push(p);
        }

        total += node_time;
        attrs.push(Attr::u64("est_out", fp.est_out[i]));
        nodes.push(NodeOutcome {
            label: format!("{}#{i}", node.kind()),
            kind: node.kind(),
            output_tuples: out.len() as u64,
            resident: is_edge && fp.resident[i],
            time: node_time,
            attrs,
        });
        outs.push(out);
    }

    let tuples: u64 = input_tuples.iter().sum();
    let report = JoinReport {
        name: format!(
            "Plan ({} nodes, {})",
            plan.nodes.len(),
            if cfg.force_materialize {
                "materialized"
            } else {
                "pipelined"
            }
        ),
        phases,
        total,
        tuples_actual: tuples,
        tuples_modeled: tuples,
        result: JoinResult {
            matches: agg.groups,
            checksum: agg.sum_digest,
        },
        executor: Executor::Gpu,
        overlap: None,
        placement: None,
    };
    Ok(PlanRun {
        agg,
        report,
        nodes,
        footprint: fp,
    })
}

/// Record a run's per-node outcomes as a span chain on `(pid, tid)`
/// starting at `t0_ns` with durations scaled by `stretch`, one span per
/// node carrying its kind, cardinality, and placement. Complements
/// `triton_core::record_report` (which records the phase chain): this
/// lane shows the *plan* structure. Returns where the chain ended.
pub fn record_plan(
    trace: &mut Trace,
    pid: u64,
    tid: u64,
    t0_ns: f64,
    stretch: f64,
    run: &PlanRun,
) -> f64 {
    let mut ts = t0_ns;
    for n in &run.nodes {
        let dur = (n.time.0 * stretch).max(0.0);
        let ev = trace.span(pid, tid, n.label.clone(), ts, dur);
        ev.attr(Attr::str("kind", n.kind));
        ev.attr(Attr::u64("output_tuples", n.output_tuples));
        ev.attr(Attr::bool("resident", n.resident));
        ev.attr(Attr::f64("isolated_time_ns", n.time.0));
        ev.attrs(n.attrs.iter().cloned());
        ts += dur;
    }
    ts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{EmitMap, Predicate};
    use crate::oracle::reference_plan;

    fn hw() -> HwConfig {
        HwConfig::ac922().scaled(2048)
    }

    fn small_plan_and_inputs() -> (Plan, Vec<Relation>) {
        let n_r = 512usize;
        let n_s = 4096usize;
        let r = Relation::from_columns(
            (1..=n_r as u64).collect(),
            (0..n_r as u64).map(|i| i * 31 + 7).collect(),
        );
        let s = Relation::from_columns(
            (0..n_s as u64).map(|i| i % n_r as u64 + 1).collect(),
            (0..n_s as u64).map(|i| i * 17 + 3).collect(),
        );
        let plan = Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 },
                PlanNode::Scan { input: 1 },
                PlanNode::Select {
                    child: 0,
                    pred: Predicate::KeyMod {
                        modulus: 4,
                        keep: 1,
                    },
                },
                PlanNode::Bloom { build: 2, probe: 1 },
                PlanNode::Join {
                    build: 2,
                    probe: 3,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 4 },
            ],
        };
        (plan, vec![r, s])
    }

    #[test]
    fn pipelined_run_matches_oracle() {
        let (plan, inputs) = small_plan_and_inputs();
        let run = execute(&plan, &inputs, &hw(), &PlanConfig::default()).unwrap();
        assert_eq!(run.agg, reference_plan(&plan, &inputs));
        assert!(run.agg.groups > 0);
    }

    #[test]
    fn force_materialize_same_answer_more_time() {
        let (plan, inputs) = small_plan_and_inputs();
        let hw = hw();
        let piped = execute(&plan, &inputs, &hw, &PlanConfig::default()).unwrap();
        let mat = execute(
            &plan,
            &inputs,
            &hw,
            &PlanConfig {
                force_materialize: true,
                ..PlanConfig::default()
            },
        )
        .unwrap();
        assert_eq!(piped.agg, mat.agg);
        assert_eq!(
            mat.materialize_time(),
            mat.report
                .phases
                .iter()
                .filter(|p| p.name == "Materialize")
                .map(|p| p.time)
                .sum::<Ns>()
        );
        let (res_p, _) = piped.edge_counts();
        let (res_m, spill_m) = mat.edge_counts();
        assert!(res_p > 0, "generous budget should pipeline edges");
        assert_eq!(res_m, 0);
        assert!(spill_m > 0);
        assert!(
            piped.report.total.0 < mat.report.total.0,
            "pipelined {} vs materialized {}",
            piped.report.total,
            mat.report.total
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let (plan, inputs) = small_plan_and_inputs();
        let hw = hw();
        let a = execute(&plan, &inputs, &hw, &PlanConfig::default()).unwrap();
        let b = execute(&plan, &inputs, &hw, &PlanConfig::default()).unwrap();
        assert_eq!(a.agg, b.agg);
        assert_eq!(a.report.total, b.report.total);
        let mut ta = Trace::new();
        let mut tb = Trace::new();
        record_plan(&mut ta, 1, 1, 0.0, 1.0, &a);
        record_plan(&mut tb, 1, 1, 0.0, 1.0, &b);
        assert_eq!(ta.events(), tb.events());
    }

    #[test]
    fn estimates_bound_actuals() {
        let (plan, inputs) = small_plan_and_inputs();
        let run = execute(&plan, &inputs, &hw(), &PlanConfig::default()).unwrap();
        for (n, est) in run.nodes.iter().zip(&run.footprint.est_out) {
            if n.kind == "agg" {
                continue;
            }
            assert!(
                n.output_tuples <= *est,
                "{}: actual {} > estimate {est}",
                n.label,
                n.output_tuples
            );
        }
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let plan = Plan { nodes: vec![] };
        assert!(matches!(
            execute(&plan, &[], &hw(), &PlanConfig::default()),
            Err(PlanError::Invalid(_))
        ));
    }
}
