// Fixture: unit-safe arithmetic, plain constructors, and `.0` on
// ordinary (non-unit-constructor) expressions do not trip U1.
use triton_hw::units::{Bytes, Ns};

pub fn floor(a: Bytes, b: Bytes) -> Bytes {
    a + b + Bytes::mib(8)
}

pub fn advance(clock: Ns, dt: Ns) -> Ns {
    clock + dt
}

pub fn frac(used: Bytes, cap: Bytes) -> f64 {
    used.as_f64() / cap.as_f64()
}

pub fn pair_field(p: (u64, u64)) -> u64 {
    // Tuple access with arithmetic, but not inside a unit constructor
    // and not cast: out of U1's scope.
    p.0 + 1
}

pub fn fresh() -> Bytes {
    Bytes(4096)
}
