//! Histogram and prefix-sum kernels.
//!
//! Radix partitioning needs the exact output offset of every partition
//! before the scatter pass; both the paper's CPU and GPU pipelines compute
//! a histogram over the key column followed by a prefix sum. Because the
//! relations are columnar, this pass reads only 8 bytes per tuple
//! (Section 6.2.8 highlights this when comparing CPU vs GPU prefix sums).
//!
//! The functional result is shared; the *cost* depends on the processor:
//! the GPU streams the key column over the interconnect (bounded at the
//! unidirectional ~63 GiB/s), while the CPU scans at near its memory
//! bandwidth (the paper measures up to 129.6 GiB/s).

use triton_datagen::{multiply_shift, radix, KEY_BYTES};
use triton_hw::cpu::CpuPhaseCost;
use triton_hw::gpu::split_chunks;
use triton_hw::kernel::KernelCost;
use triton_hw::link::LinkModel;
use triton_hw::tlb::TlbSim;
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;

use crate::common::{ChargeCtx, PassConfig, Span};

/// Per-block histograms and the derived global/per-block offsets.
#[derive(Debug, Clone)]
pub struct HistogramResult {
    /// `[block][partition]` tuple counts.
    pub block_hist: Vec<Vec<u32>>,
    /// Global partition totals.
    pub totals: Vec<u64>,
    /// `fanout + 1` global partition start offsets (tuples).
    pub offsets: Vec<usize>,
    /// `[block][partition]` start offset of each block's region within the
    /// partition (tuples, absolute).
    pub block_offsets: Vec<Vec<usize>>,
    /// The block input chunks the histogram was computed over.
    pub chunks: Vec<(usize, usize)>,
}

impl HistogramResult {
    /// Fanout.
    pub fn fanout(&self) -> usize {
        self.totals.len()
    }

    /// Per-partition combined tuple counts of a build/probe pair: the
    /// histogram totals of this (build) relation added to `probe`'s.
    /// These are the pair sizes the skew planner ranks before the
    /// second-pass loop runs. Panics if the fanouts differ.
    pub fn pair_tuples(&self, probe: &HistogramResult) -> Vec<u64> {
        assert_eq!(self.fanout(), probe.fanout());
        self.totals
            .iter()
            .zip(&probe.totals)
            .map(|(&r, &s)| r + s)
            .collect()
    }

    /// Mean partition tuple count (rounded up, never zero for non-empty
    /// inputs) — the baseline a heavy-hitter detector compares against.
    pub fn mean_tuples(&self) -> u64 {
        let total: u64 = self.totals.iter().sum();
        total.div_ceil(self.fanout().max(1) as u64)
    }

    /// Ratio of the largest partition to the mean — 1.0 for perfectly
    /// uniform keys, growing with Zipf skew. Zero for empty inputs.
    pub fn skew_ratio(&self) -> f64 {
        let mean = self.mean_tuples();
        if mean == 0 {
            return 0.0;
        }
        let max = self.totals.iter().copied().max().unwrap_or(0);
        max as f64 / mean as f64
    }
}

/// Compute per-block histograms functionally (shared by every processor).
pub fn compute_histogram(
    keys: &[u64],
    blocks: usize,
    radix_bits: u32,
    skip_bits: u32,
) -> HistogramResult {
    let fanout = 1usize << radix_bits;
    let chunks = split_chunks(keys.len(), blocks.max(1));
    let mut block_hist = vec![vec![0u32; fanout]; chunks.len()];
    for (b, &(s, e)) in chunks.iter().enumerate() {
        let hist = &mut block_hist[b];
        for &k in &keys[s..e] {
            hist[radix(multiply_shift(k), skip_bits, radix_bits)] += 1;
        }
    }
    let mut totals = vec![0u64; fanout];
    for hist in &block_hist {
        for (p, &c) in hist.iter().enumerate() {
            totals[p] += c as u64;
        }
    }
    let mut offsets = Vec::with_capacity(fanout + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &t in &totals {
        acc += t as usize;
        offsets.push(acc);
    }
    // Per-block start offsets: partition-major, block-minor.
    let mut block_offsets = vec![vec![0usize; fanout]; block_hist.len()];
    for p in 0..fanout {
        let mut cursor = offsets[p];
        for b in 0..block_hist.len() {
            block_offsets[b][p] = cursor;
            cursor += block_hist[b][p] as usize;
        }
        debug_assert_eq!(cursor, offsets[p + 1]);
    }
    HistogramResult {
        block_hist,
        totals,
        offsets,
        block_offsets,
        chunks,
    }
}

/// GPU prefix-sum kernel: functional histogram plus the kernel cost of
/// streaming the key column from `input`.
///
/// `extra_copy_to_gpu` models the second-pass variant that copies the data
/// into GPU memory while computing the histogram, to spare the subsequent
/// kernels a second interconnect pass (Section 6.2.3).
pub fn gpu_prefix_sum(
    keys: &[u64],
    input: &Span,
    pass: &PassConfig,
    hw: &HwConfig,
    extra_copy_to_gpu: bool,
) -> (HistogramResult, KernelCost) {
    let blocks = (pass.blocks_per_sm
        * if pass.sms == 0 {
            hw.gpu.num_sms
        } else {
            pass.sms.min(hw.gpu.num_sms)
        }) as usize;
    let hist = compute_histogram(keys, blocks, pass.radix_bits, pass.skip_bits);

    let mut cost = KernelCost::new("prefix sum");
    cost.sms = pass.sms;
    cost.tuples_in = keys.len() as u64;
    let link = LinkModel::new(&hw.link);
    let mut tlb = TlbSim::new(hw);
    {
        let mut ctx = ChargeCtx {
            cost: &mut cost,
            link: &link,
            tlb: &mut tlb,
        };
        // One sequential pass over the key column.
        ctx.seq_read(input, 0, keys.len() as u64 * KEY_BYTES);
        if extra_copy_to_gpu {
            // Read the rid column too and stage both columns in GPU memory.
            ctx.seq_read(input, 0, keys.len() as u64 * KEY_BYTES);
            cost.gpu_mem.write += Bytes(keys.len() as u64 * 2 * KEY_BYTES);
        }
    }
    // Histogram arithmetic: ~4 instructions per tuple plus the block-local
    // scan/reduction.
    cost.instructions = keys.len() as u64 * 4 + (blocks * hist.fanout()) as u64 / 8;
    cost.sync_cycles = blocks as u64 * 64;
    (hist, cost)
}

/// CPU prefix-sum phase cost: one scan of the key column per relation with
/// SIMD-lane-private histograms (Section 6.1's POWER9 tuning).
pub fn cpu_prefix_sum_cost(tuples_modeled: u64, hw: &HwConfig) -> Ns {
    let bytes = Bytes(tuples_modeled * KEY_BYTES);
    // ~1.5 cycles/tuple with SIMD histograms; bandwidth-bound in practice.
    CpuPhaseCost::new(bytes, Bytes(0), tuples_modeled, 1.5).time(&hw.cpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn histogram_counts_match_input() {
        let w = WorkloadSpec::paper_default(1, 50).generate();
        let h = compute_histogram(&w.r.keys, 16, 6, 0);
        let total: u64 = h.totals.iter().sum();
        assert_eq!(total, w.r.len() as u64);
        assert_eq!(*h.offsets.last().unwrap(), w.r.len());
        assert_eq!(h.fanout(), 64);
    }

    #[test]
    fn block_offsets_partition_major_block_minor() {
        let keys: Vec<u64> = (0..1000).collect();
        let h = compute_histogram(&keys, 4, 3, 0);
        for p in 0..8 {
            for b in 0..3 {
                assert!(
                    h.block_offsets[b][p] + h.block_hist[b][p] as usize
                        == h.block_offsets[b + 1][p],
                    "regions must be contiguous"
                );
            }
            assert_eq!(h.block_offsets[0][p], h.offsets[p]);
        }
    }

    #[test]
    fn empty_input() {
        let h = compute_histogram(&[], 8, 4, 0);
        assert_eq!(h.offsets, vec![0; 17]);
        assert_eq!(h.mean_tuples(), 0);
        assert_eq!(h.skew_ratio(), 0.0);
    }

    #[test]
    fn pair_tuples_adds_both_relations() {
        let w = WorkloadSpec::paper_default(1, 50).generate();
        let hr = compute_histogram(&w.r.keys, 4, 5, 0);
        let hs = compute_histogram(&w.s.keys, 4, 5, 0);
        let pairs = hr.pair_tuples(&hs);
        assert_eq!(pairs.len(), 32);
        let total: u64 = pairs.iter().sum();
        assert_eq!(total, (w.r.len() + w.s.len()) as u64);
    }

    #[test]
    fn skew_ratio_grows_with_zipf() {
        let uniform = WorkloadSpec::paper_default(1, 50).generate();
        let skewed = WorkloadSpec::skewed(1, 1.5, 50).generate();
        let hu = compute_histogram(&uniform.s.keys, 4, 6, 0);
        let hk = compute_histogram(&skewed.s.keys, 4, 6, 0);
        assert!(hu.skew_ratio() >= 1.0);
        assert!(
            hk.skew_ratio() > hu.skew_ratio() * 2.0,
            "zipf 1.5 should concentrate: {} vs {}",
            hk.skew_ratio(),
            hu.skew_ratio()
        );
        assert!(hk.mean_tuples() > 0);
    }

    #[test]
    fn gpu_prefix_sum_reads_key_column_only() {
        let hw = HwConfig::ac922().scaled(1024);
        let w = WorkloadSpec::paper_default(1, 100).generate();
        let span = Span::cpu(0);
        let pass = PassConfig::new(6, 0);
        let (_, cost) = gpu_prefix_sum(&w.r.keys, &span, &pass, &hw, false);
        assert_eq!(cost.link.seq_read.0, w.r.len() as u64 * 8);
        assert_eq!(cost.link.seq_write.0, 0);
    }

    #[test]
    fn spilling_prefix_sum_copies_into_gpu() {
        let hw = HwConfig::ac922().scaled(1024);
        let w = WorkloadSpec::paper_default(1, 100).generate();
        let span = Span::cpu(0);
        let pass = PassConfig::new(6, 0);
        let (_, plain) = gpu_prefix_sum(&w.r.keys, &span, &pass, &hw, false);
        let (_, copying) = gpu_prefix_sum(&w.r.keys, &span, &pass, &hw, true);
        assert!(copying.gpu_mem.write.0 > 0);
        assert!(copying.link.seq_read.0 > plain.link.seq_read.0);
    }

    #[test]
    fn cpu_prefix_sum_near_scan_bandwidth() {
        let hw = HwConfig::ac922();
        // 1 G modeled tuples = 8 GB of keys.
        let t = cpu_prefix_sum_cost(1_000_000_000, &hw);
        let gibs = 8e9 / (1u64 << 30) as f64 / t.as_secs();
        // Paper: up to 129.6 GiB/s.
        assert!((100.0..=135.0).contains(&gibs), "got {gibs} GiB/s");
    }
}
