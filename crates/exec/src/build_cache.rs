//! Build-side sharing: probe batches against the same build relation
//! reuse its partitioned state instead of re-partitioning R per query.
//!
//! The partitioned build relation (the output of PS 1 + Part 1 restricted
//! to R) lives in the hybrid array whose spill side is CPU memory — which
//! is plentiful — so the cache tracks *which* build relations are
//! resident and reference counts, not GPU bytes; GPU cache pages are
//! re-granted per query by admission control. A hit lets the scheduler
//! discount the build side's share of the first partitioning pass (see
//! [`crate::demand::ResourceDemand::from_report`]).
//!
//! # Circuit breaker
//!
//! A hardware fault can invalidate resident partitioned state (ECC page
//! retirement tears the GPU-cached pages of the hybrid array). The cache
//! then acts as a circuit breaker: [`BuildCache::quarantine_all`] evicts
//! every entry and *quarantines* its key. The next query naming a
//! quarantined key is forced to rebuild (a deliberate miss that closes
//! the breaker for that key) instead of trusting stale shared state.

use std::collections::{BTreeMap, BTreeSet};

/// Refcounted registry of resident partitioned build relations.
#[derive(Debug, Default)]
pub struct BuildCache {
    entries: BTreeMap<u64, Entry>,
    /// Keys whose partitioned state a fault invalidated; the next
    /// acquire rebuilds and clears the quarantine.
    quarantined: BTreeSet<u64>,
    /// Queries that found their build side already partitioned.
    pub hits: u64,
    /// Queries that had to partition their build side themselves.
    pub misses: u64,
    /// Forced misses served while a key was quarantined.
    pub quarantine_rebuilds: u64,
}

#[derive(Debug)]
struct Entry {
    refs: usize,
    /// Build-side bytes (reporting only; the state lives in CPU memory).
    r_bytes: u64,
}

impl BuildCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire the build state for `key`, pinning it while the query
    /// runs. Returns `true` on a hit (state already resident — the query
    /// skips re-partitioning R), `false` on a miss (this query
    /// partitions R and leaves the state behind for followers).
    pub fn acquire(&mut self, key: u64, r_bytes: u64) -> bool {
        if self.quarantined.remove(&key) {
            // Breaker half-open: this query rebuilds the partitioned
            // state from scratch; followers may share the fresh copy.
            self.quarantine_rebuilds += 1;
            self.misses += 1;
            self.entries.insert(key, Entry { refs: 1, r_bytes });
            return false;
        }
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.refs += 1;
                self.hits += 1;
                true
            }
            None => {
                self.entries.insert(key, Entry { refs: 1, r_bytes });
                self.misses += 1;
                false
            }
        }
    }

    /// Unpin after the query finishes. Idle entries stay resident for
    /// later probe batches until [`Self::evict_idle`].
    pub fn release(&mut self, key: u64) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.refs = e.refs.saturating_sub(1);
        }
    }

    /// Trip the circuit breaker: evict *every* resident build (pinned
    /// or not — the backing pages are gone) and quarantine the keys so
    /// the next acquire rebuilds instead of sharing stale state.
    /// Returns the number of builds invalidated. In-flight queries that
    /// already consumed their shared state keep exact results; only the
    /// reusable partitioned copy is lost.
    pub fn quarantine_all(&mut self) -> usize {
        let n = self.entries.len();
        for k in self.entries.keys() {
            self.quarantined.insert(*k);
        }
        self.entries.clear();
        n
    }

    /// Whether `key` is currently quarantined (breaker open).
    pub fn is_quarantined(&self, key: u64) -> bool {
        self.quarantined.contains(&key)
    }

    /// Drop all unpinned entries, returning the bytes retired.
    pub fn evict_idle(&mut self) -> u64 {
        let mut freed = 0;
        self.entries.retain(|_, e| {
            if e.refs == 0 {
                freed += e.r_bytes;
                false
            } else {
                true
            }
        });
        freed
    }

    /// Number of resident build relations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_is_miss_then_hits() {
        let mut c = BuildCache::new();
        assert!(!c.acquire(7, 1000));
        assert!(c.acquire(7, 1000));
        assert!(c.acquire(7, 1000));
        assert!(!c.acquire(8, 500));
        assert_eq!((c.hits, c.misses), (2, 2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn quarantine_trips_and_closes_the_breaker() {
        let mut c = BuildCache::new();
        c.acquire(7, 1000); // miss, resident
        c.release(7);
        assert!(c.acquire(7, 1000), "resident entry hits");
        c.release(7);
        assert_eq!(c.quarantine_all(), 1);
        assert!(c.is_quarantined(7));
        assert!(c.is_empty());
        // Breaker open: forced rebuild, not a hit on stale state.
        assert!(!c.acquire(7, 1000), "quarantined key must rebuild");
        assert!(!c.is_quarantined(7), "rebuild closes the breaker");
        assert_eq!(c.quarantine_rebuilds, 1);
        // Followers share the rebuilt state again.
        assert!(c.acquire(7, 1000));
    }

    #[test]
    fn eviction_spares_pinned_entries() {
        let mut c = BuildCache::new();
        c.acquire(1, 100);
        c.acquire(2, 200);
        c.release(2);
        assert_eq!(c.evict_idle(), 200);
        assert_eq!(c.len(), 1);
        c.release(1);
        assert_eq!(c.evict_idle(), 100);
        assert!(c.is_empty());
    }
}
