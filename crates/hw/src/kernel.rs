//! Kernel cost accounting and roofline timing.
//!
//! Every simulated kernel (GPU or CPU) executes *functionally* over real
//! data while accumulating resource demand into a [`KernelCost`]:
//! interconnect traffic (split into sequential streams and random accesses,
//! because only the latter are transaction-rate limited), GPU memory bytes,
//! issued warp instructions, and TLB outcomes. [`KernelCost::timing`]
//! converts demand into time as the maximum over overlappable resources —
//! the same reasoning the paper applies in Sections 6.2.3 and 6.2.12 when
//! it attributes phases to the interconnect or to compute.
//!
//! The module also provides the pipeline combinators used to model
//! concurrent kernel execution (Section 5.2): overlapped stages on split SM
//! sets where the transfer of partition pair *i* hides behind the join of
//! pair *i-1*.

use crate::config::HwConfig;
use crate::link::{LinkModel, WireCost};
use crate::tlb::TlbStats;
use crate::units::{Bytes, Ns};

/// Interconnect demand of one kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkTraffic {
    /// Payload streamed CPU -> GPU with perfect coalescing (input scans).
    pub seq_read: Bytes,
    /// Payload streamed GPU -> CPU with perfect coalescing (aligned
    /// 128-byte-multiple flushes, result writes).
    pub seq_write: Bytes,
    /// Random reads from CPU memory (wire cost includes padding/headers).
    pub rand_read: WireCost,
    /// Random/partial writes to CPU memory.
    pub rand_write: WireCost,
}

impl LinkTraffic {
    /// Merge another kernel's traffic into this one.
    pub fn merge(&mut self, o: &LinkTraffic) {
        self.seq_read += o.seq_read;
        self.seq_write += o.seq_write;
        self.rand_read.merge(&o.rand_read);
        self.rand_write.merge(&o.rand_write);
    }

    /// Total payload bytes moved in either direction.
    pub fn payload(&self) -> Bytes {
        self.seq_read + self.seq_write + self.rand_read.payload + self.rand_write.payload
    }

    /// Wire bytes on the CPU -> GPU direction (read data + write control).
    /// Writes are posted, so sequential writes add no return traffic.
    pub fn wire_cpu_to_gpu(&self, link: &LinkModel) -> Bytes {
        let line = link.config().max_payload.0;
        let hdr = link.config().header.0;
        let seq_read_wire = self.seq_read + Bytes(self.seq_read.div_ceil(line) * hdr);
        seq_read_wire + self.rand_read.wire_data_dir + self.rand_write.wire_ctrl_dir
    }

    /// Wire bytes on the GPU -> CPU direction (write data + read control).
    pub fn wire_gpu_to_cpu(&self, link: &LinkModel) -> Bytes {
        let line = link.config().max_payload.0;
        let hdr = link.config().header.0;
        let seq_write_wire = self.seq_write + Bytes(self.seq_write.div_ceil(line) * hdr);
        let seq_read_ctrl = Bytes(self.seq_read.div_ceil(line) * hdr);
        seq_write_wire
            + self.rand_write.wire_data_dir
            + self.rand_read.wire_ctrl_dir
            + seq_read_ctrl
    }

    /// Typed trace attributes for the interconnect demand, wire costs
    /// included (they need the link's packet geometry).
    pub fn trace_attrs(&self, link: &LinkModel) -> Vec<triton_trace::Attr> {
        vec![
            triton_trace::Attr::u64("link_payload_bytes", self.payload().0),
            triton_trace::Attr::u64("link_wire_up_bytes", self.wire_cpu_to_gpu(link).0),
            triton_trace::Attr::u64("link_wire_down_bytes", self.wire_gpu_to_cpu(link).0),
        ]
    }
}

/// GPU memory demand of one kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuMemTraffic {
    /// Sequential/coalesced reads.
    pub read: Bytes,
    /// Sequential/coalesced writes.
    pub write: Bytes,
    /// Random writes (pay `random_write_penalty`).
    pub rand_write: Bytes,
    /// Random reads.
    pub rand_read: Bytes,
}

impl GpuMemTraffic {
    /// Merge another kernel's traffic.
    pub fn merge(&mut self, o: &GpuMemTraffic) {
        self.read += o.read;
        self.write += o.write;
        self.rand_write += o.rand_write;
        self.rand_read += o.rand_read;
    }

    /// Total bytes.
    pub fn total(&self) -> Bytes {
        self.read + self.write + self.rand_write + self.rand_read
    }
}

/// Resource demand accumulated by one kernel launch.
#[derive(Debug, Clone, Default)]
pub struct KernelCost {
    /// Kernel name (appears in time breakdowns, e.g. "Part 1").
    pub name: String,
    /// Interconnect traffic.
    pub link: LinkTraffic,
    /// GPU on-board memory traffic.
    pub gpu_mem: GpuMemTraffic,
    /// Warp instructions issued (drives issue-slot utilisation).
    pub instructions: u64,
    /// Address-translation outcomes.
    pub tlb: TlbStats,
    /// Tuples consumed by the kernel (for per-tuple metrics).
    pub tuples_in: u64,
    /// Tuples produced/written (for tuples-per-transaction metrics).
    pub tuples_out: u64,
    /// SMs this kernel runs on (0 = all configured SMs).
    pub sms: u32,
    /// Extra synchronisation overhead cycles (barriers, lock spinning);
    /// attributed to the "sync" stall bucket.
    pub sync_cycles: u64,
}

impl KernelCost {
    /// New empty cost for a named kernel.
    pub fn new(name: impl Into<String>) -> Self {
        KernelCost {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Merge another cost block (same logical kernel, e.g. per-chunk).
    pub fn merge(&mut self, o: &KernelCost) {
        self.link.merge(&o.link);
        self.gpu_mem.merge(&o.gpu_mem);
        self.instructions += o.instructions;
        self.tlb.merge(&o.tlb);
        self.tuples_in += o.tuples_in;
        self.tuples_out += o.tuples_out;
        self.sync_cycles += o.sync_cycles;
        if self.sms == 0 {
            self.sms = o.sms;
        }
    }

    /// Average tuples written per interconnect memory transaction
    /// (Fig 18b). Falls back to GPU-memory transactions when the kernel
    /// never touches the link.
    pub fn tuples_per_txn(&self) -> f64 {
        // Interconnect transactions when the kernel writes over the link
        // (Fig 18 measures the out-of-core case); GPU-memory transactions
        // otherwise. Staging traffic (e.g. Hierarchical's second tier)
        // does not count against the output coalescing metric.
        let link_txns = self.link.rand_write.transactions + self.link.seq_write.div_ceil(128);
        let txns = if link_txns > 0 {
            link_txns
        } else {
            (self.gpu_mem.write + self.gpu_mem.rand_write).div_ceil(128)
        };
        if txns == 0 {
            return 0.0;
        }
        self.tuples_out as f64 / txns as f64
    }

    /// IOMMU translation requests per input tuple (Fig 14b / Fig 18d).
    pub fn iommu_requests_per_tuple(&self) -> f64 {
        if self.tuples_in == 0 {
            return 0.0;
        }
        self.tlb.full_misses as f64 / self.tuples_in as f64
    }

    /// Typed trace attributes describing this kernel's resource demand
    /// (interconnect, GPU memory, compute, TLB) under the `triton-trace`
    /// naming convention: `snake_case` keys, units as suffixes.
    pub fn trace_attrs(&self, hw: &HwConfig) -> Vec<triton_trace::Attr> {
        let link = LinkModel::new(&hw.link);
        let mut attrs = self.link.trace_attrs(&link);
        attrs.push(triton_trace::Attr::u64(
            "gpu_mem_bytes",
            self.gpu_mem.total().0,
        ));
        attrs.push(triton_trace::Attr::u64("instructions", self.instructions));
        attrs.push(triton_trace::Attr::u64("tuples_in", self.tuples_in));
        attrs.push(triton_trace::Attr::u64("tuples_out", self.tuples_out));
        attrs.push(triton_trace::Attr::u64("sms", u64::from(self.sms)));
        attrs.extend(self.tlb.trace_attrs());
        attrs
    }

    /// Compute the roofline timing of this kernel under `hw`.
    pub fn timing(&self, hw: &HwConfig) -> KernelTiming {
        let link = LinkModel::new(&hw.link);
        let sms = if self.sms == 0 {
            hw.gpu.num_sms
        } else {
            self.sms.min(hw.gpu.num_sms)
        };

        // --- Interconnect: per-direction wire time, with a bidirectional
        // efficiency derating when both directions are loaded.
        let up = self.link.wire_cpu_to_gpu(&link).as_f64();
        let down = self.link.wire_gpu_to_cpu(&link).as_f64();
        let balance = if up + down > 0.0 {
            2.0 * up.min(down) / (up + down)
        } else {
            0.0
        };
        let eff = 1.0 - (1.0 - hw.link.bidir_efficiency) * balance;
        let bw = hw.link.raw_bw_per_dir.0 * eff;
        let t_link_up = Ns(up / bw * 1e9);
        let t_link_down = Ns(down / bw * 1e9);
        let t_link = t_link_up.max(t_link_down);

        // Random-access transaction-rate limit (Fig 6a): all random-read
        // lines, but only partial-line writes.
        let t_txn =
            Ns(self.link.rand_read.transactions as f64 / hw.link.read_txn_rate * 1e9).max(Ns(self
                .link
                .rand_write
                .partial_txns
                as f64
                / hw.link.write_txn_rate
                * 1e9));
        let t_link = t_link.max(t_txn);

        // --- GPU memory: a bandwidth term for streams plus an
        // access-rate term for random sectors (MSHR-limited; reproduces
        // the paper's 4.3 G/s probe vs 1.8 G/s build dissection).
        let gm = &self.gpu_mem;
        let t_gpu_bw = hw.gpu.mem_bandwidth.time_for(gm.total());
        let sector = hw.gpu.gpu_mem_txn.as_f64().max(1.0);
        let t_gpu_rand = Ns((gm.rand_read.as_f64() / sector / hw.gpu.rand_read_rate
            + gm.rand_write.as_f64() / sector / hw.gpu.rand_write_rate)
            * 1e9);
        let t_gpu_mem = t_gpu_bw.max(t_gpu_rand);

        // --- Compute: issue-throughput bound.
        let issue_rate = sms as f64 * hw.gpu.issue_per_cycle * hw.gpu.clock_ghz; // instr/ns
        let t_compute = Ns(self.instructions as f64 / issue_rate);
        let t_sync = Ns(self.sync_cycles as f64 / (sms as f64 * hw.gpu.clock_ghz));

        // --- TLB miss service: walks triggered by *dependent random
        // reads* stall execution and serialise on the IOMMU's page-table
        // walkers (the no-partitioning join's collapse); posted writes
        // and sequential scans miss without stalling the pipeline.
        let t_tlb =
            Ns(self.tlb.serialized_walks as f64 * hw.tlb.walk_service_ns
                / hw.tlb.iommu_walkers as f64);

        let total = t_link.max(t_gpu_mem).max(t_compute).max(t_tlb) + t_sync;
        KernelTiming {
            total,
            t_link,
            t_link_up,
            t_link_down,
            t_gpu_mem,
            t_compute,
            t_tlb,
            t_sync,
            sms,
        }
    }
}

/// Timing decomposition of one kernel.
#[derive(Debug, Clone, Copy)]
pub struct KernelTiming {
    /// End-to-end kernel time.
    pub total: Ns,
    /// Interconnect-bound time (max direction, incl. txn-rate limit).
    pub t_link: Ns,
    /// CPU -> GPU direction wire time.
    pub t_link_up: Ns,
    /// GPU -> CPU direction wire time.
    pub t_link_down: Ns,
    /// GPU memory time.
    pub t_gpu_mem: Ns,
    /// Issue-throughput (compute) time.
    pub t_compute: Ns,
    /// IOMMU walker service time.
    pub t_tlb: Ns,
    /// Barrier/lock overhead.
    pub t_sync: Ns,
    /// SMs used.
    pub sms: u32,
}

impl KernelTiming {
    /// Which resource binds this kernel.
    pub fn bound(&self) -> Bound {
        let m = self
            .t_link
            .max(self.t_gpu_mem)
            .max(self.t_compute)
            .max(self.t_tlb);
        if m == self.t_tlb && self.t_tlb.0 > 0.0 {
            Bound::TlbService
        } else if m == self.t_link && self.t_link.0 > 0.0 {
            Bound::Interconnect
        } else if m == self.t_gpu_mem && self.t_gpu_mem.0 > 0.0 {
            Bound::GpuMemory
        } else {
            Bound::Compute
        }
    }

    /// Interconnect utilisation: the busier direction's wire time over the
    /// kernel's total time (the paper reports measured bandwidth over the
    /// 75 GB/s electrical limit, which is the same ratio).
    pub fn link_utilization(&self) -> f64 {
        if self.total.0 <= 0.0 {
            return 0.0;
        }
        (self.t_link_up.max(self.t_link_down).0 / self.total.0).min(1.0)
    }
}

/// The binding resource of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// NVLink wire or transaction rate.
    Interconnect,
    /// GPU on-board memory bandwidth.
    GpuMemory,
    /// Instruction issue throughput.
    Compute,
    /// IOMMU page-table-walk service rate.
    TlbService,
}

/// Memoizes [`KernelCost::timing`] results for one fixed [`HwConfig`].
///
/// The roofline is a pure function of the cost's numeric fields and the
/// hardware, so within a run (where the hardware never changes) two
/// kernels with the same traffic shape always time identically. Callers
/// that price many same-shaped kernels — skew planning prices three
/// kernels per radix partition, and uniform workloads repeat the same
/// partition totals hundreds of times — key the memo on the bit-exact
/// encoding of every timing-relevant field (the `name` is ignored; it
/// never enters the roofline).
///
/// The cache is bounded and evicts in insertion order, so a pathological
/// stream of distinct shapes degrades to plain recomputation instead of
/// unbounded growth.
#[derive(Debug, Default)]
pub struct TimingCache {
    entries: std::collections::BTreeMap<[u64; 18], KernelTiming>,
    order: std::collections::VecDeque<[u64; 18]>,
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to run the roofline.
    pub misses: u64,
}

/// Entry bound: comfortably above any one join's distinct kernel shapes.
const TIMING_CACHE_CAP: usize = 4096;

impl TimingCache {
    /// New empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bit-exact key over every field [`KernelCost::timing`] reads.
    fn key(cost: &KernelCost) -> [u64; 18] {
        let lt = &cost.link;
        let gm = &cost.gpu_mem;
        let tlb = &cost.tlb;
        [
            lt.seq_read.0,
            lt.seq_write.0,
            lt.rand_read.wire_data_dir.0,
            lt.rand_read.wire_ctrl_dir.0,
            lt.rand_read.transactions,
            lt.rand_read.partial_txns,
            lt.rand_write.wire_data_dir.0,
            lt.rand_write.wire_ctrl_dir.0,
            lt.rand_write.transactions,
            lt.rand_write.partial_txns,
            gm.read.0,
            gm.write.0,
            gm.rand_write.0,
            gm.rand_read.0,
            cost.instructions,
            tlb.serialized_walks,
            u64::from(cost.sms),
            cost.sync_cycles,
        ]
    }

    /// Memoized [`KernelCost::timing`]: identical output, cached by shape.
    pub fn timing(&mut self, cost: &KernelCost, hw: &HwConfig) -> KernelTiming {
        let key = Self::key(cost);
        if let Some(t) = self.entries.get(&key) {
            self.hits += 1;
            return *t;
        }
        self.misses += 1;
        let t = cost.timing(hw);
        if self.entries.len() >= TIMING_CACHE_CAP {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        if self.entries.insert(key, t).is_none() {
            self.order.push_back(key);
        }
        t
    }

    /// Cached shapes currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// GPU stall-reason attribution (Fig 15b / Fig 18f). Percentages of GPU
/// cycles, summing to ~100.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallProfile {
    /// Cycles issuing instructions.
    pub instr_issued: f64,
    /// Stalled on memory dependencies (outstanding loads/stores).
    pub memory_dep: f64,
    /// Stalled on execution dependencies (includes translation latency).
    pub exec_dep: f64,
    /// Stalled on synchronisation (barriers, locks).
    pub sync: f64,
    /// Pipe busy / not selected and other reasons.
    pub other: f64,
}

impl StallProfile {
    /// Attribute stall reasons from a kernel's demand and timing.
    ///
    /// Issue-slot utilisation is exact (`instructions / (SMs x cycles)`);
    /// the non-issuing remainder is split across stall buckets in
    /// proportion to the timing components that forced the wait.
    pub fn from_timing(cost: &KernelCost, timing: &KernelTiming, hw: &HwConfig) -> StallProfile {
        let cycles = timing.total.0 * hw.gpu.clock_ghz * timing.sms as f64 * hw.gpu.issue_per_cycle;
        if cycles <= 0.0 {
            return StallProfile::default();
        }
        let issued = (cost.instructions as f64 / cycles).min(1.0) * 100.0;
        let stall = 100.0 - issued;
        // Weights for the stall split.
        let mem_w = timing.t_link.max(timing.t_gpu_mem).0;
        let tlb_w = timing.t_tlb.0;
        let sync_w = timing.t_sync.0;
        let sum = (mem_w + tlb_w + sync_w).max(1e-12);
        StallProfile {
            instr_issued: issued,
            memory_dep: stall * mem_w / sum * 0.9,
            exec_dep: stall * tlb_w / sum * 0.8 + stall * mem_w / sum * 0.1,
            sync: stall * sync_w / sum,
            other: stall * tlb_w / sum * 0.2,
        }
    }
}

/// Average utilization of each overlappable machine resource by one
/// executing task, expressed as busy-fractions in `[0, 1]`.
///
/// This is the §5.2 arbitration generalized: within one join, concurrent
/// kernels split the SM set and overlap transfer with compute
/// ([`pipeline2`]); across *queries*, the same reasoning applies to every
/// roofline resource. A task that ran dedicated for `T` ns keeping the
/// link busy for `t_link` ns has `link = t_link / T`; while it executes
/// at speed `σ` it occupies `σ * link` of the interconnect.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceVector {
    /// Interconnect (NVLink wire + transaction rate) busy fraction.
    pub link: f64,
    /// GPU on-board memory busy fraction.
    pub gpu_mem: f64,
    /// SM issue-slot busy fraction.
    pub compute: f64,
    /// IOMMU page-table-walker busy fraction.
    pub tlb: f64,
    /// Host CPU busy fraction (CPU phases: prefix sums, CPU joins).
    pub cpu: f64,
}

impl ResourceVector {
    /// The busiest resource's fraction (1.0 for any kernel that is
    /// roofline-bound on something).
    pub fn peak(&self) -> f64 {
        self.link
            .max(self.gpu_mem)
            .max(self.compute)
            .max(self.tlb)
            .max(self.cpu)
    }

    fn as_array(&self) -> [f64; 5] {
        [self.link, self.gpu_mem, self.compute, self.tlb, self.cpu]
    }
}

/// Weighted max-min fair execution speeds for tasks sharing the machine.
///
/// Each task `q` wants to run at its dedicated speed (`σ = 1`); every
/// machine resource `r` caps the sum of `σ_q * u_{q,r}` at 1. Speeds are
/// raised together — proportionally to `weights` — by water-filling:
/// when a resource saturates, its users freeze, and the remaining tasks
/// keep rising. The result is work-conserving: a link-bound query and a
/// compute-bound query both run at full speed side by side (the §5.2
/// overlap, promoted to inter-query scheduling), while identical queries
/// split the machine evenly and finish no later than a serial schedule.
///
/// Returns one speed in `(0, 1]` per task. Panics if `loads` and
/// `weights` differ in length; weights must be positive.
pub fn fair_share_rates(loads: &[ResourceVector], weights: &[f64]) -> Vec<f64> {
    assert_eq!(loads.len(), weights.len());
    let n = loads.len();
    let mut sigma = vec![0.0f64; n];
    if n == 0 {
        return sigma;
    }
    let loads: Vec<[f64; 5]> = loads.iter().map(|l| l.as_array()).collect();
    let mut frozen = vec![false; n];
    const EPS: f64 = 1e-12;
    // At most one entity (task or resource) freezes per round.
    for _ in 0..n + 5 {
        if frozen.iter().all(|&f| f) {
            break;
        }
        // Largest common multiplier t such that sigma_q += t * w_q stays
        // feasible for every resource and every task cap.
        let mut t = f64::INFINITY;
        #[allow(clippy::needless_range_loop)]
        for r in 0..5 {
            let used: f64 = (0..n).map(|q| sigma[q] * loads[q][r]).sum();
            let rising: f64 = (0..n)
                .filter(|&q| !frozen[q])
                .map(|q| weights[q] * loads[q][r])
                .sum();
            if rising > EPS {
                t = t.min((1.0 - used).max(0.0) / rising);
            }
        }
        for q in (0..n).filter(|&q| !frozen[q]) {
            t = t.min((1.0 - sigma[q]).max(0.0) / weights[q]);
        }
        if !t.is_finite() {
            // No unfrozen task touches any resource: all can run at 1.
            for q in 0..n {
                if !frozen[q] {
                    sigma[q] = 1.0;
                    frozen[q] = true;
                }
            }
            break;
        }
        for q in (0..n).filter(|&q| !frozen[q]) {
            sigma[q] += t * weights[q];
        }
        // Freeze tasks at their cap and users of saturated resources.
        for q in 0..n {
            if !frozen[q] && sigma[q] >= 1.0 - 1e-9 {
                sigma[q] = 1.0;
                frozen[q] = true;
            }
        }
        #[allow(clippy::needless_range_loop)]
        for r in 0..5 {
            let used: f64 = (0..n).map(|q| sigma[q] * loads[q][r]).sum();
            if used >= 1.0 - 1e-9 {
                for q in 0..n {
                    if !frozen[q] && loads[q][r] > EPS {
                        frozen[q] = true;
                    }
                }
            }
        }
    }
    // Every task makes progress, even under extreme contention.
    for s in &mut sigma {
        *s = s.clamp(1e-6, 1.0);
    }
    sigma
}

/// Machine-wide resource utilization implied by a set of tasks running at
/// the given speeds: for each roofline resource `r`, the busy fraction is
/// `Σ_q σ_q · u_{q,r}`, clamped to `[0, 1]`.
///
/// The inputs are the same cost-model-priced [`ResourceVector`]s and
/// [`fair_share_rates`] speeds the scheduler arbitrates with, so this is
/// the telemetry view of §5.2's overlap: `link` is NVLink wire
/// utilization, `compute` is SM issue-slot occupancy, and so on. Returns
/// the zero vector when nothing runs. Panics if the slices differ in
/// length (same contract as [`fair_share_rates`]).
pub fn aggregate_utilization(loads: &[ResourceVector], rates: &[f64]) -> ResourceVector {
    assert_eq!(loads.len(), rates.len());
    let mut total = ResourceVector::default();
    for (l, &s) in loads.iter().zip(rates) {
        total.link += s * l.link;
        total.gpu_mem += s * l.gpu_mem;
        total.compute += s * l.compute;
        total.tlb += s * l.tlb;
        total.cpu += s * l.cpu;
    }
    ResourceVector {
        link: total.link.clamp(0.0, 1.0),
        gpu_mem: total.gpu_mem.clamp(0.0, 1.0),
        compute: total.compute.clamp(0.0, 1.0),
        tlb: total.tlb.clamp(0.0, 1.0),
        cpu: total.cpu.clamp(0.0, 1.0),
    }
}

/// A busy fraction as integer parts-per-million — the float→integer
/// boundary for utilization gauges, so downstream telemetry stays in
/// integer arithmetic. Non-finite and negative inputs clamp to 0.
pub fn utilization_ppm(fraction: f64) -> u64 {
    if fraction.is_finite() && fraction > 0.0 {
        (fraction.min(1.0) * 1_000_000.0) as u64
    } else {
        0
    }
}

/// Sum kernel times sequentially (barrier between each).
pub fn serial(times: &[Ns]) -> Ns {
    times.iter().copied().sum()
}

/// Two-stage software pipeline over per-item times: stage B of item *i*
/// overlaps stage A of item *i+1* (the Triton join's concurrent-kernel
/// scheme, Fig 11). Returns total time.
pub fn pipeline2(a: &[Ns], b: &[Ns]) -> Ns {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return Ns::ZERO;
    }
    // a_0, then steady state max(a_{i+1}, b_i), then b_last.
    let mut total = a[0];
    for i in 0..a.len() - 1 {
        total += a[i + 1].max(b[i]);
    }
    total += b[a.len() - 1];
    total
}

/// [`pipeline2`] with an execution order: items are fed through the
/// two-stage pipeline in the sequence given by `order` (a permutation of
/// `0..a.len()`), so a scheduler can reorder partition pairs without the
/// caller re-shuffling its lane vectors. `order = [0, 1, 2, ...]`
/// reproduces `pipeline2(a, b)` exactly.
pub fn pipeline2_scheduled(a: &[Ns], b: &[Ns], order: &[usize]) -> Ns {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), order.len());
    if order.is_empty() {
        return Ns::ZERO;
    }
    let mut total = a[order[0]];
    for w in order.windows(2) {
        total += a[w[1]].max(b[w[0]]);
    }
    total += b[order[order.len() - 1]];
    total
}

/// Longest-processing-time-first order for a two-stage pipeline: items
/// sorted by descending total stage time (`a_i + b_i`), ties broken by
/// ascending index so the permutation is deterministic. Running the heavy
/// pairs first gives the pipeline the longest runway to hide stage-A
/// transfers behind stage-B joins — the skew scheduler's heuristic.
pub fn lpt_order(a: &[Ns], b: &[Ns]) -> Vec<usize> {
    assert_eq!(a.len(), b.len());
    let mut order: Vec<usize> = (0..a.len()).collect();
    order.sort_by(|&x, &y| {
        let tx = a[x] + b[x];
        let ty = a[y] + b[y];
        // Descending by time; `total_cmp` keeps the sort total even if a
        // cost model ever produces a NaN.
        ty.0.total_cmp(&tx.0).then(x.cmp(&y))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Alignment;

    fn hw() -> HwConfig {
        HwConfig::ac922()
    }

    #[test]
    fn seq_read_kernel_is_link_bound() {
        let mut k = KernelCost::new("scan");
        k.link.seq_read = Bytes::gib(4);
        k.instructions = 1000;
        let t = k.timing(&hw());
        assert_eq!(t.bound(), Bound::Interconnect);
        // ~4 GiB / 66.7 GB/s effective.
        let expect = Bytes::gib(4).as_f64() / 66.7e9;
        assert!(
            (t.total.as_secs() / expect - 1.0).abs() < 0.1,
            "{}",
            t.total
        );
    }

    #[test]
    fn timing_cache_replays_the_roofline_exactly() {
        let h = hw();
        let mut cache = TimingCache::new();
        let mut k = KernelCost::new("scan");
        k.link.seq_read = Bytes::gib(4);
        k.instructions = 1000;
        let direct = k.timing(&h);
        let miss = cache.timing(&k, &h);
        // The name never enters the roofline, so a renamed same-shape
        // kernel must hit.
        let renamed = KernelCost {
            name: String::from("scan-2"),
            ..k.clone()
        };
        let hit = cache.timing(&renamed, &h);
        assert_eq!(format!("{direct:?}"), format!("{miss:?}"));
        assert_eq!(format!("{direct:?}"), format!("{hit:?}"));
        assert_eq!((cache.hits, cache.misses), (1, 1));
        assert_eq!(cache.len(), 1);
        // A shape change is a distinct key, not a stale replay.
        let mut wider = k.clone();
        wider.link.seq_read = Bytes::gib(8);
        let other = cache.timing(&wider, &h);
        assert!(other.total.0 > miss.total.0);
        assert_eq!((cache.hits, cache.misses), (1, 2));
    }

    #[test]
    fn compute_kernel_scales_with_sms() {
        let mut k = KernelCost::new("compute");
        k.instructions = 1_000_000_000;
        let t80 = k.timing(&hw());
        let t20 = k.timing(&hw().with_sms(20));
        assert!((t20.total.0 / t80.total.0 - 4.0).abs() < 0.05);
        assert_eq!(t80.bound(), Bound::Compute);
    }

    #[test]
    fn tlb_bound_kernel() {
        let h = hw();
        let mut k = KernelCost::new("probe");
        k.tuples_in = 1_000_000;
        k.tlb.full_misses = 1_600_000; // ~1.6 walks/tuple (5.3 requests)
        k.tlb.serialized_walks = 1_600_000;
        let t = k.timing(&h);
        assert_eq!(t.bound(), Bound::TlbService);
        // Throughput floor near the paper's ~1.1 M tuples/s.
        let tput = 1_000_000.0 / t.total.as_secs();
        assert!((0.6e6..2.4e6).contains(&tput), "tput {tput}");
    }

    #[test]
    fn bidirectional_streams_derated() {
        let h = hw();
        let mut k = KernelCost::new("partition");
        k.link.seq_read = Bytes::gib(8);
        k.link.seq_write = Bytes::gib(8);
        let t = k.timing(&h);
        // Effective per-direction bandwidth should be below unidirectional
        // effective bw and around the paper's 55.9 GiB/s bidirectional.
        let gibs = Bytes::gib(8).as_gib() / t.total.as_secs();
        assert!((48.0..=60.0).contains(&gibs), "got {gibs} GiB/s");
    }

    #[test]
    fn random_gpu_writes_slower_than_reads() {
        // Section 6.2.9: random GPU-memory reads are 3.2-6x faster than
        // writes.
        let h = hw();
        let mut r = KernelCost::new("r");
        r.gpu_mem.rand_read = Bytes::gib(1);
        let mut w = KernelCost::new("w");
        w.gpu_mem.rand_write = Bytes::gib(1);
        let ratio = w.timing(&h).total.0 / r.timing(&h).total.0;
        assert!((2.0..=6.5).contains(&ratio), "ratio {ratio}");
        // And both are slower than a sequential stream of the same size.
        let mut s = KernelCost::new("s");
        s.gpu_mem.write = Bytes::gib(1);
        assert!(w.timing(&h).total.0 > s.timing(&h).total.0 * 3.0);
    }

    #[test]
    fn pipeline2_overlaps() {
        let a = [Ns(10.0), Ns(10.0), Ns(10.0)];
        let b = [Ns(4.0), Ns(4.0), Ns(4.0)];
        // a0 + max(a1,b0) + max(a2,b1) + b2 = 10+10+10+4.
        assert_eq!(pipeline2(&a, &b), Ns(34.0));
        let b2 = [Ns(20.0), Ns(20.0), Ns(20.0)];
        // a0 + b chain dominates: 10 + 20 + 20 + 20 = 70.
        assert_eq!(pipeline2(&a, &b2), Ns(70.0));
    }

    #[test]
    fn pipeline2_scheduled_identity_matches_pipeline2() {
        let a = [Ns(10.0), Ns(3.0), Ns(7.0), Ns(1.0)];
        let b = [Ns(2.0), Ns(9.0), Ns(5.0), Ns(6.0)];
        let identity: Vec<usize> = (0..a.len()).collect();
        assert_eq!(pipeline2_scheduled(&a, &b, &identity), pipeline2(&a, &b));
        assert_eq!(pipeline2_scheduled(&[], &[], &[]), Ns::ZERO);
    }

    #[test]
    fn pipeline2_scheduled_reorders() {
        // In submission order both heavy stages are exposed (10 + 1 + 10);
        // running the join-heavy pair first hides the transfer-heavy
        // pair's stage A behind it (1 + 10 + 1).
        let a = [Ns(10.0), Ns(1.0)];
        let b = [Ns(1.0), Ns(10.0)];
        let submission = pipeline2(&a, &b);
        let reordered = pipeline2_scheduled(&a, &b, &[1, 0]);
        assert_eq!(submission, Ns(21.0));
        assert_eq!(reordered, Ns(12.0));
    }

    #[test]
    fn lpt_order_sorts_by_total_time_descending() {
        let a = [Ns(1.0), Ns(5.0), Ns(2.0), Ns(5.0)];
        let b = [Ns(1.0), Ns(5.0), Ns(9.0), Ns(5.0)];
        // Totals: 2, 10, 11, 10 → order [2, 1, 3, 0] (tie 1 vs 3 by index).
        assert_eq!(lpt_order(&a, &b), vec![2, 1, 3, 0]);
    }

    #[test]
    fn merge_accumulates() {
        let h = hw();
        let link = LinkModel::new(&h.link);
        let mut k = KernelCost::new("x");
        k.link
            .rand_write
            .merge(&link.write(Bytes(128), Alignment::Natural));
        let mut k2 = KernelCost::new("x");
        k2.link
            .rand_write
            .merge(&link.write(Bytes(128), Alignment::Natural));
        k.merge(&k2);
        assert_eq!(k.link.rand_write.transactions, 2);
    }

    #[test]
    fn stall_profile_sums_to_100() {
        let h = hw();
        let mut k = KernelCost::new("p");
        k.link.seq_read = Bytes::gib(1);
        k.instructions = 50_000_000;
        k.tuples_in = 1;
        let t = k.timing(&h);
        let s = StallProfile::from_timing(&k, &t, &h);
        let sum = s.instr_issued + s.memory_dep + s.exec_dep + s.sync + s.other;
        assert!((85.0..=100.5).contains(&sum), "sum {sum}");
        assert!(s.memory_dep > s.sync);
    }

    #[test]
    fn fair_rates_identical_link_bound_queries_split_evenly() {
        let q = ResourceVector {
            link: 1.0,
            compute: 0.2,
            ..Default::default()
        };
        let rates = fair_share_rates(&[q; 4], &[1.0; 4]);
        for r in rates {
            assert!((r - 0.25).abs() < 1e-6, "rate {r}");
        }
    }

    #[test]
    fn fair_rates_disjoint_bottlenecks_overlap_fully() {
        // A link-bound and a compute-bound query barely contend: both
        // should run at (nearly) dedicated speed — the §5.2 overlap
        // promoted to inter-query scheduling.
        let link_bound = ResourceVector {
            link: 1.0,
            compute: 0.05,
            ..Default::default()
        };
        let compute_bound = ResourceVector {
            compute: 0.9,
            link: 0.05,
            ..Default::default()
        };
        let rates = fair_share_rates(&[link_bound, compute_bound], &[1.0, 1.0]);
        assert!(rates[0] > 0.9, "link-bound rate {}", rates[0]);
        assert!(rates[1] > 0.9, "compute-bound rate {}", rates[1]);
    }

    #[test]
    fn fair_rates_never_oversubscribe_a_resource() {
        let qs = [
            ResourceVector {
                link: 0.8,
                gpu_mem: 0.5,
                compute: 0.3,
                ..Default::default()
            },
            ResourceVector {
                link: 0.6,
                gpu_mem: 0.9,
                compute: 0.1,
                ..Default::default()
            },
            ResourceVector {
                link: 0.2,
                gpu_mem: 0.2,
                compute: 1.0,
                ..Default::default()
            },
        ];
        let rates = fair_share_rates(&qs, &[1.0, 2.0, 1.0]);
        let mut totals = [0.0f64; 5];
        for (q, &r) in qs.iter().zip(&rates) {
            for (t, u) in totals.iter_mut().zip(q.as_array()) {
                *t += r * u;
            }
        }
        for t in totals {
            assert!(t <= 1.0 + 1e-6, "oversubscribed: {t}");
        }
        for r in rates {
            assert!(r > 0.0 && r <= 1.0);
        }
    }

    #[test]
    fn fair_rates_weights_bias_the_split() {
        let q = ResourceVector {
            link: 1.0,
            ..Default::default()
        };
        let rates = fair_share_rates(&[q, q], &[3.0, 1.0]);
        assert!((rates[0] / rates[1] - 3.0).abs() < 1e-6);
        assert!((rates[0] + rates[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fair_rates_lone_query_runs_dedicated() {
        let q = ResourceVector {
            link: 1.0,
            gpu_mem: 0.7,
            ..Default::default()
        };
        assert_eq!(fair_share_rates(&[q], &[1.0]), vec![1.0]);
        assert!(fair_share_rates(&[], &[]).is_empty());
    }

    #[test]
    fn link_utilization_of_pure_transfer_is_high() {
        let h = hw();
        let mut k = KernelCost::new("scan");
        k.link.seq_read = Bytes::gib(2);
        let t = k.timing(&h);
        assert!(t.link_utilization() > 0.95);
    }

    #[test]
    fn aggregate_utilization_sums_and_clamps() {
        let link_bound = ResourceVector {
            link: 1.0,
            gpu_mem: 0.2,
            ..ResourceVector::default()
        };
        let compute_bound = ResourceVector {
            compute: 1.0,
            gpu_mem: 0.3,
            ..ResourceVector::default()
        };
        let loads = [link_bound, compute_bound];
        let rates = fair_share_rates(&loads, &[1.0, 1.0]);
        let u = aggregate_utilization(&loads, &rates);
        // Two complementary bound tasks at full speed: both resources
        // saturated, memory traffic additive.
        assert!(u.link > 0.99, "{u:?}");
        assert!(u.compute > 0.99, "{u:?}");
        assert!((u.gpu_mem - 0.5).abs() < 1e-9, "{u:?}");
        assert!((u.cpu - 0.0).abs() < 1e-12, "{u:?}");
        // Never above 1 even when demand oversubscribes.
        let o = aggregate_utilization(&[link_bound; 3], &[1.0; 3]);
        assert!((o.link - 1.0).abs() < 1e-12, "{o:?}");
        assert!(aggregate_utilization(&[], &[]).peak() < 1e-12);
    }

    #[test]
    fn utilization_ppm_is_a_safe_boundary() {
        assert_eq!(utilization_ppm(0.0), 0);
        assert_eq!(utilization_ppm(-0.5), 0);
        assert_eq!(utilization_ppm(f64::NAN), 0);
        assert_eq!(utilization_ppm(2.0), 1_000_000);
        assert_eq!(utilization_ppm(0.5), 500_000);
    }
}
