// Fixture: BTree collections are fine; HashMap in test code, strings,
// and comments must not trip D1.
use std::collections::BTreeMap;

/// Mentions HashMap in a doc comment — not a violation.
pub fn counts(xs: &[u64]) -> usize {
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    let _msg = "HashMap inside a string literal";
    let _raw = r#"HashSet inside a raw string"#;
    m.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}
