//! The Standard radix partitioner: direct scatter with global atomic
//! offsets.
//!
//! Each thread hashes its tuple, atomically bumps the destination
//! partition's global counter, and stores the 16-byte tuple directly at
//! the returned offset. Every store is an isolated, misaligned random
//! write — the worst case for the interconnect packet model — and every
//! store translates a fresh address, so the TLB working set is touched
//! per *tuple* rather than per flush. The paper measures this algorithm at
//! 3.6-4x below Hierarchical, with runtimes reaching 10 minutes at high
//! fanouts (Section 6.2.6).

use triton_hw::kernel::KernelCost;
use triton_hw::HwConfig;

use crate::common::{ChargeCtx, Partitioned, PassConfig, Span};
use crate::partitioner::{Algorithm, Emu, GpuPartitioner};
use crate::prefix_sum::HistogramResult;

/// The Standard scatter partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardScatter;

impl GpuPartitioner for StandardScatter {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Standard
    }

    fn partition(
        &self,
        keys: &[u64],
        rids: &[u64],
        hist: &HistogramResult,
        input: &Span,
        output: &Span,
        pass: &PassConfig,
        hw: &HwConfig,
    ) -> (Partitioned, KernelCost) {
        let n = keys.len();
        let mut emu = Emu::new(
            "partition (standard)",
            n,
            hist,
            input,
            output,
            pass,
            hw,
            false,
        );

        for (s, e) in Emu::chunks(n, pass, hw, pass.fanout() * 32) {
            let mut i = s;
            while i < e {
                let batch = 32.min(e - i);
                emu.charge_input(i, batch);
                for j in i..i + batch {
                    let p = emu.pid(keys[j]);
                    // Atomic fetch-add on the partition counter: a random
                    // read-modify-write in the output memory. The counter
                    // array is tiny, so its translations hit; the cost is
                    // the round trip itself.
                    {
                        let addr = emu.model_addr[p]; // frontier address
                        let mut ctx = ChargeCtx {
                            cost: &mut emu.cost,
                            link: &emu.link,
                            tlb: &mut emu.tlb,
                        };
                        ctx.random_read(emu.output, addr, 8);
                    }
                    // The tuple store itself: 16 misaligned bytes.
                    emu.flush(p, &[(keys[j], rids[j])], false);
                }
                emu.cost.instructions += batch as u64 * 8;
                i += batch;
            }
        }
        emu.finish(hist, pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::testutil::check_partitioner;
    use crate::prefix_sum::compute_histogram;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn functional_correctness() {
        check_partitioner(&StandardScatter, 5, 0);
        check_partitioner(&StandardScatter, 3, 4);
    }

    #[test]
    fn every_tuple_is_a_partial_write() {
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(1, 200).generate();
        let pass = PassConfig::new(4, 0);
        let hist = compute_histogram(&w.r.keys, 160, 4, 0);
        let (_, cost) = StandardScatter.partition(
            &w.r.keys,
            &w.r.rids,
            &hist,
            &Span::cpu(0),
            &Span::cpu(1 << 40),
            &pass,
            &hw,
        );
        // One partial write transaction (at least) per tuple.
        assert!(cost.link.rand_write.partial_txns >= w.r.len() as u64);
        // Atomic round trips: one random read per tuple.
        assert!(cost.link.rand_read.transactions >= w.r.len() as u64);
    }
}
