//! The GPU no-partitioning hash join (the paper's GPU baseline).
//!
//! A single global hash table is built from R and probed with S. The
//! table lives in GPU memory while it fits; beyond that it spills into a
//! hybrid GPU/CPU array (Fig 19 caches a configurable slice of it in GPU
//! memory). Every probe is an isolated random access, so the operator
//! inherits all the pathologies Sections 3.4 and 6.2.2 quantify:
//!
//! * past the GPU memory capacity, probes cross the interconnect at
//!   16-byte granularity (sharp cliff, Fig 13);
//! * past the translation coverage, almost every probe triggers an IOMMU
//!   page-table walk — with linear probing at a 50% load factor the table
//!   doubles, crossing that limit first and collapsing throughput by
//!   >100x (Fig 13/14).

use triton_datagen::{Workload, TUPLE_BYTES};
use triton_hw::kernel::KernelCost;
use triton_hw::link::LinkModel;
use triton_hw::power::Executor;
use triton_hw::tlb::TlbSim;
use triton_hw::units::Bytes;
use triton_hw::HwConfig;
use triton_mem::SimAllocator;
use triton_part::{ChargeCtx, Span};

use crate::hash_table::{HashScheme, LinearProbeTable, PerfectArrayTable};
use crate::report::{JoinReport, JoinResult, PhaseReport};

/// Instruction estimates per tuple for the NPJ kernels (atomicCAS insert
/// loops and dependent probe chains are instruction-heavy; calibrated to
/// the paper's 2.5 G tuples/s in-GPU ceiling).
const BUILD_INSTR: u64 = 48;
const PROBE_INSTR: u64 = 44;
const EXTRA_PROBE_INSTR: u64 = 6;

/// Configuration of the no-partitioning join.
///
/// ```
/// use triton_core::{NoPartitioningJoin, reference_join};
/// use triton_datagen::WorkloadSpec;
/// use triton_hw::HwConfig;
/// let hw = HwConfig::ac922().scaled(4096);
/// let w = WorkloadSpec::paper_default(4, 2048).generate();
/// let report = NoPartitioningJoin::perfect().run(&w, &hw);
/// assert_eq!(report.result, reference_join(&w));
/// ```
#[derive(Debug, Clone)]
pub struct NoPartitioningJoin {
    /// Hashing scheme: [`HashScheme::LinearProbing`] or
    /// [`HashScheme::Perfect`].
    pub scheme: HashScheme,
    /// Load factor for linear probing (paper: 50%).
    pub load_factor: f64,
    /// GPU cache budget for the hash table; `None` caches as much as
    /// GPU memory allows (Fig 19 sweeps this).
    pub cache_bytes: Option<Bytes>,
}

impl NoPartitioningJoin {
    /// The paper's default linear-probing configuration.
    pub fn linear_probing() -> Self {
        NoPartitioningJoin {
            scheme: HashScheme::LinearProbing,
            load_factor: 0.5,
            cache_bytes: None,
        }
    }

    /// The perfect-hashing (array join) configuration.
    pub fn perfect() -> Self {
        NoPartitioningJoin {
            scheme: HashScheme::Perfect,
            load_factor: 1.0,
            cache_bytes: None,
        }
    }

    /// Hash-table bytes for a build side of `n` tuples.
    pub fn table_bytes(&self, n: usize) -> u64 {
        match self.scheme {
            HashScheme::LinearProbing => {
                LinearProbeTable::capacity_for(n, self.load_factor) as u64 * TUPLE_BYTES
            }
            HashScheme::Perfect => n as u64 * TUPLE_BYTES,
            HashScheme::BucketChaining => {
                // Not used by the NPJ; sized like perfect plus chains.
                n as u64 * (TUPLE_BYTES + 4)
            }
        }
    }

    /// Execute the join on `hw`.
    pub fn run(&self, w: &Workload, hw: &HwConfig) -> JoinReport {
        let n_r = w.r.len();
        let table_bytes = self.table_bytes(n_r);
        let mut alloc = SimAllocator::new(hw);
        // An eighth of GPU memory stays reserved for the runtime and
        // staging buffers; the rest can cache the hash table.
        let auto = hw.gpu.mem_capacity.0 - hw.gpu.mem_capacity.0 / 8;
        let budget = self
            .cache_bytes
            .map(|b| b.0)
            .unwrap_or(auto)
            .min(alloc.available(triton_hw::MemSide::Gpu).0);
        let layout = alloc
            .alloc_hybrid(Bytes(table_bytes), Bytes(budget))
            // triton-lint: allow(p1) -- sim-allocator exhaustion means a misconfigured scale, not a runtime condition
            .expect("CPU memory exhausted for hash table");
        let table_span = Span::hybrid(layout);
        let input_span = Span::cpu(0);

        let link = LinkModel::new(&hw.link);
        let mut tlb = TlbSim::new(hw);
        let mut result = JoinResult::empty();

        // --- Build kernel.
        let mut build = KernelCost::new("Build");
        build.tuples_in = n_r as u64;
        match self.scheme {
            HashScheme::LinearProbing => {
                let (table, _) = LinearProbeTable::build(&w.r.keys, &w.r.rids, self.load_factor);
                // Replay insertions for exact slot addresses.
                let mut shadow = vec![false; table.capacity()];
                let mask = table.capacity() - 1;
                let mut ctx = ChargeCtx {
                    cost: &mut build,
                    link: &link,
                    tlb: &mut tlb,
                };
                for (i, &k) in w.r.keys.iter().enumerate() {
                    ctx.seq_read(&input_span, i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                    let mut s = table.first_slot(k);
                    let mut extra = 0u64;
                    while shadow[s] {
                        ctx.random_read(&table_span, s as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        s = (s + 1) & mask;
                        extra += 1;
                    }
                    shadow[s] = true;
                    ctx.scatter_write(&table_span, s as u64 * TUPLE_BYTES, TUPLE_BYTES);
                    ctx.cost.instructions += BUILD_INSTR + extra * EXTRA_PROBE_INSTR;
                }
                let _ = ctx;
                let build_phase = PhaseReport::gpu(build, hw);

                // --- Probe kernel.
                let mut probe = KernelCost::new("Probe");
                probe.tuples_in = w.s.len() as u64;
                {
                    let mut ctx = ChargeCtx {
                        cost: &mut probe,
                        link: &link,
                        tlb: &mut tlb,
                    };
                    for (i, (&k, &srid)) in w.s.keys.iter().zip(&w.s.rids).enumerate() {
                        ctx.seq_read(&input_span, i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        let (hit, accesses, first) = table.probe(k);
                        for a in 0..accesses as usize {
                            let slot = (first + a) & mask;
                            ctx.random_read(&table_span, slot as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        }
                        ctx.cost.instructions +=
                            PROBE_INSTR + (accesses as u64 - 1) * EXTRA_PROBE_INSTR;
                        if let Some(rrid) = hit {
                            result.add(rrid, srid);
                        }
                    }
                }
                let probe_phase = PhaseReport::gpu(probe, hw);
                self.finish(w, vec![build_phase, probe_phase], result)
            }
            HashScheme::Perfect | HashScheme::BucketChaining => {
                let table = PerfectArrayTable::build(&w.r.keys, &w.r.rids, n_r);
                {
                    let mut ctx = ChargeCtx {
                        cost: &mut build,
                        link: &link,
                        tlb: &mut tlb,
                    };
                    for (i, &k) in w.r.keys.iter().enumerate() {
                        ctx.seq_read(&input_span, i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        let slot = table.slot(k);
                        ctx.scatter_write(&table_span, slot as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        ctx.cost.instructions += BUILD_INSTR;
                    }
                }
                let build_phase = PhaseReport::gpu(build, hw);

                let mut probe = KernelCost::new("Probe");
                probe.tuples_in = w.s.len() as u64;
                {
                    let mut ctx = ChargeCtx {
                        cost: &mut probe,
                        link: &link,
                        tlb: &mut tlb,
                    };
                    for (i, (&k, &srid)) in w.s.keys.iter().zip(&w.s.rids).enumerate() {
                        ctx.seq_read(&input_span, i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        let slot = table.slot(k);
                        ctx.random_read(&table_span, slot as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        ctx.cost.instructions += PROBE_INSTR;
                        if let Some(rrid) = table.probe(k) {
                            result.add(rrid, srid);
                        }
                    }
                }
                let probe_phase = PhaseReport::gpu(probe, hw);
                self.finish(w, vec![build_phase, probe_phase], result)
            }
        }
    }

    fn finish(&self, w: &Workload, phases: Vec<PhaseReport>, result: JoinResult) -> JoinReport {
        let total = phases.iter().map(|p| p.time).sum();
        JoinReport {
            name: format!("GPU No-Partitioning Join ({})", self.scheme.name()),
            phases,
            total,
            tuples_actual: w.total_tuples(),
            tuples_modeled: w.total_tuples_modeled(),
            result,
            executor: Executor::Gpu,
            overlap: None,
            placement: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn npj_result_matches_reference() {
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(1, 100).generate();
        let expect = reference_join(&w);
        for join in [
            NoPartitioningJoin::linear_probing(),
            NoPartitioningJoin::perfect(),
        ] {
            let rep = join.run(&w, &hw);
            assert_eq!(rep.result, expect, "{}", rep.name);
            // FK join: every S tuple matches.
            assert_eq!(rep.result.matches, w.s.len() as u64);
        }
    }

    #[test]
    fn lp_table_twice_perfect_table() {
        let npj_lp = NoPartitioningJoin::linear_probing();
        let npj_pf = NoPartitioningJoin::perfect();
        let n = 1 << 20;
        assert_eq!(npj_lp.table_bytes(n), 2 * npj_pf.table_bytes(n));
    }

    #[test]
    fn in_gpu_table_avoids_the_link_for_probes() {
        let hw = HwConfig::ac922().scaled(1024);
        // Small workload: table fits GPU memory entirely.
        let w = WorkloadSpec::paper_default(16, 1024).generate();
        let rep = NoPartitioningJoin::perfect().run(&w, &hw);
        let probe = rep.phases.iter().find(|p| p.name == "Probe").unwrap();
        let c = probe.cost.as_ref().unwrap();
        assert_eq!(c.link.rand_read.transactions, 0, "probes must stay local");
        assert!(c.gpu_mem.rand_read.0 > 0);
    }

    #[test]
    fn out_of_core_lp_is_walk_bound() {
        let hw = HwConfig::ac922().scaled(1024);
        // 2048 M modeled: LP table (64 GiB modeled) far beyond the 32 GiB
        // translation coverage.
        let w = WorkloadSpec::paper_default(2048, 1024).generate();
        let rep = NoPartitioningJoin::linear_probing().run(&w, &hw);
        // Paper: ~5.3 IOMMU requests per tuple, throughput collapses to
        // ~1.1 M tuples/s.
        let req = rep.iommu_requests_per_tuple(&hw);
        assert!(req > 1.0, "requests/tuple {req}");
        let tput = rep.throughput_gtps();
        assert!(tput < 0.02, "LP must collapse, got {tput} G tuples/s");
    }

    #[test]
    fn out_of_core_perfect_degrades_but_survives() {
        let hw = HwConfig::ac922().scaled(1024);
        let w = WorkloadSpec::paper_default(2048, 1024).generate();
        let pf = NoPartitioningJoin::perfect().run(&w, &hw);
        let lp = NoPartitioningJoin::linear_probing().run(&w, &hw);
        // Paper: perfect hashing is up to 400x faster than linear probing
        // out of core; it lands near 0.5 G tuples/s.
        let ratio = pf.throughput_gtps() / lp.throughput_gtps();
        assert!(ratio > 20.0, "perfect/LP ratio {ratio}");
        assert!(
            (0.2..1.2).contains(&pf.throughput_gtps()),
            "perfect out-of-core tput {}",
            pf.throughput_gtps()
        );
    }
}
