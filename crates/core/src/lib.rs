//! # triton-core
//!
//! The Triton join — a GPU-partitioned, hierarchical hybrid hash join for
//! fast interconnects (Lutz et al., SIGMOD 2022) — together with every
//! baseline the paper evaluates, executing over a simulated AC922-class
//! machine (see `triton-hw`).
//!
//! Operators (all functional: they produce verifiable join results):
//!
//! * [`TritonJoin`] — the paper's contribution (Section 5): GPU radix
//!   partitioning over the interconnect, a hybrid GPU/CPU cached working
//!   set, and concurrent-kernel transfer/compute overlap.
//! * [`NoPartitioningJoin`] — the GPU baseline: one global hash table
//!   (linear probing or perfect hashing).
//! * [`CpuRadixJoin`] — the tuned multi-core baselines (POWER9, Xeon).
//! * [`CpuPartitionedJoin`] — the prior CPU-partitioned strategy
//!   (Sioulas et al.), re-optimised for NVLink 2.0.
//! * [`materialize`] — the tuple-width / materialization experiment.
//!
//! # Quick start
//!
//! ```
//! use triton_core::TritonJoin;
//! use triton_datagen::WorkloadSpec;
//! use triton_hw::HwConfig;
//!
//! // A scaled-down AC922 and a paper-style workload.
//! let hw = HwConfig::ac922().scaled(2048);
//! let workload = WorkloadSpec::paper_default(8, 512).generate();
//! let report = TritonJoin::default().run(&workload, &hw);
//! assert_eq!(report.result.matches, workload.s.len() as u64);
//! println!("{:.2} G tuples/s", report.throughput_gtps());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregate;
pub mod bloom;
pub mod cpu_partitioned;
pub mod cpu_radix;
pub mod elastic;
pub mod hash_table;
pub mod materialize;
pub mod multi_gpu;
pub mod npj;
pub mod reference;
pub mod report;
pub mod skew;
pub mod trace;
pub mod triton;

pub use aggregate::{
    gpu_distinct, npj_style_aggregate, reference_aggregate, AggregateResult, GpuAggregation,
    GroupAggregate,
};
pub use bloom::BloomFilter;
pub use cpu_partitioned::CpuPartitionedJoin;
pub use cpu_radix::CpuRadixJoin;
pub use elastic::{levels_needed, spill_order, ElasticPolicy, GrantSchedule, GrantStep};
pub use hash_table::{
    BucketChainTable, HashScheme, LinearProbeTable, PerfectArrayTable, BUCKET_CHAIN_ENTRIES,
};
pub use materialize::{run_with_materialization, Materialization};
pub use multi_gpu::MultiGpuTritonJoin;
pub use npj::NoPartitioningJoin;
pub use reference::reference_join;
pub use report::{
    JoinReport, JoinResult, OverlapLanes, PairPlacement, PhaseReport, PlacementReport,
};
pub use skew::{SkewMechanisms, SkewPolicy};
pub use trace::{phase_bytes, phase_key, phase_progress, record_overlap, record_report};
pub use triton::{JoinRunOptions, TritonJoin};
