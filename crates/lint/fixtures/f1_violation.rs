//! F1 fixture: report time fields fed from numeric literals instead of
//! priced costs. Three hits expected.

pub fn literal_cpu_phase() -> PhaseReport {
    PhaseReport::cpu("format", Ns(1500.0))
}

pub fn literal_struct_time() -> PhaseReport {
    PhaseReport {
        name: "fixup".to_string(),
        time: Ns(2.0e6),
        timing: None,
        cost: None,
        stalls: Vec::new(),
    }
}

pub fn literal_join_total(phases: Vec<PhaseReport>) -> JoinReport {
    JoinReport {
        name: "q1".to_string(),
        phases,
        total: Ns(30.0) * 2.0,
        tuples_actual: 0,
    }
}
