//! TPC-H-shaped plan sweep: Q3/Q9-like select → join → join → aggregate
//! plans over Zipf-correlated foreign keys, GPU-resident pipelining vs
//! materialize-everything, over workload scale and skew.
//!
//! Expected shape: the pipelined executor keeps intermediate edges in
//! GPU memory whenever the footprint model says they fit beside every
//! downstream operator floor, so it never pays the per-edge `Materialize`
//! round-trip over the interconnect. Materialize-everything (the
//! degradation ladder's top plan rung) keeps answers exact but adds an
//! evict + reload leg per edge; the gap widens with scale because edge
//! bytes grow with the lineitem input while operator floors stay fixed.

use triton_datagen::{TpchQuery, TpchSpec};
use triton_hw::HwConfig;
use triton_plan::{reference_plan, tpch_query};

use crate::json::JsonObject;

/// The Zipf exponent axis of the foreign-key correlation.
pub const THETA_AXIS: [f64; 3] = [0.5, 1.0, 1.5];

/// Lineitem sizes in modeled M tuples.
pub const M_AXIS: [u64; 3] = [16, 64, 256];

/// The `--check` operating point: Q3 at θ = 1.0, mid scale.
pub const DEFAULT_M_TUPLES: u64 = 64;

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// `q3` or `q9`.
    pub query: &'static str,
    /// `pipelined` or `materialized`.
    pub mode: &'static str,
    /// Zipf exponent of the foreign keys.
    pub theta: f64,
    /// Lineitem size in modeled M tuples.
    pub m_tuples: u64,
    /// Simulated end-to-end plan time.
    pub total_ns: f64,
    /// Throughput in G tuples/s over all base relations.
    pub gtps: f64,
    /// Time spent in per-edge `Materialize` evict phases.
    pub materialize_ns: f64,
    /// Intermediate edges kept GPU-resident.
    pub resident_edges: u64,
    /// Intermediate edges round-tripped to host memory.
    pub materialized_edges: u64,
    /// Peak concurrent operator footprint (the admission reservation).
    pub peak_footprint_bytes: u64,
    /// Root aggregate groups, for cross-mode sanity.
    pub groups: u64,
    /// Root aggregate digest, for cross-mode sanity.
    pub sum_digest: u64,
}

fn spec_for(query: TpchQuery, m: u64, theta: f64, k: u64) -> TpchSpec {
    let mut spec = match query {
        TpchQuery::Q3 => TpchSpec::q3(m, k),
        TpchQuery::Q9 => TpchSpec::q9(m, k),
    };
    spec.zipf_theta = theta;
    spec
}

fn measure(
    mode: &'static str,
    force_materialize: bool,
    w: &triton_datagen::TpchWorkload,
    hw: &HwConfig,
) -> Row {
    let mut q = tpch_query(w);
    q.force_materialize = force_materialize;
    let run = q.run(hw).expect("plan within scaled capacity");
    let (resident, spilled) = run.edge_counts();
    let tuples = q.input_tuples();
    Row {
        query: w.spec.query.label(),
        mode,
        theta: w.spec.zipf_theta,
        m_tuples: w.spec.lineitem_tuples_modeled / 1_000_000,
        total_ns: run.report.total.0,
        gtps: tuples as f64 / (run.report.total.0 / 1e9) / 1e9,
        materialize_ns: run.materialize_time().0,
        resident_edges: resident,
        materialized_edges: spilled,
        peak_footprint_bytes: run.footprint.peak,
        groups: run.agg.groups,
        sum_digest: run.agg.sum_digest,
    }
}

/// Run the sweep: both queries over [`THETA_AXIS`] × `m_axis`, each
/// point measured pipelined and materialize-everything. Both modes are
/// asserted to produce the oracle's exact aggregate at every point.
pub fn run(hw: &HwConfig, m_axis: &[u64]) -> Vec<Row> {
    let mut rows = Vec::new();
    for query in [TpchQuery::Q3, TpchQuery::Q9] {
        for &theta in &THETA_AXIS {
            for &m in m_axis {
                let w = spec_for(query, m, theta, hw.scale).generate();
                let expect = {
                    let q = tpch_query(&w);
                    reference_plan(q.plan(), q.inputs())
                };
                let piped = measure("pipelined", false, &w, hw);
                let mat = measure("materialized", true, &w, hw);
                for r in [&piped, &mat] {
                    assert_eq!(
                        (r.groups, r.sum_digest),
                        (expect.groups, expect.sum_digest),
                        "{query:?} {} diverged from the oracle at theta {theta}, {m} M",
                        r.mode
                    );
                }
                rows.push(piped);
                rows.push(mat);
            }
        }
    }
    rows
}

/// Render the sweep as a stable JSON document (fixed key order).
pub fn to_json(hw: &HwConfig, rows: &[Row]) -> String {
    let header = JsonObject::new()
        .str("schema", "triton-bench/fig-tpch/v1")
        .int("scale", hw.scale)
        .int("default_m_tuples", DEFAULT_M_TUPLES)
        .render();
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .str("query", r.query)
                .str("mode", r.mode)
                .num("theta", r.theta)
                .int("m_tuples", r.m_tuples)
                .num("total_ns", r.total_ns)
                .num("gtps", r.gtps)
                .num("materialize_ns", r.materialize_ns)
                .int("resident_edges", r.resident_edges)
                .int("materialized_edges", r.materialized_edges)
                .int("peak_footprint_bytes", r.peak_footprint_bytes)
                .int("groups", r.groups)
                .int("sum_digest", r.sum_digest)
                .render()
        })
        .collect();
    format!(
        "{{\"config\":{},\"rows\":[\n{}\n]}}\n",
        header,
        body.join(",\n")
    )
}

/// Pipelined total relative to materialize-everything at the Q3
/// operating point (θ = 1.0, [`DEFAULT_M_TUPLES`]); `None` if the sweep
/// is missing that point.
pub fn win_at_q3_operating_point(rows: &[Row]) -> Option<f64> {
    let at = |mode: &str| {
        rows.iter()
            .find(|r| {
                r.query == "q3"
                    && r.mode == mode
                    && (r.theta - 1.0).abs() < 1e-9
                    && r.m_tuples == DEFAULT_M_TUPLES
            })
            .map(|r| r.total_ns)
    };
    Some(1.0 - at("pipelined")? / at("materialized")?)
}

/// Print the figure.
pub fn print(hw: &HwConfig, m_axis: &[u64]) -> Vec<Row> {
    crate::banner(
        "Fig TPC-H",
        "Q3/Q9 plans: GPU-resident pipelining vs materialize-everything",
    );
    let rows = run(hw, m_axis);
    let mut t = crate::Table::new([
        "query",
        "mode",
        "theta",
        "M tuples",
        "total (us)",
        "G tuples/s",
        "matz (us)",
        "edges r/m",
        "peak (KiB)",
    ]);
    for r in &rows {
        t.row([
            r.query.to_string(),
            r.mode.to_string(),
            format!("{:.2}", r.theta),
            r.m_tuples.to_string(),
            format!("{:.1}", r.total_ns / 1e3),
            crate::f3(r.gtps),
            format!("{:.1}", r.materialize_ns / 1e3),
            format!("{}/{}", r.resident_edges, r.materialized_edges),
            (r.peak_footprint_bytes / 1024).to_string(),
        ]);
    }
    t.print();
    if let Some(win) = win_at_q3_operating_point(&rows) {
        println!(
            "pipelined win at the Q3 operating point: {:.1}%",
            win * 100.0
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_wins_at_every_point() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[4]);
        assert_eq!(rows.len(), 2 * THETA_AXIS.len() * 2);
        for pair in rows.chunks(2) {
            let (piped, mat) = (&pair[0], &pair[1]);
            assert_eq!(piped.mode, "pipelined");
            assert_eq!(mat.mode, "materialized");
            assert!(
                piped.total_ns < mat.total_ns,
                "{} theta {}: pipelined {} not faster than materialized {}",
                piped.query,
                piped.theta,
                piped.total_ns,
                mat.total_ns
            );
            assert!(piped.resident_edges > 0);
            assert_eq!(mat.resident_edges, 0);
            assert!(mat.materialize_ns > 0.0);
            assert_eq!(piped.groups, mat.groups);
        }
        let json = to_json(&hw, &rows);
        assert!(json.contains("\"schema\":\"triton-bench/fig-tpch/v1\""));
        assert_eq!(json.matches("\"query\"").count(), rows.len());
    }
}
