//! Interleaved GPU/CPU page mapping (Section 5.3 of the paper).
//!
//! The Triton join caches part of its intermediate state in GPU memory by
//! allocating pages physically in GPU *and* CPU memory and mapping them
//! into one contiguous virtual array. Pages are interleaved in proportion
//! to the physical allocation sizes — e.g. one GPU page after every two
//! CPU pages — so that during execution the GPU touches both memories in
//! parallel and keeps the interconnect consistently busy instead of
//! draining the cached prefix first.
//!
//! [`InterleavePattern`] realises the proportional spacing with a Bresenham
//! distribution over a repeating period: the GPU pages within a period are
//! spread as evenly as integer arithmetic allows.

use triton_hw::MemSide;

/// Resolution of the repeating interleave period, in pages. 64 gives
/// better than 2% granularity on the cached fraction.
pub const PERIOD: u64 = 64;

/// A proportional GPU/CPU page interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleavePattern {
    gpu_per_period: u64,
}

impl InterleavePattern {
    /// Build a pattern placing `fraction` (0.0..=1.0) of pages in GPU
    /// memory. The fraction is rounded to 1/[`PERIOD`] granularity.
    pub fn from_fraction(fraction: f64) -> Self {
        let f = fraction.clamp(0.0, 1.0);
        InterleavePattern {
            gpu_per_period: (f * PERIOD as f64).round() as u64,
        }
    }

    /// Exact pattern from a page budget: at most `gpu_pages` of
    /// `total_pages` land in GPU memory.
    pub fn from_budget(gpu_pages: u64, total_pages: u64) -> Self {
        if total_pages == 0 {
            return InterleavePattern { gpu_per_period: 0 };
        }
        // Round *down* so the GPU budget is never exceeded.
        let g = (gpu_pages.min(total_pages) * PERIOD) / total_pages;
        InterleavePattern { gpu_per_period: g }
    }

    /// The effective GPU fraction of this pattern.
    pub fn gpu_fraction(&self) -> f64 {
        self.gpu_per_period as f64 / PERIOD as f64
    }

    /// Which memory the `page_index`-th page of the array resides in.
    ///
    /// Bresenham distribution: page `i` is a GPU page iff the running
    /// count `floor((i+1) * g / P)` advances at `i`. This spreads the `g`
    /// GPU pages evenly through every period of `P` pages.
    pub fn side_of_page(&self, page_index: u64) -> MemSide {
        let i = page_index % PERIOD;
        let g = self.gpu_per_period;
        if (i + 1) * g / PERIOD > i * g / PERIOD {
            MemSide::Gpu
        } else {
            MemSide::Cpu
        }
    }

    /// Count of GPU pages among the first `n` pages.
    pub fn gpu_pages_among(&self, n: u64) -> u64 {
        let full = n / PERIOD;
        let rem = n % PERIOD;
        full * self.gpu_per_period + rem * self.gpu_per_period / PERIOD
    }
}

/// An explicit list of GPU-resident page ranges: the placement a
/// skew-aware planner computes when it decides *which partitions* stay
/// device-resident instead of spreading a fixed fraction evenly.
///
/// Ranges are half-open `[start, end)` page indices, kept sorted and
/// disjoint (overlapping or touching input ranges are merged), so
/// membership queries are a deterministic binary search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Sorted, disjoint half-open page ranges resident in GPU memory.
    ranges: Vec<(u64, u64)>,
}

impl PlacementPlan {
    /// Build a plan from arbitrary `[start, end)` page ranges. Empty and
    /// inverted ranges are dropped; overlapping or adjacent ranges merge.
    pub fn new(mut ranges: Vec<(u64, u64)>) -> Self {
        ranges.retain(|&(s, e)| e > s);
        ranges.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        PlacementPlan { ranges: merged }
    }

    /// The sorted, disjoint GPU-resident page ranges.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Total GPU-resident pages in the plan.
    pub fn gpu_pages_total(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Whether `page_index` is GPU-resident under this plan.
    pub fn contains(&self, page_index: u64) -> bool {
        // Binary search for the last range starting at or before the page.
        let idx = self.ranges.partition_point(|&(s, _)| s <= page_index);
        idx > 0 && page_index < self.ranges[idx - 1].1
    }

    /// GPU pages among the first `n` pages.
    pub fn gpu_pages_among(&self, n: u64) -> u64 {
        self.ranges
            .iter()
            .take_while(|&&(s, _)| s < n)
            .map(|&(s, e)| e.min(n) - s)
            .sum()
    }

    /// A copy of the plan truncated (in page order) to at most
    /// `max_gpu_pages` resident pages — how the allocator degrades a plan
    /// gracefully when device memory cannot hold all of it.
    pub fn truncated(&self, max_gpu_pages: u64) -> Self {
        let mut left = max_gpu_pages;
        let mut out = Vec::with_capacity(self.ranges.len());
        for &(s, e) in &self.ranges {
            if left == 0 {
                break;
            }
            let take = (e - s).min(left);
            out.push((s, s + take));
            left -= take;
        }
        PlacementPlan { ranges: out }
    }
}

/// How the GPU-resident pages of a hybrid array are placed.
///
/// The paper's design (Section 5.3) interleaves them evenly so the
/// interconnect stays busy throughout execution; the strawman it argues
/// against caches a *prefix* (the classic hybrid hash join's R0), which
/// leaves the interconnect idle while the GPU works on the cached share.
/// Both are available so the ablation can measure the difference. The
/// third policy pins an explicit [`PlacementPlan`] of page ranges — the
/// skew-aware cache keeps whole hot partition pairs device-resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Evenly interleaved GPU pages (the Triton join's scheme).
    Interleaved(InterleavePattern),
    /// The first `gpu_pages` pages in GPU memory, the rest in CPU memory.
    Prefix {
        /// Number of leading pages resident in GPU memory.
        gpu_pages: u64,
    },
    /// Explicit GPU-resident page ranges chosen by a placement planner.
    Planned(PlacementPlan),
}

impl Placement {
    /// Which memory holds the `page_index`-th page.
    pub fn side_of_page(&self, page_index: u64) -> MemSide {
        match self {
            Placement::Interleaved(p) => p.side_of_page(page_index),
            Placement::Prefix { gpu_pages } => {
                if page_index < *gpu_pages {
                    MemSide::Gpu
                } else {
                    MemSide::Cpu
                }
            }
            Placement::Planned(plan) => {
                if plan.contains(page_index) {
                    MemSide::Gpu
                } else {
                    MemSide::Cpu
                }
            }
        }
    }

    /// GPU pages among the first `n` pages.
    pub fn gpu_pages_among(&self, n: u64) -> u64 {
        match self {
            Placement::Interleaved(p) => p.gpu_pages_among(n),
            Placement::Prefix { gpu_pages } => n.min(*gpu_pages),
            Placement::Planned(plan) => plan.gpu_pages_among(n),
        }
    }
}

/// A contiguous virtual array whose pages are split across GPU and CPU
/// memory: the physical realisation of the Triton join's working-set
/// cache.
#[derive(Debug, Clone)]
pub struct HybridLayout {
    base_vaddr: u64,
    len: u64,
    page_size: u64,
    pattern: Placement,
}

impl HybridLayout {
    /// Create a layout of `len` bytes at `base_vaddr` with `page_size`
    /// pages and the given interleave pattern.
    pub fn new(base_vaddr: u64, len: u64, page_size: u64, pattern: InterleavePattern) -> Self {
        Self::with_placement(base_vaddr, len, page_size, Placement::Interleaved(pattern))
    }

    /// Create a layout with an explicit placement policy.
    pub fn with_placement(base_vaddr: u64, len: u64, page_size: u64, pattern: Placement) -> Self {
        assert!(page_size > 0);
        HybridLayout {
            base_vaddr,
            len,
            page_size,
            pattern,
        }
    }

    /// Array length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The page size.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// The placement policy.
    pub fn pattern(&self) -> &Placement {
        &self.pattern
    }

    /// Number of pages backing the array.
    pub fn num_pages(&self) -> u64 {
        self.len.div_ceil(self.page_size)
    }

    /// Bytes resident in GPU memory.
    pub fn gpu_bytes(&self) -> u64 {
        let full_pages = self.len / self.page_size;
        let mut bytes = self.pattern.gpu_pages_among(full_pages) * self.page_size;
        let tail = self.len % self.page_size;
        if tail > 0 && self.pattern.side_of_page(full_pages) == MemSide::Gpu {
            bytes += tail;
        }
        bytes
    }

    /// Bytes resident in CPU memory.
    pub fn cpu_bytes(&self) -> u64 {
        self.len - self.gpu_bytes()
    }

    /// Which memory the byte at `offset` resides in.
    pub fn side_of(&self, offset: u64) -> MemSide {
        debug_assert!(offset < self.len.max(1));
        self.pattern.side_of_page(offset / self.page_size)
    }

    /// Virtual address of the byte at `offset`.
    pub fn vaddr(&self, offset: u64) -> u64 {
        self.base_vaddr + offset
    }

    /// Split a byte range `[offset, offset+bytes)` into per-side byte
    /// volumes `(gpu, cpu)` — the quantity kernels need when charging a
    /// sequential access over the array.
    pub fn split_range(&self, offset: u64, bytes: u64) -> (u64, u64) {
        if bytes == 0 {
            return (0, 0);
        }
        let end = offset + bytes;
        let first_page = offset / self.page_size;
        let last_page = (end - 1) / self.page_size;
        let mut gpu = 0;
        for p in first_page..=last_page {
            let page_start = p * self.page_size;
            let page_end = page_start + self.page_size;
            let lo = offset.max(page_start);
            let hi = end.min(page_end);
            if self.pattern.side_of_page(p) == MemSide::Gpu {
                gpu += hi - lo;
            }
        }
        (gpu, bytes - gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cpu_and_all_gpu_extremes() {
        let cpu = InterleavePattern::from_fraction(0.0);
        let gpu = InterleavePattern::from_fraction(1.0);
        for p in 0..1000 {
            assert_eq!(cpu.side_of_page(p), MemSide::Cpu);
            assert_eq!(gpu.side_of_page(p), MemSide::Gpu);
        }
    }

    #[test]
    fn one_gpu_after_every_two_cpu_pages() {
        // The paper's example: 1/3 of pages in GPU memory.
        let pat = InterleavePattern::from_fraction(1.0 / 3.0);
        let gpu_count: u64 = (0..PERIOD)
            .filter(|&p| pat.side_of_page(p) == MemSide::Gpu)
            .count() as u64;
        assert_eq!(gpu_count, (PERIOD as f64 / 3.0).round() as u64);
        // Evenly spaced: no window of 6 consecutive pages without a GPU page.
        for start in 0..3 * PERIOD {
            let any_gpu = (start..start + 6).any(|p| pat.side_of_page(p) == MemSide::Gpu);
            assert!(any_gpu, "GPU pages must be evenly spread");
        }
    }

    #[test]
    fn fraction_roundtrip() {
        for f in [0.0, 0.1, 0.25, 0.5, 0.79, 1.0] {
            let pat = InterleavePattern::from_fraction(f);
            assert!((pat.gpu_fraction() - f).abs() <= 1.0 / PERIOD as f64);
        }
    }

    #[test]
    fn budget_never_exceeded() {
        for (g, t) in [(0u64, 10u64), (3, 10), (10, 10), (7, 64), (100, 64)] {
            let pat = InterleavePattern::from_budget(g, t);
            let used = pat.gpu_pages_among(t);
            assert!(used <= g.min(t), "budget {g}/{t}: used {used}");
        }
    }

    #[test]
    fn gpu_pages_among_matches_enumeration() {
        let pat = InterleavePattern::from_fraction(0.37);
        for n in [0u64, 1, 5, 63, 64, 65, 200, 1000] {
            let exact = (0..n)
                .filter(|&p| pat.side_of_page(p) == MemSide::Gpu)
                .count() as u64;
            assert_eq!(pat.gpu_pages_among(n), exact, "n={n}");
        }
    }

    #[test]
    fn layout_byte_accounting() {
        let pat = InterleavePattern::from_fraction(0.5);
        let l = HybridLayout::new(0x1000, 64 * 1024, 1024, pat);
        assert_eq!(l.num_pages(), 64);
        assert_eq!(l.gpu_bytes() + l.cpu_bytes(), 64 * 1024);
        assert_eq!(l.gpu_bytes(), 32 * 1024);
    }

    #[test]
    fn split_range_consistent_with_side_of() {
        let pat = InterleavePattern::from_fraction(0.3);
        let l = HybridLayout::new(0, 10_000, 64, pat);
        for (off, len) in [
            (0u64, 10_000u64),
            (100, 500),
            (63, 2),
            (64, 64),
            (9_990, 10),
        ] {
            let (gpu, cpu) = l.split_range(off, len);
            let exact: u64 = (off..off + len)
                .filter(|&b| l.side_of(b) == MemSide::Gpu)
                .count() as u64;
            assert_eq!(gpu, exact, "off={off} len={len}");
            assert_eq!(gpu + cpu, len);
        }
    }

    #[test]
    fn plan_merges_and_counts() {
        let plan = PlacementPlan::new(vec![(8, 4), (0, 2), (2, 5), (10, 12), (11, 14), (20, 20)]);
        // (8,4) inverted → dropped; (0,2)+(2,5) merge; (10,12)+(11,14) merge.
        assert_eq!(plan.ranges(), &[(0, 5), (10, 14)]);
        assert_eq!(plan.gpu_pages_total(), 9);
        for p in 0..20 {
            let expect = (0..5).contains(&p) || (10..14).contains(&p);
            assert_eq!(plan.contains(p), expect, "page {p}");
        }
        for n in [0u64, 1, 5, 9, 10, 12, 14, 100] {
            let exact = (0..n).filter(|&p| plan.contains(p)).count() as u64;
            assert_eq!(plan.gpu_pages_among(n), exact, "n={n}");
        }
    }

    #[test]
    fn plan_truncation_keeps_page_order() {
        let plan = PlacementPlan::new(vec![(0, 4), (10, 14)]);
        assert_eq!(plan.truncated(6).ranges(), &[(0, 4), (10, 12)]);
        assert_eq!(plan.truncated(4).ranges(), &[(0, 4)]);
        assert_eq!(plan.truncated(0).ranges(), &[] as &[(u64, u64)]);
        assert_eq!(plan.truncated(100), plan);
    }

    #[test]
    fn planned_layout_splits_by_resident_ranges() {
        // Pages 2..4 resident on a 10-page array.
        let plan = PlacementPlan::new(vec![(2, 4)]);
        let l = HybridLayout::with_placement(0, 10 * 64, 64, Placement::Planned(plan));
        assert_eq!(l.gpu_bytes(), 2 * 64);
        assert_eq!(l.cpu_bytes(), 8 * 64);
        // A range fully inside the resident window never touches the CPU.
        assert_eq!(l.split_range(2 * 64, 2 * 64), (2 * 64, 0));
        // A straddling range is charged per page.
        assert_eq!(l.split_range(64, 3 * 64), (2 * 64, 64));
        for (off, len) in [(0u64, 640u64), (100, 200), (130, 2)] {
            let (gpu, cpu) = l.split_range(off, len);
            let exact: u64 = (off..off + len)
                .filter(|&b| l.side_of(b) == MemSide::Gpu)
                .count() as u64;
            assert_eq!(gpu, exact, "off={off} len={len}");
            assert_eq!(gpu + cpu, len);
        }
    }

    #[test]
    fn tail_page_counted_once() {
        let pat = InterleavePattern::from_fraction(1.0);
        let l = HybridLayout::new(0, 1000, 512, pat); // 1 full + 1 partial page
        assert_eq!(l.gpu_bytes(), 1000);
        assert_eq!(l.cpu_bytes(), 0);
    }
}
