//! Chaos serving: the three-tenant demo from `examples/serve.rs` run
//! under an injected fault schedule — a link flap, a sustained link
//! degradation, and an ECC page retirement that tears most of GPU
//! memory out from under the in-flight queries.
//!
//! The run is printed three ways: fault-free, faulted with resilience
//! (retry + grant shrinking + the degradation ladder), and faulted with
//! resilience disabled. Per-tenant recovery costs and the p99 latency
//! delta against the clean run show what surviving the faults bought.
//!
//! Run with `cargo run --example chaos -p triton-exec [K]` (K = capacity
//! scale, default 512). Everything is deterministic: same K, same plan,
//! same output. Pass `--trace <path>` to export the resilient faulted
//! run as Chrome `trace_event` JSON — fault instants and flight-recorder
//! dumps land on the scheduler's tracks.

use std::collections::BTreeMap;

use triton_core::{CpuRadixJoin, HashScheme};
use triton_datagen::WorkloadSpec;
use triton_exec::{
    to_chrome_json, validate_chrome, FaultPlan, JoinQuery, Operator, Outcome, Scheduler,
    SchedulerConfig,
};
use triton_hw::units::Ns;
use triton_hw::HwConfig;

/// The serve-demo tenant mix: dashboard probe bursts sharing one build
/// side, patient ETL joins, and GPU-free CPU ad-hoc queries.
fn tenant_mix(k: u64) -> Vec<JoinQuery> {
    let mut queries: Vec<JoinQuery> = Vec::new();
    let dim = WorkloadSpec::paper_default(16, k).generate();
    for burst in 0..2u64 {
        // Bursts close enough that fault windows overlap live queries.
        let at = Ns(burst as f64 * 50_000.0);
        for i in 0..3u64 {
            let w = if burst == 0 && i == 0 {
                dim.clone()
            } else {
                JoinQuery::probe_batch(&dim, 0xD0 + burst * 16 + i)
            };
            let mut q = JoinQuery::new(format!("dash-{burst}.{i}"), w, at);
            q.priority = 4;
            q.deadline = Some(Ns::millis(400.0));
            q.build_key = Some(0xD1);
            queries.push(q);
        }
    }
    for i in 0..2u64 {
        let mut spec = WorkloadSpec::paper_default(64, k);
        spec.seed ^= i;
        let mut q = JoinQuery::new(format!("etl-{i}"), spec.generate(), Ns::ZERO);
        q.priority = 1;
        queries.push(q);
    }
    for i in 0..2u64 {
        let mut spec = WorkloadSpec::paper_default(24, k);
        spec.seed ^= 0xCC00 + i;
        let mut q = JoinQuery::new(format!("cpu-{i}"), spec.generate(), Ns(5_000.0 * i as f64));
        q.op = Operator::CpuRadix(CpuRadixJoin::power9(HashScheme::BucketChaining));
        queries.push(q);
    }
    queries
}

fn tenant_of(name: &str) -> &str {
    name.split(['-']).next().unwrap_or(name)
}

/// Parse `[K] [--trace <path>]` in any order.
fn parse_args() -> (u64, Option<String>) {
    let mut k: Option<u64> = None;
    let mut trace: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            trace = args.next();
        } else if let Ok(v) = a.parse() {
            k = Some(v);
        }
    }
    let k = k
        .or_else(|| std::env::var("TRITON_SCALE").ok()?.parse().ok())
        .unwrap_or(512);
    (k, trace)
}

fn main() {
    let (k, trace_path) = parse_args();
    let hw = HwConfig::ac922().scaled(k);
    println!("== chaos serving (K = {k}) ==\n");

    // Fault-free reference run (sets the fault schedule's timescale).
    let clean = Scheduler::new(hw.clone(), SchedulerConfig::default()).run(tenant_mix(k));
    let span = clean.metrics.makespan.0;
    println!("clean    : {}", clean.metrics.summary());

    // The hazard schedule, placed relative to the clean makespan: a hard
    // link flap, then a lingering 60% link, and an ECC retirement of
    // three fifths of device memory while reservations are live.
    let plan = FaultPlan::with_seed(42)
        .flap_link(Ns(span * 0.15), Ns(span * 0.10))
        .degrade_link(Ns(span * 0.35), Ns(span * 0.50), 0.6)
        .retire_gpu_mem(Ns(span * 0.40), hw.gpu.mem_capacity * 3 / 5)
        .kernel_fault(Ns(span * 0.55));
    println!("plan     : {} fault events, seed {}", plan.len(), plan.seed);
    for e in plan.events() {
        println!(
            "           {:>10}  {:<12} dur {}",
            format!("{}", e.at),
            e.kind.label(),
            e.duration
        );
    }

    let faulted = Scheduler::new(hw.clone(), SchedulerConfig::default())
        .run_with_faults(tenant_mix(k), &plan);
    let fragile = Scheduler::new(hw.clone(), SchedulerConfig::no_resilience())
        .run_with_faults(tenant_mix(k), &plan);
    println!("resilient: {}", faulted.metrics.summary());
    println!("fragile  : {}\n", fragile.metrics.summary());

    // Per-query recovery accounting under the resilient run.
    println!(
        "{:<10} {:>10} {:>8} {:>7} {:>10} {:>7} {:>10}",
        "query", "status", "op", "retries", "downgrades", "revoked", "latency"
    );
    for o in &faulted.outcomes {
        match o {
            Outcome::Completed(c) => println!(
                "{:<10} {:>10} {:>8} {:>7} {:>10} {:>7} {:>10}",
                c.name,
                "ok",
                c.operator,
                c.fault.retries,
                c.fault.downgrades,
                c.fault.revocations,
                format!("{}", c.latency()),
            ),
            Outcome::Rejected { name, reason, .. } => {
                println!("{name:<10} {:>10}  {reason}", "shed")
            }
        }
    }

    // Per-tenant rollup: recovery cost and p99 delta vs the clean run.
    let mut per_tenant: BTreeMap<&str, (u64, u32, u32, Vec<f64>)> = BTreeMap::new();
    for c in faulted.completed() {
        let e = per_tenant
            .entry(tenant_of(&c.name))
            .or_insert((0, 0, 0, Vec::new()));
        e.0 += 1;
        e.1 += c.fault.retries;
        e.2 += c.fault.downgrades;
        e.3.push(c.latency().0);
    }
    let mut clean_lat: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for c in clean.completed() {
        clean_lat
            .entry(tenant_of(&c.name))
            .or_default()
            .push(c.latency().0);
    }
    println!(
        "\n{:<8} {:>5} {:>8} {:>11} {:>12} {:>12} {:>9}",
        "tenant", "done", "retries", "downgrades", "p99(clean)", "p99(chaos)", "delta"
    );
    for (tenant, (done, retries, downgrades, lats)) in &per_tenant {
        let p99_chaos = triton_exec::percentile(lats, 99.0);
        let p99_clean = clean_lat
            .get(tenant)
            .map_or(0.0, |l| triton_exec::percentile(l, 99.0));
        let delta = if p99_clean > 0.0 {
            format!("{:+.1}%", (p99_chaos / p99_clean - 1.0) * 100.0)
        } else {
            "n/a".into()
        };
        println!(
            "{:<8} {:>5} {:>8} {:>11} {:>12} {:>12} {:>9}",
            tenant,
            done,
            retries,
            downgrades,
            format!("{}", Ns(p99_clean)),
            format!("{}", Ns(p99_chaos)),
            delta,
        );
    }

    println!(
        "\nresilience saved {} queries the fragile run shed ({} vs {} rejected)",
        fragile
            .metrics
            .rejected
            .saturating_sub(faulted.metrics.rejected),
        faulted.metrics.rejected,
        fragile.metrics.rejected,
    );
    println!("\nmetrics json: {}", faulted.metrics.to_json());

    if let Some(path) = trace_path {
        let json = to_chrome_json(&faulted.trace);
        let dumps = faulted
            .trace
            .events()
            .iter()
            .filter(|e| e.name == "flight.dump")
            .count();
        match validate_chrome(&json) {
            Ok(n) => println!("\ntrace: {n} events, {dumps} flight dumps -> {path}"),
            Err(e) => println!("\ntrace: INVALID ({e})"),
        }
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("trace: failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
