//! Sustained-load serving trajectory with telemetry and SLO accounting.
//!
//! The committed trajectory (`BENCH_serve.json`) the observability layer
//! is graded against: two tenant mixes × an offered-load axis, each
//! point a full serving run with the time-series registry and per-tenant
//! SLO accounts threaded through [`triton_exec::ServeResult`], plus one
//! chaos point per mix (degraded link + ECC retirement + kernel fault)
//! to show telemetry stays deterministic under faults. Every row carries
//! the registry's own cross-checks: the counter totals must reconcile
//! with `SchedulerMetrics`, window sums must reconcile with run totals,
//! and the text exposition must replay byte-identically.
//!
//! The points run the *throughput path*
//! ([`SchedulerConfig::throughput`]): epoch-batched admission over the
//! cost/plan memos, with slice tenants exercising prefix build reuse.
//! [`check`] holds every committed-scale point to the pre-throughput
//! baseline ([`BASELINE`]): completions and SLO attainment may never
//! regress below the trajectory the event-per-arrival scheduler
//! committed.

use triton_core::{CpuRadixJoin, HashScheme, TritonJoin};
use triton_datagen::{Rng, WorkloadSpec};
use triton_exec::{FaultPlan, JoinQuery, Operator, Scheduler, SchedulerConfig, ServeResult};
use triton_hw::units::Ns;
use triton_hw::HwConfig;

use crate::json::JsonObject;

/// Offered-load axis (fractions of serial drain capacity).
pub const LOAD_AXIS: [f64; 3] = [0.5, 1.0, 2.0];

/// Tenant mixes swept: `shared` leans on build-side sharing (probe
/// batches over one dimension relation plus fact joins), `mixed` adds a
/// CPU-radix tenant overlapping the GPU tenants.
pub const MIXES: [&str; 2] = ["shared", "mixed"];

/// Offered load of the chaos points.
pub const CHAOS_LOAD: f64 = 1.0;

/// Queries per operating point.
const QUERIES: usize = 18;

/// Deadline budget in mean dedicated service times.
const DEADLINE_SERVICE_TIMES: f64 = 10.0;

/// One measured operating point of the committed trajectory.
#[derive(Debug, Clone)]
pub struct Row {
    /// Tenant mix (`shared` or `mixed`).
    pub mix: &'static str,
    /// `clean` or `chaos`.
    pub mode: &'static str,
    /// Offered load as a fraction of serial capacity.
    pub load: f64,
    /// Queries submitted.
    pub submitted: u64,
    /// Queries completed.
    pub completed: u64,
    /// Queries shed (all typed reasons).
    pub shed: u64,
    /// Median end-to-end latency in simulated ns (histogram-resolved).
    pub p50_ns: f64,
    /// 99th-percentile latency in simulated ns.
    pub p99_ns: f64,
    /// Aggregate SLO attainment across tenants, ppm of deadline holders.
    pub slo_attainment_ppm: u64,
    /// Worst per-tenant error-budget burn, ppm of the budget.
    pub max_budget_burn_ppm: u64,
    /// Mid-run grant revisions the scheduler issued.
    pub grant_revisions: u64,
    /// Distinct tenants with SLO accounts.
    pub tenants: u64,
    /// The registry's `sched.completed` counter — must equal
    /// `completed` (telemetry/metrics reconciliation).
    pub telemetry_completed: u64,
    /// Bytes of the deterministic text exposition.
    pub exposition_bytes: u64,
    /// Whether the registry's windowed rollups reconciled exactly with
    /// its run totals.
    pub reconciled: bool,
    /// Host wall-clock spent on this point (ns; machine-dependent, not
    /// covered by determinism checks).
    pub wall_ns: u64,
    /// Operator pricings replayed from the cost memo.
    pub cost_cache_hits: u64,
    /// Operator pricings that had to run.
    pub cost_cache_misses: u64,
    /// Memo effectiveness, ppm of cacheable pricings.
    pub cost_cache_hit_ppm: u64,
    /// Build-cache hits served from a *covering* build (prefix reuse).
    pub build_prefix_hits: u64,
    /// Host scheduling overhead per submitted query (`wall_ns /
    /// submitted`; machine-dependent, like `wall_ns`).
    pub sched_overhead_ns: u64,
}

/// The pre-throughput trajectory at the committed scale (512):
/// `(mix, mode, load, completed, slo_attainment_ppm)` of every point as
/// the event-per-arrival scheduler locked them. [`check`] fails if the
/// batched + cached path loses completions or attainment against any of
/// these floors.
pub const BASELINE: [(&str, &str, f64, u64, u64); 8] = [
    ("shared", "clean", 0.5, 18, 1_000_000),
    ("shared", "clean", 1.0, 18, 1_000_000),
    ("shared", "clean", 2.0, 18, 611_111),
    ("shared", "chaos", 1.0, 10, 166_666),
    ("mixed", "clean", 0.5, 18, 1_000_000),
    ("mixed", "clean", 1.0, 18, 1_000_000),
    ("mixed", "clean", 2.0, 18, 1_000_000),
    ("mixed", "chaos", 1.0, 18, 944_444),
];

/// The scale the baseline floors were locked at; [`check`] only applies
/// them there (unit tests sweep a coarser scale).
pub const BASELINE_SCALE: u64 = 512;

/// One mix's tenant population with the given arrival times. Tenant
/// labels are the query-name prefixes (`batch`, `slice`, `fact`,
/// `cpu`), so the SLO accounts split by workload family. The `slice`
/// tenants join against a radix sub-range of the shared dimension
/// relation and carry its `build_range`, so a resident full build
/// serves them by prefix reuse instead of a rebuild.
fn tenant_mix(mix: &str, k: u64, arrivals: &[f64]) -> Vec<JoinQuery> {
    assert_eq!(arrivals.len(), QUERIES);
    let dim = WorkloadSpec::paper_default(8, k).generate();
    let mut queries = Vec::with_capacity(QUERIES);
    for (i, &at) in arrivals.iter().enumerate() {
        let cpu_tenant = mix == "mixed" && i % 3 == 2;
        let q = if cpu_tenant {
            let mut spec = WorkloadSpec::paper_default(8, k);
            spec.seed ^= (0xCCu64 << 8) | i as u64;
            let mut q = JoinQuery::new(format!("cpu-{i}"), spec.generate(), Ns(at));
            q.op = Operator::CpuRadix(CpuRadixJoin::power9(HashScheme::BucketChaining));
            q
        } else if i % 2 == 0 {
            // Probe batches against the shared dimension relation.
            let w = if i == 0 {
                dim.clone()
            } else {
                JoinQuery::probe_batch(&dim, 0x5EED + i as u64)
            };
            let mut q = JoinQuery::new(format!("batch-{i}"), w, Ns(at));
            q.build_key = Some(1);
            q
        } else if i % 4 == 3 {
            // Sub-range tenants of the same dimension family: their
            // build side is the low half of the radix space, covered by
            // the family's resident full build.
            // Fixed seed: every slice arrival is the same repeat
            // statement (a dashboard refresh), so under a stable grant
            // the cost memo replays its pricing instead of re-running.
            let w = JoinQuery::probe_slice(&dim, (0, 128), 0xA11CE);
            let mut q = JoinQuery::new(format!("slice-{i}"), w, Ns(at));
            q.build_key = Some(1);
            q.build_range = Some((0, 128));
            q
        } else {
            let mut spec = WorkloadSpec::paper_default(16, k);
            spec.seed ^= (i as u64) << 24;
            let mut q = JoinQuery::new(format!("fact-{i}"), spec.generate(), Ns(at));
            q.op = Operator::Triton(TritonJoin::default());
            q
        };
        queries.push(q);
    }
    queries
}

/// Mean dedicated service time of one mix (the load unit).
fn mean_service_time(hw: &HwConfig, mix: &str) -> Ns {
    let queries = tenant_mix(mix, hw.scale, &[0.0; QUERIES]);
    let total: f64 = queries
        .iter()
        .map(|q| match q.op.run(&q.workload, hw) {
            Ok(rep) => rep.total.0,
            Err(_) => 0.0,
        })
        .sum();
    Ns(total / QUERIES as f64)
}

/// The mix with Poisson arrivals at `load` times the serial drain rate;
/// every query holds the sweep's queueing deadline, so every query
/// participates in its tenant's SLO.
fn queries_at_load(hw: &HwConfig, mix: &str, s_mean: Ns, load: f64) -> Vec<JoinQuery> {
    let rate = load / s_mean.0; // queries per ns
    let mut rng = Rng::seed_from_u64(0x5E12E ^ load.to_bits() ^ mix.len() as u64);
    let mut t = 0.0f64;
    let arrivals: Vec<f64> = (0..QUERIES)
        .map(|_| {
            t += -(1.0 - rng.next_f64()).ln() / rate;
            t
        })
        .collect();
    let mut queries = tenant_mix(mix, hw.scale, &arrivals);
    for q in &mut queries {
        q.deadline = Some(s_mean * DEADLINE_SERVICE_TIMES);
    }
    queries
}

/// The standard hazard schedule of the chaos points: a halved link for
/// the whole run, plus an ECC retirement of a third of device memory
/// and a kernel fault aimed mid-run.
fn chaos_plan(hw: &HwConfig, clean: &ServeResult) -> FaultPlan {
    let span = clean.metrics.makespan;
    let strike = clean
        .completed()
        .max_by(|a, b| a.reserved.cmp(&b.reserved).then(a.id.cmp(&b.id)))
        .map_or(span * 0.5, |c| (c.start + c.finish) * 0.5);
    FaultPlan::with_seed(0x5E12E)
        .degrade_link(Ns::ZERO, span * 4.0, 0.5)
        .retire_gpu_mem(strike, hw.gpu.mem_capacity / 3)
        .kernel_fault(strike)
}

/// Run one operating point and fold its telemetry into a [`Row`].
fn measure(
    hw: &HwConfig,
    mix: &'static str,
    mode: &'static str,
    load: f64,
    queries: Vec<JoinQuery>,
    plan: &FaultPlan,
) -> Row {
    let t0 = std::time::Instant::now();
    let res =
        Scheduler::new(hw.clone(), SchedulerConfig::throughput()).run_with_faults(queries, plan);
    let wall_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let m = &res.metrics;
    let (slo_total, slo_met) = res
        .slo
        .iter()
        .fold((0u64, 0u64), |(t, m), a| (t + a.slo_total, m + a.slo_met));
    let attainment = if slo_total == 0 {
        1_000_000
    } else {
        (u128::from(slo_met) * 1_000_000 / u128::from(slo_total)) as u64
    };
    Row {
        mix,
        mode,
        load,
        submitted: m.completed + m.rejected,
        completed: m.completed,
        shed: m.rejected,
        p50_ns: m.latency_p50.0,
        p99_ns: m.latency_p99.0,
        slo_attainment_ppm: attainment,
        max_budget_burn_ppm: res
            .slo
            .iter()
            .map(|a| a.budget_burn_ppm())
            .max()
            .unwrap_or(0),
        grant_revisions: m.grant_revisions,
        tenants: res.slo.len() as u64,
        telemetry_completed: res.telemetry.counter("sched.completed"),
        exposition_bytes: res.telemetry.expose_text().len() as u64,
        reconciled: res.telemetry.reconcile().is_ok(),
        wall_ns,
        cost_cache_hits: m.cost_cache_hits,
        cost_cache_misses: m.cost_cache_misses,
        cost_cache_hit_ppm: if m.cost_cache_hits + m.cost_cache_misses == 0 {
            0
        } else {
            (u128::from(m.cost_cache_hits) * 1_000_000
                / u128::from(m.cost_cache_hits + m.cost_cache_misses)) as u64
        },
        build_prefix_hits: m.build_cache_prefix_hits,
        sched_overhead_ns: wall_ns / (m.completed + m.rejected).max(1),
    }
}

/// One full serving result for a point (used by the replay check and
/// the trace/exposition exports).
pub fn serve_point(hw: &HwConfig, mix: &str, load: f64, chaos: bool) -> ServeResult {
    let s_mean = mean_service_time(hw, mix);
    let queries = queries_at_load(hw, mix, s_mean, load);
    let plan = if chaos {
        let clean = Scheduler::new(hw.clone(), SchedulerConfig::throughput()).run(queries.clone());
        chaos_plan(hw, &clean)
    } else {
        FaultPlan::none()
    };
    Scheduler::new(hw.clone(), SchedulerConfig::throughput()).run_with_faults(queries, &plan)
}

/// Run the trajectory: clean points for every mix × load, then one
/// chaos point per mix at [`CHAOS_LOAD`].
pub fn run(hw: &HwConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for &mix in &MIXES {
        let s_mean = mean_service_time(hw, mix);
        for &load in &LOAD_AXIS {
            let queries = queries_at_load(hw, mix, s_mean, load);
            rows.push(measure(hw, mix, "clean", load, queries, &FaultPlan::none()));
        }
        let queries = queries_at_load(hw, mix, s_mean, CHAOS_LOAD);
        let clean = Scheduler::new(hw.clone(), SchedulerConfig::throughput()).run(queries.clone());
        let plan = chaos_plan(hw, &clean);
        rows.push(measure(hw, mix, "chaos", CHAOS_LOAD, queries, &plan));
    }
    rows
}

/// The determinism cross-check behind `--check`: serve one clean and one
/// chaos point twice each and require byte-identical text expositions.
pub fn replay_identical(hw: &HwConfig) -> bool {
    for (mix, chaos) in [("shared", false), ("mixed", true)] {
        let a = serve_point(hw, mix, CHAOS_LOAD, chaos);
        let b = serve_point(hw, mix, CHAOS_LOAD, chaos);
        if a.telemetry.expose_text() != b.telemetry.expose_text()
            || a.telemetry.expose_json() != b.telemetry.expose_json()
        {
            return false;
        }
    }
    true
}

/// Deterministic facts every committed trajectory must satisfy. At the
/// committed scale ([`BASELINE_SCALE`]) the batched + cached throughput
/// path is additionally held to the pre-throughput [`BASELINE`]: losing
/// completions or SLO attainment at *any* point fails the check.
pub fn check(hw: &HwConfig, rows: &[Row]) -> Result<(), String> {
    for r in rows {
        let tag = format!("{}/{} load {}", r.mix, r.mode, r.load);
        if r.completed + r.shed != r.submitted {
            return Err(format!("{tag}: outcomes do not cover submissions"));
        }
        if r.telemetry_completed != r.completed {
            return Err(format!(
                "{tag}: telemetry counted {} completions, metrics {}",
                r.telemetry_completed, r.completed
            ));
        }
        if !r.reconciled {
            return Err(format!("{tag}: windowed rollups failed to reconcile"));
        }
        if r.slo_attainment_ppm > 1_000_000 {
            return Err(format!("{tag}: attainment above 1M ppm"));
        }
        if r.tenants == 0 || r.exposition_bytes == 0 {
            return Err(format!("{tag}: empty telemetry"));
        }
    }
    if hw.scale == BASELINE_SCALE {
        for &(mix, mode, load, completed, attainment) in &BASELINE {
            let Some(r) = rows
                .iter()
                .find(|r| r.mix == mix && r.mode == mode && r.load == load)
            else {
                return Err(format!("{mix}/{mode} load {load}: baseline point missing"));
            };
            if r.completed < completed {
                return Err(format!(
                    "{mix}/{mode} load {load}: throughput path completed {} < baseline {}",
                    r.completed, completed
                ));
            }
            if r.slo_attainment_ppm < attainment {
                return Err(format!(
                    "{mix}/{mode} load {load}: attainment {} ppm < baseline {} ppm",
                    r.slo_attainment_ppm, attainment
                ));
            }
        }
    }
    let saturated = |mix: &str| {
        let p99 = |load: f64| {
            rows.iter()
                .find(|r| r.mix == mix && r.mode == "clean" && r.load == load)
                .map_or(0.0, |r| r.p99_ns)
        };
        p99(LOAD_AXIS[2]) >= p99(LOAD_AXIS[0]) * 0.99
    };
    if !MIXES.iter().all(|m| saturated(m)) {
        return Err("heavier load finished faster end-to-end".to_string());
    }
    Ok(())
}

/// Render the trajectory as a stable JSON document (fixed key order).
pub fn to_json(hw: &HwConfig, rows: &[Row]) -> String {
    let header = JsonObject::new()
        .str("schema", "triton-bench/fig-serve/v2")
        .int("scale", hw.scale)
        .int("queries_per_point", QUERIES as u64)
        .num("deadline_service_times", DEADLINE_SERVICE_TIMES)
        .render();
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .str("mix", r.mix)
                .str("mode", r.mode)
                .num("load", r.load)
                .int("submitted", r.submitted)
                .int("completed", r.completed)
                .int("shed", r.shed)
                .num("p50_ns", r.p50_ns)
                .num("p99_ns", r.p99_ns)
                .int("slo_attainment_ppm", r.slo_attainment_ppm)
                .int("max_budget_burn_ppm", r.max_budget_burn_ppm)
                .int("grant_revisions", r.grant_revisions)
                .int("tenants", r.tenants)
                .int("telemetry_completed", r.telemetry_completed)
                .int("exposition_bytes", r.exposition_bytes)
                .bool("reconciled", r.reconciled)
                .int("wall_ns", r.wall_ns)
                .int("cost_cache_hits", r.cost_cache_hits)
                .int("cost_cache_misses", r.cost_cache_misses)
                .int("cost_cache_hit_ppm", r.cost_cache_hit_ppm)
                .int("build_prefix_hits", r.build_prefix_hits)
                .int("sched_overhead_ns", r.sched_overhead_ns)
                .render()
        })
        .collect();
    format!(
        "{{\"config\":{},\"rows\":[\n{}\n]}}\n",
        header,
        body.join(",\n")
    )
}

/// Print the figure.
pub fn print(hw: &HwConfig) -> Vec<Row> {
    crate::banner(
        "Fig serve",
        "sustained load: telemetry, SLO attainment, and the chaos points",
    );
    let rows = run(hw);
    let mut t = crate::Table::new([
        "mix",
        "mode",
        "load",
        "done/sub",
        "p99 (us)",
        "SLO (ppm)",
        "burn (ppm)",
        "revisions",
        "tenants",
        "cost hit%",
        "prefix",
        "ovh (us)",
    ]);
    for r in &rows {
        t.row([
            r.mix.to_string(),
            r.mode.to_string(),
            crate::f3(r.load),
            format!("{}/{}", r.completed, r.submitted),
            format!("{:.1}", r.p99_ns / 1e3),
            r.slo_attainment_ppm.to_string(),
            r.max_budget_burn_ppm.to_string(),
            r.grant_revisions.to_string(),
            r.tenants.to_string(),
            format!("{:.1}", r.cost_cache_hit_ppm as f64 / 10_000.0),
            r.build_prefix_hits.to_string(),
            format!("{:.1}", r.sched_overhead_ns as f64 / 1e3),
        ]);
    }
    t.print();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_reconciles_and_serializes() {
        let hw = HwConfig::ac922().scaled(256);
        let rows = run(&hw);
        assert_eq!(rows.len(), MIXES.len() * (LOAD_AXIS.len() + 1));
        check(&hw, &rows).expect("committed invariants must hold");
        assert!(rows.iter().any(|r| r.mode == "chaos"));
        let json = to_json(&hw, &rows);
        assert!(json.contains("\"schema\":\"triton-bench/fig-serve/v2\""));
        assert!(json.contains("\"cost_cache_hit_ppm\""));
        assert!(json.contains("\"sched_overhead_ns\""));
        assert_eq!(json.matches("\"mix\"").count(), rows.len());
    }

    #[test]
    fn expositions_replay_byte_identical() {
        let hw = HwConfig::ac922().scaled(256);
        assert!(replay_identical(&hw), "telemetry must replay exactly");
    }
}
