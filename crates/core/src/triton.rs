//! The Triton join (Section 5): a GPU-partitioned, hierarchical hybrid
//! hash join for fast interconnects — the paper's primary contribution.
//!
//! Three stages (Fig 10):
//!
//! 1. **1st pass** — radix-partition R and S on the *GPU* by the low B1
//!    bits of the hashed key, using the Hierarchical SWWC partitioner.
//!    B1 is chosen so two partition pairs fit in half of GPU memory. The
//!    partitioned output lands in a Section 5.3 hybrid array: pages
//!    interleaved across GPU memory (the cached working set) and CPU
//!    memory (the spill), keeping the interconnect busy in both phases.
//! 2. **2nd pass** — per partition pair, refine by the next B2 bits into
//!    GPU memory so each sub-partition's hash table fits the scratchpad.
//! 3. **Join** — build a scratchpad bucket-chaining table from each
//!    R sub-partition and probe it with the matching S sub-partition.
//!
//! Stages 2-3 run as *concurrent kernels* on disjoint halves of the SMs
//! (Section 5.2, Fig 11): the second pass of pair *i+1* overlaps the join
//! of pair *i*, hiding the spill reload behind compute.

use std::collections::BTreeMap;

use triton_datagen::{Workload, TUPLE_BYTES};
use triton_hw::kernel::{lpt_order, pipeline2, pipeline2_scheduled, KernelCost};
use triton_hw::power::Executor;
use triton_hw::units::{Bytes, Ns};
use triton_hw::{HwConfig, MemSide};
use triton_mem::SimAllocator;
use triton_part::{
    compute_histogram, cpu_prefix_sum_cost, gpu_prefix_sum, make_partitioner, Algorithm,
    PassConfig, Span,
};

use crate::bloom::BloomFilter;
use crate::elastic::{spill_order, ElasticPolicy};
use crate::hash_table::{BucketChainTable, HashScheme, BUCKET_CHAIN_ENTRIES};
use crate::report::{
    JoinReport, JoinResult, OverlapLanes, PairPlacement, PhaseReport, PlacementReport,
};
use crate::skew::{estimate_pair_cached, plan_cache, PairEstimate, PairExtent, SkewPolicy};
use triton_hw::kernel::TimingCache;

/// Target tuples per second-pass sub-partition: the build side must fit a
/// scratchpad bucket-chaining table (2048 buckets + chained tuples within
/// 64 KiB).
const PASS2_TARGET_TUPLES: u64 = 1536;

/// Join-phase instruction costs (scratchpad tables are cheap; the join
/// phase is compute-bound per Fig 15b).
const JOIN_BUILD_INSTR: u64 = 14;
const JOIN_PROBE_INSTR: u64 = 12;
const JOIN_CHAIN_INSTR: u64 = 3;

/// Per-tuple instructions of one runtime re-partitioning level
/// (histogram + scatter, the same constant the skew estimator prices the
/// executed partitioning passes with).
const REPART_INSTR: u64 = 8;

/// Configuration of the Triton join.
#[derive(Debug, Clone)]
pub struct TritonJoin {
    /// First-pass (out-of-core) partitioning algorithm.
    pub pass1: Algorithm,
    /// Second-pass (in-GPU) partitioning algorithm.
    pub pass2: Algorithm,
    /// Explicit GPU cache budget for the partitioned working set;
    /// `None` = everything left after the pipeline reservation (Fig 19
    /// sweeps this).
    pub cache_bytes: Option<Bytes>,
    /// Disable caching entirely (Fig 17's pure two-pass radix join).
    pub caching_enabled: bool,
    /// Compute the first prefix sum on the GPU instead of the CPU
    /// (Section 6.2.8: the CPU is 1.6-2.2x faster at it; Fig 15 uses the
    /// GPU variant to obtain a full GPU profile).
    pub gpu_prefix_sum: bool,
    /// Hashing scheme of the join phase.
    pub scheme: HashScheme,
    /// Upper bound on second-pass radix bits (the paper uses 9).
    pub max_pass2_bits: u32,
    /// Materialize join results to CPU memory instead of aggregating in
    /// registers (Section 5.1 supports both).
    pub materialize: bool,
    /// Enable the optional third partitioning pass (Section 5.1): when a
    /// sub-partition still exceeds the scratchpad hash-table target after
    /// the capped second pass, refine it once more within GPU memory.
    pub third_pass: bool,
    /// Pre-filter the outer relation with a Bloom filter over the build
    /// keys before partitioning it (an extension along Section 7's
    /// "filtering the outer relation" direction): non-matching probe
    /// tuples are dropped in S's first pass, before they are partitioned,
    /// spilled, and reloaded. Pays off for selective joins; the paper's
    /// default workloads match 100%, where it is pure overhead.
    pub bloom_prefilter: bool,
    /// Interleave the cached pages evenly through the working set
    /// (Section 5.3's design). `false` caches a prefix instead — the
    /// classic hybrid hash join's policy the paper argues against, kept
    /// for the ablation.
    pub interleaved_cache: bool,
    /// Overlap the second pass of pair *i+1* with the join of pair *i*
    /// via concurrent kernels on split SM sets (Section 5.2). `false`
    /// serialises the stages on the full GPU, for the ablation.
    pub overlap: bool,
    /// Skew handling policy (Section 6.2.6 / Fig 16 workloads):
    /// hotness-weighted cache placement, LPT pipeline scheduling, and
    /// heavy-hitter splitting. [`SkewPolicy::Off`] preserves the uniform
    /// executor bit for bit.
    pub skew: SkewPolicy,
    /// Elastic memory policy: mid-query grant revisions replayed at
    /// partition-pair boundaries (evicting coldest pairs first through
    /// the link cost model) and depth-bounded runtime re-partitioning
    /// when a pair overflows its staging grant. The disabled default
    /// preserves the fixed-grant executor bit for bit.
    pub elastic: ElasticPolicy,
}

impl Default for TritonJoin {
    fn default() -> Self {
        TritonJoin {
            pass1: Algorithm::Hierarchical,
            pass2: Algorithm::Shared,
            cache_bytes: None,
            caching_enabled: true,
            gpu_prefix_sum: false,
            scheme: HashScheme::BucketChaining,
            max_pass2_bits: 9,
            materialize: false,
            third_pass: true,
            bloom_prefilter: false,
            interleaved_cache: true,
            overlap: true,
            skew: SkewPolicy::Off,
            elastic: ElasticPolicy::default(),
        }
    }
}

/// Options for embedding the join as one node of a larger query plan:
/// input residency (pipelined upstream intermediates priced against GPU
/// memory bandwidth instead of the interconnect), output residency, and
/// a sink collecting the matched tuples for a downstream operator.
/// [`TritonJoin::try_run`] is the all-defaults case and preserves the
/// standalone-join behavior bit for bit.
#[derive(Debug, Default)]
pub struct JoinRunOptions<'a> {
    /// The build relation is already resident in GPU memory (a pipelined
    /// upstream intermediate): its first-pass reads charge GPU memory
    /// bandwidth instead of the interconnect.
    pub r_resident: bool,
    /// The probe relation is already resident in GPU memory.
    pub s_resident: bool,
    /// Write the matched output tuples to GPU memory for a downstream
    /// plan node (16 bytes + 2 instructions per match — the GPU-resident
    /// counterpart of [`TritonJoin::materialize`]'s link stream).
    pub output_resident: bool,
    /// Collect matched `(key, r_rid, s_rid)` triples for a downstream
    /// operator. Collection itself adds no cost — the output traffic is
    /// priced by `output_resident` or `materialize`.
    pub sink: Option<&'a mut Vec<(u64, u64, u64)>>,
}

/// Build a scratchpad bucket-chaining table from one build sub-partition
/// and probe it with the matching probe sub-partition, folding matches
/// into `out` (and into `sink`, when a plan collects output tuples).
/// Returns the chain steps traversed (for the instruction model).
/// `skip_bits` are the hash bits already consumed by all prior
/// partitioning passes.
fn join_one(
    rk: &[u64],
    rr: &[u64],
    sk: &[u64],
    sr: &[u64],
    skip_bits: u32,
    out: &mut JoinResult,
    mut sink: Option<&mut Vec<(u64, u64, u64)>>,
) -> u64 {
    if rk.is_empty() || sk.is_empty() {
        return 0;
    }
    let table = BucketChainTable::build(rk, rr, BUCKET_CHAIN_ENTRIES, skip_bits);
    let mut chain_steps = 0u64;
    for (&k, &srid) in sk.iter().zip(sr) {
        let (_, steps) = table.probe(k);
        chain_steps += steps.saturating_sub(2) as u64;
        for rrid in table.probe_all(k) {
            out.add(rrid, srid);
            if let Some(s) = sink.as_mut() {
                s.push((k, rrid, srid));
            }
        }
    }
    chain_steps
}

impl TritonJoin {
    /// First-pass radix bits. The hard constraint is capacity — two
    /// partition pairs must fit in half the GPU memory (Section 5.1) —
    /// but the paper tunes beyond it (6-10 bits) so that each *build*
    /// partition lands near 32 MiB, keeping the second pass short. The
    /// tuning reproduces the paper's choices: 2^6 at 128 M tuples, 2^10
    /// at 2048 M, and the fanout drop from 1024 to 64 at a 1:32
    /// build-to-probe ratio that Section 6.2.9 credits for its speedup.
    pub fn pass1_bits(r_bytes: u64, total_bytes: u64, hw: &HwConfig) -> u32 {
        let quarter = (hw.gpu.mem_capacity.0 / 4).max(1);
        let capacity_floor = (total_bytes.max(1) as f64 / quarter as f64).log2().ceil() as i64;
        // 32 MiB modeled, at the current capacity scale.
        let target = ((32u64 << 20) / hw.scale).max(1);
        let tuned = (r_bytes.max(1) as f64 / target as f64).log2().ceil() as i64;
        tuned.max(capacity_floor).clamp(6, 10) as u32
    }

    /// Second-pass radix bits for a partition of `tuples` build tuples.
    pub fn pass2_bits(&self, tuples: usize) -> u32 {
        if tuples == 0 {
            return 0;
        }
        let need = (tuples as f64 / PASS2_TARGET_TUPLES as f64).log2().ceil() as i64;
        need.clamp(0, self.max_pass2_bits as i64) as u32
    }

    /// Execute the join, panicking if the simulated CPU memory cannot
    /// hold the partitioned copy. Library users embedding the join in a
    /// larger planner should prefer [`Self::try_run`].
    pub fn run(&self, w: &Workload, hw: &HwConfig) -> JoinReport {
        self.try_run(w, hw)
            // triton-lint: allow(p1) -- documented panicking wrapper; fallible callers use try_run
            .expect("simulated CPU memory exhausted for the partitioned copy")
    }

    /// Execute the join, surfacing simulated out-of-memory conditions as
    /// errors instead of panicking.
    pub fn try_run(
        &self,
        w: &Workload,
        hw: &HwConfig,
    ) -> Result<JoinReport, triton_mem::OutOfMemory> {
        self.try_run_with(w, hw, JoinRunOptions::default())
    }

    /// Execute the join as one node of a query plan: `opts` selects which
    /// inputs are already GPU-resident, whether the output stays resident
    /// for a downstream node, and an optional sink collecting the matched
    /// tuples. With default options this is exactly [`Self::try_run`].
    pub fn try_run_with(
        &self,
        w: &Workload,
        hw: &HwConfig,
        mut opts: JoinRunOptions<'_>,
    ) -> Result<JoinReport, triton_mem::OutOfMemory> {
        let n_r = w.r.len();

        // --- Optional Bloom pre-filter over the outer relation: built
        // from R's keys, probed while S streams through its first pass.
        // Dropped tuples still cross the link once (they must be read to
        // be tested) but are never partitioned, spilled, or reloaded.
        let filtered;
        let mut bloom_phase: Option<PhaseReport> = None;
        let (s_keys, s_rids): (&[u64], &[u64]) = if self.bloom_prefilter {
            let mut filter = BloomFilter::for_build_side(n_r);
            for &k in &w.r.keys {
                filter.insert(k);
            }
            let mut fk = Vec::with_capacity(w.s.len());
            let mut fr = Vec::with_capacity(w.s.len());
            for (&k, &r) in w.s.keys.iter().zip(&w.s.rids) {
                if filter.may_contain(k) {
                    fk.push(k);
                    fr.push(r);
                }
            }
            let dropped = (w.s.len() - fk.len()) as u64;
            bloom_phase = Some(filter.phase_report(
                n_r as u64,
                w.s.len() as u64,
                dropped,
                opts.r_resident,
                opts.s_resident,
                hw,
            ));
            filtered = (fk, fr);
            (&filtered.0, &filtered.1)
        } else {
            (&w.s.keys, &w.s.rids)
        };
        let n_s = s_keys.len();

        let r_bytes = n_r as u64 * TUPLE_BYTES;
        let s_bytes = n_s as u64 * TUPLE_BYTES;
        let total_bytes = r_bytes + s_bytes;
        let b1 = Self::pass1_bits(r_bytes, total_bytes, hw);
        let fanout1 = 1usize << b1;
        // Concurrent kernels split the SMs; the serial ablation gives
        // each stage the whole GPU instead.
        let half_sms = if self.overlap {
            (hw.gpu.num_sms / 2).max(1)
        } else {
            hw.gpu.num_sms
        };

        // --- GPU memory budget: reserve the pipeline working set (two
        // second-pass output pairs) and the Hierarchical L2 buffers; the
        // remainder caches the partitioned arrays.
        let mut alloc = SimAllocator::new(hw);
        let pair_bytes = (total_bytes / fanout1 as u64).max(1);
        let reserve = 2 * pair_bytes + hw.gpu.mem_capacity.0 / 8;
        let auto_cache = hw.gpu.mem_capacity.0.saturating_sub(reserve);
        let cache = if self.caching_enabled {
            self.cache_bytes
                .map(|b| b.0)
                .unwrap_or(auto_cache)
                .min(auto_cache)
        } else {
            0
        };

        // Plan-resident inputs are read from GPU memory; standalone joins
        // stream both relations over the interconnect (the paper's
        // setting). The address windows stay clear of the pipeline's
        // staging spans at 1 << 46 and up.
        let input_r = if opts.r_resident {
            Span::gpu(1 << 43)
        } else {
            Span::cpu(0)
        };
        let input_s = if opts.s_resident {
            Span::gpu(1 << 44)
        } else {
            Span::cpu(1 << 45)
        };

        let mut phases: Vec<PhaseReport> = Vec::new();
        let bloom_time = bloom_phase.as_ref().map(|p| p.time).unwrap_or(Ns::ZERO);
        if let Some(p) = bloom_phase {
            phases.push(p);
        }

        // --- PS 1.
        let pass1_cfg = PassConfig::new(b1, 0);
        let (hist_r, hist_s, ps1_time) = if self.gpu_prefix_sum {
            let (hr, mut c1) = gpu_prefix_sum(&w.r.keys, &input_r, &pass1_cfg, hw, false);
            let (hs, c2) = gpu_prefix_sum(s_keys, &input_s, &pass1_cfg, hw, false);
            let t = c1.timing(hw).total + c2.timing(hw).total;
            c1.merge(&c2);
            c1.name = "PS 1".into();
            phases.push(PhaseReport {
                time: t,
                ..PhaseReport::gpu(c1, hw)
            });
            (hr, hs, t)
        } else {
            let hr = compute_histogram(&w.r.keys, 1, b1, 0);
            let hs = compute_histogram(s_keys, 1, b1, 0);
            let t = cpu_prefix_sum_cost(n_r as u64, hw) + cpu_prefix_sum_cost(n_s as u64, hw);
            phases.push(PhaseReport::cpu("PS 1", t));
            (hr, hs, t)
        };

        // --- Working-set placement. The histograms are known here, so the
        // skew-aware planner can rank partition pairs by how much pipeline
        // time GPU residency would save and pin whole hot pairs through an
        // explicit placement plan; `SkewPolicy::Off` keeps the uniform
        // proportional split.
        let page_size = alloc.page_size();
        let estimates: Option<Vec<PairEstimate>> = self.skew.mechanisms().map(|_| {
            // One roofline memo across the whole plan: uniform workloads
            // repeat the same pair shape in most partitions, so pricing
            // collapses to a handful of roofline evaluations.
            let mut memo = TimingCache::new();
            (0..fanout1)
                .map(|i| {
                    estimate_pair_cached(
                        i,
                        hist_r.totals[i],
                        hist_s.totals[i],
                        half_sms,
                        hw,
                        &mut memo,
                    )
                })
                .collect()
        });
        let page_range = |offsets: &[usize], i: usize| {
            let s = offsets[i] as u64 * TUPLE_BYTES;
            let e = offsets[i + 1] as u64 * TUPLE_BYTES;
            if e > s {
                (s / page_size, (e - 1) / page_size + 1)
            } else {
                (s / page_size, s / page_size)
            }
        };
        // Planned placement only pays when some pair is hot enough to
        // outgrow the staging area the uniform reservation leaves free.
        // Pairs whose build side needs no second pass never stage, and on
        // near-uniform histograms the proportional interleave already
        // overlaps link and GPU traffic within every kernel — in both
        // cases the planner declines and keeps the uniform split.
        let max_pair_bytes = (0..fanout1)
            .filter(|&i| self.pass2_bits(hist_r.totals[i] as usize) > 0)
            .map(|i| (hist_r.totals[i] + hist_s.totals[i]) * TUPLE_BYTES)
            .max()
            .unwrap_or(0);
        let gate_capacity = hw.gpu.mem_capacity.0.saturating_sub(cache.min(total_bytes));
        let worst_demand = max_pair_bytes * (1 + u64::from(cache < total_bytes));
        let planning_pays = worst_demand > gate_capacity;
        let cache_plan = match (&estimates, self.skew.mechanisms()) {
            (Some(est), Some(m)) if m.hot_cache && planning_pays => {
                let extents: Vec<PairExtent> = (0..fanout1)
                    .map(|i| PairExtent {
                        r_pages: page_range(&hist_r.offsets, i),
                        s_pages: page_range(&hist_s.offsets, i),
                    })
                    .collect();
                Some(plan_cache(est, &extents, cache / page_size))
            }
            _ => None,
        };
        let (r_layout, s_layout) = if let Some(plan) = &cache_plan {
            (
                alloc.alloc_hybrid_planned(Bytes(r_bytes), plan.r_plan.clone())?,
                alloc.alloc_hybrid_planned(Bytes(s_bytes), plan.s_plan.clone())?,
            )
        } else {
            let r_cache = (cache as u128 * r_bytes as u128 / total_bytes.max(1) as u128) as u64;
            let s_cache = cache - r_cache.min(cache);
            (
                alloc.alloc_hybrid_with(Bytes(r_bytes), Bytes(r_cache), self.interleaved_cache)?,
                alloc.alloc_hybrid_with(Bytes(s_bytes), Bytes(s_cache), self.interleaved_cache)?,
            )
        };
        let r_span = Span::hybrid(r_layout.clone());
        let s_span = Span::hybrid(s_layout.clone());
        // Free GPU memory left beside the cached working set: the staging
        // area the pipeline materializes each pair into (the gpu_in copy
        // of a spilled pair plus the second-pass output). Uniform pairs
        // fit by construction — the reservation above is sized for two
        // mean pairs — but a skewed hot pair can exceed it.
        let staging_capacity = alloc.available(MemSide::Gpu).0;

        // --- Part 1 (out-of-core, Hierarchical by default).
        let p1 = make_partitioner(self.pass1);
        let (parts_r, mut c_p1r) = p1.partition(
            &w.r.keys, &w.r.rids, &hist_r, &input_r, &r_span, &pass1_cfg, hw,
        );
        let (parts_s, c_p1s) =
            p1.partition(s_keys, s_rids, &hist_s, &input_s, &s_span, &pass1_cfg, hw);
        let part1_time = c_p1r.timing(hw).total + c_p1s.timing(hw).total;
        c_p1r.merge(&c_p1s);
        c_p1r.name = "Part 1".into();
        phases.push(PhaseReport {
            time: part1_time,
            ..PhaseReport::gpu(c_p1r, hw)
        });

        // --- Per-partition second pass + join, pipelined on split SMs.
        let p2 = make_partitioner(self.pass2);
        let spilled = r_layout.cpu_bytes() + s_layout.cpu_bytes() > 0;
        let mean_build = hist_r.mean_tuples();
        let mut result = JoinResult::empty();
        let mut stage_a: Vec<Ns> = Vec::with_capacity(fanout1);
        let mut stage_b: Vec<Ns> = Vec::with_capacity(fanout1);
        let mut est_a: Vec<Ns> = Vec::new();
        let mut est_b: Vec<Ns> = Vec::new();
        let mut placements: Vec<PairPlacement> = Vec::new();
        let mut ps2_all = KernelCost::new("PS 2");
        let mut part2_all = KernelCost::new("Part 2");
        let mut spill_all = KernelCost::new("Spill");
        let mut part3_all = KernelCost::new("Part 3");
        let mut sched_all = KernelCost::new("Sched");
        let mut join_all = KernelCost::new("Join");
        let mut reclaim_all = KernelCost::new("Reclaim");
        let mut repart_all = KernelCost::new("Repart");
        let (mut ps2_t, mut part2_t, mut spill_t, mut part3_t, mut sched_t, mut join_t) =
            (Ns::ZERO, Ns::ZERO, Ns::ZERO, Ns::ZERO, Ns::ZERO, Ns::ZERO);
        let (mut reclaim_t, mut repart_t) = (Ns::ZERO, Ns::ZERO);

        // --- Elastic grant state. A mid-query schedule revises the cache
        // budget at pair boundaries: a shrink evicts the GPU-resident
        // share of the *coldest unprocessed* pairs (by the pass-1 hotness
        // histogram) through the link, a grow re-pins the hottest evicted
        // ones; a pair reaching the pipeline while its resident share is
        // still evicted pays an explicit reload. All of it is priced into
        // the `Reclaim` phase; answers never change, only time.
        let elastic_on = self.elastic.enabled;
        let hotness: Vec<u64> = (0..fanout1)
            .map(|j| (hist_r.totals[j] + hist_s.totals[j]) * TUPLE_BYTES)
            .collect();
        let resident_of = |j: usize| {
            let r_off = hist_r.offsets[j] as u64 * TUPLE_BYTES;
            let s_off = hist_s.offsets[j] as u64 * TUPLE_BYTES;
            r_layout
                .split_range(r_off, hist_r.totals[j] * TUPLE_BYTES)
                .0
                + s_layout
                    .split_range(s_off, hist_s.totals[j] * TUPLE_BYTES)
                    .0
        };
        // Pair index → resident bytes currently evicted by a shrink.
        let mut evicted: BTreeMap<usize, u64> = BTreeMap::new();
        let mut elastic_cache = cache;
        let mut next_step = 0usize;
        let stream = |k: &mut KernelCost, bytes: u64, evicting: bool| {
            if bytes == 0 {
                return Ns::ZERO;
            }
            k.tuples_in += bytes / TUPLE_BYTES;
            let mut leg = KernelCost::new("Reclaim");
            leg.sms = half_sms;
            if evicting {
                leg.gpu_mem.read += Bytes(bytes);
                leg.link.seq_write += Bytes(bytes);
            } else {
                leg.gpu_mem.write += Bytes(bytes);
                leg.link.seq_read += Bytes(bytes);
            }
            let t = leg.timing(hw).total;
            k.merge(&leg);
            t
        };

        let mut pass2_cfg_proto = PassConfig::new(0, b1);
        pass2_cfg_proto.sms = half_sms;

        for i in 0..fanout1 {
            // Apply every grant revision scheduled at this pair boundary.
            while elastic_on
                && next_step < self.elastic.schedule.steps.len()
                && self.elastic.schedule.steps[next_step].at_pair <= i as u64
            {
                let target = self.elastic.schedule.steps[next_step].cache_bytes;
                next_step += 1;
                if target < elastic_cache {
                    // Shrink: evict resident state of unprocessed pairs,
                    // coldest first, until the reclaimed bytes cover it.
                    let mut need = elastic_cache - target;
                    for &j in &spill_order(&hotness) {
                        if need == 0 {
                            break;
                        }
                        if j < i {
                            continue;
                        }
                        let held = resident_of(j).saturating_sub(*evicted.get(&j).unwrap_or(&0));
                        let take = held.min(need);
                        if take == 0 {
                            continue;
                        }
                        *evicted.entry(j).or_insert(0) += take;
                        need -= take;
                        reclaim_t += stream(&mut reclaim_all, take, true);
                    }
                } else if target > elastic_cache {
                    // Grow: re-pin evicted state, hottest first, paying
                    // the reload now instead of at processing time.
                    let mut back = target - elastic_cache;
                    for &j in spill_order(&hotness).iter().rev() {
                        if back == 0 {
                            break;
                        }
                        if j < i {
                            continue;
                        }
                        let Some(held) = evicted.get_mut(&j) else {
                            continue;
                        };
                        let take = (*held).min(back);
                        *held -= take;
                        back -= take;
                        reclaim_t += stream(&mut reclaim_all, take, false);
                    }
                    evicted.retain(|_, held| *held > 0);
                }
                elastic_cache = target;
            }
            let (rk, rr) = parts_r.partition(i);
            let (sk, sr) = parts_s.partition(i);
            if rk.is_empty() && sk.is_empty() {
                continue;
            }
            // A pair whose resident share was evicted by a shrink streams
            // it back before its second pass can run.
            if elastic_on {
                if let Some(held) = evicted.remove(&i) {
                    reclaim_t += stream(&mut reclaim_all, held, false);
                }
            }
            // Heavy-hitter splitting: build partitions far above the mean
            // get extra second-pass bits, still under the scratchpad cap.
            let b2 = (self.pass2_bits(rk.len())
                + self.skew.heavy_extra_bits(rk.len() as u64, mean_build))
            .min(self.max_pass2_bits);
            let mut a_time = Ns::ZERO;

            let r_off = hist_r.offsets[i] as u64 * TUPLE_BYTES;
            let s_off = hist_s.offsets[i] as u64 * TUPLE_BYTES;
            let r_slice = r_span.slice(r_off);
            let s_slice = s_span.slice(s_off);
            let pair_r_bytes = rk.len() as u64 * TUPLE_BYTES;
            let pair_s_bytes = sk.len() as u64 * TUPLE_BYTES;
            // Under a placement plan, spill is a per-pair fact: pinned
            // pairs skip the copy-in entirely. The uniform policies keep
            // the global flag (every pair shares the interleave).
            let pair_spilled = if cache_plan.is_some() {
                r_layout.split_range(r_off, pair_r_bytes).1
                    + s_layout.split_range(s_off, pair_s_bytes).1
                    > 0
            } else {
                spilled
            };
            let pair_gpu = r_layout.split_range(r_off, pair_r_bytes).0
                + s_layout.split_range(s_off, pair_s_bytes).0;
            let pair_bytes_total = pair_r_bytes + pair_s_bytes;
            // Staging demand of this pair: the second pass materializes
            // its output in GPU memory, and a spilled pair is first
            // copied into gpu_in by the PS 2 kernels.
            let staging_demand = if b2 > 0 {
                pair_bytes_total * (1 + u64::from(pair_spilled))
            } else {
                0
            };
            // Heavy-hitter splitting: the skew-aware executor knows pair
            // sizes from the histograms, so a pair that outgrows the
            // staging area is streamed through it in probe-side chunks —
            // each chunk is its own pipeline lane, so no single stage-B
            // straggler dominates the schedule. The blind executor
            // instead overflows (charged below).
            // Runtime re-partitioning: when a pair overflows its staging
            // grant (and heavy-hitter splitting is not already chunking
            // it), the elastic executor refines the offending pair with
            // `repart_bits` extra radix bits per recursion level — each
            // level an in-GPU partitioning pass — until the sub-pairs fit,
            // bounded by `max_depth`. The sub-pairs then stream through
            // staging as their own pipeline lanes; anything still past the
            // bound spills flat (bounded recursion, never unbounded).
            let repart_depth = if elastic_on
                && staging_demand > staging_capacity
                && !self.skew.mechanisms().is_some_and(|m| m.split_heavy)
            {
                self.elastic
                    .depth_for(staging_demand, staging_capacity.max(1))
            } else {
                0
            };
            let lanes = if self.skew.mechanisms().is_some_and(|m| m.split_heavy)
                && staging_demand > staging_capacity
            {
                staging_demand.div_ceil(staging_capacity.max(1)).min(64)
            } else if repart_depth > 0 {
                (1u64 << (self.elastic.repart_bits * repart_depth).min(6)).min(64)
            } else {
                1
            };
            for lane in 0..lanes {
                let share = |v: u64| {
                    let per = v / lanes;
                    if lane == 0 {
                        v - per * (lanes - 1)
                    } else {
                        per
                    }
                };
                placements.push(PairPlacement {
                    part: i as u64,
                    bytes: share(pair_bytes_total),
                    gpu_bytes: share(pair_gpu),
                    cached: pair_gpu == pair_bytes_total,
                });
                if let Some(est) = &estimates {
                    est_a.push(est[i].stage_a(!pair_spilled) / lanes as f64);
                    est_b.push(est[i].b / lanes as f64);
                }
            }

            // Sub-histograms / sub-partitions of this pair.
            let (sub_r, sub_s, joined_from_gpu) = if b2 > 0 {
                let mut cfg = pass2_cfg_proto;
                cfg.radix_bits = b2;
                // PS 2: histogram over the pair, copying it into GPU
                // memory when the array is (partially) spilled so the
                // later kernels avoid a second interconnect pass.
                let (h2r, mut cps_r) = gpu_prefix_sum(rk, &r_slice, &cfg, hw, pair_spilled);
                let (h2s, cps_s) = gpu_prefix_sum(sk, &s_slice, &cfg, hw, pair_spilled);
                let t = cps_r.timing(hw).total + cps_s.timing(hw).total;
                cps_r.merge(&cps_s);
                ps2_t += t;
                a_time += t;
                ps2_all.merge(&cps_r);

                // Part 2: read the (now GPU-resident) pair, scatter into
                // GPU memory.
                let gpu_in = Span::gpu(1 << 46);
                let gpu_out = Span::gpu(1 << 47);
                let part2_in = if pair_spilled { &gpu_in } else { &r_slice };
                let (pr2, mut cp2r) = p2.partition(rk, rr, &h2r, part2_in, &gpu_out, &cfg, hw);
                let part2_in_s = if pair_spilled { &gpu_in } else { &s_slice };
                let (ps2_parts, cp2s) = p2.partition(sk, sr, &h2s, part2_in_s, &gpu_out, &cfg, hw);
                let t = cp2r.timing(hw).total + cp2s.timing(hw).total;
                cp2r.merge(&cp2s);
                part2_t += t;
                a_time += t;
                part2_all.merge(&cp2r);
                (Some(pr2), Some(ps2_parts), true)
            } else {
                (None, None, !pair_spilled)
            };

            // Each re-partitioning level reads and rescatters the pair
            // within GPU memory while it streams through staging.
            if repart_depth > 0 {
                let pair_tuples = (rk.len() + sk.len()) as u64;
                for _ in 0..repart_depth {
                    let mut rp = KernelCost::new("Repart");
                    rp.sms = half_sms;
                    rp.tuples_in = pair_tuples;
                    rp.instructions = pair_tuples * REPART_INSTR;
                    rp.gpu_mem.read += Bytes(pair_bytes_total);
                    rp.gpu_mem.write += Bytes(pair_bytes_total);
                    let t = rp.timing(hw).total;
                    repart_t += t;
                    a_time += t;
                    repart_all.merge(&rp);
                }
            }

            // Staging overflow: without heavy-hitter splitting, a pair
            // bigger than the free GPU memory cannot be materialized at
            // once — the executor evicts the overflow to CPU memory while
            // the second pass is still scattering, then reloads it for
            // the join. The two transfers sit in different pipeline steps
            // and cannot overlap each other, so each is timed on its own.
            // Under elastic re-partitioning only the share a lane still
            // cannot stage after `max_depth` levels overflows this way.
            let flat_excess = if lanes == 1 && staging_demand > staging_capacity {
                staging_demand - staging_capacity
            } else if repart_depth > 0 {
                staging_demand
                    .div_ceil(lanes)
                    .saturating_sub(staging_capacity)
                    .saturating_mul(lanes)
            } else {
                0
            };
            if flat_excess > 0 {
                let excess = Bytes(flat_excess);
                let mut evict = KernelCost::new("Spill");
                evict.sms = half_sms;
                evict.tuples_in = excess.0 / TUPLE_BYTES;
                evict.gpu_mem.read += excess;
                evict.link.seq_write += excess;
                let mut reload = KernelCost::new("Spill");
                reload.sms = half_sms;
                reload.gpu_mem.write += excess;
                reload.link.seq_read += excess;
                let t = evict.timing(hw).total + reload.timing(hw).total;
                spill_t += t;
                a_time += t;
                evict.merge(&reload);
                spill_all.merge(&evict);
            }

            // Sched: the join task scheduler pairing sub-partitions.
            let mut sched = KernelCost::new("Sched");
            sched.sms = half_sms;
            sched.instructions = 4096 + (1u64 << b2) * 512;
            sched.gpu_mem.read += Bytes((1u64 << b2) * 16);
            let t = sched.timing(hw).total;
            sched_t += t;
            a_time += t;
            sched_all.merge(&sched);

            // Join kernel over the pair.
            let mut join = KernelCost::new("Join");
            join.sms = half_sms;
            join.tuples_in = (rk.len() + sk.len()) as u64;
            let mut pair_result = JoinResult::empty();
            let charge_join_reads = |join: &mut KernelCost| {
                let bytes_r = rk.len() as u64 * TUPLE_BYTES;
                let bytes_s = sk.len() as u64 * TUPLE_BYTES;
                if joined_from_gpu {
                    join.gpu_mem.read += Bytes(bytes_r + bytes_s);
                } else {
                    // No second pass and the pair is (partially) spilled:
                    // stream it over the interconnect.
                    let (g, c) = r_slice.split_range(0, bytes_r);
                    join.gpu_mem.read += Bytes(g);
                    join.link.seq_read += Bytes(c);
                    let (g, c) = s_slice.split_range(0, bytes_s);
                    join.gpu_mem.read += Bytes(g);
                    join.link.seq_read += Bytes(c);
                }
            };
            charge_join_reads(&mut join);

            let (build_i, probe_i) = match self.scheme {
                HashScheme::Perfect => (JOIN_BUILD_INSTR - 5, JOIN_PROBE_INSTR - 4),
                _ => (JOIN_BUILD_INSTR, JOIN_PROBE_INSTR),
            };
            let mut chain_steps = 0u64;
            match (&sub_r, &sub_s) {
                (Some(pr2), Some(ps2p)) => {
                    for p in 0..pr2.fanout() {
                        let (srk, srr) = pr2.partition(p);
                        let (ssk, ssr) = ps2p.partition(p);
                        if srk.is_empty() || ssk.is_empty() {
                            continue;
                        }
                        // Optional third pass (Section 5.1): if the capped
                        // second pass left this sub-partition too large for
                        // the scratchpad table, refine it once more within
                        // GPU memory.
                        let b3 = if self.third_pass {
                            self.pass2_bits(srk.len())
                        } else {
                            0
                        };
                        if b3 > 0 {
                            let mut cfg3 = pass2_cfg_proto;
                            cfg3.radix_bits = b3;
                            cfg3.skip_bits = b1 + b2;
                            let gpu_in = Span::gpu(1 << 48);
                            let gpu_out = Span::gpu(1 << 49);
                            let h3r = triton_part::compute_histogram(srk, 1, b3, b1 + b2);
                            let h3s = triton_part::compute_histogram(ssk, 1, b3, b1 + b2);
                            let (pr3, mut c3) =
                                p2.partition(srk, srr, &h3r, &gpu_in, &gpu_out, &cfg3, hw);
                            let (ps3, c3s) =
                                p2.partition(ssk, ssr, &h3s, &gpu_in, &gpu_out, &cfg3, hw);
                            c3.merge(&c3s);
                            c3.name = "Part 3".into();
                            let t3 = c3.timing(hw).total;
                            part3_t += t3;
                            a_time += t3;
                            part3_all.merge(&c3);
                            for q in 0..pr3.fanout() {
                                let (qrk, qrr) = pr3.partition(q);
                                let (qsk, qsr) = ps3.partition(q);
                                chain_steps += join_one(
                                    qrk,
                                    qrr,
                                    qsk,
                                    qsr,
                                    b1 + b2 + b3,
                                    &mut pair_result,
                                    opts.sink.as_deref_mut(),
                                );
                            }
                        } else {
                            chain_steps += join_one(
                                srk,
                                srr,
                                ssk,
                                ssr,
                                b1 + b2,
                                &mut pair_result,
                                opts.sink.as_deref_mut(),
                            );
                        }
                    }
                }
                _ => {
                    chain_steps += join_one(
                        rk,
                        rr,
                        sk,
                        sr,
                        b1,
                        &mut pair_result,
                        opts.sink.as_deref_mut(),
                    );
                }
            }
            join.instructions = rk.len() as u64 * build_i
                + sk.len() as u64 * probe_i
                + chain_steps * JOIN_CHAIN_INSTR;
            if self.materialize {
                // Results stream to CPU memory via a linear allocator.
                join.link.seq_write += Bytes(pair_result.matches * TUPLE_BYTES);
                join.instructions += pair_result.matches * 2;
            }
            if opts.output_resident {
                // Results land in GPU memory for a downstream plan node.
                join.gpu_mem.write += Bytes(pair_result.matches * TUPLE_BYTES);
                join.instructions += pair_result.matches * 2;
            }
            join.tuples_out = pair_result.matches;
            result.merge(&pair_result);
            let t = join.timing(hw).total;
            join_t += t;
            join_all.merge(&join);

            // A chunked heavy pair occupies `lanes` pipeline slots, each
            // carrying an equal share of its two stages.
            let lane_a = a_time / lanes as f64;
            let lane_b = t / lanes as f64;
            for _ in 0..lanes {
                stage_a.push(lane_a);
                stage_b.push(lane_b);
            }
        }

        // Assemble the merged per-kernel phases.
        for (cost, t) in [
            (ps2_all, ps2_t),
            (part2_all, part2_t),
            (spill_all, spill_t),
            (reclaim_all, reclaim_t),
            (repart_all, repart_t),
            (part3_all, part3_t),
            (sched_all, sched_t),
            (join_all, join_t),
        ] {
            if cost.tuples_in > 0 || cost.instructions > 0 {
                phases.push(PhaseReport {
                    time: t,
                    ..PhaseReport::gpu(cost, hw)
                });
            }
        }

        // LPT scheduling: order the pipeline lanes longest-total-first
        // from the pre-loop estimates, then accept the permutation only if
        // it beats submission order on the *actual* lane times — the
        // schedule can reorder, never regress.
        let mut order: Vec<usize> = Vec::new();
        if self.overlap
            && self.skew.mechanisms().is_some_and(|m| m.lpt)
            && stage_a.len() > 1
            && est_a.len() == stage_a.len()
        {
            let candidate = lpt_order(&est_a, &est_b);
            if pipeline2_scheduled(&stage_a, &stage_b, &candidate) < pipeline2(&stage_a, &stage_b) {
                order = candidate;
            }
        }

        let pipeline_time = if !self.overlap {
            stage_a.iter().copied().sum::<Ns>() + stage_b.iter().copied().sum::<Ns>()
        } else if order.is_empty() {
            pipeline2(&stage_a, &stage_b)
        } else {
            pipeline2_scheduled(&stage_a, &stage_b, &order)
        };
        // Grant-revision reclaim traffic happens at pair boundaries and
        // monopolizes the link while it runs, so it serializes against
        // the pipeline rather than hiding inside a lane.
        let total = bloom_time + ps1_time + part1_time + pipeline_time + reclaim_t;

        let placement = PlacementReport {
            policy: if cache_plan.is_some() {
                "planned"
            } else if self.interleaved_cache {
                "interleaved"
            } else {
                "prefix"
            }
            .into(),
            cache_budget_bytes: cache,
            cache_hit_bytes: placements.iter().map(|p| p.gpu_bytes).sum(),
            spilled_bytes: placements.iter().map(|p| p.bytes - p.gpu_bytes).sum(),
            pairs: placements,
        };

        Ok(JoinReport {
            name: format!("GPU Triton Join ({})", self.scheme.name()),
            phases,
            total,
            tuples_actual: w.total_tuples(),
            tuples_modeled: w.total_tuples_modeled(),
            result,
            executor: Executor::Gpu,
            overlap: if self.overlap {
                Some(OverlapLanes {
                    stage_a,
                    stage_b,
                    order,
                })
            } else {
                None
            },
            placement: Some(placement),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn result_matches_reference() {
        let hw = HwConfig::ac922().scaled(2048);
        let w = WorkloadSpec::paper_default(8, 512).generate();
        let rep = TritonJoin::default().run(&w, &hw);
        assert_eq!(rep.result, reference_join(&w));
        assert_eq!(rep.result.matches, w.s.len() as u64);
    }

    #[test]
    fn result_correct_without_caching_and_with_gpu_ps() {
        let hw = HwConfig::ac922().scaled(2048);
        let w = WorkloadSpec::paper_default(8, 512).generate();
        let j = TritonJoin {
            caching_enabled: false,
            gpu_prefix_sum: true,
            materialize: true,
            ..TritonJoin::default()
        };
        let rep = j.run(&w, &hw);
        assert_eq!(rep.result, reference_join(&w));
    }

    #[test]
    fn pass1_bits_follow_capacity_rule() {
        let hw = HwConfig::ac922();
        // Paper workloads: 128 M tuples (2 GiB build side) -> 2^6;
        // 512 M -> 2^8; 2048 M (32 GiB) -> 2^10.
        let t = |m: u64| m * 16_000_000 * 2;
        assert_eq!(TritonJoin::pass1_bits(m(128), t(128), &hw), 6);
        assert_eq!(TritonJoin::pass1_bits(m(512), t(512), &hw), 8);
        assert_eq!(TritonJoin::pass1_bits(m(2048), t(2048), &hw), 10);
        // The 1:32 ratio workload: small build side -> fanout drops to 64.
        assert_eq!(TritonJoin::pass1_bits(m(124), t(2048), &hw), 6);
        fn m(mt: u64) -> u64 {
            mt * 16_000_000
        }
    }

    #[test]
    fn pass2_bits_bounded() {
        let j = TritonJoin::default();
        assert_eq!(j.pass2_bits(0), 0);
        assert_eq!(j.pass2_bits(1000), 0);
        assert_eq!(j.pass2_bits(10_000), 3);
        assert_eq!(j.pass2_bits(100_000_000), 9); // clamped
    }

    #[test]
    fn phases_cover_the_paper_kernels() {
        let hw = HwConfig::ac922().scaled(2048);
        let w = WorkloadSpec::paper_default(16, 512).generate();
        let rep = TritonJoin::default().run(&w, &hw);
        let names: Vec<&str> = rep.phases.iter().map(|p| p.name.as_str()).collect();
        for expected in ["PS 1", "Part 1", "Sched", "Join"] {
            assert!(
                names.contains(&expected),
                "missing phase {expected}: {names:?}"
            );
        }
    }

    #[test]
    fn third_pass_triggers_when_second_is_capped() {
        let hw = HwConfig::ac922().scaled(512);
        let w = WorkloadSpec::paper_default(512, 512).generate();
        // Cap the second pass at 1 bit so partitions stay far above the
        // scratchpad target and the third pass must refine them.
        let j = TritonJoin {
            max_pass2_bits: 1,
            ..TritonJoin::default()
        };
        let rep = j.run(&w, &hw);
        assert_eq!(rep.result, reference_join(&w));
        assert!(
            rep.phases.iter().any(|p| p.name == "Part 3"),
            "expected a Part 3 phase: {:?}",
            rep.phases
                .iter()
                .map(|p| p.name.clone())
                .collect::<Vec<_>>()
        );
        // Disabling the third pass must still be correct (just slower
        // chains), and must not emit the phase.
        let j_off = TritonJoin {
            max_pass2_bits: 1,
            third_pass: false,
            ..TritonJoin::default()
        };
        let rep_off = j_off.run(&w, &hw);
        assert_eq!(rep_off.result, reference_join(&w));
        assert!(rep_off.phases.iter().all(|p| p.name != "Part 3"));
        // The third pass pays off in the join phase: shorter chains mean
        // fewer instructions (at paper scale the gap is much larger; the
        // pass-1 tuning keeps sub-partitions small at simulation scale).
        let join_instr = |r: &crate::report::JoinReport| {
            r.phases
                .iter()
                .find(|p| p.name == "Join")
                .and_then(|p| p.cost.as_ref())
                .map(|c| c.instructions)
                .unwrap()
        };
        assert!(join_instr(&rep) <= join_instr(&rep_off));
    }

    #[test]
    fn bloom_prefilter_correct_and_pays_on_selective_joins() {
        let hw = HwConfig::ac922().scaled(512);
        // Only 5% of probe tuples match: the filter drops most of S
        // before it is partitioned and spilled. Building the filter now
        // honestly pays R's key column crossing the link once, so the
        // net win is the S partition/spill traffic saved minus that
        // stream.
        let w = WorkloadSpec::selective(512, 0.05, 512).generate();
        let plain = TritonJoin::default().run(&w, &hw);
        let bloom = TritonJoin {
            bloom_prefilter: true,
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(
            bloom.result, plain.result,
            "filtering must not change results"
        );
        assert_eq!(bloom.result, reference_join(&w));
        assert!(
            bloom.total.0 < plain.total.0 * 0.97,
            "selective join: bloom {} vs plain {}",
            bloom.total,
            plain.total
        );
        // The filter build must charge R's keys over the interconnect.
        let bloom_phase = bloom.phases.iter().find(|p| p.name == "Bloom").unwrap();
        assert!(
            bloom_phase.cost.as_ref().unwrap().link.seq_read.0 >= w.r.len() as u64 * 8,
            "filter build must stream R's key column over the link"
        );
    }

    #[test]
    fn bloom_prefilter_is_overhead_on_full_match_joins() {
        let hw = HwConfig::ac922().scaled(512);
        let w = WorkloadSpec::paper_default(128, 512).generate();
        let plain = TritonJoin::default().run(&w, &hw);
        let bloom = TritonJoin {
            bloom_prefilter: true,
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(bloom.result, plain.result);
        // 100% match rate: nothing to drop, the filter is pure overhead.
        assert!(bloom.total.0 >= plain.total.0);
    }

    #[test]
    fn try_run_surfaces_simulated_oom() {
        // A workload larger than the scaled CPU memory cannot host its
        // partitioned copy: the fallible API reports it.
        let hw = HwConfig::ac922().scaled(65536);
        let w = WorkloadSpec::paper_default(512, 64).generate();
        let err = TritonJoin::default().try_run(&w, &hw).unwrap_err();
        assert_eq!(err.side, triton_hw::MemSide::Cpu);
    }

    #[test]
    fn materialization_writes_results_over_the_link() {
        let hw = HwConfig::ac922().scaled(2048);
        let w = WorkloadSpec::paper_default(8, 512).generate();
        let j = TritonJoin {
            materialize: true,
            ..TritonJoin::default()
        };
        let rep = j.run(&w, &hw);
        let join_phase = rep.phases.iter().find(|p| p.name == "Join").unwrap();
        let written = join_phase.cost.as_ref().unwrap().link.seq_write.0;
        assert_eq!(written, rep.result.matches * TUPLE_BYTES);
    }

    #[test]
    fn elastic_with_no_revisions_is_bit_identical_to_fixed() {
        // Enabling the policy without a schedule (and without overflow)
        // must not perturb the model by a single bit: the elastic paths
        // are strictly additive.
        let hw = HwConfig::ac922().scaled(2048);
        let w = WorkloadSpec::paper_default(8, 512).generate();
        let fixed = TritonJoin::default().run(&w, &hw);
        let elastic = TritonJoin {
            elastic: crate::elastic::ElasticPolicy::adaptive(),
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(elastic.result, fixed.result);
        assert_eq!(elastic.total.0.to_bits(), fixed.total.0.to_bits());
        let names = |r: &JoinReport| r.phases.iter().map(|p| p.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(&elastic), names(&fixed));
        assert!(names(&fixed)
            .iter()
            .all(|n| n != "Reclaim" && n != "Repart"));
    }

    #[test]
    fn grant_shrink_preserves_results_and_prices_the_reclaim() {
        use crate::elastic::{ElasticPolicy, GrantSchedule, GrantStep};
        let hw = HwConfig::ac922().scaled(2048);
        let w = WorkloadSpec::paper_default(8, 512).generate();
        let expect = reference_join(&w);
        let baseline = TritonJoin::default().run(&w, &hw);
        // A mid-query shrink to zero cache: every unprocessed pair's
        // resident share is evicted through the link, then streamed back
        // as each pair reaches its second pass.
        let shrink = TritonJoin {
            elastic: ElasticPolicy::with_schedule(GrantSchedule::new(vec![GrantStep {
                at_pair: 1,
                cache_bytes: 0,
            }])),
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(shrink.result, expect, "a grant revision changed answers");
        let reclaim = shrink
            .phases
            .iter()
            .find(|p| p.name == "Reclaim")
            .expect("shrinking a cached join must emit a Reclaim phase");
        let cost = reclaim.cost.as_ref().unwrap();
        assert!(cost.link.seq_write.0 > 0, "eviction must cross the link");
        assert!(cost.link.seq_read.0 > 0, "reload must cross the link");
        assert!(
            shrink.total.0 > baseline.total.0,
            "reclaim traffic is not free: {} vs {}",
            shrink.total,
            baseline.total
        );
        // Shrink-then-grow restores residency early (the grow pays the
        // reload up front); answers are still identical.
        let regrow = TritonJoin {
            elastic: ElasticPolicy::with_schedule(GrantSchedule::new(vec![
                GrantStep {
                    at_pair: 1,
                    cache_bytes: 0,
                },
                GrantStep {
                    at_pair: 2,
                    cache_bytes: u64::MAX,
                },
            ])),
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(regrow.result, expect);
        assert!(regrow.phases.iter().any(|p| p.name == "Reclaim"));
    }

    #[test]
    fn runtime_repartitioning_is_depth_bounded_and_beats_flat_spill() {
        use crate::elastic::ElasticPolicy;
        let hw = HwConfig::ac922().scaled(512);
        // Zipf 1.5: the hot pair overflows the staging area. The blind
        // executor pays the flat spill round-trip over the link; the
        // elastic one refines the pair in GPU memory instead.
        let w = WorkloadSpec::skewed(512, 1.5, 512).generate();
        let expect = reference_join(&w);
        let flat = TritonJoin::default().run(&w, &hw);
        assert!(
            flat.phases.iter().any(|p| p.name == "Spill"),
            "workload must overflow staging for this test to bite"
        );
        let elastic = TritonJoin {
            elastic: ElasticPolicy::adaptive(),
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(elastic.result, expect, "re-partitioning changed answers");
        assert!(
            elastic.phases.iter().any(|p| p.name == "Repart"),
            "overflow under the elastic policy must re-partition"
        );
        assert!(
            elastic.total.0 <= flat.total.0,
            "in-GPU re-partitioning should not lose to the link round-trip: {} vs {}",
            elastic.total,
            flat.total
        );
        // A zero depth bound forbids recursion entirely: the executor
        // falls back to the flat spill, bit-identical to the fixed path.
        let depth0 = TritonJoin {
            elastic: ElasticPolicy {
                max_depth: 0,
                ..ElasticPolicy::adaptive()
            },
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(depth0.result, expect);
        assert!(depth0.phases.iter().all(|p| p.name != "Repart"));
        assert_eq!(depth0.total.0.to_bits(), flat.total.0.to_bits());
    }
}
