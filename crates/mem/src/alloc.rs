//! Capacity-tracked simulated allocator for GPU and CPU memory.
//!
//! The simulator never allocates real device memory; this allocator hands
//! out *virtual address ranges* while enforcing the (scaled) capacities of
//! each physical memory, so that algorithms experience the same "does it
//! fit in GPU memory?" decisions the paper's system faces. Allocations are
//! page-aligned huge pages (Section 6.1 preallocates 2 MiB pages at boot).

use std::fmt;

use triton_hw::{Bytes, HwConfig, MemSide};

use crate::interleave::{HybridLayout, InterleavePattern, Placement, PlacementPlan};

/// Error returned when a device cannot satisfy an allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The device that ran out.
    pub side: MemSide,
    /// Requested bytes.
    pub requested: Bytes,
    /// Bytes still available.
    pub available: Bytes,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of {:?} memory: requested {}, available {}",
            self.side, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A page-aligned virtual allocation on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Base virtual address.
    pub base: u64,
    /// Usable length in bytes.
    pub len: u64,
    /// Device holding the physical pages.
    pub side: MemSide,
}

impl Allocation {
    /// Virtual address of byte `offset`.
    pub fn vaddr(&self, offset: u64) -> u64 {
        debug_assert!(offset < self.len.max(1));
        self.base + offset
    }
}

/// The simulated allocator. Tracks per-device usage against the scaled
/// capacities in [`HwConfig`] and assigns non-overlapping virtual ranges.
///
/// ```
/// use triton_mem::SimAllocator;
/// use triton_hw::{Bytes, HwConfig, MemSide};
/// let hw = HwConfig::ac922().scaled(1024);
/// let mut alloc = SimAllocator::new(&hw);
/// // A hybrid array caching half its pages in GPU memory (Section 5.3).
/// let layout = alloc.alloc_hybrid(Bytes::mib(4), Bytes::mib(2)).unwrap();
/// assert!(layout.gpu_bytes() <= Bytes::mib(2).0);
/// assert_eq!(layout.gpu_bytes() + layout.cpu_bytes(), Bytes::mib(4).0);
/// ```
#[derive(Debug, Clone)]
pub struct SimAllocator {
    page_size: u64,
    gpu_capacity: u64,
    cpu_capacity: u64,
    gpu_used: u64,
    cpu_used: u64,
    // Live *requested* bytes per side (before page rounding): the gap to
    // `used` is internal fragmentation, exported as a telemetry gauge.
    gpu_requested: u64,
    cpu_requested: u64,
    next_vaddr: u64,
}

impl SimAllocator {
    /// Build from a hardware configuration.
    pub fn new(hw: &HwConfig) -> Self {
        SimAllocator {
            page_size: hw.tlb.page_size.0.max(1),
            gpu_capacity: hw.gpu.mem_capacity.0,
            cpu_capacity: hw.cpu.mem_capacity.0,
            gpu_used: 0,
            cpu_used: 0,
            gpu_requested: 0,
            cpu_requested: 0,
            // Start away from zero so "null" never aliases an allocation.
            next_vaddr: 1 << 20,
        }
    }

    /// Bytes still available on `side`. Saturates at zero: after a
    /// capacity retirement ([`Self::retire`]) usage can transiently
    /// exceed capacity until the owner revokes reservations.
    pub fn available(&self, side: MemSide) -> Bytes {
        match side {
            MemSide::Gpu => Bytes(self.gpu_capacity.saturating_sub(self.gpu_used)),
            MemSide::Cpu => Bytes(self.cpu_capacity.saturating_sub(self.cpu_used)),
        }
    }

    /// Current capacity of `side` (initial capacity minus retirements).
    pub fn capacity(&self, side: MemSide) -> Bytes {
        match side {
            MemSide::Gpu => Bytes(self.gpu_capacity),
            MemSide::Cpu => Bytes(self.cpu_capacity),
        }
    }

    /// Permanently shrink `side`'s capacity by `bytes` (ECC page
    /// retirement). Existing allocations are untouched — usage may
    /// exceed the new capacity until the caller frees enough of them —
    /// but no *new* allocation can land on retired pages. Returns the
    /// remaining capacity.
    pub fn retire(&mut self, side: MemSide, bytes: Bytes) -> Bytes {
        match side {
            MemSide::Gpu => {
                self.gpu_capacity = self.gpu_capacity.saturating_sub(bytes.0);
                Bytes(self.gpu_capacity)
            }
            MemSide::Cpu => {
                self.cpu_capacity = self.cpu_capacity.saturating_sub(bytes.0);
                Bytes(self.cpu_capacity)
            }
        }
    }

    /// Bytes in use on `side`.
    pub fn used(&self, side: MemSide) -> Bytes {
        match side {
            MemSide::Gpu => Bytes(self.gpu_used),
            MemSide::Cpu => Bytes(self.cpu_used),
        }
    }

    /// The page size allocations are rounded to.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Live requested bytes on `side` — what callers asked for, before
    /// page rounding. Always `<=` [`Self::used`].
    pub fn requested(&self, side: MemSide) -> Bytes {
        match side {
            MemSide::Gpu => Bytes(self.gpu_requested),
            MemSide::Cpu => Bytes(self.cpu_requested),
        }
    }

    /// Internal fragmentation on `side`: bytes charged to the device
    /// budget that no caller asked for (huge-page rounding waste). This
    /// is the allocator's fragmentation gauge — it rises as many small
    /// allocations each strand a partial page, and returns to zero when
    /// they are freed.
    pub fn fragmentation(&self, side: MemSide) -> Bytes {
        Bytes(match side {
            MemSide::Gpu => self.gpu_used.saturating_sub(self.gpu_requested),
            MemSide::Cpu => self.cpu_used.saturating_sub(self.cpu_requested),
        })
    }

    /// Occupancy of `side` in integer parts-per-million of current
    /// capacity (may exceed 1_000_000 while overcommitted after a
    /// [`Self::retire`]). Integer math so telemetry gauges built on it
    /// replay byte-identically.
    pub fn occupancy_ppm(&self, side: MemSide) -> u64 {
        let cap = self.capacity(side).0;
        if cap == 0 {
            return 0;
        }
        (u128::from(self.used(side).0) * 1_000_000 / u128::from(cap)) as u64
    }

    /// Bookkeeping for requested-byte deltas.
    fn note_requested(&mut self, side: MemSide, add: u64, sub: u64) {
        let slot = match side {
            MemSide::Gpu => &mut self.gpu_requested,
            MemSide::Cpu => &mut self.cpu_requested,
        };
        *slot = slot.saturating_add(add).saturating_sub(sub);
    }

    /// Allocate `len` bytes on `side`.
    pub fn alloc(&mut self, side: MemSide, len: Bytes) -> Result<Allocation, OutOfMemory> {
        let pages = len.0.div_ceil(self.page_size);
        let phys = pages * self.page_size;
        let avail = self.available(side).0;
        if phys > avail {
            return Err(OutOfMemory {
                side,
                requested: Bytes(phys),
                available: Bytes(avail),
            });
        }
        match side {
            MemSide::Gpu => self.gpu_used += phys,
            MemSide::Cpu => self.cpu_used += phys,
        }
        self.note_requested(side, len.0, 0);
        let base = self.next_vaddr;
        self.next_vaddr += phys;
        Ok(Allocation {
            base,
            len: len.0,
            side,
        })
    }

    /// Resize an allocation *in place* to `new_len` bytes, returning the
    /// revised allocation (same base, same side).
    ///
    /// Shrinking always succeeds and releases the freed pages back to the
    /// device budget — even while usage exceeds capacity after a
    /// [`Self::retire`], which is exactly when an elastic grant revision
    /// needs it (a free-then-realloc would bounce off the saturated
    /// budget). Growing charges only the *delta* pages and fails with
    /// [`OutOfMemory`] if they are not available.
    pub fn resize(&mut self, alloc: Allocation, new_len: Bytes) -> Result<Allocation, OutOfMemory> {
        let old_phys = alloc.len.div_ceil(self.page_size) * self.page_size;
        let new_phys = new_len.0.div_ceil(self.page_size) * self.page_size;
        if new_phys > old_phys {
            let delta = new_phys - old_phys;
            let avail = self.available(alloc.side).0;
            if delta > avail {
                return Err(OutOfMemory {
                    side: alloc.side,
                    requested: Bytes(delta),
                    available: Bytes(avail),
                });
            }
            match alloc.side {
                MemSide::Gpu => self.gpu_used += delta,
                MemSide::Cpu => self.cpu_used += delta,
            }
        } else {
            let delta = old_phys - new_phys;
            match alloc.side {
                MemSide::Gpu => self.gpu_used = self.gpu_used.saturating_sub(delta),
                MemSide::Cpu => self.cpu_used = self.cpu_used.saturating_sub(delta),
            }
        }
        self.note_requested(alloc.side, new_len.0, alloc.len);
        Ok(Allocation {
            base: alloc.base,
            len: new_len.0,
            side: alloc.side,
        })
    }

    /// Free an allocation (returns its pages to the device budget).
    pub fn free(&mut self, alloc: Allocation) {
        let phys = alloc.len.div_ceil(self.page_size) * self.page_size;
        match alloc.side {
            MemSide::Gpu => self.gpu_used = self.gpu_used.saturating_sub(phys),
            MemSide::Cpu => self.cpu_used = self.cpu_used.saturating_sub(phys),
        }
        self.note_requested(alloc.side, 0, alloc.len);
    }

    /// Allocate a hybrid array of `len` bytes, caching up to
    /// `gpu_budget` bytes in GPU memory (clamped to what is free) and the
    /// remainder in CPU memory, interleaved per Section 5.3.
    ///
    /// Returns the layout; fails only if *CPU* memory cannot hold the
    /// spilled share — GPU shortfall simply lowers the cached fraction,
    /// which is exactly the graceful degradation the paper designs for.
    pub fn alloc_hybrid(
        &mut self,
        len: Bytes,
        gpu_budget: Bytes,
    ) -> Result<HybridLayout, OutOfMemory> {
        self.alloc_hybrid_with(len, gpu_budget, true)
    }

    /// Like [`Self::alloc_hybrid`], but selecting the placement policy:
    /// `interleaved = false` caches a *prefix* instead (the Section 5.3
    /// strawman, available for ablations).
    pub fn alloc_hybrid_with(
        &mut self,
        len: Bytes,
        gpu_budget: Bytes,
        interleaved: bool,
    ) -> Result<HybridLayout, OutOfMemory> {
        let total_pages = len.0.div_ceil(self.page_size).max(1);
        let gpu_avail = self.available(MemSide::Gpu).0;
        let budget_pages = gpu_budget.0.min(gpu_avail) / self.page_size;
        let pattern = if interleaved {
            Placement::Interleaved(InterleavePattern::from_budget(budget_pages, total_pages))
        } else {
            // Round down to the same granularity the interleave achieves.
            let pages = InterleavePattern::from_budget(budget_pages, total_pages)
                .gpu_pages_among(total_pages);
            Placement::Prefix { gpu_pages: pages }
        };
        let gpu_pages = pattern.gpu_pages_among(total_pages);
        let cpu_pages = total_pages - gpu_pages;
        let cpu_bytes = cpu_pages * self.page_size;
        let cpu_avail = self.available(MemSide::Cpu).0;
        if cpu_bytes > cpu_avail {
            return Err(OutOfMemory {
                side: MemSide::Cpu,
                requested: Bytes(cpu_bytes),
                available: Bytes(cpu_avail),
            });
        }
        self.gpu_used += gpu_pages * self.page_size;
        self.cpu_used += cpu_bytes;
        // Resident pages are fully requested up to the array length; the
        // page-rounding waste is attributed to the spilled (CPU) share.
        let gpu_req = (gpu_pages * self.page_size).min(len.0);
        self.note_requested(MemSide::Gpu, gpu_req, 0);
        self.note_requested(MemSide::Cpu, len.0 - gpu_req, 0);
        let base = self.next_vaddr;
        self.next_vaddr += total_pages * self.page_size;
        Ok(HybridLayout::with_placement(
            base,
            len.0,
            self.page_size,
            pattern,
        ))
    }

    /// Allocate a hybrid array of `len` bytes with an explicit
    /// [`PlacementPlan`] of GPU-resident page ranges — the skew-aware
    /// planner's "keep whole hot partition pairs device-resident" policy.
    ///
    /// Like [`Self::alloc_hybrid`], a GPU shortfall degrades gracefully:
    /// the plan is truncated in page order until the resident share fits
    /// what the device has free. The call fails only if *CPU* memory
    /// cannot hold the spilled remainder.
    pub fn alloc_hybrid_planned(
        &mut self,
        len: Bytes,
        plan: PlacementPlan,
    ) -> Result<HybridLayout, OutOfMemory> {
        let total_pages = len.0.div_ceil(self.page_size).max(1);
        // Clip the plan to the array, then to what the GPU has free.
        let plan = PlacementPlan::new(
            plan.ranges()
                .iter()
                .map(|&(s, e)| (s, e.min(total_pages)))
                .collect(),
        );
        let gpu_avail_pages = self.available(MemSide::Gpu).0 / self.page_size;
        let plan = if plan.gpu_pages_among(total_pages) > gpu_avail_pages {
            plan.truncated(gpu_avail_pages)
        } else {
            plan
        };
        let gpu_pages = plan.gpu_pages_among(total_pages);
        let cpu_pages = total_pages - gpu_pages;
        let cpu_bytes = cpu_pages * self.page_size;
        let cpu_avail = self.available(MemSide::Cpu).0;
        if cpu_bytes > cpu_avail {
            return Err(OutOfMemory {
                side: MemSide::Cpu,
                requested: Bytes(cpu_bytes),
                available: Bytes(cpu_avail),
            });
        }
        self.gpu_used += gpu_pages * self.page_size;
        self.cpu_used += cpu_bytes;
        // Resident pages are fully requested up to the array length; the
        // page-rounding waste is attributed to the spilled (CPU) share.
        let gpu_req = (gpu_pages * self.page_size).min(len.0);
        self.note_requested(MemSide::Gpu, gpu_req, 0);
        self.note_requested(MemSide::Cpu, len.0 - gpu_req, 0);
        let base = self.next_vaddr;
        self.next_vaddr += total_pages * self.page_size;
        Ok(HybridLayout::with_placement(
            base,
            len.0,
            self.page_size,
            Placement::Planned(plan),
        ))
    }

    /// Free a hybrid layout.
    pub fn free_hybrid(&mut self, layout: &HybridLayout) {
        let total_pages = layout.len().div_ceil(self.page_size).max(1);
        let gpu_pages = layout.pattern().gpu_pages_among(total_pages);
        self.gpu_used = self.gpu_used.saturating_sub(gpu_pages * self.page_size);
        self.cpu_used = self
            .cpu_used
            .saturating_sub((total_pages - gpu_pages) * self.page_size);
        let gpu_req = (gpu_pages * self.page_size).min(layout.len());
        self.note_requested(MemSide::Gpu, 0, gpu_req);
        self.note_requested(MemSide::Cpu, 0, layout.len() - gpu_req);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_hw::HwConfig;

    fn small_alloc() -> SimAllocator {
        SimAllocator::new(&HwConfig::ac922().scaled(1024))
    }

    #[test]
    fn alloc_respects_capacity() {
        let mut a = small_alloc();
        let cap = a.available(MemSide::Gpu);
        let x = a.alloc(MemSide::Gpu, Bytes(cap.0 / 2)).unwrap();
        assert_eq!(x.side, MemSide::Gpu);
        let err = a.alloc(MemSide::Gpu, Bytes(cap.0)).unwrap_err();
        assert_eq!(err.side, MemSide::Gpu);
        a.free(x);
        assert_eq!(a.available(MemSide::Gpu), cap);
    }

    #[test]
    fn retire_shrinks_capacity_without_touching_live_allocations() {
        let mut a = small_alloc();
        let cap = a.capacity(MemSide::Gpu);
        let x = a.alloc(MemSide::Gpu, Bytes(cap.0 / 2)).unwrap();
        // Retire 75%: usage (50%) now exceeds capacity (25%).
        a.retire(MemSide::Gpu, Bytes(cap.0 * 3 / 4));
        assert_eq!(a.capacity(MemSide::Gpu).0, cap.0 / 4);
        assert_eq!(a.available(MemSide::Gpu), Bytes(0), "must saturate");
        assert!(a.used(MemSide::Gpu).0 > a.capacity(MemSide::Gpu).0);
        // New allocations bounce; freeing the old one restores headroom.
        assert!(a.alloc(MemSide::Gpu, Bytes(a.page_size())).is_err());
        a.free(x);
        assert!(a.alloc(MemSide::Gpu, Bytes(a.page_size())).is_ok());
        // Retiring more than everything saturates at zero capacity.
        a.retire(MemSide::Gpu, Bytes(u64::MAX));
        assert_eq!(a.capacity(MemSide::Gpu), Bytes(0));
    }

    #[test]
    fn resize_shrinks_and_grows_in_place() {
        let mut a = small_alloc();
        let ps = a.page_size();
        let x = a.alloc(MemSide::Gpu, Bytes(8 * ps)).unwrap();
        let used = a.used(MemSide::Gpu).0;
        // Shrink to 3 pages: 5 pages return to the budget, base unchanged.
        let x = a.resize(x, Bytes(3 * ps)).unwrap();
        assert_eq!(a.used(MemSide::Gpu).0, used - 5 * ps);
        assert_eq!(x.len, 3 * ps);
        // Grow back to 6 pages: only the delta is charged.
        let x = a.resize(x, Bytes(6 * ps)).unwrap();
        assert_eq!(a.used(MemSide::Gpu).0, used - 2 * ps);
        // Growing past capacity fails and leaves accounting untouched.
        let cap = a.capacity(MemSide::Gpu).0;
        let err = a.resize(x, Bytes(cap * 2)).unwrap_err();
        assert_eq!(err.side, MemSide::Gpu);
        assert_eq!(a.used(MemSide::Gpu).0, used - 2 * ps);
        a.free(x);
    }

    #[test]
    fn resize_shrink_succeeds_while_overcommitted() {
        let mut a = small_alloc();
        let cap = a.capacity(MemSide::Gpu).0;
        let x = a.alloc(MemSide::Gpu, Bytes(cap / 2)).unwrap();
        // Retire 75% of the device: usage exceeds the new capacity and
        // available() saturates at zero — a free+realloc would OOM here.
        a.retire(MemSide::Gpu, Bytes(cap * 3 / 4));
        assert_eq!(a.available(MemSide::Gpu), Bytes(0));
        let target = Bytes(cap / 8);
        let x = a.resize(x, target).unwrap();
        assert_eq!(x.len, target.0);
        assert!(a.used(MemSide::Gpu).0 < cap / 2);
        // But growing while saturated still bounces.
        assert!(a.resize(x, Bytes(cap / 2)).is_err());
        a.free(x);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = small_alloc();
        let x = a.alloc(MemSide::Cpu, Bytes(1000)).unwrap();
        let y = a.alloc(MemSide::Cpu, Bytes(1000)).unwrap();
        assert!(x.base + x.len <= y.base);
    }

    #[test]
    fn alloc_rounds_to_pages() {
        let mut a = small_alloc();
        let ps = a.page_size();
        let before = a.available(MemSide::Cpu).0;
        a.alloc(MemSide::Cpu, Bytes(1)).unwrap();
        assert_eq!(a.available(MemSide::Cpu).0, before - ps);
    }

    #[test]
    fn hybrid_clamps_gpu_budget() {
        let mut a = small_alloc();
        let gpu_cap = a.available(MemSide::Gpu).0;
        // Ask to cache twice the GPU capacity: the layout must clamp.
        let layout = a
            .alloc_hybrid(Bytes(gpu_cap * 4), Bytes(gpu_cap * 2))
            .unwrap();
        assert!(layout.gpu_bytes() <= gpu_cap);
        assert!(a.used(MemSide::Gpu).0 <= gpu_cap);
        assert_eq!(layout.len(), gpu_cap * 4);
    }

    #[test]
    fn hybrid_zero_budget_is_all_cpu() {
        let mut a = small_alloc();
        let layout = a.alloc_hybrid(Bytes(1 << 20), Bytes(0)).unwrap();
        assert_eq!(layout.gpu_bytes(), 0);
        assert_eq!(layout.cpu_bytes(), 1 << 20);
    }

    #[test]
    fn hybrid_free_restores_budgets() {
        let mut a = small_alloc();
        let g0 = a.used(MemSide::Gpu);
        let c0 = a.used(MemSide::Cpu);
        let layout = a.alloc_hybrid(Bytes(1 << 22), Bytes(1 << 21)).unwrap();
        a.free_hybrid(&layout);
        assert_eq!(a.used(MemSide::Gpu), g0);
        assert_eq!(a.used(MemSide::Cpu), c0);
    }

    #[test]
    fn planned_alloc_pins_exact_ranges() {
        let mut a = small_alloc();
        let ps = a.page_size();
        let g0 = a.used(MemSide::Gpu).0;
        // 16 pages; pin pages 4..8 and 12..14 (6 resident pages).
        let plan = PlacementPlan::new(vec![(4, 8), (12, 14)]);
        let layout = a.alloc_hybrid_planned(Bytes(16 * ps), plan).unwrap();
        assert_eq!(layout.gpu_bytes(), 6 * ps);
        assert_eq!(layout.cpu_bytes(), 10 * ps);
        assert_eq!(a.used(MemSide::Gpu).0, g0 + 6 * ps);
        // Resident window reads charge zero CPU bytes.
        assert_eq!(layout.split_range(4 * ps, 4 * ps), (4 * ps, 0));
        a.free_hybrid(&layout);
        assert_eq!(a.used(MemSide::Gpu).0, g0);
    }

    #[test]
    fn planned_alloc_degrades_when_gpu_short() {
        let mut a = small_alloc();
        let ps = a.page_size();
        let gpu_cap = a.available(MemSide::Gpu).0;
        // Leave exactly 2 pages of GPU headroom.
        let hold = a.alloc(MemSide::Gpu, Bytes(gpu_cap - 2 * ps)).unwrap();
        let plan = PlacementPlan::new(vec![(0, 8)]);
        let layout = a.alloc_hybrid_planned(Bytes(8 * ps), plan).unwrap();
        // The plan is truncated in page order, not rejected.
        assert_eq!(layout.gpu_bytes(), 2 * ps);
        assert_eq!(layout.cpu_bytes(), 6 * ps);
        a.free(hold);
    }

    #[test]
    fn planned_alloc_clips_plan_to_array() {
        let mut a = small_alloc();
        let ps = a.page_size();
        // Plan ranges entirely past the 4-page array contribute nothing.
        let plan = PlacementPlan::new(vec![(2, 3), (100, 200)]);
        let g0 = a.used(MemSide::Gpu).0;
        let layout = a.alloc_hybrid_planned(Bytes(4 * ps), plan).unwrap();
        assert_eq!(layout.gpu_bytes(), ps);
        assert_eq!(a.used(MemSide::Gpu).0, g0 + ps);
    }

    #[test]
    fn fragmentation_gauge_tracks_page_rounding_waste() {
        let mut a = small_alloc();
        let ps = a.page_size();
        assert_eq!(a.fragmentation(MemSide::Gpu), Bytes(0));
        // One byte strands almost a full page.
        let x = a.alloc(MemSide::Gpu, Bytes(1)).unwrap();
        assert_eq!(a.requested(MemSide::Gpu), Bytes(1));
        assert_eq!(a.fragmentation(MemSide::Gpu), Bytes(ps - 1));
        // A page-aligned allocation adds no waste.
        let y = a.alloc(MemSide::Gpu, Bytes(2 * ps)).unwrap();
        assert_eq!(a.fragmentation(MemSide::Gpu), Bytes(ps - 1));
        // Resize re-attributes: 1 byte -> half a page.
        let x = a.resize(x, Bytes(ps / 2)).unwrap();
        assert_eq!(a.fragmentation(MemSide::Gpu), Bytes(ps - ps / 2));
        a.free(x);
        a.free(y);
        assert_eq!(a.fragmentation(MemSide::Gpu), Bytes(0));
        assert_eq!(a.requested(MemSide::Gpu), Bytes(0));
    }

    #[test]
    fn occupancy_ppm_is_integer_and_saturation_aware() {
        let mut a = small_alloc();
        let cap = a.capacity(MemSide::Gpu).0;
        assert_eq!(a.occupancy_ppm(MemSide::Gpu), 0);
        let x = a.alloc(MemSide::Gpu, Bytes(cap / 2)).unwrap();
        let ppm = a.occupancy_ppm(MemSide::Gpu);
        assert!((499_000..=501_000).contains(&ppm), "{ppm}");
        // Retirement can push occupancy past one million.
        a.retire(MemSide::Gpu, Bytes(cap * 3 / 4));
        assert!(a.occupancy_ppm(MemSide::Gpu) > 1_000_000);
        a.free(x);
        // Zero capacity never divides by zero.
        a.retire(MemSide::Gpu, Bytes(u64::MAX));
        assert_eq!(a.occupancy_ppm(MemSide::Gpu), 0);
    }

    #[test]
    fn hybrid_requested_attribution_reverses_on_free() {
        let mut a = small_alloc();
        let len = Bytes((1 << 22) + 123);
        let layout = a.alloc_hybrid(len, Bytes(1 << 21)).unwrap();
        let total_req = a.requested(MemSide::Gpu).0 + a.requested(MemSide::Cpu).0;
        assert_eq!(total_req, len.0);
        a.free_hybrid(&layout);
        assert_eq!(a.requested(MemSide::Gpu), Bytes(0));
        assert_eq!(a.requested(MemSide::Cpu), Bytes(0));
        assert_eq!(a.fragmentation(MemSide::Cpu), Bytes(0));
    }

    #[test]
    fn hybrid_fails_when_cpu_full() {
        let mut a = small_alloc();
        let cpu_cap = a.available(MemSide::Cpu).0;
        let err = a.alloc_hybrid(Bytes(cpu_cap * 2), Bytes(0)).unwrap_err();
        assert_eq!(err.side, MemSide::Cpu);
    }
}
