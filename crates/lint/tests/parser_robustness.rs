//! Fuzz-ish parser corpus: malformed, truncated, and pathologically
//! nested sources must never panic or hang the analyzer, and token
//! rules must keep firing when item parsing degrades to opaque nodes.

use std::path::Path;

use triton_lint::lexer::lex;
use triton_lint::{analyze_source, parser, FileClass, Rule};

fn lib_class() -> FileClass {
    FileClass::classify("crates/core/src/fixture.rs")
}

#[test]
fn malformed_corpus_never_panics() {
    let corpus: &[&str] = &[
        "",
        ";",
        "fn",
        "fn (",
        "fn f(",
        "fn f() {",
        "fn f() { let ",
        "fn f() { let x = ",
        "fn f() { let x = match ",
        "fn f() { match x { ",
        "fn f() { match x { A:: ",
        "fn f() { a. }",
        "fn f() { a.b( }",
        "fn f() { |x }",
        "fn f() { #[ }",
        "pub struct ;;; impl impl",
        "fn f() -> { . . . :: :: => => }",
        "fn f() { 0x }",
        "fn f() { \"unterminated",
        "impl T { fn g() { fn h() { fn i() {",
        "fn f<'a, T: Iterator<Item = &'a (u8, u8)>>(x: T) {",
        "fn f() { x += += += }",
        "fn f() { return return return }",
        "fn f() { ..= ..= }",
        "fn f() { struct }",
        "macro_rules! m { ($x:expr) => { $x } } fn f() { m!(1 + ) }",
    ];
    for src in corpus {
        // A panic here fails the test; completion is the assertion.
        let analysis = analyze_source(&lib_class(), src);
        drop(analysis);
        let (tokens, _comments) = lex(src);
        let ast = parser::parse(&tokens, &vec![false; tokens.len()]);
        drop(ast);
    }
}

#[test]
fn deep_nesting_degrades_instead_of_overflowing() {
    // 400 levels of nested blocks and parens — past MAX_DEPTH, the
    // parser must skip balanced regions rather than recurse.
    let mut deep_blocks = String::from("fn f() ");
    for _ in 0..400 {
        deep_blocks.push('{');
    }
    deep_blocks.push_str("panic!(\"x\")");
    for _ in 0..400 {
        deep_blocks.push('}');
    }
    let analysis = analyze_source(&lib_class(), &deep_blocks);
    // Token rules see through the nesting even when the parser bails.
    assert!(
        analysis.findings.iter().any(|f| f.rule == Rule::P1),
        "P1 is token-level and must survive deep nesting"
    );

    let mut deep_parens = String::from("fn g() { let x = ");
    for _ in 0..400 {
        deep_parens.push('(');
    }
    deep_parens.push('1');
    for _ in 0..400 {
        deep_parens.push(')');
    }
    deep_parens.push_str("; }");
    let _ = analyze_source(&lib_class(), &deep_parens);

    // Unbalanced: open-only, so fuel has to end it.
    let mut open_only = String::from("fn h() { ");
    for _ in 0..2000 {
        open_only.push_str("( { ");
    }
    let _ = analyze_source(&lib_class(), &open_only);
}

#[test]
fn malformed_items_fixture_degrades_to_token_rules() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("malformed_items.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let analysis = analyze_source(&lib_class(), &src);
    let d1 = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::D1)
        .count();
    assert_eq!(d1, 1, "token-level D1 must fire despite broken items");
    // And no semantic rule may hallucinate findings from garbage.
    assert!(analysis.findings.iter().all(|f| matches!(f.rule, Rule::D1)));
}

#[test]
fn well_formed_items_still_parse_next_to_broken_ones() {
    // A broken item must not eat its well-formed successor.
    let src = "\
pub struct ;;;\n\
fn ok_after_garbage(ac: &mut AdmissionController, q: Grant, hw: &HwProfile) {\n\
    ac.try_admit(QueryId(1), q, hw);\n\
}\n";
    let class = FileClass::classify("crates/exec/src/fixture.rs");
    let analysis = analyze_source(&class, src);
    assert!(
        analysis.findings.iter().any(|f| f.rule == Rule::L1),
        "the dropped grant after the garbage item must still be seen: {:#?}",
        analysis.findings
    );
}
