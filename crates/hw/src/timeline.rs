//! ASCII timeline rendering for kernel pipelines.
//!
//! The paper's Fig 11 sketches how the second partitioning pass of pair
//! *i+1* overlaps the join of pair *i* on disjoint SM halves. This module
//! renders the same picture from simulated phase times, so examples and
//! debugging sessions can *see* the overlap instead of inferring it from
//! totals.

use crate::units::Ns;

/// One lane of the timeline (e.g. one CUDA stream / SM half).
#[derive(Debug, Clone)]
pub struct Lane {
    /// Lane label (left margin).
    pub name: String,
    /// `(label, start, duration)` segments. Overlapping segments within a
    /// lane are rendered in submission order.
    pub segments: Vec<(String, Ns, Ns)>,
}

/// A multi-lane timeline.
///
/// ```
/// use triton_hw::{Timeline, Ns};
/// let mut t = Timeline::new();
/// t.lane("part").seg("P", Ns(0.0), Ns(60.0));
/// t.lane("join").seg("J", Ns(30.0), Ns(60.0));
/// let art = t.render(40);
/// assert_eq!(art.lines().count(), 3); // two lanes + axis
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    lanes: Vec<Lane>,
}

impl Timeline {
    /// Create an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Add a lane.
    pub fn lane(&mut self, name: impl Into<String>) -> &mut Lane {
        self.lanes.push(Lane {
            name: name.into(),
            segments: Vec::new(),
        });
        // triton-lint: allow(p1) -- last_mut() directly after push() is always Some
        self.lanes.last_mut().unwrap()
    }

    /// Total span of the timeline.
    pub fn span(&self) -> Ns {
        self.lanes
            .iter()
            .flat_map(|l| l.segments.iter())
            .map(|(_, s, d)| *s + *d)
            .fold(Ns::ZERO, Ns::max)
    }

    /// Render as fixed-width ASCII, `width` characters of time axis.
    pub fn render(&self, width: usize) -> String {
        let span = self.span().0.max(1e-9);
        let name_w = self
            .lanes
            .iter()
            .map(|l| l.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        for lane in &self.lanes {
            let mut row = vec![' '; width];
            for (label, start, dur) in &lane.segments {
                let a = ((start.0 / span) * width as f64).floor() as usize;
                let b = (((start.0 + dur.0) / span) * width as f64).ceil() as usize;
                let b = b.clamp(a + 1, width);
                for (idx, cell) in row[a..b].iter_mut().enumerate() {
                    let chars: Vec<char> = label.chars().collect();
                    *cell = if idx == 0 {
                        '['
                    } else if idx == b - a - 1 {
                        ']'
                    } else if idx - 1 < chars.len() {
                        chars[idx - 1]
                    } else {
                        '='
                    };
                }
            }
            out.push_str(&format!(
                "{:>name_w$} |{}|\n",
                lane.name,
                row.iter().collect::<String>()
            ));
        }
        out.push_str(&format!(
            "{:>name_w$} 0{:>w$}\n",
            "",
            format!("{}", Ns(span)),
            w = width
        ));
        out
    }
}

impl Timeline {
    /// Build a timeline from a recorded trace: one lane per `(pid, tid)`
    /// track that carries span events, in track order, labeled from the
    /// trace's process/thread names. `pids` filters to the given track
    /// groups; empty means all. Instants carry no duration and are
    /// skipped — the ASCII renderer draws intervals.
    pub fn from_trace(trace: &triton_trace::Trace, pids: &[u64]) -> Timeline {
        let mut tracks: Vec<(u64, u64)> = Vec::new();
        for ev in trace.events() {
            if matches!(ev.kind, triton_trace::EventKind::Span { .. })
                && (pids.is_empty() || pids.contains(&ev.pid))
                && !tracks.contains(&(ev.pid, ev.tid))
            {
                tracks.push((ev.pid, ev.tid));
            }
        }
        tracks.sort_unstable();
        let mut timeline = Timeline::new();
        for (pid, tid) in tracks {
            let group = trace
                .process_name(pid)
                .map_or_else(|| format!("p{pid}"), str::to_string);
            let lane_label = trace
                .thread_name(pid, tid)
                .map_or_else(|| format!("t{tid}"), str::to_string);
            let lane = timeline.lane(format!("{group}/{lane_label}"));
            for ev in trace.events() {
                if ev.pid != pid || ev.tid != tid {
                    continue;
                }
                if let triton_trace::EventKind::Span { dur_ns } = ev.kind {
                    lane.seg(ev.name.clone(), Ns(ev.ts_ns), Ns(dur_ns));
                }
            }
        }
        timeline
    }
}

impl Lane {
    /// Append a segment starting at `start` for `dur`.
    pub fn seg(&mut self, label: impl Into<String>, start: Ns, dur: Ns) -> &mut Self {
        self.segments.push((label.into(), start, dur));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_two_overlapping_lanes() {
        let mut t = Timeline::new();
        t.lane("part")
            .seg("P0", Ns(0.0), Ns(50.0))
            .seg("P1", Ns(50.0), Ns(50.0));
        t.lane("join").seg("J0", Ns(50.0), Ns(50.0));
        let s = t.render(40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('['));
        // The join lane starts around the middle of the axis.
        let join_line = lines[1];
        let bracket = join_line.find('[').unwrap();
        assert!(bracket > join_line.len() / 3, "{s}");
    }

    #[test]
    fn span_is_latest_end() {
        let mut t = Timeline::new();
        t.lane("a").seg("x", Ns(10.0), Ns(5.0));
        t.lane("b").seg("y", Ns(2.0), Ns(20.0));
        assert_eq!(t.span(), Ns(22.0));
    }

    #[test]
    fn empty_timeline_renders_axis_only() {
        let t = Timeline::new();
        assert_eq!(t.span(), Ns::ZERO);
        let s = t.render(20);
        assert_eq!(s.lines().count(), 1);
    }

    #[test]
    fn from_trace_maps_tracks_to_lanes() {
        let mut trace = triton_trace::Trace::new();
        trace.name_process(1, "q0");
        trace.name_thread(1, 1, "sm-a");
        trace.span(1, 1, "pass2", 0.0, 50.0);
        trace.span(1, 2, "join", 50.0, 50.0);
        trace.instant(1, 1, "admit", 0.0); // no duration: skipped
        trace.span(7, 0, "other", 0.0, 10.0);
        let t = Timeline::from_trace(&trace, &[1]);
        let art = t.render(40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3, "two lanes + axis:\n{art}");
        assert!(lines[0].contains("q0/sm-a"));
        assert!(lines[1].contains("q0/t2"), "unnamed lane gets t<tid>");
        assert!((t.span().0 - 100.0).abs() < 1e-12);
        // Unfiltered: the second pid appears too.
        let all = Timeline::from_trace(&trace, &[]);
        assert_eq!(all.render(40).lines().count(), 4);
    }

    #[test]
    fn segments_clamped_to_width() {
        let mut t = Timeline::new();
        t.lane("a")
            .seg("very-long-label-overflowing", Ns(0.0), Ns(1.0));
        let s = t.render(10);
        // |...| frame of exactly the requested width.
        let inner = s.lines().next().unwrap();
        let open = inner.find('|').unwrap();
        let close = inner.rfind('|').unwrap();
        assert_eq!(close - open - 1, 10);
    }
}
