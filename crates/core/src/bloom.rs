//! Bloom-filter pre-filtering of the outer relation.
//!
//! An *extension* beyond the paper's evaluation: Section 7 lists
//! "filtering [...] the outer relation" (e.g. Gubner et al.'s GPU Bloom
//! filters) as complementary work that "remains an open challenge for
//! GPUs with fast interconnects". This module closes the loop for the
//! Triton join: a Bloom filter over the build keys is created alongside
//! the first pass over R, and S's first pass probes it, dropping tuples
//! that cannot match *before* they are partitioned and spilled. For
//! selective joins this removes most of the outer relation's partition,
//! spill, reload, and probe traffic.
//!
//! The filter itself is classic: a power-of-two bit array with two
//! multiply-shift-derived hash functions (a split-and-mix double-hashing
//! scheme), sized at a configurable bits-per-key.

use triton_datagen::multiply_shift;

/// A Bloom filter over 64-bit join keys.
///
/// ```
/// use triton_core::BloomFilter;
/// let mut f = BloomFilter::for_build_side(1000);
/// for k in 1..=1000u64 { f.insert(k); }
/// assert!(f.may_contain(42));        // no false negatives, ever
/// let fps = (100_000..110_000u64).filter(|&k| f.may_contain(k)).count();
/// assert!(fps < 500);                // few false positives
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    words: Vec<u64>,
    bit_mask: u64,
    hashes: u32,
}

impl BloomFilter {
    /// Create a filter sized for `n` keys at `bits_per_key` (rounded up
    /// to a power of two), probing with `hashes` hash functions.
    pub fn new(n: usize, bits_per_key: usize, hashes: u32) -> Self {
        assert!((1..=8).contains(&hashes));
        let bits = (n.max(1) * bits_per_key.max(1)).next_power_of_two() as u64;
        BloomFilter {
            words: vec![0u64; (bits / 64).max(1) as usize],
            bit_mask: bits - 1,
            hashes,
        }
    }

    /// The paper-adjacent default: 10 bits/key, 2 hashes (~1.7% false
    /// positives).
    pub fn for_build_side(n: usize) -> Self {
        BloomFilter::new(n, 10, 2)
    }

    #[inline]
    fn hash_pair(key: u64) -> (u64, u64) {
        // Double hashing: h_i = h1 + i*h2. The two bases come from two
        // independently-mixed multiply-shift products (the low bits of a
        // single product are too structured for dense key ranges).
        let h1 = multiply_shift(key) >> 16;
        let h2 = (multiply_shift(key ^ 0x517c_c1b7_2722_0a95) >> 16) | 1;
        (h1, h2)
    }

    #[inline]
    fn probes(&self, key: u64) -> impl Iterator<Item = u64> + '_ {
        let (h1, h2) = Self::hash_pair(key);
        (0..self.hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2))) & self.bit_mask)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        let mask = self.bit_mask;
        let (h1, h2) = Self::hash_pair(key);
        for i in 0..self.hashes as u64 {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2))) & mask;
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Whether `key` may be in the set (false = definitely absent).
    pub fn may_contain(&self, key: u64) -> bool {
        self.probes(key)
            .all(|bit| self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0)
    }

    /// Filter size in bytes.
    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_build_side(10_000);
        for k in 1..=10_000u64 {
            f.insert(k);
        }
        for k in 1..=10_000u64 {
            assert!(f.may_contain(k), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let n = 50_000u64;
        let mut f = BloomFilter::for_build_side(n as usize);
        for k in 1..=n {
            f.insert(k);
        }
        let fps = (n + 1..=3 * n).filter(|&k| f.may_contain(k)).count();
        let rate = fps as f64 / (2 * n) as f64;
        // 10 bits/key, 2 hashes: ~1-3% in practice.
        assert!(rate < 0.05, "false-positive rate {rate}");
        assert!(
            rate > 0.0,
            "a Bloom filter always has some FPs at this size"
        );
    }

    #[test]
    fn sizes_round_to_power_of_two() {
        let f = BloomFilter::new(1000, 10, 2);
        assert!(f.bytes().is_power_of_two() || f.bytes() == (f.bit_mask + 1) / 8);
        assert_eq!((f.bit_mask + 1).count_ones(), 1);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::for_build_side(100);
        assert!(!(1..100u64).any(|k| f.may_contain(k)));
    }
}
