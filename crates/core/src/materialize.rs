//! Tuple-width and materialization strategies (Section 6.2.10, Fig 22).
//!
//! The experiment partitions only the join key, generating row ids on the
//! fly, so the join produces a *join index*. Payload attributes of the
//! outer relation are then either:
//!
//! * **early-materialized** — carried through both partitioning passes
//!   (the default setup carries one 8-byte payload), multiplying the
//!   sequential traffic by the tuple width; or
//! * **late-materialized** — gathered through the join index afterwards,
//!   costing one *random* CPU-memory access per attribute per result
//!   tuple. The paper measures a collapse to 86-88 M tuples/s at 16
//!   payload attributes: the gather is transaction-rate bound.

use triton_datagen::{Workload, PAYLOAD_BYTES, TUPLE_BYTES};
use triton_hw::kernel::KernelCost;
use triton_hw::link::LinkModel;
use triton_hw::tlb::TlbSim;
use triton_hw::units::Bytes;
use triton_hw::HwConfig;
use triton_part::{ChargeCtx, Span};

use crate::report::{JoinReport, PhaseReport};
use crate::triton::TritonJoin;

/// Materialization strategy for the tuple-width experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Materialization {
    /// Produce only the join index (key + row ids).
    JoinIndex,
    /// Carry `payloads` attributes through the partitioning passes.
    Early {
        /// Number of 8-byte payload attributes.
        payloads: usize,
    },
    /// Gather `payloads` attributes through the join index afterwards.
    Late {
        /// Number of 8-byte payload attributes.
        payloads: usize,
    },
}

/// Run the Fig 22 experiment: a join-index Triton join followed by the
/// chosen materialization.
pub fn run_with_materialization(
    w: &Workload,
    strategy: Materialization,
    hw: &HwConfig,
) -> JoinReport {
    let mut join = TritonJoin {
        materialize: true, // the join index is written to CPU memory
        ..TritonJoin::default()
    };
    if let Materialization::Early { .. } = strategy {
        join.materialize = true;
    }
    let mut rep = join.run(w, hw);

    match strategy {
        Materialization::JoinIndex => {
            rep.name = "Triton Join (join index)".into();
        }
        Materialization::Early { payloads } => {
            // Payload columns ride along through every pass: input read,
            // first-pass write (hybrid), second-pass read+write (GPU), and
            // the join-phase read. Model the extra sequential traffic as a
            // widened replica of those streams.
            let extra = w.s.len() as u64 * payloads as u64 * PAYLOAD_BYTES;
            if extra > 0 {
                let mut c = KernelCost::new("Early materialization");
                c.tuples_in = w.s.len() as u64;
                c.link.seq_read += Bytes(extra); // first-pass input
                c.link.seq_write += Bytes(extra / 2); // spilled share out
                c.gpu_mem.write += Bytes(extra); // second-pass staging
                c.gpu_mem.read += Bytes(extra); // join-phase read
                c.link.seq_write += Bytes(rep.result.matches * payloads as u64 * PAYLOAD_BYTES);
                let t = c.timing(hw).total;
                rep.total += t;
                rep.phases.push(PhaseReport {
                    time: t,
                    ..PhaseReport::gpu(c, hw)
                });
            }
            rep.name = format!("Triton Join (early, {payloads} payloads)");
        }
        Materialization::Late { payloads } => {
            // Gather kernel: one random 8-byte CPU-memory read per
            // attribute per join-index entry, then aggregation.
            if payloads > 0 {
                let mut c = KernelCost::new("Late materialization");
                c.tuples_in = rep.result.matches;
                let link = LinkModel::new(&hw.link);
                let mut tlb = TlbSim::new(hw);
                let col_bytes = w.s.len() as u64 * PAYLOAD_BYTES;
                {
                    let mut ctx = ChargeCtx {
                        cost: &mut c,
                        link: &link,
                        tlb: &mut tlb,
                    };
                    // The join index itself is re-read sequentially.
                    let index_span = Span::cpu(1 << 50);
                    ctx.seq_read(&index_span, 0, rep.result.matches * TUPLE_BYTES);
                    for col in 0..payloads {
                        let span = Span::cpu((1 << 51) + col as u64 * (col_bytes + (1 << 30)));
                        // Row ids of the outer relation drive the gather;
                        // they are uniformly scattered after partitioning.
                        for (i, &srid) in w.s.rids.iter().enumerate() {
                            let row = (srid as usize ^ i) % w.s.len();
                            ctx.random_read(&span, row as u64 * PAYLOAD_BYTES, PAYLOAD_BYTES);
                        }
                    }
                }
                c.instructions = rep.result.matches * (6 * payloads as u64 + 4);
                let t = c.timing(hw).total;
                rep.total += t;
                rep.phases.push(PhaseReport {
                    time: t,
                    ..PhaseReport::gpu(c, hw)
                });
            }
            rep.name = format!("Triton Join (late, {payloads} payloads)");
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;

    fn setup() -> (HwConfig, Workload) {
        let hw = HwConfig::ac922().scaled(2048);
        let mut spec = WorkloadSpec::paper_default(8, 512);
        spec.payload_cols = 4;
        (hw, spec.generate())
    }

    #[test]
    fn join_index_close_to_default() {
        let (hw, w) = setup();
        let idx = run_with_materialization(&w, Materialization::JoinIndex, &hw);
        let early1 = run_with_materialization(&w, Materialization::Early { payloads: 1 }, &hw);
        // Paper: join index and the 1-payload default perform similarly.
        let ratio = idx.throughput_gtps() / early1.throughput_gtps();
        assert!((0.9..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn late_materialization_collapses_with_width() {
        let (hw, w) = setup();
        let late1 = run_with_materialization(&w, Materialization::Late { payloads: 1 }, &hw);
        let late16 = run_with_materialization(&w, Materialization::Late { payloads: 16 }, &hw);
        assert!(
            late16.throughput_gtps() < late1.throughput_gtps() / 4.0,
            "late16 {} vs late1 {}",
            late16.throughput_gtps(),
            late1.throughput_gtps()
        );
    }

    #[test]
    fn early_beats_late_at_high_width() {
        let (hw, w) = setup();
        let early = run_with_materialization(&w, Materialization::Early { payloads: 8 }, &hw);
        let late = run_with_materialization(&w, Materialization::Late { payloads: 8 }, &hw);
        assert!(early.throughput_gtps() > late.throughput_gtps());
    }
}
