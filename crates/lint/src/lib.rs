//! # triton-lint
//!
//! The workspace's determinism & unit-safety analyzer. The serving
//! runtime's headline guarantee is *byte-identical replay per seed*:
//! faults change timing and placement, never answers. This tool makes
//! the invariants behind that guarantee mechanical instead of tribal:
//!
//! * **D1** — no `HashMap`/`HashSet` in non-test code (iteration order
//!   is per-process random and silently breaks replay).
//! * **D2** — no `Instant`/`SystemTime`/`RandomState` outside
//!   `crates/bench` (the simulator has its own clock and seeded RNG).
//! * **D3** — no `thread::spawn`/`rayon` outside approved modules.
//! * **U1** — no re-wrapping raw `.0` arithmetic in the unit newtypes
//!   (`Bytes(a.0 + b.0)`) and no `.0 as` casts outside
//!   `crates/hw/src/units.rs`.
//! * **U2** — no float `==`/`!=` against float literals.
//! * **P1** — no `unwrap`/`expect`/`panic!` in library crates'
//!   non-test code.
//!
//! On top of the token rules, a small recursive-descent parser
//! ([`parser`]) feeds three flow-aware families ([`semantic`],
//! DESIGN.md §13):
//!
//! * **F1** — `PhaseReport`/`JoinReport` time fields must not be fed
//!   numeric literals; report times come from priced costs.
//! * **F2** — a `KernelCost` that accrues `.link` traffic must be
//!   priced (`.timing(hw)`) or escape the function.
//! * **L1** — admission-grant results (`try_admit`/`try_admit_shrunk`)
//!   must not be discarded or bound to a dead name.
//! * **L2** — allocator handles (`SimAllocator::{alloc*,resize}`)
//!   must not be discarded or bound to a dead name.
//! * **E1** — no `_` wildcard arms in matches over invariant-bearing
//!   enums in library crates.
//!
//! Exceptions are explicit pragmas — `// triton-lint: allow(rule) --
//! reason` — that cover their own line or the next code line, *must*
//! carry a written reason, and are counted and listed in the summary so
//! waiver creep stays visible. A waiver that matches no finding fails
//! the run (stale waivers hide future violations), and a committed
//! ratchet baseline (`lint-ratchet.json`) keeps per-rule finding counts
//! from growing.
//!
//! The analyzer tokenizes with a small hand-written lexer (zero
//! registry dependencies, consistent with the offline build) and never
//! matches inside strings, comments, or `#[cfg(test)]` regions. Run it
//! with `cargo run -p triton-lint --offline`; `--json <path>` writes a
//! machine-readable JSON Lines report in the bench harness's
//! conventions.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod walk;

pub use report::{FileReport, WorkspaceReport};
pub use rules::{analyze_source, FileAnalysis, FileClass, Finding, Rule, Waiver, ALL_RULES};

/// Analyze every tracked `.rs` file under `root` (workspace layout:
/// `crates/*/{src,tests,benches,examples}`, top-level `tests/` and
/// `examples/`). Returns a full report; IO errors carry the offending
/// path.
pub fn analyze_workspace(root: &std::path::Path) -> Result<WorkspaceReport, String> {
    let files = walk::workspace_rs_files(root)?;
    analyze_files(root, &files)
}

/// Analyze an explicit file list. The report is sorted by
/// workspace-relative path before rendering, so the output — text and
/// JSON alike — is byte-identical regardless of the order the files
/// arrive in (the property the determinism tests pin).
pub fn analyze_files(
    root: &std::path::Path,
    files: &[std::path::PathBuf],
) -> Result<WorkspaceReport, String> {
    let mut report = WorkspaceReport {
        files: Vec::new(),
        files_scanned: files.len(),
    };
    for path in files {
        let rel = walk::rel_label(root, path);
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let class = FileClass::classify(&rel);
        let analysis = analyze_source(&class, &src);
        if !analysis.findings.is_empty()
            || !analysis.waivers.is_empty()
            || !analysis.malformed_waivers.is_empty()
            || !analysis.unused_waivers.is_empty()
        {
            report.files.push(FileReport {
                path: rel,
                analysis,
            });
        }
    }
    report.files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(report)
}
