//! Randomized property tests over the core data structures and algorithm
//! invariants, spanning crates.
//!
//! The workspace builds offline, so instead of `proptest` these use a
//! small in-file harness: each property draws its inputs from the in-tree
//! deterministic [`Rng`] over a fixed number of cases. Failures print the
//! case index so a run can be reproduced exactly.

use triton_core::{reference_join, BucketChainTable, LinearProbeTable, TritonJoin};
use triton_datagen::{multiply_shift, radix, Lcg, Rng, WorkloadSpec};
use triton_hw::link::{Alignment, Dir, LinkModel};
use triton_hw::tlb::{MemSide, TlbSim};
use triton_hw::units::Bytes;
use triton_hw::HwConfig;
use triton_mem::InterleavePattern;
use triton_part::{compute_histogram, make_partitioner, Algorithm, PassConfig, Span};

/// Number of random cases per property (proptest used 64).
const CASES: u64 = 64;

/// Run `body` for `CASES` deterministic seeds, labelling failures.
fn for_cases(name: &str, mut body: impl FnMut(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xC0FFEE ^ (case << 8));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            panic!("property `{name}` failed at case {case}: {e:?}");
        }
    }
}

/// Every partitioner is a permutation: all tuples present exactly once,
/// each in the partition its hash bits dictate.
#[test]
fn partitioners_are_permutations() {
    for_cases("partitioners_are_permutations", |rng| {
        let n = rng.gen_range_u64(64, 4000) as usize;
        let bits = rng.gen_range_u64(1, 6) as u32;
        let skip = rng.gen_range_u64(0, 3) as u32;
        let alg = Algorithm::all()[rng.gen_index(Algorithm::all().len())];
        let hw = HwConfig::ac922().scaled(8192);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 16).collect();
        let rids: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 16).collect();
        let hist = compute_histogram(&keys, 8, bits, skip);
        let pass = PassConfig::new(bits, skip);
        let (out, cost) = make_partitioner(alg).partition(
            &keys,
            &rids,
            &hist,
            &Span::cpu(0),
            &Span::cpu(1 << 40),
            &pass,
            &hw,
        );
        assert_eq!(out.len(), n);
        let mut seen = std::collections::HashMap::new();
        for p in 0..out.fanout() {
            let (ks, rs) = out.partition(p);
            for (&k, &r) in ks.iter().zip(rs) {
                assert_eq!(radix(multiply_shift(k), skip, bits), p);
                *seen.entry((k, r)).or_insert(0u32) += 1;
            }
        }
        for (k, r) in keys.iter().zip(&rids) {
            assert_eq!(seen.get(&(*k, *r)).copied().unwrap_or(0), 1);
        }
        // Cost sanity: the input was read exactly once.
        assert_eq!(cost.link.seq_read.0, n as u64 * 16);
    });
}

/// The interleave pattern never exceeds its GPU page budget and its
/// prefix counting matches enumeration.
#[test]
fn interleave_budget_and_counting() {
    for_cases("interleave_budget_and_counting", |rng| {
        let gpu = rng.gen_range_u64(0, 499);
        let total = rng.gen_range_u64(1, 499);
        let n = rng.gen_range_u64(0, 1999);
        let pat = InterleavePattern::from_budget(gpu, total);
        assert!(pat.gpu_pages_among(total) <= gpu.min(total));
        let exact = (0..n)
            .filter(|&p| pat.side_of_page(p) == MemSide::Gpu)
            .count() as u64;
        assert_eq!(pat.gpu_pages_among(n), exact);
    });
}

/// Linear-probe tables find every inserted key and report honest access
/// counts (>= 1, bounded by capacity).
#[test]
fn linear_probe_roundtrip() {
    for_cases("linear_probe_roundtrip", |rng| {
        let n = rng.gen_range_u64(1, 300) as usize;
        let mut set = std::collections::HashSet::new();
        while set.len() < n {
            set.insert(rng.gen_range_u64(1, 1_000_000));
        }
        let keys: Vec<u64> = set.into_iter().collect();
        let rids: Vec<u64> = keys.iter().map(|k| k ^ 0xABCD).collect();
        let (t, _) = LinearProbeTable::build(&keys, &rids, 0.5);
        for &k in &keys {
            let (hit, acc, _) = t.probe(k);
            assert_eq!(hit, Some(k ^ 0xABCD));
            assert!(acc >= 1 && (acc as usize) <= t.capacity());
        }
    });
}

/// Bucket-chain tables enumerate exactly the matching duplicates.
#[test]
fn bucket_chain_duplicates() {
    for_cases("bucket_chain_duplicates", |rng| {
        let dups = rng.gen_range_u64(1, 19) as usize;
        let key = rng.gen_range_u64(1, 999);
        let skip = rng.gen_range_u64(0, 11) as u32;
        let keys: Vec<u64> = std::iter::repeat_n(key, dups).chain([key + 1]).collect();
        let rids: Vec<u64> = (0..keys.len() as u64).collect();
        let t = BucketChainTable::build(&keys, &rids, 64, skip);
        assert_eq!(t.probe_all(key).count(), dups);
        assert_eq!(t.probe_all(key + 2).count(), 0);
    });
}

/// The LCG is a bijection over its range for any seed.
#[test]
fn lcg_bijective() {
    for_cases("lcg_bijective", |rng| {
        let k = rng.gen_range_u64(4, 13) as u32;
        let seed = rng.next_u64();
        let mut lcg = Lcg::new(k, seed);
        let mut seen = vec![false; 1usize << k];
        for _ in 0..(1u64 << k) {
            let v = lcg.next_value() as usize;
            assert!(!seen[v]);
            seen[v] = true;
        }
    });
}

/// Link wire costs are monotone in the payload and never cheaper than the
/// payload itself.
#[test]
fn wire_cost_monotone() {
    for_cases("wire_cost_monotone", |rng| {
        let len_a = rng.gen_range_u64(1, 4095);
        let len_b = rng.gen_range_u64(1, 4095);
        let offset = rng.gen_range_u64(0, 511);
        let link = LinkModel::new(&HwConfig::ac922().link);
        let (lo, hi) = (len_a.min(len_b), len_a.max(len_b));
        let w_lo = link.write_at(offset, lo);
        let w_hi = link.write_at(offset, hi);
        assert!(w_hi.wire_data_dir.0 >= w_lo.wire_data_dir.0);
        assert!(w_lo.wire_data_dir.0 >= lo);
        let r = link.read_at(offset, lo);
        assert!(r.wire_data_dir.0 >= lo);
        assert!(r.transactions >= 1);
    });
}

/// Random-access bandwidth never exceeds the sequential ceiling.
#[test]
fn random_bw_below_sequential() {
    for_cases("random_bw_below_sequential", |rng| {
        let g_exp = rng.gen_range_u64(2, 9) as u32;
        let link = LinkModel::new(&HwConfig::ac922().link);
        let g = Bytes(1 << g_exp);
        let seq = link.effective_seq_bw();
        for dir in [Dir::CpuToGpu, Dir::GpuToCpu] {
            for a in [Alignment::Natural, Alignment::Cacheline, Alignment::None] {
                assert!(link.random_access_bandwidth(g, dir, a) <= seq * 1.001);
            }
        }
    });
}

/// A TLB working set within the L2 coverage eventually stops missing;
/// stats always balance.
#[test]
fn tlb_stats_balance() {
    for_cases("tlb_stats_balance", |rng| {
        let n = rng.gen_range_u64(1, 499) as usize;
        let addrs: Vec<u64> = (0..n)
            .map(|_| rng.gen_range_u64(0, (1u64 << 22) - 1))
            .collect();
        let hw = HwConfig::ac922().scaled(4096);
        let mut tlb = TlbSim::new(&hw);
        for &a in &addrs {
            tlb.translate(a, MemSide::Cpu);
        }
        let s = tlb.stats();
        assert_eq!(s.lookups(), addrs.len() as u64);
        assert!(s.serialized_walks <= s.full_misses);
    });
}

/// The Triton join equals the reference join on arbitrary small workloads
/// and scales.
#[test]
fn triton_matches_reference() {
    for_cases("triton_matches_reference", |rng| {
        let m = rng.gen_range_u64(1, 19);
        let k = [512u64, 2048, 8192][rng.gen_index(3)];
        let seed = rng.gen_range_u64(0, 99);
        let hw = HwConfig::ac922().scaled(4096);
        let mut spec = WorkloadSpec::paper_default(m, k);
        spec.seed = seed;
        let w = spec.generate();
        let rep = TritonJoin::default().run(&w, &hw);
        assert_eq!(rep.result, reference_join(&w));
    });
}

/// Join results are byte-identical across *any* grant schedule: fixed
/// grants, a single mid-query shrink, shrink-then-grow, and an
/// adversarial fuzzed schedule all produce exactly the reference result.
/// Grants move placement and time, never answers. The fuzz stream can be
/// re-seeded from the environment (`TRITON_GRANT_FUZZ_SEED`) so CI can
/// sweep several deterministic schedules.
#[test]
fn join_results_identical_across_grant_schedules() {
    use triton_core::{ElasticPolicy, GrantSchedule, GrantStep};
    let env_seed: u64 = std::env::var("TRITON_GRANT_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    for_cases("join_results_identical_across_grant_schedules", |rng| {
        if env_seed != 0 {
            // Re-seed the case stream so each CI seed draws different
            // workloads and schedules, all still deterministic.
            *rng = Rng::seed_from_u64(rng.next_u64() ^ env_seed.wrapping_mul(0x9E37_79B9));
        }
        let m = rng.gen_range_u64(1, 12);
        let hw = HwConfig::ac922().scaled(4096);
        let mut spec = WorkloadSpec::paper_default(m, 2048);
        spec.seed = rng.gen_range_u64(0, 99);
        let w = spec.generate();
        let expect = reference_join(&w);
        let run = |policy: ElasticPolicy| {
            TritonJoin {
                elastic: policy,
                ..TritonJoin::default()
            }
            .run(&w, &hw)
            .result
        };
        // Fixed grants (policy disabled).
        assert_eq!(run(ElasticPolicy::default()), expect, "fixed");
        // One mid-query shrink.
        let shrink_pair = rng.gen_range_u64(0, 8);
        let one_shrink = GrantSchedule::new(vec![GrantStep {
            at_pair: shrink_pair,
            cache_bytes: 0,
        }]);
        assert_eq!(
            run(ElasticPolicy::with_schedule(one_shrink)),
            expect,
            "one shrink"
        );
        // Shrink then grow back.
        let shrink_grow = GrantSchedule::new(vec![
            GrantStep {
                at_pair: shrink_pair,
                cache_bytes: 0,
            },
            GrantStep {
                at_pair: shrink_pair + rng.gen_range_u64(1, 4),
                cache_bytes: u64::MAX,
            },
        ]);
        assert_eq!(
            run(ElasticPolicy::with_schedule(shrink_grow)),
            expect,
            "shrink then grow"
        );
        // Adversarial fuzzed schedule: several steps, arbitrary budgets,
        // same-pair collisions allowed.
        let steps: Vec<GrantStep> = (0..rng.gen_range_u64(1, 6))
            .map(|_| GrantStep {
                at_pair: rng.gen_range_u64(0, 12),
                cache_bytes: rng.next_u64() % (1 << rng.gen_range_u64(8, 40)),
            })
            .collect();
        assert_eq!(
            run(ElasticPolicy::with_schedule(GrantSchedule::new(steps))),
            expect,
            "fuzzed schedule"
        );
    });
}

/// `levels_needed` is exact: the returned depth is sufficient (the
/// demand, halved `bits` per level, fits capacity) and minimal (one
/// fewer level does not), and the policy clamp never exceeds its bound.
#[test]
fn recursion_depth_is_sufficient_minimal_and_bounded() {
    use triton_core::{levels_needed, ElasticPolicy};
    for_cases("recursion_depth_is_sufficient_minimal_and_bounded", |rng| {
        let demand = rng.gen_range_u64(1, u64::MAX >> 8);
        let capacity = rng.gen_range_u64(1, u64::MAX >> 8);
        let bits = rng.gen_range_u64(1, 6) as u32;
        let levels = levels_needed(demand, capacity, bits);
        assert!(levels <= u64::BITS);
        let after = |l: u32| {
            let shift = (u64::from(bits) * u64::from(l)).min(63) as u32;
            demand >> shift
        };
        if levels < u64::BITS {
            assert!(after(levels) <= capacity, "depth must suffice");
        }
        if levels > 0 {
            assert!(after(levels - 1) > capacity, "depth must be minimal");
        }
        let max_depth = rng.gen_range_u64(0, 5) as u32;
        let p = ElasticPolicy {
            max_depth,
            repart_bits: bits,
            ..ElasticPolicy::adaptive()
        };
        assert!(
            p.depth_for(demand, capacity) <= max_depth,
            "the policy clamp is a hard bound"
        );
    });
}

/// `spill_order` is always a permutation sorted coldest-first with index
/// tie-breaks — the eviction order the elastic executor relies on.
#[test]
fn spill_order_is_a_coldest_first_permutation() {
    use triton_core::spill_order;
    for_cases("spill_order_is_a_coldest_first_permutation", |rng| {
        let n = rng.gen_range_u64(0, 99) as usize;
        let hotness: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(0, 9)).collect();
        let order = spill_order(&hotness);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "must be a permutation");
        for pair in order.windows(2) {
            assert!(
                (hotness[pair[0]], pair[0]) < (hotness[pair[1]], pair[1]),
                "coldest first, ties by index"
            );
        }
    });
}

/// The skew-aware LPT schedule is gated: the executor adopts the
/// reordering only when it beats submission order on the realized lane
/// times, so the pipeline makespan is *never* worse than submission
/// order — and the recorded order is always a valid permutation of the
/// lanes. The counter check keeps the property non-vacuous: across the
/// cases LPT must actually fire.
#[test]
fn lpt_schedule_never_worse_than_submission() {
    use triton_core::SkewPolicy;
    use triton_hw::kernel::{pipeline2, pipeline2_scheduled};
    let mut improved = 0u32;
    for_cases("lpt_schedule_never_worse_than_submission", |rng| {
        let m = rng.gen_range_u64(2, 33);
        let theta = [0.0, 0.75, 1.25, 1.5][rng.gen_index(4)];
        let hw = HwConfig::ac922().scaled(4096);
        let mut spec = WorkloadSpec::skewed(m, theta, 2048);
        spec.seed = rng.gen_range_u64(0, 1000);
        let w = spec.generate();
        let rep = TritonJoin {
            skew: SkewPolicy::aware(),
            ..TritonJoin::default()
        }
        .run(&w, &hw);
        assert_eq!(rep.result, reference_join(&w));
        let lanes = rep.overlap.as_ref().expect("overlap enabled");
        let order = lanes.execution_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..lanes.stage_a.len()).collect::<Vec<_>>(),
            "schedule must be a permutation of the lanes"
        );
        let scheduled = pipeline2_scheduled(&lanes.stage_a, &lanes.stage_b, &order);
        let submission = pipeline2(&lanes.stage_a, &lanes.stage_b);
        assert!(
            scheduled.0 <= submission.0 + 1e-9,
            "LPT schedule regressed: {scheduled} vs {submission}"
        );
        if scheduled.0 < submission.0 - 1e-9 {
            improved += 1;
        }
    });
    assert!(
        improved > 0,
        "LPT never improved any case: vacuous property"
    );
}
