//! Reference plan evaluation: the ground-truth oracle the GPU executor
//! is tested against, composed from the same primitives the single-join
//! oracle uses (BTreeMap joins, the shared aggregate digest).
//!
//! Bloom nodes are evaluated as the identity over their probe side: the
//! filter only drops tuples that *cannot* match, and [`crate::Plan`]'s
//! validation guarantees Bloom outputs feed only join probe sides, where
//! every surviving key — false positives included — is re-checked
//! exactly. The final aggregate is therefore byte-identical whether or
//! not the filter ran.

use std::collections::BTreeMap;

use triton_core::{reference_aggregate, AggregateResult};
use triton_datagen::Relation;

use crate::dag::{Plan, PlanNode};

/// Evaluate `plan` over `inputs` exactly, returning the root aggregate.
/// The plan must be valid (see [`Plan::validate`]).
pub fn reference_plan(plan: &Plan, inputs: &[Relation]) -> AggregateResult {
    let mut outs: Vec<Vec<(u64, u64)>> = Vec::with_capacity(plan.nodes.len());
    let mut root = AggregateResult {
        groups: 0,
        count_digest: 0,
        sum_digest: 0,
    };
    for node in &plan.nodes {
        let out: Vec<(u64, u64)> = match *node {
            PlanNode::Scan { input } => inputs
                .get(input)
                .map(|r| r.iter().collect())
                .unwrap_or_default(),
            PlanNode::Select { child, pred } => outs[child]
                .iter()
                .copied()
                .filter(|&(k, _)| pred.keep(k))
                .collect(),
            // Identity: false positives are re-checked by the consuming
            // join's probe, enforced structurally by validation.
            PlanNode::Bloom { probe, .. } => outs[probe].clone(),
            PlanNode::Join { build, probe, emit } => {
                let mut table: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
                for &(k, rid) in &outs[build] {
                    table.entry(k).or_default().push(rid);
                }
                let mut matched = Vec::new();
                for &(k, s_rid) in &outs[probe] {
                    if let Some(rids) = table.get(&k) {
                        for &r_rid in rids {
                            matched.push(emit.apply(k, r_rid, s_rid));
                        }
                    }
                }
                matched
            }
            PlanNode::Agg { child } => {
                let (keys, rids): (Vec<u64>, Vec<u64>) = outs[child].iter().copied().unzip();
                root = reference_aggregate(&Relation::from_columns(keys, rids));
                Vec::new()
            }
        };
        outs.push(out);
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{EmitMap, Predicate};

    #[test]
    fn oracle_composes_select_join_agg() {
        // R = {(1,10),(2,20)}, S = {(1,100),(1,101),(2,200)}.
        let r = Relation::from_columns(vec![1, 2], vec![10, 20]);
        let s = Relation::from_columns(vec![1, 1, 2], vec![100, 101, 200]);
        let plan = Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 },
                PlanNode::Scan { input: 1 },
                PlanNode::Select {
                    child: 0,
                    pred: Predicate::KeyRange { lo: 1, hi: 1 },
                },
                PlanNode::Join {
                    build: 2,
                    probe: 1,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 3 },
            ],
        };
        plan.validate(2).unwrap();
        let got = reference_plan(&plan, &[r, s]);
        // Only key 1 survives: matches (1,10+100) and (1,10+101), one group.
        let expect = reference_aggregate(&Relation::from_columns(vec![1, 1], vec![110, 111]));
        assert_eq!(got, expect);
        assert_eq!(got.groups, 1);
    }

    #[test]
    fn bloom_is_identity_for_the_oracle() {
        let r = Relation::from_columns(vec![1, 2, 3], vec![1, 2, 3]);
        let s = Relation::from_columns(vec![1, 3, 5, 7], vec![10, 30, 50, 70]);
        let with_bloom = Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 },
                PlanNode::Scan { input: 1 },
                PlanNode::Bloom { build: 0, probe: 1 },
                PlanNode::Join {
                    build: 0,
                    probe: 2,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 3 },
            ],
        };
        let without = Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 },
                PlanNode::Scan { input: 1 },
                PlanNode::Join {
                    build: 0,
                    probe: 1,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 2 },
            ],
        };
        let inputs = [r, s];
        assert_eq!(
            reference_plan(&with_bloom, &inputs),
            reference_plan(&without, &inputs)
        );
    }
}
