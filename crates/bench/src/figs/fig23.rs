//! Fig 23: performance per Watt of the CPU vs the GPU joins.
//!
//! Expected shape (Section 6.2.11): the CPU radix join is the most
//! power-efficient (7-9.4 M tuples/s/W after subtracting the idle GPUs),
//! because the GPU cannot shed the host CPU's idle and I/O power.

use triton_core::{CpuRadixJoin, HashScheme, NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

/// One bar of Fig 23.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload in modeled M tuples.
    pub m_tuples: u64,
    /// Operator label.
    pub operator: &'static str,
    /// Power efficiency in M tuples/s/W.
    pub mtps_per_w: f64,
}

/// Run for the given workloads (perfect hashing, as in the paper).
pub fn run(hw: &HwConfig, sizes: &[u64]) -> Vec<Row> {
    let k = hw.scale;
    let mut rows = Vec::new();
    for &m in sizes {
        let w = WorkloadSpec::paper_default(m, k).generate();
        let cpu = CpuRadixJoin::power9(HashScheme::Perfect).run(&w, hw);
        let npj = NoPartitioningJoin::perfect().run(&w, hw);
        let triton = TritonJoin {
            scheme: HashScheme::Perfect,
            ..TritonJoin::default()
        }
        .run(&w, hw);
        rows.push(Row {
            m_tuples: m,
            operator: "CPU Radix Join",
            mtps_per_w: cpu.power_efficiency(hw),
        });
        rows.push(Row {
            m_tuples: m,
            operator: "GPU No-Partitioning Join",
            mtps_per_w: npj.power_efficiency(hw),
        });
        rows.push(Row {
            m_tuples: m,
            operator: "GPU Triton Join",
            mtps_per_w: triton.power_efficiency(hw),
        });
    }
    rows
}

/// Print the figure.
pub fn print(hw: &HwConfig, sizes: &[u64]) {
    crate::banner("Fig 23", "performance per Watt");
    let mut t = crate::Table::new(["M tuples", "operator", "M tuples/s/W"]);
    for r in run(hw, sizes) {
        t.row([
            r.m_tuples.to_string(),
            r.operator.to_string(),
            crate::f1(r.mtps_per_w),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_wins_on_efficiency_for_large_joins() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[2048]);
        let cpu = rows.iter().find(|r| r.operator.contains("CPU")).unwrap();
        let triton = rows.iter().find(|r| r.operator.contains("Triton")).unwrap();
        // Paper: the CPU is the most power-efficient processor
        // (7-9.4 M tuples/s/W) because the GPU cannot shed its host's
        // idle power.
        assert!(
            cpu.mtps_per_w > triton.mtps_per_w,
            "cpu {} vs triton {}",
            cpu.mtps_per_w,
            triton.mtps_per_w
        );
        assert!((5.0..=11.0).contains(&cpu.mtps_per_w), "{cpu:?}");
    }

    #[test]
    fn efficiency_tracks_throughput_within_an_executor() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[128, 2048]);
        let t128 = rows
            .iter()
            .find(|r| r.m_tuples == 128 && r.operator.contains("Triton"))
            .unwrap();
        let t2048 = rows
            .iter()
            .find(|r| r.m_tuples == 2048 && r.operator.contains("Triton"))
            .unwrap();
        assert!(t128.mtps_per_w > t2048.mtps_per_w);
    }
}
