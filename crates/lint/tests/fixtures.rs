//! Fixture-driven self-tests: one violating and one clean case per
//! rule, waiver parsing, and false-positive guards (strings, comments,
//! `#[cfg(test)]` regions, non-invariant enums, non-allocator
//! receivers). Deleting any single rule's implementation must fail at
//! least one case here.

use std::path::Path;

use triton_lint::{analyze_source, FileClass, Rule, ALL_RULES};

/// Expected result of analyzing one fixture under one classification.
struct Case {
    fixture: &'static str,
    /// Synthetic workspace-relative path deciding rule scopes.
    classify_as: &'static str,
    /// Exact expected unwaived count per rule (d1..e1 order).
    unwaived: [usize; 11],
    /// Expected count of findings covered by a valid waiver.
    waived: usize,
    /// Expected count of reasonless/typoed pragmas.
    malformed: usize,
    /// Expected count of well-formed pragmas matching no finding.
    unused: usize,
}

const CASES: &[Case] = &[
    Case {
        fixture: "d1_violation.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "d1_clean.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "d2_violation.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0, 5, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // The same wall-clock code is legal inside the bench crate.
    Case {
        fixture: "d2_violation.rs",
        classify_as: "crates/bench/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // The trace layer is the determinism-critical path: wall-clock reads
    // inside crates/trace must trip D2 like any other library crate.
    Case {
        fixture: "d2_violation.rs",
        classify_as: "crates/trace/src/fixture.rs",
        unwaived: [0, 5, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "d3_violation.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "d3_clean.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "u1_violation.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // units.rs itself is the one home of raw unit arithmetic.
    Case {
        fixture: "u1_violation.rs",
        classify_as: "crates/hw/src/units.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "u1_clean.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "u2_violation.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "u2_clean.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "p1_violation.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // P1 is scoped to library crates: examples and bench are exempt.
    Case {
        fixture: "p1_violation.rs",
        classify_as: "examples/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "p1_violation.rs",
        classify_as: "crates/bench/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "p1_clean.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // crates/trace is a library crate: panics are banned there too.
    Case {
        fixture: "p1_violation.rs",
        classify_as: "crates/trace/src/fixture.rs",
        unwaived: [0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "waiver_ok.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0; 11],
        waived: 4,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "waiver_reasonless.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 1,
        // The well-formed allow(u2) names a rule with no finding here:
        // since v2 that is a stale waiver, not a silent no-op.
        unused: 1,
    },
    Case {
        fixture: "guards.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // The skew-aware planner's placement-plan code lives in crates/mem:
    // hash-ordered plan ranges and raw page/byte arithmetic must trip
    // D1/U1 there like in any library crate, and the real idiom
    // (ordered ranges, unit-operator arithmetic) must stay clean.
    Case {
        fixture: "placement_violation.rs",
        classify_as: "crates/mem/src/interleave.rs",
        unwaived: [2, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "placement_clean.rs",
        classify_as: "crates/mem/src/interleave.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // Integration tests and bench harnesses are test code for every
    // rule.
    Case {
        fixture: "d1_violation.rs",
        classify_as: "tests/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "p1_violation.rs",
        classify_as: "crates/core/benches/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // --- F family: cost fidelity ------------------------------------
    Case {
        fixture: "f1_violation.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // Examples narrate; the cost-fidelity bar applies to library code.
    Case {
        fixture: "f1_violation.rs",
        classify_as: "examples/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "f1_clean.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "f2_violation.rs",
        classify_as: "crates/exec/src/fixture.rs",
        unwaived: [0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "f2_clean.rs",
        classify_as: "crates/exec/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // --- L family: grant & allocation lifecycle ----------------------
    Case {
        fixture: "l_violation.rs",
        classify_as: "crates/exec/src/fixture.rs",
        unwaived: [0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // Test harness code may drop handles freely.
    Case {
        fixture: "l_violation.rs",
        classify_as: "crates/exec/tests/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "l_clean.rs",
        classify_as: "crates/exec/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // --- E family: exhaustiveness over invariant enums ----------------
    Case {
        fixture: "e1_violation.rs",
        classify_as: "crates/hw/src/fixture.rs",
        unwaived: [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // bench is not a library crate: E1 does not apply there.
    Case {
        fixture: "e1_violation.rs",
        classify_as: "crates/bench/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    Case {
        fixture: "e1_clean.rs",
        classify_as: "crates/hw/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
    // --- Waiver hygiene ----------------------------------------------
    Case {
        fixture: "waiver_unused.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [0; 11],
        waived: 0,
        malformed: 0,
        unused: 1,
    },
    // --- Parser degradation -------------------------------------------
    // Malformed items must not panic the parser, and the token rules
    // keep firing at full strength (the HashMap is still a D1 hit).
    Case {
        fixture: "malformed_items.rs",
        classify_as: "crates/core/src/fixture.rs",
        unwaived: [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        waived: 0,
        malformed: 0,
        unused: 0,
    },
];

fn load(fixture: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn fixture_table() {
    for case in CASES {
        let src = load(case.fixture);
        let class = FileClass::classify(case.classify_as);
        let analysis = analyze_source(&class, &src);
        let label = format!("{} as {}", case.fixture, case.classify_as);
        for (i, rule) in ALL_RULES.iter().enumerate() {
            let got = analysis
                .findings
                .iter()
                .filter(|f| f.rule == *rule && f.waived.is_none())
                .count();
            assert_eq!(
                got,
                case.unwaived[i],
                "{label}: unwaived {} count (findings: {:#?})",
                rule.code(),
                analysis.findings
            );
        }
        let waived = analysis
            .findings
            .iter()
            .filter(|f| f.waived.is_some())
            .count();
        assert_eq!(waived, case.waived, "{label}: waived count");
        assert_eq!(
            analysis.malformed_waivers.len(),
            case.malformed,
            "{label}: malformed waiver count"
        );
        assert_eq!(
            analysis.unused_waivers.len(),
            case.unused,
            "{label}: unused waiver count (waivers: {:#?})",
            analysis.unused_waivers
        );
    }
}

#[test]
fn every_rule_is_exercised_by_some_fixture() {
    // The acceptance bar: deleting any one rule's implementation must
    // fail a fixture case. That holds iff every rule has a case
    // expecting a non-zero unwaived count.
    for (i, rule) in ALL_RULES.iter().enumerate() {
        assert!(
            CASES.iter().any(|c| c.unwaived[i] > 0),
            "no fixture exercises rule {}",
            rule.code()
        );
    }
}

#[test]
fn waiver_reasons_surface_in_findings() {
    let src = load("waiver_ok.rs");
    let class = FileClass::classify("crates/core/src/fixture.rs");
    let analysis = analyze_source(&class, &src);
    let d1_reason = analysis
        .findings
        .iter()
        .find(|f| f.rule == Rule::D1)
        .and_then(|f| f.waived.clone())
        .expect("d1 finding should carry its waiver reason");
    assert!(
        d1_reason.contains("lookup-only"),
        "reason text should round-trip: {d1_reason}"
    );
    assert_eq!(analysis.waivers.len(), 3);
    assert!(analysis.waivers.iter().all(|w| !w.reason.is_empty()));
    assert!(
        analysis.unused_waivers.is_empty(),
        "every waiver in waiver_ok.rs matches a finding"
    );
}

#[test]
fn new_rules_can_be_waived_like_old_ones() {
    // The F/L/E codes must round-trip through the waiver pragma.
    let src = "\
// triton-lint: allow(e1) -- transitional; variants enumerated in issue 9\n\
pub fn w(k: &FaultKind) -> f64 {\n\
    match k {\n\
        FaultKind::LinkDegrade { factor } => *factor,\n\
        _ => 1.0,\n\
    }\n\
}\n";
    let class = FileClass::classify("crates/hw/src/fixture.rs");
    let analysis = analyze_source(&class, src);
    // The pragma covers the next code line (the fn), not the `_` arm
    // four lines down — so the finding stays unwaived and the pragma is
    // stale. Line-accurate coverage is part of the contract.
    assert_eq!(analysis.unused_waivers.len(), 1);
    let on_site = "\
pub fn w(k: &FaultKind) -> f64 {\n\
    match k {\n\
        FaultKind::LinkDegrade { factor } => *factor,\n\
        // triton-lint: allow(e1) -- transitional; variants enumerated in issue 9\n\
        _ => 1.0,\n\
    }\n\
}\n";
    let analysis = analyze_source(&class, on_site);
    assert_eq!(analysis.unused_waivers.len(), 0, "{:#?}", analysis.waivers);
    assert!(analysis.findings.iter().all(|f| f.waived.is_some()));
}
