//! Shared infrastructure for the partitioning kernels: memory locations,
//! cost-charging helpers, the partitioned output layout, and the
//! instruction-cost constants of the warp emulation.

use triton_hw::kernel::KernelCost;
use triton_hw::link::LinkModel;
use triton_hw::tlb::{MemSide, TlbSim};
use triton_hw::units::Bytes;
use triton_mem::HybridLayout;

/// Where a kernel's input or output array physically resides.
#[derive(Debug, Clone)]
pub enum Location {
    /// Entirely in GPU on-board memory.
    Gpu,
    /// Entirely in CPU memory, accessed over the interconnect.
    Cpu,
    /// A Section 5.3 hybrid array: pages interleaved across both memories.
    Hybrid(HybridLayout),
}

/// A located array: its physical placement plus the virtual address of its
/// first byte (drives TLB behaviour). `offset` lets a span denote a slice
/// of a larger located array (e.g. one partition within a hybrid buffer).
#[derive(Debug, Clone)]
pub struct Span {
    /// Physical placement.
    pub loc: Location,
    /// Virtual address of byte 0 of the *underlying* array.
    pub base_vaddr: u64,
    /// Byte offset of this span within the underlying array.
    pub offset: u64,
}

impl Span {
    /// A GPU-memory span at `base_vaddr`.
    pub fn gpu(base_vaddr: u64) -> Self {
        Span {
            loc: Location::Gpu,
            base_vaddr,
            offset: 0,
        }
    }

    /// A CPU-memory span at `base_vaddr`.
    pub fn cpu(base_vaddr: u64) -> Self {
        Span {
            loc: Location::Cpu,
            base_vaddr,
            offset: 0,
        }
    }

    /// A hybrid span; the layout carries its own base address.
    pub fn hybrid(layout: HybridLayout) -> Self {
        let base = layout.vaddr(0);
        Span {
            loc: Location::Hybrid(layout),
            base_vaddr: base,
            offset: 0,
        }
    }

    /// A sub-span starting `delta` bytes further into the underlying
    /// array: same physical placement, shifted charging offsets.
    pub fn slice(&self, delta: u64) -> Span {
        let mut s = self.clone();
        s.offset += delta;
        s
    }

    /// Which memory holds the byte at `offset` (relative to this span).
    pub fn side_of(&self, offset: u64) -> MemSide {
        let o = self.offset + offset;
        match &self.loc {
            Location::Gpu => MemSide::Gpu,
            Location::Cpu => MemSide::Cpu,
            Location::Hybrid(l) => l.side_of(o.min(l.len().saturating_sub(1))),
        }
    }

    /// Split `[offset, offset+len)` (span-relative) into
    /// `(gpu_bytes, cpu_bytes)`.
    pub fn split_range(&self, offset: u64, len: u64) -> (u64, u64) {
        let o = self.offset + offset;
        match &self.loc {
            Location::Gpu => (len, 0),
            Location::Cpu => (0, len),
            Location::Hybrid(l) => l.split_range(o.min(l.len().saturating_sub(1)), len),
        }
    }

    /// Absolute byte position (for wire-line arithmetic) of a
    /// span-relative offset.
    fn abs(&self, offset: u64) -> u64 {
        self.offset + offset
    }
}

/// The charging context threaded through every emulated kernel: the cost
/// accumulator, the link model, and the TLB simulator.
pub struct ChargeCtx<'a> {
    /// Cost accumulator of the kernel being emulated.
    pub cost: &'a mut KernelCost,
    /// Link cost model.
    pub link: &'a LinkModel,
    /// Translation hierarchy state.
    pub tlb: &'a mut TlbSim,
}

impl ChargeCtx<'_> {
    /// Charge a perfectly coalesced sequential read of `len` bytes starting
    /// at `offset` within `span`. TLB lookups are charged once per page
    /// region entered (sequential scans touch each page once).
    pub fn seq_read(&mut self, span: &Span, offset: u64, len: u64) {
        let (gpu, cpu) = span.split_range(offset, len);
        self.cost.gpu_mem.read += Bytes(gpu);
        self.cost.link.seq_read += Bytes(cpu);
        self.translate_pages(span, offset, len);
    }

    /// Charge a perfectly coalesced sequential write.
    pub fn seq_write(&mut self, span: &Span, offset: u64, len: u64) {
        let (gpu, cpu) = span.split_range(offset, len);
        self.cost.gpu_mem.write += Bytes(gpu);
        self.cost.link.seq_write += Bytes(cpu);
        self.translate_pages(span, offset, len);
    }

    /// Charge one buffer flush of `len` bytes at `offset`. The exact byte
    /// position determines which 128-byte lines are full (posted whole) and
    /// which are partial (byte-enable + read-modify-write). One TLB lookup
    /// at the flush address (flushes rarely straddle pages).
    pub fn flush_write(&mut self, span: &Span, offset: u64, len: u64, aligned: bool) {
        if len == 0 {
            return;
        }
        let side = self.lookup(span, offset);
        match side {
            MemSide::Gpu => {
                if aligned {
                    self.cost.gpu_mem.write += Bytes(len);
                } else {
                    self.cost.gpu_mem.rand_write += Bytes(round_txn(len));
                }
            }
            MemSide::Cpu => {
                let wc = self.link.write_at(span.abs(offset), len);
                self.cost.link.rand_write.merge(&wc);
            }
        }
    }

    /// Charge one isolated random write of `len` bytes (the Standard
    /// scatter's per-tuple store).
    pub fn scatter_write(&mut self, span: &Span, offset: u64, len: u64) {
        let side = self.lookup(span, offset);
        match side {
            MemSide::Gpu => {
                self.cost.gpu_mem.rand_write += Bytes(round_txn(len));
            }
            MemSide::Cpu => {
                let wc = self.link.write_at(span.abs(offset), len);
                self.cost.link.rand_write.merge(&wc);
            }
        }
    }

    /// Charge one random read of `len` bytes at `offset` within `span`.
    /// Random reads are *dependent*: a translation miss stalls the warp,
    /// so CPU-side walks are recorded as serialized.
    pub fn random_read(&mut self, span: &Span, offset: u64, len: u64) {
        let walks_before = self.cost.tlb.full_misses;
        let side = self.lookup(span, offset);
        self.cost.tlb.serialized_walks += self.cost.tlb.full_misses - walks_before;
        match side {
            MemSide::Gpu => {
                self.cost.gpu_mem.rand_read += Bytes(round_txn(len));
            }
            MemSide::Cpu => {
                let wc = self.link.read_at(span.abs(offset), len);
                self.cost.link.rand_read.merge(&wc);
            }
        }
    }

    /// Translate the address at `offset` and record the outcome; returns
    /// the memory side for charging.
    fn lookup(&mut self, span: &Span, offset: u64) -> MemSide {
        let side = span.side_of(offset);
        let lvl = self.tlb.translate(span.base_vaddr + span.abs(offset), side);
        self.cost.tlb.merge(&stats_of(lvl, side));
        side
    }

    /// Translate once per TLB-entry-reach region of a sequential range.
    fn translate_pages(&mut self, span: &Span, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let reach = self.tlb.entry_reach().0.max(1);
        let abs = span.abs(offset);
        let first = abs / reach;
        let last = (abs + len - 1) / reach;
        for region in first..=last {
            let off = region * reach;
            let side = span.side_of(off.max(abs) - span.offset);
            let lvl = self.tlb.translate(span.base_vaddr + off, side);
            self.cost.tlb.merge(&stats_of(lvl, side));
        }
    }
}

/// Round an access up to the GPU-memory transaction granularity (32-byte
/// L2 sectors): a 16-byte random access still moves a whole sector.
fn round_txn(len: u64) -> u64 {
    len.div_ceil(32) * 32
}

fn stats_of(lvl: triton_hw::tlb::TlbLevel, side: MemSide) -> triton_hw::tlb::TlbStats {
    use triton_hw::tlb::TlbLevel::*;
    let mut s = triton_hw::tlb::TlbStats::default();
    match (lvl, side) {
        (L2Hit, _) => s.l2_hits = 1,
        (L3StarHit, _) => s.l3_star_hits = 1,
        (FullMiss, MemSide::Cpu) => s.full_misses = 1,
        (FullMiss, MemSide::Gpu) => s.gpu_misses = 1,
    }
    s
}

/// Instruction-cost constants of the warp emulation. These are rough GPU
/// instruction counts per logical operation; they matter only where the
/// paper's profiling says compute matters (the in-GPU second pass, the join
/// phase, and Hierarchical's flush loops at high fanout — Fig 18e).
#[derive(Debug, Clone, Copy)]
pub struct InstrCosts {
    /// Per tuple: load, hash, radix extract, buffer-slot acquire, store.
    pub fill_per_tuple: u64,
    /// Per flush: leader ballot, lock handling, loop setup.
    pub flush_fixed: u64,
    /// Per 32 bytes moved during a flush (one warp-wide store iteration
    /// moves 32 lanes x 16 B; normalised per tuple below).
    pub flush_per_tuple: u64,
    /// Extra per-tuple cost of the Linear variant's in-scratchpad sort.
    pub sort_per_tuple: u64,
    /// Per-tuple cost of building a scratchpad hash table.
    pub build_per_tuple: u64,
    /// Per-tuple cost of probing a scratchpad hash table.
    pub probe_per_tuple: u64,
}

impl Default for InstrCosts {
    fn default() -> Self {
        InstrCosts {
            fill_per_tuple: 12,
            flush_fixed: 24,
            flush_per_tuple: 2,
            sort_per_tuple: 10,
            build_per_tuple: 14,
            probe_per_tuple: 12,
        }
    }
}

/// Partition-major output of one radix-partitioning pass, stored compactly
/// (partition *p* occupies `offsets[p]..offsets[p+1]`).
#[derive(Debug, Clone)]
pub struct Partitioned {
    /// Key column, partition-major.
    pub keys: Vec<u64>,
    /// Record-id column, partition-major.
    pub rids: Vec<u64>,
    /// `fanout + 1` partition boundaries.
    pub offsets: Vec<usize>,
    /// Radix bits of this pass.
    pub radix_bits: u32,
    /// Radix bits skipped (consumed by earlier passes).
    pub skip_bits: u32,
}

impl Partitioned {
    /// Number of partitions.
    pub fn fanout(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Borrow partition `p` as `(keys, rids)`.
    pub fn partition(&self, p: usize) -> (&[u64], &[u64]) {
        let (a, b) = (self.offsets[p], self.offsets[p + 1]);
        (&self.keys[a..b], &self.rids[a..b])
    }

    /// Tuples in partition `p`.
    pub fn partition_len(&self, p: usize) -> usize {
        self.offsets[p + 1] - self.offsets[p]
    }

    /// Total tuples.
    pub fn len(&self) -> usize {
        // triton-lint: allow(p1) -- offsets holds fanout+1 entries by construction, never empty
        *self.offsets.last().unwrap()
    }

    /// True when no tuples are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Configuration of one partitioning pass.
#[derive(Debug, Clone, Copy)]
pub struct PassConfig {
    /// Radix bits (fanout = `1 << radix_bits`).
    pub radix_bits: u32,
    /// Bits consumed by earlier passes (0 for pass 1).
    pub skip_bits: u32,
    /// Thread blocks per SM.
    pub blocks_per_sm: u32,
    /// Warps per thread block.
    pub warps_per_block: u32,
    /// SMs available to this kernel (0 = all).
    pub sms: u32,
}

impl PassConfig {
    /// Default launch: 2 blocks/SM, 8 warps/block, all SMs.
    pub fn new(radix_bits: u32, skip_bits: u32) -> Self {
        PassConfig {
            radix_bits,
            skip_bits,
            blocks_per_sm: 2,
            warps_per_block: 8,
            sms: 0,
        }
    }

    /// Fanout of this pass.
    pub fn fanout(&self) -> usize {
        1usize << self.radix_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_hw::{HwConfig, KernelCost, TlbSim};
    use triton_mem::InterleavePattern;

    fn ctx_fixture() -> (KernelCost, LinkModel, TlbSim) {
        let hw = HwConfig::ac922().scaled(1024);
        (
            KernelCost::new("t"),
            LinkModel::new(&hw.link),
            TlbSim::new(&hw),
        )
    }

    #[test]
    fn seq_read_splits_hybrid() {
        let (mut cost, link, mut tlb) = ctx_fixture();
        let layout = HybridLayout::new(0, 1 << 20, 1 << 11, InterleavePattern::from_fraction(0.5));
        let span = Span::hybrid(layout);
        {
            let mut ctx = ChargeCtx {
                cost: &mut cost,
                link: &link,
                tlb: &mut tlb,
            };
            ctx.seq_read(&span, 0, 1 << 20);
        }
        assert_eq!(cost.gpu_mem.read.0, 1 << 19);
        assert_eq!(cost.link.seq_read.0, 1 << 19);
    }

    #[test]
    fn aligned_flush_is_natural_alignment() {
        let (mut cost, link, mut tlb) = ctx_fixture();
        let span = Span::cpu(0);
        {
            let mut ctx = ChargeCtx {
                cost: &mut cost,
                link: &link,
                tlb: &mut tlb,
            };
            ctx.flush_write(&span, 256, 256, true);
        }
        assert_eq!(cost.link.rand_write.transactions, 2);
        assert_eq!(cost.link.rand_write.partial_txns, 0);
    }

    #[test]
    fn unaligned_flush_pays_partial_lines() {
        let (mut cost, link, mut tlb) = ctx_fixture();
        let span = Span::cpu(0);
        {
            let mut ctx = ChargeCtx {
                cost: &mut cost,
                link: &link,
                tlb: &mut tlb,
            };
            ctx.flush_write(&span, 48, 256, false);
        }
        assert!(cost.link.rand_write.partial_txns > 0);
    }

    #[test]
    fn flush_to_gpu_charges_gpu_memory() {
        let (mut cost, link, mut tlb) = ctx_fixture();
        let span = Span::gpu(0);
        {
            let mut ctx = ChargeCtx {
                cost: &mut cost,
                link: &link,
                tlb: &mut tlb,
            };
            ctx.flush_write(&span, 0, 512, true);
        }
        assert_eq!(cost.gpu_mem.write.0, 512);
        assert_eq!(cost.link.rand_write.payload.0, 0);
        // GPU-side lookup recorded.
        assert_eq!(cost.tlb.lookups(), 1);
    }

    #[test]
    fn partitioned_accessors() {
        let p = Partitioned {
            keys: vec![1, 2, 3, 4],
            rids: vec![10, 20, 30, 40],
            offsets: vec![0, 1, 4],
            radix_bits: 1,
            skip_bits: 0,
        };
        assert_eq!(p.fanout(), 2);
        assert_eq!(p.partition(0), (&[1u64][..], &[10u64][..]));
        assert_eq!(p.partition_len(1), 3);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn seq_scan_tlb_lookups_once_per_region() {
        let hw = HwConfig::ac922().scaled(1024);
        let mut cost = KernelCost::new("t");
        let link = LinkModel::new(&hw.link);
        let mut tlb = TlbSim::new(&hw);
        let reach = tlb.entry_reach().0;
        let span = Span::cpu(0);
        {
            let mut ctx = ChargeCtx {
                cost: &mut cost,
                link: &link,
                tlb: &mut tlb,
            };
            ctx.seq_read(&span, 0, reach * 3);
        }
        assert_eq!(cost.tlb.lookups(), 3);
    }
}
