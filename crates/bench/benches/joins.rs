//! Criterion microbenchmarks of the end-to-end join operators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use triton_core::{CpuRadixJoin, HashScheme, NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

fn bench_joins(c: &mut Criterion) {
    let hw = HwConfig::ac922().scaled(2048);
    let w = WorkloadSpec::paper_default(32, 2048).generate();
    let n = w.total_tuples();

    let mut g = c.benchmark_group("joins_32M_modeled");
    g.throughput(Throughput::Elements(n));
    g.sample_size(10);
    g.bench_function("triton", |b| b.iter(|| TritonJoin::default().run(&w, &hw)));
    g.bench_function("triton_no_cache", |b| {
        let j = TritonJoin {
            caching_enabled: false,
            ..TritonJoin::default()
        };
        b.iter(|| j.run(&w, &hw))
    });
    g.bench_function("npj_perfect", |b| {
        b.iter(|| NoPartitioningJoin::perfect().run(&w, &hw))
    });
    g.bench_function("npj_linear_probing", |b| {
        b.iter(|| NoPartitioningJoin::linear_probing().run(&w, &hw))
    });
    g.bench_function("cpu_radix_p9", |b| {
        b.iter(|| CpuRadixJoin::power9(HashScheme::BucketChaining).run(&w, &hw))
    });
    g.finish();
}

fn bench_triton_sizes(c: &mut Criterion) {
    let hw = HwConfig::ac922().scaled(2048);
    let mut g = c.benchmark_group("triton_by_size");
    g.sample_size(10);
    for m in [8u64, 32, 128] {
        let w = WorkloadSpec::paper_default(m, 2048).generate();
        g.throughput(Throughput::Elements(w.total_tuples()));
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| TritonJoin::default().run(&w, &hw))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_joins, bench_triton_sizes);
criterion_main!(benches);
