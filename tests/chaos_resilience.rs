//! Chaos tests of the fault-injection + resilience layer: a
//! [`triton_hw::FaultPlan`] replayed against the serving scheduler must
//! never change answers, the resilient path must shed strictly fewer
//! queries than the no-resilience baseline on the same plan, and the
//! whole run must replay byte-identically from its seed.
//!
//! Set `TRITON_CHAOS_SEED=<n>` to pin the property tests to one seed
//! (the CI chaos job fans out over several); unset, a fixed default
//! seed set runs.

use triton_core::reference_join;
use triton_datagen::WorkloadSpec;
use triton_exec::{FaultPlan, JoinQuery, Outcome, RejectReason, Scheduler, SchedulerConfig};
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;

const K: u64 = 512;

fn hw() -> HwConfig {
    HwConfig::ac922().scaled(K)
}

/// A deterministic batch of independent tenants arriving together.
fn tenants(n: usize, m_tuples: u64) -> Vec<JoinQuery> {
    (0..n)
        .map(|i| {
            let mut spec = WorkloadSpec::paper_default(m_tuples, K);
            spec.seed ^= (i as u64) << 32;
            JoinQuery::new(format!("tenant-{i}"), spec.generate(), Ns::ZERO)
        })
        .collect()
}

/// Makespan of a clean (fault-free) run, used to place faults mid-run.
fn clean_makespan(config: SchedulerConfig, queries: Vec<JoinQuery>) -> Ns {
    Scheduler::new(hw(), config).run(queries).metrics.makespan
}

/// Seeds under test: `TRITON_CHAOS_SEED` pins one, else a default trio.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("TRITON_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(s) => vec![s],
        None => vec![1, 2, 3],
    }
}

/// Every completed query's result must equal the reference join of its
/// workload — faults may change timing and placement, never answers.
fn assert_exact(queries: &[JoinQuery], outcomes: &[Outcome]) {
    for (q, o) in queries.iter().zip(outcomes) {
        if let Some(c) = o.completed() {
            let exp = reference_join(&q.workload);
            assert_eq!(
                c.report.result, exp,
                "{} produced a wrong result under faults (operator {})",
                c.name, c.operator
            );
        }
    }
}

/// The ISSUE acceptance scenario: the link degraded to 50% for the whole
/// run, a quarter of GPU memory retired mid-run, plus one kernel fault.
/// The resilient scheduler must complete at least as many queries as the
/// fault-free serial baseline, with zero wrong results, while the
/// no-resilience path sheds strictly more on the same plan.
#[test]
fn degraded_machine_beats_no_resilience_with_exact_results() {
    let n = 6;
    let serial_baseline = Scheduler::new(hw(), SchedulerConfig::serial()).run(tenants(n, 32));
    let serial_completed = serial_baseline.metrics.completed;

    let horizon = clean_makespan(SchedulerConfig::default(), tenants(n, 32));
    let cap = hw().gpu.mem_capacity;
    let plan = FaultPlan::with_seed(7)
        .degrade_link(Ns::ZERO, Ns(horizon.0 * 8.0), 0.5)
        .retire_gpu_mem(Ns(horizon.0 * 0.25), Bytes(cap.0 / 4))
        .kernel_fault(Ns(horizon.0 * 0.4));

    let resilient =
        Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(tenants(n, 32), &plan);
    let baseline = Scheduler::new(hw(), SchedulerConfig::no_resilience())
        .run_with_faults(tenants(n, 32), &plan);

    assert!(
        resilient.metrics.completed >= serial_completed,
        "resilient run completed {} < serial baseline {}",
        resilient.metrics.completed,
        serial_completed
    );
    assert_exact(&tenants(n, 32), &resilient.outcomes);
    assert_eq!(
        resilient.metrics.gpu_retired,
        Bytes(cap.0 / 4),
        "the retirement must be accounted"
    );
    assert!(
        resilient.metrics.faults_injected >= 2,
        "retirement + kernel fault must both strike"
    );

    // The kernel fault guarantees the baseline loses its victim.
    assert!(
        baseline.metrics.shed_faulted >= 1,
        "no-resilience must shed the kernel-fault victim"
    );
    assert!(
        resilient.metrics.rejected < baseline.metrics.rejected,
        "resilience must shed strictly fewer: {} vs {}",
        resilient.metrics.rejected,
        baseline.metrics.rejected
    );
    assert!(
        resilient.metrics.retries + resilient.metrics.downgrades + resilient.metrics.revocations
            > 0,
        "recovery actions must be visible in the metrics"
    );
}

/// Same seed + same plan => byte-identical metrics (struct equality and
/// the stable JSON encoding), across every chaos seed under test.
#[test]
fn chaos_runs_replay_byte_identically() {
    let n = 5;
    let horizon = clean_makespan(SchedulerConfig::default(), tenants(n, 24));
    for seed in chaos_seeds() {
        let plan = FaultPlan::chaos(seed, Ns(horizon.0 * 1.5), &hw());
        let run = || {
            Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(tenants(n, 24), &plan)
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics, b.metrics, "seed {seed}: two replays diverged");
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(
            a.telemetry.expose_text(),
            b.telemetry.expose_text(),
            "seed {seed}: telemetry text exposition diverged"
        );
        assert_eq!(
            a.telemetry.expose_json(),
            b.telemetry.expose_json(),
            "seed {seed}: telemetry JSON exposition diverged"
        );
        assert_eq!(a.outcomes.len(), n);
        assert_eq!(
            a.metrics.completed + a.metrics.rejected,
            n as u64,
            "seed {seed}: every query needs a terminal outcome"
        );
        assert_exact(&tenants(n, 24), &a.outcomes);
    }
}

/// A link flap stalls every link-bound query for its window; the run
/// still completes everything exactly once the link returns.
#[test]
fn link_flap_stalls_then_recovers() {
    let n = 4;
    let horizon = clean_makespan(SchedulerConfig::default(), tenants(n, 32));
    let flap_end = horizon.0 * 0.8;
    let plan =
        FaultPlan::with_seed(3).flap_link(Ns(horizon.0 * 0.3), Ns(flap_end - horizon.0 * 0.3));
    let res =
        Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(tenants(n, 32), &plan);
    assert_eq!(
        res.metrics.completed, n as u64,
        "flap must not lose queries"
    );
    assert!(
        res.metrics.makespan.0 >= flap_end * 0.999,
        "link-bound work cannot finish before the flap ends: {} < {flap_end}",
        res.metrics.makespan
    );
    assert_exact(&tenants(n, 32), &res.outcomes);
}

/// Retiring most of the GPU mid-run revokes the victim's reservation and
/// walks it down the degradation ladder — it completes on a smaller
/// operator instead of being shed, and the build-cache circuit breaker
/// trips.
#[test]
fn ecc_retirement_downgrades_instead_of_shedding() {
    let n = 3;
    let mut queries = tenants(n, 32);
    for (i, q) in queries.iter_mut().enumerate() {
        q.build_key = Some(0xB0 + i as u64); // resident builds to quarantine
    }
    let horizon = clean_makespan(SchedulerConfig::default(), queries.clone());
    let cap = hw().gpu.mem_capacity;
    let plan = FaultPlan::with_seed(5).retire_gpu_mem(Ns(horizon.0 * 0.3), Bytes(cap.0 * 9 / 10));
    let res =
        Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(queries.clone(), &plan);
    assert_eq!(
        res.metrics.completed,
        n as u64,
        "every revoked query must recover: {}",
        res.metrics.summary()
    );
    assert!(
        res.metrics.revocations >= 1,
        "a reservation must be revoked"
    );
    assert!(
        res.metrics.downgrades >= 1,
        "10% of the GPU cannot hold a Triton floor; the ladder must engage"
    );
    assert!(
        res.metrics.builds_quarantined >= 1,
        "resident builds must be quarantined by the breaker"
    );
    let downgraded = res.completed().filter(|c| c.operator != "triton").count();
    assert!(downgraded >= 1, "someone must finish on a lower rung");
    assert_exact(&queries, &res.outcomes);
}

/// A moderate ECC retirement that cache grants alone can absorb: the
/// elastic scheduler shrinks running grants in place (priced, counted as
/// grant revisions) and completes everything without a single
/// revocation, while the fixed-grant scheduler on the same plan has to
/// revoke a reservation outright or shed.
#[test]
fn moderate_retirement_shrinks_grants_instead_of_revoking() {
    let n = 3;
    let queries = tenants(n, 32);
    let horizon = clean_makespan(SchedulerConfig::default(), queries.clone());
    let cap = hw().gpu.mem_capacity;
    let plan = FaultPlan::with_seed(11).retire_gpu_mem(Ns(horizon.0 * 0.3), Bytes(cap.0 * 6 / 10));

    let elastic =
        Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(queries.clone(), &plan);
    assert_eq!(
        elastic.metrics.completed,
        n as u64,
        "elastic run must complete everything: {}",
        elastic.metrics.summary()
    );
    assert!(
        elastic.metrics.grant_revisions >= 1,
        "the retirement must be absorbed by shrinking a grant"
    );
    assert!(
        elastic.metrics.grant_reclaimed > Bytes(0),
        "reclaimed cache must cover the overcommitment"
    );
    assert_eq!(
        elastic.metrics.revocations, 0,
        "shrink-in-place must pre-empt revocation"
    );
    assert_exact(&queries, &elastic.outcomes);

    let fixed = Scheduler::new(hw(), SchedulerConfig::fixed_grants())
        .run_with_faults(queries.clone(), &plan);
    assert_eq!(
        fixed.metrics.grant_revisions, 0,
        "fixed grants never revise"
    );
    assert!(
        fixed.metrics.revocations >= 1 || fixed.metrics.rejected >= 1,
        "without elasticity the same plan must revoke or shed: {}",
        fixed.metrics.summary()
    );
    assert_exact(&queries, &fixed.outcomes);
}

/// With resilience disabled, the same retirement sheds with a typed,
/// displayable [`RejectReason::Faulted`].
#[test]
fn no_resilience_sheds_revoked_queries_typed() {
    let n = 3;
    let queries = tenants(n, 32);
    let horizon = clean_makespan(SchedulerConfig::default(), queries.clone());
    let cap = hw().gpu.mem_capacity;
    let plan = FaultPlan::with_seed(5).retire_gpu_mem(Ns(horizon.0 * 0.3), Bytes(cap.0 * 9 / 10));
    let res =
        Scheduler::new(hw(), SchedulerConfig::no_resilience()).run_with_faults(queries, &plan);
    assert!(res.metrics.shed_faulted >= 1);
    let reason = res
        .outcomes
        .iter()
        .find_map(Outcome::rejection)
        .expect("a shed query must carry its reason");
    assert!(
        matches!(reason, RejectReason::Faulted { .. }),
        "expected Faulted, got {reason:?}"
    );
    assert!(reason.to_string().contains("lost to"), "{reason}");
}

/// Deadlines still bound recovery: a query whose backoff would overrun
/// its budget is shed with DeadlineExceeded, not retried forever.
#[test]
fn deadlines_bound_retry_backoff() {
    let n = 2;
    let mut queries = tenants(n, 32);
    let horizon = clean_makespan(SchedulerConfig::default(), queries.clone());
    for q in &mut queries {
        q.deadline = Some(Ns(horizon.0 * 1.05)); // tight but feasible clean
    }
    // Hammer the run with repeated kernel faults so retries pile up.
    let mut plan = FaultPlan::with_seed(9);
    for i in 1..=6 {
        plan = plan.kernel_fault(Ns(horizon.0 * 0.15 * i as f64));
    }
    let res =
        Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(queries.clone(), &plan);
    assert_eq!(
        res.metrics.completed + res.metrics.rejected,
        n as u64,
        "no query may hang in retry limbo"
    );
    for o in &res.outcomes {
        if let Some(r) = o.rejection() {
            assert!(
                matches!(r, RejectReason::DeadlineExceeded { .. }),
                "faulted deadline queries shed via the deadline path, got {r:?}"
            );
        }
    }
    assert_exact(&queries, &res.outcomes);
}
