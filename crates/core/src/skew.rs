//! Skew-aware planning for the Triton join.
//!
//! The paper evaluates skewed workloads (Section 6.2.6, Fig 16) but its
//! executor treats every partition pair the same: the cache budget is
//! interleaved uniformly through the working set and pairs are processed
//! in index order. Under Zipf-distributed keys a few *hot* pairs dominate
//! both the transfer and the join time, so uniform treatment wastes GPU
//! cache on cold pairs and exposes the hot pairs' transfers on the
//! pipeline's critical path.
//!
//! This module supplies the three planning mechanisms the skew-aware
//! executor composes:
//!
//! 1. **Hotness-weighted cache placement** — estimate, per pair, how much
//!    pipeline time GPU residency would save, then greedily pin whole
//!    pairs (a value-density knapsack over the cache budget) via an
//!    explicit [`triton_mem::PlacementPlan`] instead of the uniform
//!    interleave.
//! 2. **LPT pipeline scheduling** — order pairs longest-processing-time
//!    first from the same estimates, so heavy transfers hide behind heavy
//!    joins ([`triton_hw::kernel::pipeline2_scheduled`]).
//! 3. **Heavy-hitter splitting** — give pairs whose build side exceeds a
//!    multiple of the mean extra second-pass radix bits (still bounded by
//!    the scratchpad cap).
//!
//! All estimates run through the *same* roofline model as the executed
//! kernels ([`triton_hw::kernel::KernelCost::timing`]), so the planner
//! and the simulator can never disagree about what is link-bound.

use triton_hw::kernel::{KernelCost, TimingCache};
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;
use triton_mem::PlacementPlan;

/// Which skew mechanisms are active under [`SkewPolicy::Aware`]. Each can
/// be toggled independently so tests and ablations isolate one mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewMechanisms {
    /// Hotness-weighted cache placement (whole-pair knapsack).
    pub hot_cache: bool,
    /// Longest-processing-time-first pipeline scheduling.
    pub lpt: bool,
    /// Extra second-pass bits for heavy build partitions.
    pub split_heavy: bool,
    /// A build partition is *heavy* when it exceeds this multiple of the
    /// mean build-partition size (integer, so the policy stays `Eq` and
    /// deterministic).
    pub heavy_multiple: u32,
}

impl Default for SkewMechanisms {
    fn default() -> Self {
        SkewMechanisms {
            hot_cache: true,
            lpt: true,
            split_heavy: true,
            heavy_multiple: 4,
        }
    }
}

/// Skew handling policy of the Triton join.
///
/// `Off` preserves the pre-skew-aware executor bit for bit: uniform
/// interleaved caching, index-order pipeline, size-derived second-pass
/// bits. `Aware` enables the mechanisms selected in [`SkewMechanisms`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SkewPolicy {
    /// Uniform placement and index-order scheduling (the default).
    #[default]
    Off,
    /// Skew-aware planning with the given mechanisms.
    Aware(SkewMechanisms),
}

impl SkewPolicy {
    /// The fully-enabled skew-aware policy.
    pub fn aware() -> Self {
        SkewPolicy::Aware(SkewMechanisms::default())
    }

    /// Whether any skew mechanism is active.
    pub fn is_aware(&self) -> bool {
        matches!(self, SkewPolicy::Aware(_))
    }

    /// The active mechanisms, if any.
    pub fn mechanisms(&self) -> Option<&SkewMechanisms> {
        match self {
            SkewPolicy::Off => None,
            SkewPolicy::Aware(m) => Some(m),
        }
    }

    /// Extra second-pass radix bits for a build partition of
    /// `build_tuples` against a mean of `mean_tuples`: zero unless the
    /// partition is heavy, then one bit per doubling past the threshold.
    /// The caller still clamps the sum at its scratchpad bound.
    pub fn heavy_extra_bits(&self, build_tuples: u64, mean_tuples: u64) -> u32 {
        let Some(m) = self.mechanisms() else { return 0 };
        if !m.split_heavy || mean_tuples == 0 {
            return 0;
        }
        let threshold = mean_tuples.saturating_mul(u64::from(m.heavy_multiple.max(1)));
        if build_tuples <= threshold || threshold == 0 {
            return 0;
        }
        1 + (build_tuples / threshold).ilog2()
    }
}

/// Pipeline cost estimate for one (non-empty) partition pair, derived
/// from the pass-1 histogram counts *before* the second-pass loop runs.
#[derive(Debug, Clone)]
pub struct PairEstimate {
    /// Partition index in the pass-1 fanout.
    pub part: usize,
    /// Combined pair payload (R + S) in bytes.
    pub bytes: u64,
    /// Estimated stage-A (PS 2 + Part 2) time if the pair is spilled to
    /// CPU memory and must stream over the interconnect.
    pub a_spilled: Ns,
    /// Estimated stage-A time if the pair is GPU-resident.
    pub a_resident: Ns,
    /// Estimated stage-B (join) time.
    pub b: Ns,
}

impl PairEstimate {
    /// Pipeline time residency is worth for this pair: the pair's
    /// steady-state contribution is `max(a, b)` under the two-lane
    /// barrier pipeline, so the value of pinning it is the drop in that
    /// max. Zero (never negative) when the join dominates either way.
    pub fn residency_value(&self) -> Ns {
        let spilled = self.a_spilled.max(self.b);
        let resident = self.a_resident.max(self.b);
        (spilled - resident).max(Ns(0.0))
    }

    /// Estimated total pair time under current placement assumptions
    /// (`resident` selects which stage-A estimate applies).
    pub fn stage_a(&self, resident: bool) -> Ns {
        if resident {
            self.a_resident
        } else {
            self.a_spilled
        }
    }
}

/// Instruction costs mirroring the join kernel's model (see
/// `triton.rs`); the estimator must price stage B with the same
/// constants the executed kernel uses.
const EST_BUILD_INSTR: u64 = 14;
const EST_PROBE_INSTR: u64 = 12;
/// Second-pass partitioning instructions per tuple (histogram + scatter).
const EST_PART_INSTR: u64 = 8;
/// Prefix-sum instructions per tuple.
const EST_PS_INSTR: u64 = 4;
const TUPLE_BYTES: u64 = triton_datagen::TUPLE_BYTES;
const KEY_BYTES: u64 = 8;

/// Estimate one pair's stage times through the real roofline model.
///
/// The spilled stage A mirrors the executed path: PS 2 streams the key
/// columns over the link twice (histogram + copy-in) and stages both
/// columns in GPU memory; Part 2 then reads and scatters the staged pair
/// within GPU memory. The resident variant reads the keys once from GPU
/// memory and skips the copy. Stage B prices the join's build/probe
/// instruction stream and its GPU-memory reads.
pub fn estimate_pair(
    part: usize,
    build_tuples: u64,
    probe_tuples: u64,
    half_sms: u32,
    hw: &HwConfig,
) -> PairEstimate {
    let mut memo = TimingCache::new();
    estimate_pair_cached(part, build_tuples, probe_tuples, half_sms, hw, &mut memo)
}

/// [`estimate_pair`] with a caller-held roofline memo.
///
/// Skew planning prices every radix partition, and uniform workloads
/// repeat the same `(build, probe)` totals across most partitions; the
/// [`TimingCache`] collapses those to three roofline evaluations per
/// distinct shape. Semantically transparent: the memo keys on the
/// bit-exact cost fields, so the returned estimate is identical to the
/// uncached path.
pub fn estimate_pair_cached(
    part: usize,
    build_tuples: u64,
    probe_tuples: u64,
    half_sms: u32,
    hw: &HwConfig,
    memo: &mut TimingCache,
) -> PairEstimate {
    let n = build_tuples + probe_tuples;
    let bytes = n * TUPLE_BYTES;

    let mut a_sp = KernelCost::new("est a spilled");
    a_sp.sms = half_sms;
    a_sp.link.seq_read = Bytes(2 * n * KEY_BYTES);
    a_sp.gpu_mem.write = Bytes(n * TUPLE_BYTES);
    // Part 2 reads the staged pair and scatters it through SWWC buffers —
    // full-buffer flushes are coalesced, transaction-aligned writes, so
    // the scatter prices as sequential GPU-memory bandwidth.
    a_sp.gpu_mem.read = Bytes(n * TUPLE_BYTES);
    a_sp.gpu_mem.write += Bytes(n * TUPLE_BYTES);
    a_sp.instructions = n * (EST_PS_INSTR + EST_PART_INSTR);

    let mut a_res = KernelCost::new("est a resident");
    a_res.sms = half_sms;
    a_res.gpu_mem.read = Bytes(n * KEY_BYTES + n * TUPLE_BYTES);
    a_res.gpu_mem.write = Bytes(n * TUPLE_BYTES);
    a_res.instructions = n * (EST_PS_INSTR + EST_PART_INSTR);

    let mut b = KernelCost::new("est b");
    b.sms = half_sms;
    b.gpu_mem.read = Bytes(n * TUPLE_BYTES);
    b.instructions = build_tuples * EST_BUILD_INSTR + probe_tuples * EST_PROBE_INSTR;

    PairEstimate {
        part,
        bytes,
        a_spilled: memo.timing(&a_sp, hw).total,
        a_resident: memo.timing(&a_res, hw).total,
        b: memo.timing(&b, hw).total,
    }
}

/// One pair's geometry handed to the cache planner: where its R and S
/// slices live (as half-open *page* ranges within each hybrid array).
#[derive(Debug, Clone)]
pub struct PairExtent {
    /// R-array page range of the pair.
    pub r_pages: (u64, u64),
    /// S-array page range of the pair.
    pub s_pages: (u64, u64),
}

/// Output of the hotness-weighted cache planner.
#[derive(Debug, Clone, Default)]
pub struct CachePlan {
    /// GPU-resident page ranges of the R array.
    pub r_plan: PlacementPlan,
    /// GPU-resident page ranges of the S array.
    pub s_plan: PlacementPlan,
    /// Per input pair: whether the *whole* pair was pinned GPU-resident.
    pub cached: Vec<bool>,
}

/// Greedy value-density knapsack over the cache budget: pairs are ranked
/// by estimated pipeline savings per resident page and pinned whole while
/// they fit; any leftover budget caches a leading fraction of the best
/// remaining pair (so no granted page goes unused). Deterministic: ties
/// break on partition index.
pub fn plan_cache(
    estimates: &[PairEstimate],
    extents: &[PairExtent],
    budget_pages: u64,
) -> CachePlan {
    assert_eq!(estimates.len(), extents.len());
    let pages_of = |i: usize| {
        let (rs, re) = extents[i].r_pages;
        let (ss, se) = extents[i].s_pages;
        (re - rs) + (se - ss)
    };
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    order.sort_by(|&x, &y| {
        let dx = estimates[x].residency_value().0 / pages_of(x).max(1) as f64;
        let dy = estimates[y].residency_value().0 / pages_of(y).max(1) as f64;
        dy.total_cmp(&dx)
            .then(estimates[x].part.cmp(&estimates[y].part))
    });

    let mut r_ranges: Vec<(u64, u64)> = Vec::new();
    let mut s_ranges: Vec<(u64, u64)> = Vec::new();
    let mut cached = vec![false; estimates.len()];
    let mut left = budget_pages;
    let mut leftovers: Vec<usize> = Vec::new();
    for &i in &order {
        if estimates[i].residency_value().0 <= 0.0 {
            continue;
        }
        let need = pages_of(i);
        if need == 0 {
            continue;
        }
        if need <= left {
            r_ranges.push(extents[i].r_pages);
            s_ranges.push(extents[i].s_pages);
            cached[i] = true;
            left -= need;
        } else {
            leftovers.push(i);
        }
    }
    // Fractional tail: spend what remains on a prefix of the best pair
    // that did not fit whole (classic greedy-knapsack relaxation).
    if left > 0 {
        if let Some(&i) = leftovers.first() {
            let (rs, re) = extents[i].r_pages;
            let take_r = (re - rs).min(left);
            r_ranges.push((rs, rs + take_r));
            left -= take_r;
            let (ss, se) = extents[i].s_pages;
            let take_s = (se - ss).min(left);
            s_ranges.push((ss, ss + take_s));
        }
    }
    CachePlan {
        r_plan: PlacementPlan::new(r_ranges),
        s_plan: PlacementPlan::new(s_ranges),
        cached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HwConfig {
        HwConfig::ac922().scaled(512)
    }

    #[test]
    fn policy_defaults_to_off() {
        assert_eq!(SkewPolicy::default(), SkewPolicy::Off);
        assert!(!SkewPolicy::Off.is_aware());
        assert!(SkewPolicy::aware().is_aware());
        assert!(SkewPolicy::Off.mechanisms().is_none());
    }

    #[test]
    fn heavy_extra_bits_scale_with_excess() {
        let p = SkewPolicy::aware();
        // Mean 100, multiple 4: threshold 400.
        assert_eq!(p.heavy_extra_bits(100, 100), 0);
        assert_eq!(p.heavy_extra_bits(400, 100), 0);
        assert_eq!(p.heavy_extra_bits(401, 100), 1);
        assert_eq!(p.heavy_extra_bits(800, 100), 2);
        assert_eq!(p.heavy_extra_bits(3200, 100), 4);
        assert_eq!(p.heavy_extra_bits(1_000_000, 0), 0);
        assert_eq!(SkewPolicy::Off.heavy_extra_bits(1_000_000, 1), 0);
        let no_split = SkewPolicy::Aware(SkewMechanisms {
            split_heavy: false,
            ..SkewMechanisms::default()
        });
        assert_eq!(no_split.heavy_extra_bits(1_000_000, 1), 0);
    }

    #[test]
    fn spilled_estimate_dominates_resident() {
        let e = estimate_pair(0, 1 << 16, 1 << 20, 40, &hw());
        assert!(e.a_spilled > e.a_resident, "{e:?}");
        assert!(e.b.0 > 0.0);
        assert_eq!(e.bytes, ((1u64 << 16) + (1 << 20)) * 16);
        assert!(e.residency_value().0 >= 0.0);
        assert_eq!(e.stage_a(true), e.a_resident);
        assert_eq!(e.stage_a(false), e.a_spilled);
    }

    #[test]
    fn planner_prefers_high_value_pairs() {
        let h = hw();
        // Pair 0 is hot (link-heavy), pair 1 is cold and tiny.
        let estimates = vec![
            estimate_pair(0, 1 << 14, 1 << 18, 40, &h),
            estimate_pair(1, 1 << 8, 1 << 10, 40, &h),
        ];
        let extents = vec![
            PairExtent {
                r_pages: (0, 8),
                s_pages: (0, 128),
            },
            PairExtent {
                r_pages: (8, 9),
                s_pages: (128, 130),
            },
        ];
        // Budget fits only the hot pair.
        let plan = plan_cache(&estimates, &extents, 136);
        assert!(plan.cached[0], "hot pair must be pinned");
        assert_eq!(
            plan.r_plan.gpu_pages_total() + plan.s_plan.gpu_pages_total(),
            136
        );
    }

    #[test]
    fn planner_never_exceeds_budget() {
        let h = hw();
        let estimates: Vec<PairEstimate> = (0..8)
            .map(|i| estimate_pair(i, 1 << 12, 1 << 14, 40, &h))
            .collect();
        let extents: Vec<PairExtent> = (0..8u64)
            .map(|i| PairExtent {
                r_pages: (i * 4, i * 4 + 4),
                s_pages: (i * 16, i * 16 + 16),
            })
            .collect();
        for budget in [0u64, 5, 19, 20, 40, 57, 160, 1000] {
            let plan = plan_cache(&estimates, &extents, budget);
            let used = plan.r_plan.gpu_pages_total() + plan.s_plan.gpu_pages_total();
            assert!(used <= budget, "budget {budget}: used {used}");
            // Whole-pair flags only for fully resident pairs.
            for (i, &c) in plan.cached.iter().enumerate() {
                if c {
                    let (rs, re) = extents[i].r_pages;
                    let (ss, se) = extents[i].s_pages;
                    assert_eq!(
                        plan.r_plan.gpu_pages_among(re) - plan.r_plan.gpu_pages_among(rs),
                        re - rs
                    );
                    assert_eq!(
                        plan.s_plan.gpu_pages_among(se) - plan.s_plan.gpu_pages_among(ss),
                        se - ss
                    );
                }
            }
        }
    }

    #[test]
    fn leftover_budget_fills_a_partial_pair() {
        let h = hw();
        let estimates = vec![estimate_pair(0, 1 << 14, 1 << 18, 40, &h)];
        let extents = vec![PairExtent {
            r_pages: (0, 10),
            s_pages: (10, 100),
        }];
        // Pair needs 100 pages; only 30 available → partial prefix.
        let plan = plan_cache(&estimates, &extents, 30);
        assert!(!plan.cached[0]);
        assert_eq!(
            plan.r_plan.gpu_pages_total() + plan.s_plan.gpu_pages_total(),
            30
        );
    }
}
