//! Hand-rolled JSON emission (in-tree replacement for `serde_json`,
//! which the offline build cannot fetch).
//!
//! Experiment binaries emit machine-readable rows as JSON objects — one
//! per line (JSON Lines) — alongside their human-readable tables. The
//! writer covers exactly what the harness needs: objects with string,
//! number, and boolean fields, plus correct string escaping.

use std::fmt::Write as _;

/// An in-progress JSON object.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    buf: String,
}

/// Escape a string per RFC 8259.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        escape_into(&mut self.buf, k);
        self.buf.push(':');
        &mut self.buf
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let mut buf = std::mem::take(&mut self.buf);
        escape_into(&mut buf, v);
        self.buf = buf;
        self
    }

    /// Add an integer field.
    pub fn int(mut self, k: &str, v: u64) -> Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a float field. Non-finite values serialize as `null` (JSON has
    /// no NaN/Inf).
    pub fn num(mut self, k: &str, v: f64) -> Self {
        let buf = self.key(k);
        if v.is_finite() {
            let _ = write!(buf, "{v}");
        } else {
            buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Render as a single-line JSON object.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fields_in_order() {
        let j = JsonObject::new()
            .str("op", "triton")
            .int("queries", 4)
            .num("tput_gtps", 1.5)
            .bool("shed", false)
            .render();
        assert_eq!(
            j,
            r#"{"op":"triton","queries":4,"tput_gtps":1.5,"shed":false}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = JsonObject::new().str("k", "a\"b\\c\nd").render();
        assert_eq!(j, r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn non_finite_is_null() {
        let j = JsonObject::new().num("x", f64::NAN).render();
        assert_eq!(j, r#"{"x":null}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().render(), "{}");
    }
}
