//! Fig 22: scaling the number of payload attributes (tuple width) with
//! early vs late materialization.
//!
//! Expected shape (Section 6.2.10): the join index (no payload) matches
//! the default setup (~1.5-2 G tuples/s); late materialization degrades
//! towards ~86-88 M tuples/s at 16 payload attributes, because every
//! attribute costs one random out-of-core access per result tuple.

use triton_core::{run_with_materialization, Materialization};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload in modeled M tuples.
    pub m_tuples: u64,
    /// Payload attributes.
    pub payloads: usize,
    /// Strategy label.
    pub strategy: &'static str,
    /// Throughput in G tuples/s.
    pub gtps: f64,
}

/// The payload-width axis.
pub const WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

/// Run for one workload family.
pub fn run(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw.scale;
    let mut spec = WorkloadSpec::paper_default(m_tuples, k);
    spec.payload_cols = 2; // functional columns; cost scales per strategy
    let w = spec.generate();
    let mut rows = vec![Row {
        m_tuples,
        payloads: 0,
        strategy: "join index",
        gtps: run_with_materialization(&w, Materialization::JoinIndex, hw).throughput_gtps(),
    }];
    for &p in &WIDTHS {
        rows.push(Row {
            m_tuples,
            payloads: p,
            strategy: "early",
            gtps: run_with_materialization(&w, Materialization::Early { payloads: p }, hw)
                .throughput_gtps(),
        });
        rows.push(Row {
            m_tuples,
            payloads: p,
            strategy: "late",
            gtps: run_with_materialization(&w, Materialization::Late { payloads: p }, hw)
                .throughput_gtps(),
        });
    }
    rows
}

/// Print the figure.
pub fn print(hw: &HwConfig, m_tuples: u64) {
    crate::banner(
        "Fig 22",
        "tuple width: payload attributes and materialization",
    );
    let mut t = crate::Table::new(["M tuples", "payloads", "strategy", "G tuples/s"]);
    for r in run(hw, m_tuples) {
        t.row([
            r.m_tuples.to_string(),
            r.payloads.to_string(),
            r.strategy.to_string(),
            crate::f3(r.gtps),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_materialization_collapses() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, 512);
        let idx = rows.iter().find(|r| r.strategy == "join index").unwrap();
        let late16 = rows
            .iter()
            .find(|r| r.strategy == "late" && r.payloads == 16)
            .unwrap();
        // Paper: ~2 G tuples/s for the index vs 86-88 M tuples/s at 16
        // late payloads — a >10x collapse.
        assert!(
            late16.gtps < idx.gtps / 8.0,
            "index {} vs late16 {}",
            idx.gtps,
            late16.gtps
        );
        assert!(late16.gtps < 0.4, "late16 absolute {}", late16.gtps);
    }

    #[test]
    fn late_monotonically_degrades() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, 512);
        let late: Vec<f64> = rows
            .iter()
            .filter(|r| r.strategy == "late")
            .map(|r| r.gtps)
            .collect();
        for w in late.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "late must not improve with width");
        }
    }

    #[test]
    fn early_degrades_more_gently() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, 512);
        let early16 = rows
            .iter()
            .find(|r| r.strategy == "early" && r.payloads == 16)
            .unwrap();
        let late16 = rows
            .iter()
            .find(|r| r.strategy == "late" && r.payloads == 16)
            .unwrap();
        assert!(
            early16.gtps > late16.gtps * 2.0,
            "{early16:?} vs {late16:?}"
        );
    }
}
