// Fixture: wall-clock and ambient entropy outside crates/bench.
use std::time::{Instant, SystemTime};

pub fn now_ms() -> u128 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    let _state = std::collections::hash_map::RandomState::new();
    t0.elapsed().as_millis()
}
