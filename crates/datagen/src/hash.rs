//! Hash functions used by the joins.
//!
//! Section 6.1: both hashing schemes use a multiply-shift hash function
//! (Dietzfelbinger et al.), which the radix joins combine with radix-bit
//! extraction — pass 1 partitions on the *lower* B1 bits of the hashed
//! key, pass 2 on the next-higher B2 bits.

/// The multiplicative constant of the multiply-shift family (a large odd
/// 64-bit constant; the golden-ratio multiplier).
pub const MS_MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

/// Multiply-shift hash of a 64-bit key: full 64-bit avalanche of the upper
/// product bits. Deterministic across runs.
#[inline]
pub fn multiply_shift(key: u64) -> u64 {
    key.wrapping_mul(MS_MULTIPLIER)
}

/// Extract `bits` radix bits from `hash`, skipping the lowest `skip` bits.
/// `radix(h, 0, b)` is the pass-1 partition id; `radix(h, b1, b2)` the
/// pass-2 sub-partition id.
#[inline]
pub fn radix(hash: u64, skip: u32, bits: u32) -> usize {
    debug_assert!(skip + bits <= 64);
    if bits == 0 {
        return 0;
    }
    ((hash >> skip) & ((1u64 << bits) - 1)) as usize
}

/// Hash a key into a table of `1 << bits` slots (for the no-partitioning
/// linear-probing table): multiply-shift, taking the *top* bits of the
/// product as recommended for multiplicative hashing.
#[inline]
pub fn table_slot(key: u64, bits: u32) -> usize {
    debug_assert!((1..=63).contains(&bits));
    (multiply_shift(key) >> (64 - bits)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(multiply_shift(42), multiply_shift(42));
        assert_ne!(multiply_shift(42), multiply_shift(43));
    }

    #[test]
    fn radix_extracts_disjoint_bits() {
        let h = 0b1111_0000_1010u64;
        assert_eq!(radix(h, 0, 4), 0b1010);
        assert_eq!(radix(h, 4, 4), 0b0000);
        assert_eq!(radix(h, 8, 4), 0b1111);
        assert_eq!(radix(h, 0, 0), 0);
    }

    #[test]
    fn radix_within_fanout() {
        for key in 0u64..10_000 {
            let h = multiply_shift(key);
            assert!(radix(h, 0, 9) < 512);
            assert!(radix(h, 9, 6) < 64);
        }
    }

    #[test]
    fn table_slot_in_range_and_spread() {
        let bits = 10;
        let mut histogram = vec![0u32; 1 << bits];
        for key in 1u64..=(1 << 14) {
            let s = table_slot(key, bits);
            histogram[s] += 1;
        }
        // Every slot within range; occupancy roughly uniform: expected 16
        // per slot, no slot should exceed 4x that for multiply-shift over
        // a dense key range.
        let max = *histogram.iter().max().unwrap();
        assert!(max < 64, "max bucket {max}");
        let empties = histogram.iter().filter(|&&c| c == 0).count();
        assert!(empties < 32, "{empties} empty buckets");
    }

    #[test]
    fn pass1_pass2_consistency() {
        // Pass 2 refines pass 1: tuples in the same (p1, p2) pair share
        // the lower b1+b2 hash bits.
        let (b1, b2) = (5u32, 4u32);
        for key in 0u64..5_000 {
            let h = multiply_shift(key);
            let combined = radix(h, 0, b1 + b2);
            let p1 = radix(h, 0, b1);
            let p2 = radix(h, b1, b2);
            assert_eq!(combined, p1 | (p2 << b1));
        }
    }
}
