// Fixture: D1 must flag hash collections in non-test code, including
// code behind `#[cfg(not(test))]` (which is NOT a test region).
use std::collections::HashMap;

pub fn counts(xs: &[u64]) -> usize {
    let mut m: HashMap<u64, u64> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.len()
}

#[cfg(not(test))]
pub fn not_test_is_still_product_code() -> std::collections::HashSet<u64> {
    std::collections::HashSet::new()
}
