//! Throughput-path tests: epoch-batched admission and the cost/plan
//! memos ([`triton_exec::CostCache`], `triton_plan::FootprintCache`)
//! must be *semantically transparent* — outcomes, trace, SLO accounts,
//! and every metric except the cache counters themselves are
//! byte-identical with the memos on or off, on clean, chaos, and
//! grant-revision timelines — and epoch batching
//! ([`SchedulerConfig::throughput`]) may move decision points but never
//! answers: every query still reaches a terminal outcome with exact
//! join results at any batch size.

use triton_core::reference_join;
use triton_datagen::WorkloadSpec;
use triton_exec::{
    to_chrome_json, FaultPlan, JoinQuery, MetricsRegistry, Outcome, Scheduler, SchedulerConfig,
    SchedulerMetrics,
};
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;

const K: u64 = 512;

fn hw() -> HwConfig {
    HwConfig::ac922().scaled(K)
}

/// A staggered tenant mix exercising every reuse path: full builds of a
/// shared family, probe batches over the resident build (exact hits),
/// sub-range slices riding the covering build (prefix hits), and
/// independent tenants.
fn mixed_tenants(n: usize, gap: f64) -> Vec<JoinQuery> {
    let base = {
        let mut spec = WorkloadSpec::paper_default(16, K);
        spec.seed = 0xFEED;
        spec.generate()
    };
    (0..n)
        .map(|i| {
            let arrival = Ns(i as f64 * gap);
            let name = format!("tenant-{i}");
            match i % 4 {
                // The family's full build (repeats replay the pricing).
                0 => {
                    let mut q = JoinQuery::new(name, base.clone(), arrival);
                    q.build_key = Some(0xF00D);
                    q
                }
                // Probe batches over the resident full build.
                1 => {
                    let w = JoinQuery::probe_batch(&base, i as u64);
                    let mut q = JoinQuery::new(name, w, arrival);
                    q.build_key = Some(0xF00D);
                    q
                }
                // A sub-range slice of the family: prefix reuse.
                2 => {
                    let w = JoinQuery::probe_slice(&base, (0, 128), i as u64);
                    let mut q = JoinQuery::new(name, w, arrival);
                    q.build_key = Some(0xF00D);
                    q.build_range = Some((0, 128));
                    q
                }
                // Independent tenant, no sharing.
                _ => {
                    let mut spec = WorkloadSpec::paper_default(16, K);
                    spec.seed ^= (i as u64) << 32;
                    JoinQuery::new(name, spec.generate(), arrival)
                }
            }
        })
        .collect()
}

/// Every completed query's result must equal the reference join of its
/// workload — caching and batching may move timing, never answers.
fn assert_exact(queries: &[JoinQuery], outcomes: &[Outcome]) {
    for (q, o) in queries.iter().zip(outcomes) {
        if let Some(c) = o.completed() {
            let exp = reference_join(&q.workload);
            assert_eq!(
                c.report.result, exp,
                "{} produced a wrong result (operator {})",
                c.name, c.operator
            );
        }
    }
}

fn uncached(mut config: SchedulerConfig) -> SchedulerConfig {
    config.cost_caching = false;
    config
}

/// Telemetry text with the `sched.cost_cache.*` series removed — the
/// only registry lines the transparency contract allows to differ.
fn filtered_text(reg: &MetricsRegistry) -> String {
    reg.expose_text()
        .lines()
        .filter(|l| !l.contains("sched.cost_cache."))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Metrics with the cache-effectiveness counters zeroed — the only
/// metric fields the transparency contract allows to differ.
fn normalized(m: &SchedulerMetrics) -> SchedulerMetrics {
    let mut m = m.clone();
    m.cost_cache_hits = 0;
    m.cost_cache_misses = 0;
    m
}

/// Caches on vs. off on the same timeline: byte-identical outcomes,
/// trace, SLO accounts, filtered telemetry, and normalized metrics.
fn assert_transparent(queries: &[JoinQuery], plan: &FaultPlan, label: &str) {
    let on =
        Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(queries.to_vec(), plan);
    let off = Scheduler::new(hw(), uncached(SchedulerConfig::default()))
        .run_with_faults(queries.to_vec(), plan);
    assert_eq!(
        format!("{:?}", on.outcomes),
        format!("{:?}", off.outcomes),
        "{label}: outcomes diverged"
    );
    assert_eq!(
        normalized(&on.metrics),
        normalized(&off.metrics),
        "{label}: metrics diverged beyond the cache counters"
    );
    assert_eq!(
        to_chrome_json(&on.trace),
        to_chrome_json(&off.trace),
        "{label}: the memos may not emit trace events"
    );
    assert_eq!(
        filtered_text(&on.telemetry),
        filtered_text(&off.telemetry),
        "{label}: telemetry diverged beyond sched.cost_cache.*"
    );
    assert_eq!(on.slo, off.slo, "{label}: SLO accounts diverged");
    assert!(
        on.metrics.cost_cache_hits + on.metrics.cost_cache_misses > 0,
        "{label}: the enabled memo must observe pricings"
    );
    assert_eq!(
        off.metrics.cost_cache_hits + off.metrics.cost_cache_misses,
        0,
        "{label}: the disabled memo must be inert"
    );
    assert_exact(queries, &on.outcomes);
}

#[test]
fn cost_caching_is_transparent_on_a_clean_run() {
    assert_transparent(&mixed_tenants(12, 40_000.0), &FaultPlan::none(), "clean");
}

#[test]
fn cost_caching_is_transparent_under_chaos() {
    let queries = mixed_tenants(10, 40_000.0);
    let horizon = Scheduler::new(hw(), SchedulerConfig::default())
        .run(queries.clone())
        .metrics
        .makespan;
    for seed in [1, 2] {
        let plan = FaultPlan::chaos(seed, Ns(horizon.0 * 1.5), &hw());
        assert_transparent(&queries, &plan, &format!("chaos seed {seed}"));
    }
}

#[test]
fn cost_caching_is_transparent_across_grant_revisions() {
    let queries = mixed_tenants(9, 0.0);
    let horizon = Scheduler::new(hw(), SchedulerConfig::default())
        .run(queries.clone())
        .metrics
        .makespan;
    let cap = hw().gpu.mem_capacity;
    // A moderate retirement absorbed by shrink-in-place: the re-pricing
    // under revised grants goes through the memo too.
    let plan = FaultPlan::with_seed(11).retire_gpu_mem(Ns(horizon.0 * 0.3), Bytes(cap.0 * 6 / 10));
    let probe =
        Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(queries.clone(), &plan);
    assert!(
        probe.metrics.grant_revisions >= 1,
        "the plan must actually revise grants: {}",
        probe.metrics.summary()
    );
    assert_transparent(&queries, &plan, "grant revisions");
}

/// `throughput()` differs from the default config only in the epoch
/// batch size; with the batch forced back to 1 the whole run — metrics,
/// trace, telemetry, SLO accounts, outcomes — is byte-identical to the
/// default event-per-arrival loop, clean and under chaos.
#[test]
fn batch_of_one_reproduces_the_default_loop_byte_for_byte() {
    let queries = mixed_tenants(10, 40_000.0);
    let horizon = Scheduler::new(hw(), SchedulerConfig::default())
        .run(queries.clone())
        .metrics
        .makespan;
    let chaos = FaultPlan::chaos(3, Ns(horizon.0 * 1.5), &hw());
    for (plan, label) in [(FaultPlan::none(), "clean"), (chaos, "chaos")] {
        let a = Scheduler::new(hw(), SchedulerConfig::default())
            .run_with_faults(queries.clone(), &plan);
        let mut cfg = SchedulerConfig::throughput();
        cfg.arrival_batch = 1;
        let b = Scheduler::new(hw(), cfg).run_with_faults(queries.clone(), &plan);
        assert_eq!(a.metrics, b.metrics, "{label}: metrics diverged");
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(
            to_chrome_json(&a.trace),
            to_chrome_json(&b.trace),
            "{label}: trace diverged"
        );
        assert_eq!(
            a.telemetry.expose_text(),
            b.telemetry.expose_text(),
            "{label}: telemetry diverged"
        );
        assert_eq!(a.slo, b.slo, "{label}: SLO accounts diverged");
        assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
    }
}

/// Epoch-batched serving at arrival density: every query reaches a
/// terminal outcome, every SLO account settles (completed + shed covers
/// every submission), answers stay exact, and replays are
/// byte-identical.
#[test]
fn epoch_batched_runs_settle_every_query_exactly() {
    let n = 12;
    let queries = mixed_tenants(n, 20_000.0);
    let run = || Scheduler::new(hw(), SchedulerConfig::throughput()).run(queries.clone());
    let res = run();
    assert_eq!(res.outcomes.len(), n);
    assert_eq!(
        res.metrics.completed + res.metrics.rejected,
        n as u64,
        "every query needs a terminal outcome: {}",
        res.metrics.summary()
    );
    let settled: u64 = res.slo.iter().map(|a| a.completed + a.shed).sum();
    assert_eq!(settled, n as u64, "every SLO account must settle");
    assert_exact(&queries, &res.outcomes);
    let again = run();
    assert_eq!(res.metrics, again.metrics, "batched replays diverged");
    assert_eq!(res.telemetry.expose_text(), again.telemetry.expose_text());
}

/// The epoch batch size is a pure scheduling knob: at any batch size
/// every deadline-free query completes with the exact reference result.
#[test]
fn answers_are_identical_across_batch_sizes() {
    let n = 10;
    let queries = mixed_tenants(n, 25_000.0);
    for batch in [1usize, 2, 4, 8, 64] {
        let cfg = SchedulerConfig {
            arrival_batch: batch,
            ..SchedulerConfig::default()
        };
        let res = Scheduler::new(hw(), cfg).run(queries.clone());
        assert_eq!(
            res.metrics.completed,
            n as u64,
            "batch {batch}: deadline-free queries must all complete: {}",
            res.metrics.summary()
        );
        assert_exact(&queries, &res.outcomes);
    }
}

/// Sub-range tenants ride the family's resident full build: prefix hits
/// show up in the metrics and the telemetry registry, and the slices'
/// answers stay exact.
#[test]
fn slices_ride_the_resident_family_build() {
    let n = 12;
    let queries = mixed_tenants(n, 40_000.0);
    let res = Scheduler::new(hw(), SchedulerConfig::default()).run(queries.clone());
    assert_eq!(res.metrics.completed, n as u64, "{}", res.metrics.summary());
    assert!(
        res.metrics.build_cache_prefix_hits >= 1,
        "slice tenants must reuse the covering build: {}",
        res.metrics.summary()
    );
    assert!(
        res.metrics.build_cache_hits > res.metrics.build_cache_prefix_hits,
        "exact probe-batch hits must still occur alongside prefix hits"
    );
    let text = res.telemetry.expose_text();
    assert!(text.contains("sched.build_cache.prefix_hit"));
    assert!(text.contains("sched.build_cache.exact_hit"));
    assert_exact(&queries, &res.outcomes);
}

/// Repeat submissions of an identical workload replay the memoized
/// pricing: hits surface in the metrics, the summary line, and the
/// `sched.cost_cache.hit` counter.
#[test]
fn repeat_tenants_hit_the_cost_cache() {
    let base = WorkloadSpec::paper_default(16, K).generate();
    let queries: Vec<JoinQuery> = (0..4)
        .map(|i| JoinQuery::new(format!("tenant-{i}"), base.clone(), Ns::ZERO))
        .collect();
    // Serial: each query admitted against an empty machine gets the
    // identical grant, so pricings 2..4 replay pricing 1.
    let res = Scheduler::new(hw(), SchedulerConfig::serial()).run(queries.clone());
    assert_eq!(res.metrics.completed, 4);
    assert!(
        res.metrics.cost_cache_hits >= 3,
        "identical repeat pricings must hit: {}",
        res.metrics.summary()
    );
    assert!(res.metrics.summary().contains("cost cache"));
    assert!(res.telemetry.expose_text().contains("sched.cost_cache.hit"));
    assert_exact(&queries, &res.outcomes);
}
