//! Per-query fault accounting and the degraded-machine view the
//! arbiter prices queries against while a [`triton_hw::FaultPlan`] is
//! active.

use triton_hw::ResourceVector;

/// What hit an in-flight query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCause {
    /// A transient kernel failure killed the attempt; the work is lost
    /// but the machine is intact — retry with backoff.
    Transient,
    /// An ECC page retirement shrank GPU capacity below the sum of
    /// reservations and this query's reservation was revoked.
    Revoked,
}

impl FaultCause {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultCause::Transient => "kernel-fault",
            FaultCause::Revoked => "revoked",
        }
    }
}

/// How much recovering cost one query. Attached to every
/// [`crate::scheduler::CompletedQuery`]; all zeros on a clean run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Transient kernel failures survived (attempt restarted).
    pub retries: u32,
    /// Rungs descended on the degradation ladder.
    pub downgrades: u32,
    /// Reservations revoked by capacity loss.
    pub revocations: u32,
    /// Cache-grant halvings applied on re-admission.
    pub grant_shrinks: u32,
}

impl FaultOutcome {
    /// True when the query never saw a fault.
    #[must_use]
    pub fn clean(&self) -> bool {
        *self == FaultOutcome::default()
    }

    /// Total recovery actions taken for this query.
    #[must_use]
    pub fn actions(&self) -> u32 {
        self.retries + self.downgrades + self.revocations + self.grant_shrinks
    }
}

/// Sentinel slowdown for a resource whose capacity is currently zero
/// (e.g. the link fully down during a flap): large enough that progress
/// effectively stops, finite so the fluid arbiter stays well-defined —
/// the event loop never integrates across a fault boundary, so the
/// stall lasts exactly until the window closes.
const DEAD_RESOURCE_INFLATION: f64 = 1e12;

/// A query's busy-fraction vector as seen on the *degraded* machine:
/// with the link at `link_factor` of nominal bandwidth and the host CPU
/// at `cpu_factor` of nominal speed, the same bytes and instructions
/// keep those resources busy `1/factor` times longer.
#[must_use]
pub fn degraded_vector(v: ResourceVector, link_factor: f64, cpu_factor: f64) -> ResourceVector {
    let inflate = |busy: f64, factor: f64| {
        if busy <= 0.0 {
            0.0
        } else if factor <= 0.0 {
            busy * DEAD_RESOURCE_INFLATION
        } else {
            busy / factor
        }
    };
    ResourceVector {
        link: inflate(v.link, link_factor),
        cpu: inflate(v.cpu, cpu_factor),
        ..v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v() -> ResourceVector {
        ResourceVector {
            link: 0.8,
            gpu_mem: 0.4,
            compute: 0.3,
            tlb: 0.1,
            cpu: 0.2,
        }
    }

    #[test]
    fn degradation_inflates_only_the_hit_resources() {
        let d = degraded_vector(v(), 0.5, 1.0);
        assert!((d.link - 1.6).abs() < 1e-12, "half bandwidth, double busy");
        assert_eq!(d.cpu, 0.2);
        assert_eq!(d.gpu_mem, 0.4);
        let c = degraded_vector(v(), 1.0, 0.25);
        assert!((c.cpu - 0.8).abs() < 1e-12);
        assert_eq!(c.link, 0.8);
    }

    #[test]
    fn dead_link_stalls_but_stays_finite() {
        let d = degraded_vector(v(), 0.0, 1.0);
        assert!(d.link >= 1e11);
        assert!(d.link.is_finite());
        // A query that never touches the link is unaffected by its death.
        let idle = degraded_vector(ResourceVector { link: 0.0, ..v() }, 0.0, 1.0);
        assert_eq!(idle.link, 0.0);
    }

    #[test]
    fn outcome_bookkeeping() {
        let mut o = FaultOutcome::default();
        assert!(o.clean());
        o.retries = 2;
        o.downgrades = 1;
        assert!(!o.clean());
        assert_eq!(o.actions(), 3);
    }
}
