//! The Shared radix partitioner: block-shared software write-combining
//! with perfectly coalesced flushes (Section 4.2 of the paper).
//!
//! A thread block shares one SWWC buffer per partition in scratchpad.
//! Threads fill buffers lock-free (the first invalid slot index doubles as
//! the flush lock); when a buffer fills, the warp elects a leader and
//! flushes the whole buffer as a multiple of the 128-byte transaction
//! size, aligned to the transaction size — "perfect coalescing". Sharing
//! buffers across all warps of the block is what makes the design
//! space-efficient enough for GPU scratchpads (Table 1).
//!
//! The trade-off this module reproduces: the per-partition buffer shrinks
//! with the fanout (`scratchpad / fanout`), so beyond ~512 partitions a
//! flush is smaller than one 128-byte line and coalescing collapses;
//! moreover one write frontier per partition stays TLB-live, so high
//! fanouts thrash the translation caches (Fig 18d).

use triton_datagen::TUPLE_BYTES;
use triton_hw::kernel::KernelCost;
use triton_hw::HwConfig;

use crate::common::{Partitioned, PassConfig, Span};
use crate::partitioner::{Algorithm, Emu, GpuPartitioner};
use crate::prefix_sum::HistogramResult;

/// The Shared SWWC partitioner.
#[derive(Debug, Clone, Copy)]
pub struct SharedSwwc {
    /// Fraction of the scratchpad available for buffers (the remainder
    /// holds fill-state counters and partition offsets).
    pub scratchpad_fraction: f64,
}

impl Default for SharedSwwc {
    fn default() -> Self {
        SharedSwwc {
            scratchpad_fraction: 1.0,
        }
    }
}

impl SharedSwwc {
    /// Tuples per SWWC buffer at the given fanout.
    pub fn buffer_tuples(&self, hw: &HwConfig, fanout: usize) -> usize {
        let bytes = (hw.gpu.scratchpad.as_f64() * self.scratchpad_fraction) as u64;
        ((bytes / fanout as u64) / TUPLE_BYTES).max(1) as usize
    }
}

impl GpuPartitioner for SharedSwwc {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Shared
    }

    fn partition(
        &self,
        keys: &[u64],
        rids: &[u64],
        hist: &HistogramResult,
        input: &Span,
        output: &Span,
        pass: &PassConfig,
        hw: &HwConfig,
    ) -> (Partitioned, KernelCost) {
        let n = keys.len();
        let fanout = pass.fanout();
        let buf_cap = self.buffer_tuples(hw, fanout);
        let mut emu = Emu::new("partition (shared)", n, hist, input, output, pass, hw, true);

        let mut buffers: Vec<Vec<(u64, u64)>> =
            (0..fanout).map(|_| Vec::with_capacity(buf_cap)).collect();

        for (s, e) in Emu::chunks(n, pass, hw, fanout * buf_cap * 32) {
            let mut i = s;
            while i < e {
                let wbatch = 32.min(e - i);
                emu.charge_input(i, wbatch);
                emu.cost.instructions += wbatch as u64 * emu.instr.fill_per_tuple;
                for j in i..i + wbatch {
                    let p = emu.pid(keys[j]);
                    let buf = &mut buffers[p];
                    buf.push((keys[j], rids[j]));
                    if buf.len() == buf_cap {
                        // Warp-leader flush: ballot + lock handoff, then a
                        // coalesced, transaction-aligned write.
                        emu.cost.instructions +=
                            emu.instr.flush_fixed + buf_cap as u64 * emu.instr.flush_per_tuple;
                        emu.cost.sync_cycles += 24;
                        emu.flush(p, buf, true);
                        buffers[p].clear();
                    }
                }
                i += wbatch;
            }
            // Block end: drain partially filled buffers (sub-line writes).
            for (p, buffer) in buffers.iter_mut().enumerate() {
                if !buffer.is_empty() {
                    emu.cost.instructions +=
                        emu.instr.flush_fixed + buffer.len() as u64 * emu.instr.flush_per_tuple;
                    let buf = std::mem::take(buffer);
                    emu.flush(p, &buf, true);
                    *buffer = buf;
                    buffer.clear();
                }
            }
        }
        emu.finish(hist, pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::testutil::check_partitioner;
    use crate::prefix_sum::compute_histogram;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn functional_correctness() {
        check_partitioner(&SharedSwwc::default(), 6, 0);
        check_partitioner(&SharedSwwc::default(), 9, 0);
        check_partitioner(&SharedSwwc::default(), 5, 9);
    }

    #[test]
    fn buffer_size_follows_fanout() {
        let hw = HwConfig::ac922();
        let s = SharedSwwc::default();
        // 64 KiB scratchpad, 16-byte tuples.
        assert_eq!(s.buffer_tuples(&hw, 64), 64);
        assert_eq!(s.buffer_tuples(&hw, 512), 8);
        assert_eq!(s.buffer_tuples(&hw, 2048), 2);
    }

    #[test]
    fn perfect_coalescing_at_moderate_fanout() {
        // Flushes of >= 8 tuples are whole aligned lines: no partial
        // transactions except the block-end drains.
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(2, 100).generate();
        let bits = 8; // buffer = 32 tuples = 512 B
        let pass = PassConfig::new(bits, 0);
        let hist = compute_histogram(&w.r.keys, 160, bits, 0);
        let (_, cost) = SharedSwwc::default().partition(
            &w.r.keys,
            &w.r.rids,
            &hist,
            &Span::cpu(0),
            &Span::cpu(1 << 40),
            &pass,
            &hw,
        );
        let drain_bound = 160 * (1 << bits); // blocks x partitions
        assert!(
            cost.link.rand_write.partial_txns <= drain_bound as u64 * 2,
            "partials {} should only come from drains",
            cost.link.rand_write.partial_txns
        );
        // Tuples per transaction near the optimum of 8.
        assert!(cost.tuples_per_txn() > 5.0, "{}", cost.tuples_per_txn());
    }

    #[test]
    fn sub_line_flushes_at_extreme_fanout() {
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(2, 100).generate();
        let bits = 12; // buffer = 1 tuple
        let pass = PassConfig::new(bits, 0);
        let hist = compute_histogram(&w.r.keys, 160, bits, 0);
        let (_, cost) = SharedSwwc::default().partition(
            &w.r.keys,
            &w.r.rids,
            &hist,
            &Span::cpu(0),
            &Span::cpu(1 << 40),
            &pass,
            &hw,
        );
        assert!(
            cost.link.rand_write.partial_txns as f64 >= w.r.len() as f64 * 0.5,
            "extreme fanout must produce partial-line flushes"
        );
    }
}
