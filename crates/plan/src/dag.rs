//! The typed plan DAG: node taxonomy, structural validation, and the
//! cardinality estimates admission and placement share.
//!
//! A [`Plan`] is a vector of [`PlanNode`]s in topological order (every
//! edge points backwards), with base relations referenced by input index.
//! The shape is deliberately small — the five node kinds are exactly the
//! operators the paper's strategy covers (Section 2.2): selections,
//! Bloom pre-filters, partitioned hash joins, and group-by aggregation.

use std::fmt;

use triton_mem::OutOfMemory;

/// A selection predicate over the 64-bit join key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Keep keys in `[lo, hi]` (inclusive).
    KeyRange {
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
    /// Keep keys with `key % modulus == keep` — a hash-like predicate
    /// whose selectivity is `1 / modulus` regardless of key order.
    KeyMod {
        /// The divisor (must be > 0).
        modulus: u64,
        /// The residue class kept (must be < `modulus`).
        keep: u64,
    },
}

impl Predicate {
    /// Whether `key` survives the selection.
    pub fn keep(&self, key: u64) -> bool {
        match *self {
            Predicate::KeyRange { lo, hi } => (lo..=hi).contains(&key),
            Predicate::KeyMod { modulus, keep } => key % modulus == keep,
        }
    }

    /// Upper bound on survivors out of `n` input tuples, assuming the
    /// child's keys are dense in `1..=n` (a primary-key scan — the only
    /// place the TPC-H-shaped plans put a selection). Used by admission
    /// and placement; execution prices actual counts.
    pub fn estimate(&self, n: u64) -> u64 {
        match *self {
            Predicate::KeyRange { lo, hi } => n.min(hi.saturating_sub(lo) + 1),
            Predicate::KeyMod { modulus, .. } => n.min(n / modulus.max(1) + 1),
        }
    }
}

/// How a join node maps each match `(key, build_rid, probe_rid)` to the
/// `(key, rid)` tuple it emits — what lets a join's output feed the next
/// join's build or probe side with meaningful keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitMap {
    /// Emit `(probe_rid, build_rid)`: re-key the output by the probe
    /// tuple's record id (e.g. orders' orderkey after a customer ⋈
    /// orders join, making the output a unique-keyed build side).
    KeyFromProbeRid,
    /// Emit `(build_rid, probe_rid)`: re-key by the build tuple's rid.
    KeyFromBuildRid,
    /// Emit `(key, build_rid + probe_rid)` (wrapping): keep the join key
    /// and fold both lineages into the payload.
    KeepKey,
}

impl EmitMap {
    /// Apply the map to one match.
    pub fn apply(&self, key: u64, build_rid: u64, probe_rid: u64) -> (u64, u64) {
        match self {
            EmitMap::KeyFromProbeRid => (probe_rid, build_rid),
            EmitMap::KeyFromBuildRid => (build_rid, probe_rid),
            EmitMap::KeepKey => (key, build_rid.wrapping_add(probe_rid)),
        }
    }
}

/// One operator in the plan DAG. Child references are node indices and
/// must point backwards (the vector is the topological order).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// A base-relation scan: `input` indexes the query's input
    /// relations. Scans move no data themselves — the read is priced by
    /// the consumer streaming the relation over the interconnect.
    Scan {
        /// Index into the plan's input relations.
        input: usize,
    },
    /// A selection over the child's keys.
    Select {
        /// Child node index.
        child: usize,
        /// The predicate.
        pred: Predicate,
    },
    /// A Bloom pre-filter: build a filter over `build`'s keys, keep only
    /// `probe` tuples that may match. The output contains false
    /// positives, so it may only feed a join's *probe* side (which
    /// re-checks every key exactly) — [`Plan::validate`] enforces this.
    Bloom {
        /// Node whose keys build the filter.
        build: usize,
        /// Node whose tuples are filtered.
        probe: usize,
    },
    /// A Triton hash join between two upstream nodes.
    Join {
        /// Build (inner) side node index.
        build: usize,
        /// Probe (outer) side node index.
        probe: usize,
        /// Output tuple mapping.
        emit: EmitMap,
    },
    /// Group-by aggregation over the child — the plan's root and sink.
    Agg {
        /// Child node index.
        child: usize,
    },
}

impl PlanNode {
    /// Child node indices, in (build, probe) order where applicable.
    pub fn children(&self) -> Vec<usize> {
        match *self {
            PlanNode::Scan { .. } => vec![],
            PlanNode::Select { child, .. } | PlanNode::Agg { child } => vec![child],
            PlanNode::Bloom { build, probe } | PlanNode::Join { build, probe, .. } => {
                vec![build, probe]
            }
        }
    }

    /// Short kind label for traces and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            PlanNode::Scan { .. } => "scan",
            PlanNode::Select { .. } => "select",
            PlanNode::Bloom { .. } => "bloom",
            PlanNode::Join { .. } => "join",
            PlanNode::Agg { .. } => "agg",
        }
    }
}

/// A query plan: nodes in topological order, rooted at a single
/// aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The nodes; the last one is the root.
    pub nodes: Vec<PlanNode>,
}

/// Why a plan could not be built or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The DAG violates a structural rule.
    Invalid(String),
    /// A simulated allocation failed during execution.
    Oom(OutOfMemory),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Invalid(why) => write!(f, "invalid plan: {why}"),
            PlanError::Oom(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<OutOfMemory> for PlanError {
    fn from(e: OutOfMemory) -> Self {
        PlanError::Oom(e)
    }
}

impl Plan {
    /// Validate the DAG against `num_inputs` base relations. Rules:
    /// non-empty; exactly one [`PlanNode::Agg`], and it is the last
    /// node; every child index points backwards; every scan's input
    /// exists; predicates are well-formed; every non-root node is
    /// consumed at least once; and Bloom outputs feed only join probe
    /// sides (false positives must be re-checked).
    pub fn validate(&self, num_inputs: usize) -> Result<(), PlanError> {
        let invalid = |why: String| Err(PlanError::Invalid(why));
        if self.nodes.is_empty() {
            return invalid("empty plan".into());
        }
        let n = self.nodes.len();
        if !matches!(self.nodes[n - 1], PlanNode::Agg { .. }) {
            return invalid("root (last node) must be an aggregation".into());
        }
        let mut consumed = vec![false; n];
        for (i, node) in self.nodes.iter().enumerate() {
            for c in node.children() {
                if c >= i {
                    return invalid(format!("node {i} references non-prior node {c}"));
                }
                consumed[c] = true;
                if matches!(self.nodes[c], PlanNode::Bloom { .. })
                    && !matches!(node, PlanNode::Join { probe, .. } if *probe == c)
                {
                    return invalid(format!(
                        "bloom node {c} may only feed a join probe side (consumer {i})"
                    ));
                }
            }
            match *node {
                PlanNode::Scan { input } if input >= num_inputs => {
                    return invalid(format!("scan {i} references missing input {input}"));
                }
                PlanNode::Agg { .. } if i != n - 1 => {
                    return invalid(format!("aggregation at {i} is not the root"));
                }
                PlanNode::Select { pred, .. } => match pred {
                    Predicate::KeyRange { lo, hi } if lo > hi => {
                        return invalid(format!("select {i}: empty range {lo}..={hi}"));
                    }
                    Predicate::KeyMod { modulus, keep } if modulus == 0 || keep >= modulus => {
                        return invalid(format!("select {i}: bad modulus {modulus}/{keep}"));
                    }
                    _ => {}
                },
                // The guarded Scan/Agg arms above fall through here when
                // their guards are false; every variant is listed so a
                // new PlanNode forces this validator to be revisited.
                PlanNode::Scan { .. }
                | PlanNode::Bloom { .. }
                | PlanNode::Join { .. }
                | PlanNode::Agg { .. } => {}
            }
        }
        if let Some(orphan) = (0..n - 1).find(|&i| !consumed[i]) {
            return invalid(format!("node {orphan} is never consumed"));
        }
        Ok(())
    }

    /// Index of each node's last consumer (the step through which its
    /// output must stay live). The root maps to itself.
    pub fn last_consumer(&self) -> Vec<usize> {
        let mut last: Vec<usize> = (0..self.nodes.len()).collect();
        for (i, node) in self.nodes.iter().enumerate() {
            for c in node.children() {
                last[c] = i;
            }
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join_agg() -> Plan {
        Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 },
                PlanNode::Scan { input: 1 },
                PlanNode::Join {
                    build: 0,
                    probe: 1,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 2 },
            ],
        }
    }

    #[test]
    fn valid_plan_passes() {
        assert!(join_agg().validate(2).is_ok());
    }

    #[test]
    fn root_must_be_agg() {
        let mut p = join_agg();
        p.nodes.pop();
        assert!(matches!(p.validate(2), Err(PlanError::Invalid(_))));
    }

    #[test]
    fn forward_references_rejected() {
        let p = Plan {
            nodes: vec![PlanNode::Scan { input: 0 }, PlanNode::Agg { child: 1 }],
        };
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn missing_input_rejected() {
        assert!(join_agg().validate(1).is_err());
    }

    #[test]
    fn orphans_rejected() {
        let mut p = join_agg();
        p.nodes.insert(2, PlanNode::Scan { input: 0 });
        // Fix up indices of the join/agg after the insert.
        p.nodes[3] = PlanNode::Join {
            build: 0,
            probe: 1,
            emit: EmitMap::KeepKey,
        };
        p.nodes[4] = PlanNode::Agg { child: 3 };
        assert!(p.validate(2).is_err());
    }

    #[test]
    fn bloom_must_feed_probe_side() {
        let build_side = Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 },
                PlanNode::Scan { input: 1 },
                PlanNode::Bloom { build: 0, probe: 1 },
                PlanNode::Join {
                    build: 2,
                    probe: 0,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 3 },
            ],
        };
        assert!(build_side.validate(2).is_err());
        let probe_side = Plan {
            nodes: vec![
                PlanNode::Scan { input: 0 },
                PlanNode::Scan { input: 1 },
                PlanNode::Bloom { build: 0, probe: 1 },
                PlanNode::Join {
                    build: 0,
                    probe: 2,
                    emit: EmitMap::KeepKey,
                },
                PlanNode::Agg { child: 3 },
            ],
        };
        assert!(probe_side.validate(2).is_ok());
    }

    #[test]
    fn predicates_select_and_estimate() {
        let range = Predicate::KeyRange { lo: 10, hi: 19 };
        assert!(range.keep(10) && range.keep(19) && !range.keep(20));
        assert_eq!(range.estimate(1000), 10);
        let modp = Predicate::KeyMod {
            modulus: 5,
            keep: 2,
        };
        assert!(modp.keep(7) && !modp.keep(8));
        assert_eq!(modp.estimate(1000), 201);
        // Estimates never exceed the input.
        assert_eq!(range.estimate(4), 4);
    }

    #[test]
    fn last_consumer_tracks_live_ranges() {
        let p = join_agg();
        assert_eq!(p.last_consumer(), vec![2, 2, 3, 3]);
    }

    #[test]
    fn emit_maps_rewrite_tuples() {
        assert_eq!(EmitMap::KeyFromProbeRid.apply(7, 1, 2), (2, 1));
        assert_eq!(EmitMap::KeyFromBuildRid.apply(7, 1, 2), (1, 2));
        assert_eq!(EmitMap::KeepKey.apply(7, u64::MAX, 2), (7, 1));
    }
}
