//! Ablations of the Triton join's design choices — experiments beyond the
//! paper's figures that isolate each mechanism DESIGN.md calls out:
//!
//! * **overlap** — concurrent kernels on split SM sets (Section 5.2) vs
//!   serial stages on the whole GPU;
//! * **interleave** — evenly interleaved cache pages (Section 5.3) vs the
//!   classic prefix cache the paper argues against;
//! * **L2 tier size** — the Hierarchical partitioner's second-level
//!   buffer size (its only tuning knob);
//! * **page size** — 64 KiB vs 2 MiB vs 1 GiB huge pages (Section 2.1
//!   lists the sizes; Section 6.1 preallocates 2 MiB — this quantifies
//!   why);
//! * **NUMA placement** — base relations on the near vs far socket;
//! * **Bloom pre-filter** — the Section 7 extension, swept over the
//!   probe-side match fraction.

use triton_core::{MultiGpuTritonJoin, NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;
use triton_part::{gpu_prefix_sum, GpuPartitioner, HierarchicalSwwc, PassConfig, SharedSwwc, Span};

/// A generic (setting, value, G tuples/s) ablation row.
#[derive(Debug, Clone)]
pub struct Row {
    /// The ablation family.
    pub ablation: &'static str,
    /// The setting within the family.
    pub setting: String,
    /// Measured throughput in G tuples/s (or GiB/s for partition-level
    /// ablations, as labelled).
    pub value: f64,
}

/// Overlap and interleave ablations over one workload.
pub fn run_join_ablations(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw.scale;
    let w = WorkloadSpec::paper_default(m_tuples, k).generate();
    let mut rows = Vec::new();
    for (name, join) in [
        ("baseline", TritonJoin::default()),
        (
            "no overlap",
            TritonJoin {
                overlap: false,
                ..TritonJoin::default()
            },
        ),
        (
            "prefix cache",
            TritonJoin {
                interleaved_cache: false,
                ..TritonJoin::default()
            },
        ),
        (
            "no cache",
            TritonJoin {
                caching_enabled: false,
                ..TritonJoin::default()
            },
        ),
        (
            "no third pass",
            TritonJoin {
                third_pass: false,
                ..TritonJoin::default()
            },
        ),
    ] {
        rows.push(Row {
            ablation: "join design",
            setting: format!("{name} @{m_tuples}M"),
            value: join.run(&w, hw).throughput_gtps(),
        });
    }
    rows
}

/// Second-tier ablation at fanout 2048: no tier at all (Shared) vs
/// Hierarchical with increasing L2 buffer sizes. The decisive step is
/// *having* the tier — it restores whole-line flushes; growing it beyond
/// one line mainly reduces flush bookkeeping.
pub fn run_l2_sweep(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw.scale;
    let w = WorkloadSpec::paper_default(m_tuples, k).generate();
    let bits = 11;
    let pass = PassConfig::new(bits, 0);
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);
    let gib = (1u64 << 30) as f64;
    let (hist, _) = gpu_prefix_sum(&w.r.keys, &input, &pass, hw, false);
    let measure = |p: &dyn GpuPartitioner, label: String| {
        let (_, cost) = p.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, hw);
        Row {
            ablation: "second tier (GiB/s @fanout 2048)",
            setting: label,
            value: w.r.len() as f64 * 16.0 / gib / cost.timing(hw).total.as_secs(),
        }
    };
    let mut rows = vec![measure(&SharedSwwc::default(), "none (Shared)".into())];
    for l2 in [8usize, 32, 128, 256] {
        let p = HierarchicalSwwc {
            l2_tuples: l2,
            ..HierarchicalSwwc::default()
        };
        rows.push(measure(&p, format!("L2 = {l2} tuples")));
    }
    rows
}

/// Page-size ablation: the TLB reach shrinks with the page size.
pub fn run_page_size(hw_base: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw_base.scale;
    let w = WorkloadSpec::paper_default(m_tuples, k).generate();
    let mut rows = Vec::new();
    for (label, bytes) in [
        ("64 KiB", 64u64 << 10),
        ("2 MiB (paper)", 2 << 20),
        ("1 GiB", 1 << 30),
    ] {
        let hw = hw_base.clone().with_page_size_modeled(bytes);
        rows.push(Row {
            ablation: "page size (Triton)",
            setting: label.into(),
            value: TritonJoin::default().run(&w, &hw).throughput_gtps(),
        });
        rows.push(Row {
            ablation: "page size (NPJ perfect)",
            setting: label.into(),
            value: NoPartitioningJoin::perfect().run(&w, &hw).throughput_gtps(),
        });
    }
    rows
}

/// NUMA placement ablation.
pub fn run_numa(hw_base: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw_base.scale;
    let w = WorkloadSpec::paper_default(m_tuples, k).generate();
    let far = hw_base.clone().with_far_numa();
    vec![
        Row {
            ablation: "NUMA placement",
            setting: "near socket (paper)".into(),
            value: TritonJoin::default().run(&w, hw_base).throughput_gtps(),
        },
        Row {
            ablation: "NUMA placement",
            setting: "far socket".into(),
            value: TritonJoin::default().run(&w, &far).throughput_gtps(),
        },
    ]
}

/// Multi-GPU scaling (the Section 7 MG-Join direction).
pub fn run_multi_gpu(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw.scale;
    let w = WorkloadSpec::paper_default(m_tuples, k).generate();
    [1u32, 2, 4, 8]
        .into_iter()
        .map(|g| Row {
            ablation: "multi-GPU",
            setting: format!("{g} GPU(s)"),
            value: MultiGpuTritonJoin::new(g).run(&w, hw).throughput_gtps(),
        })
        .collect()
}

/// Bloom pre-filter over the probe-side match fraction.
pub fn run_bloom(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw.scale;
    let mut rows = Vec::new();
    for frac in [1.0f64, 0.5, 0.2, 0.05] {
        let w = WorkloadSpec::selective(m_tuples, frac, k).generate();
        let plain = TritonJoin::default().run(&w, hw);
        let bloom = TritonJoin {
            bloom_prefilter: true,
            ..TritonJoin::default()
        }
        .run(&w, hw);
        assert_eq!(plain.result, bloom.result);
        rows.push(Row {
            ablation: "bloom prefilter",
            setting: format!("match {:.0}% off", frac * 100.0),
            value: plain.throughput_gtps(),
        });
        rows.push(Row {
            ablation: "bloom prefilter",
            setting: format!("match {:.0}% on", frac * 100.0),
            value: bloom.throughput_gtps(),
        });
    }
    rows
}

/// Print all ablations.
pub fn print(hw: &HwConfig) {
    crate::banner(
        "Ablations",
        "design-choice ablations beyond the paper's figures",
    );
    let mut t = crate::Table::new(["ablation", "setting", "value"]);
    let mut all = Vec::new();
    all.extend(run_join_ablations(hw, 512));
    all.extend(run_join_ablations(hw, 2048));
    all.extend(run_l2_sweep(hw, 1024));
    all.extend(run_page_size(hw, 1024));
    all.extend(run_numa(hw, 1024));
    all.extend(run_bloom(hw, 2048));
    all.extend(run_multi_gpu(hw, 2048));
    for r in all {
        t.row([r.ablation.to_string(), r.setting, crate::f3(r.value)]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HwConfig {
        HwConfig::ac922().scaled(2048)
    }

    fn get<'a>(rows: &'a [Row], setting: &str) -> &'a Row {
        rows.iter()
            .find(|r| r.setting.starts_with(setting))
            .unwrap()
    }

    #[test]
    fn overlap_and_interleave_pay_off() {
        let rows = run_join_ablations(&hw(), 2048);
        let base = get(&rows, "baseline").value;
        let no_overlap = get(&rows, "no overlap").value;
        let prefix = get(&rows, "prefix cache").value;
        let no_cache = get(&rows, "no cache").value;
        assert!(
            base > no_overlap,
            "overlap must help: {base} vs {no_overlap}"
        );
        assert!(
            base >= prefix * 0.999,
            "interleave >= prefix: {base} vs {prefix}"
        );
        assert!(base > no_cache, "caching must help: {base} vs {no_cache}");
        // Prefix caching still beats no caching (it saves volume, just
        // not overlap).
        assert!(prefix > no_cache);
    }

    #[test]
    fn second_tier_restores_whole_line_flushes() {
        let rows = run_l2_sweep(&hw(), 4096);
        let none = rows.first().unwrap().value;
        let with_tier = rows[1].value;
        let largest = rows.last().unwrap().value;
        // Having the tier at all is the decisive step (sub-line flushes
        // vs whole lines)...
        assert!(with_tier > none * 1.8, "tier: {with_tier} vs none {none}");
        // ...and growing it never hurts.
        assert!(largest >= with_tier * 0.95);
    }

    #[test]
    fn small_pages_hurt_out_of_core_joins() {
        let rows = run_page_size(&hw(), 2048);
        let npj_small = rows
            .iter()
            .find(|r| r.ablation.contains("NPJ") && r.setting.starts_with("64 KiB"))
            .unwrap()
            .value;
        let npj_huge = rows
            .iter()
            .find(|r| r.ablation.contains("NPJ") && r.setting.contains("2 MiB"))
            .unwrap()
            .value;
        // With 64 KiB pages the TLB reach shrinks 32x: the out-of-core
        // NPJ collapses much earlier.
        assert!(
            npj_huge > npj_small * 2.0,
            "NPJ: 2 MiB {npj_huge} vs 64 KiB {npj_small}"
        );
    }

    #[test]
    fn far_numa_costs_throughput() {
        let rows = run_numa(&hw(), 1024);
        assert!(rows[0].value > rows[1].value * 1.2, "{rows:?}");
    }

    #[test]
    fn multi_gpu_scales() {
        let rows = run_multi_gpu(&hw(), 2048);
        assert!(rows[1].value > rows[0].value * 1.3, "{rows:?}");
        assert!(rows[3].value > rows[1].value, "{rows:?}");
    }

    #[test]
    fn bloom_helps_exactly_when_selective() {
        // Out-of-core at this scale, so dropped probe tuples save spill
        // traffic, not just instructions.
        let rows = run_bloom(&hw(), 2048);
        let at = |s: &str| get(&rows, s).value;
        assert!(at("match 100% on") <= at("match 100% off") * 1.02);
        assert!(at("match 5% on") > at("match 5% off") * 1.2);
    }
}
