//! Fig 4: partitioning throughput by processor and destination memory.
fn main() {
    triton_bench::figs::fig04::print(&triton_bench::hw());
}
