//! Resilience policies: how the scheduler recovers from injected
//! hardware faults instead of shedding.
//!
//! Three mechanisms compose (motivated by the robust-dynamic-hybrid-join
//! and CPU/GPU co-processing lines of work in PAPERS.md):
//!
//! * a [`RetryPolicy`] — exponential backoff with deterministic,
//!   seed-derived jitter, bounded by each query's deadline, for
//!   transient kernel failures;
//! * a **degradation ladder** ([`downgrade_operator`]) — on admission
//!   failure or reservation revocation a query first shrinks its cache
//!   grant, then walks Triton → CPU-partitioned GPU join → CPU radix
//!   join, trading speed for survivability instead of being shed;
//! * a **circuit breaker** on the build cache (see
//!   [`crate::build_cache::BuildCache::quarantine_all`]).
//!
//! Faults may change timing, placement, and operator choice — never
//! answers: every recovered query still produces an exact result.

use triton_core::{CpuPartitionedJoin, CpuRadixJoin, HashScheme, SkewPolicy, TritonJoin};
use triton_hw::fault::unit_f64;
use triton_hw::units::Ns;

use crate::query::{Operator, QueryId};

/// Exponential backoff with deterministic jitter for transient faults.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Transient failures tolerated on one ladder rung before the query
    /// is downgraded to the next operator.
    pub max_retries: u32,
    /// First backoff delay.
    pub base_backoff: Ns,
    /// Backoff growth per attempt.
    pub multiplier: f64,
    /// Jitter amplitude as a fraction of the delay (`0.25` spreads each
    /// delay ±25%), derived deterministically from the seed, the query
    /// id, and the attempt number.
    pub jitter_frac: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Ns::millis(1.0),
            multiplier: 2.0,
            jitter_frac: 0.25,
            seed: 0x7E57_AB1E,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based) of `id`.
    /// Deterministic: the same `(seed, id, attempt)` always yields the
    /// same delay, so chaos runs replay byte-identically.
    #[must_use]
    pub fn backoff(&self, id: QueryId, attempt: u32) -> Ns {
        let raw = self.base_backoff.0 * self.multiplier.powi(attempt.min(16) as i32);
        let u = unit_f64(
            self.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(attempt) << 17),
        );
        let jitter = 1.0 + self.jitter_frac.clamp(0.0, 1.0) * (2.0 * u - 1.0);
        Ns((raw * jitter).max(0.0))
    }

    /// [`Self::backoff`] clamped so the query becomes eligible no later
    /// than `deadline_slack` from now — a retry scheduled past the
    /// deadline is a guaranteed shed, so the policy spends at most the
    /// remaining budget waiting.
    #[must_use]
    pub fn backoff_within(&self, id: QueryId, attempt: u32, deadline_slack: Option<Ns>) -> Ns {
        let b = self.backoff(id, attempt);
        match deadline_slack {
            Some(slack) => b.min(slack.max(Ns::ZERO)),
            None => b,
        }
    }
}

/// The next rung of the degradation ladder, or `None` at the bottom.
///
/// Skew-aware Triton → plain Triton → CPU-partitioned GPU join (tiny
/// GPU footprint) → CPU radix join (no GPU at all). The first rung
/// drops only the skew policy: the planned placement and pair chunking
/// are the most speculative machinery, so a faulting query falls back
/// to the uniform executor before giving up GPU partitioning entirely.
/// The no-partitioning join degrades like plain Triton: its global hash
/// table is what GPU faults keep killing.
///
/// Plans learn a new *top* rung: force-materialize every intermediate
/// to host memory first (fidelity kept, the reservation shrinks to the
/// largest single operator floor), and only then drop skew-awareness.
/// A plan that still faults after both is shed — single-join fallback
/// operators cannot answer a multi-operator query.
#[must_use]
pub fn downgrade_operator(op: &Operator) -> Option<Operator> {
    match op {
        Operator::Triton(j) if j.skew.is_aware() => Some(Operator::Triton(TritonJoin {
            skew: SkewPolicy::Off,
            ..j.clone()
        })),
        Operator::Triton(_) | Operator::NoPartitioning(_) => {
            Some(Operator::CpuPartitioned(CpuPartitionedJoin::default()))
        }
        Operator::CpuPartitioned(_) => Some(Operator::CpuRadix(CpuRadixJoin::power9(
            HashScheme::BucketChaining,
        ))),
        Operator::CpuRadix(_) => None,
        Operator::Plan(p) if !p.force_materialize => {
            let mut p = p.clone();
            p.force_materialize = true;
            Some(Operator::Plan(p))
        }
        Operator::Plan(p) if p.skew.is_aware() => {
            let mut p = p.clone();
            p.skew = SkewPolicy::Off;
            Some(Operator::Plan(p))
        }
        Operator::Plan(_) => None,
    }
}

/// Elastic-grant policy: whether (and how often) the scheduler may
/// revise a running query's [`crate::admission::MemoryGrant`] in place
/// instead of revoking it. This adds **shrink-in-place rungs above the
/// degradation ladder's drop-everything steps**: when memory pressure
/// hits (a device retires pages, or a bursty arrival cannot be
/// admitted), the scheduler first issues priced
/// [`crate::admission::GrantRevision::Shrink`]s against running
/// queries' optional cache shares — each a traced, link-cost-priced
/// event — and only once every cache grant is exhausted does it fall
/// back to revocation and the operator ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticGrants {
    /// Master switch. Off reproduces the fixed-grant scheduler exactly:
    /// pressure goes straight to revocation/shedding.
    pub enabled: bool,
    /// Revisions tolerated per running query before it stops being a
    /// shrink victim (so one query's cache is not sanded away a page at
    /// a time while others sit untouched).
    pub max_revisions: u32,
}

impl Default for ElasticGrants {
    fn default() -> Self {
        ElasticGrants {
            enabled: true,
            max_revisions: 4,
        }
    }
}

impl ElasticGrants {
    /// The fixed-grant baseline: grants are immutable once issued.
    #[must_use]
    pub fn fixed() -> Self {
        ElasticGrants {
            enabled: false,
            max_revisions: 0,
        }
    }
}

/// Scheduler-level resilience configuration.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Master switch. Disabled, every fault sheds its victim — the
    /// baseline the resilient path is compared against.
    pub enabled: bool,
    /// Retry/backoff policy for transient faults and revocations.
    pub retry: RetryPolicy,
    /// Elastic-grant policy: shrink-in-place before revoke/shed.
    pub elastic: ElasticGrants,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            enabled: true,
            retry: RetryPolicy::default(),
            elastic: ElasticGrants::default(),
        }
    }
}

impl ResilienceConfig {
    /// The no-resilience baseline: faults shed their victims.
    #[must_use]
    pub fn disabled() -> Self {
        ResilienceConfig {
            enabled: false,
            ..Self::default()
        }
    }

    /// Resilient, but with immutable grants: the pre-elastic scheduler,
    /// kept as the comparison baseline for `fig_elastic`.
    #[must_use]
    pub fn fixed_grants() -> Self {
        ResilienceConfig {
            elastic: ElasticGrants::fixed(),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let p = RetryPolicy::default();
        let a0 = p.backoff(QueryId(1), 0);
        let a1 = p.backoff(QueryId(1), 1);
        let a2 = p.backoff(QueryId(1), 2);
        assert!(a1.0 > a0.0 * 1.2, "{a0} -> {a1} should roughly double");
        assert!(a2.0 > a1.0 * 1.2);
        assert_eq!(p.backoff(QueryId(1), 1), a1, "same inputs, same delay");
        assert_ne!(
            p.backoff(QueryId(2), 0).0,
            a0.0,
            "different queries must not retry in lockstep"
        );
    }

    #[test]
    fn backoff_respects_deadline_slack() {
        let p = RetryPolicy::default();
        let b = p.backoff_within(QueryId(3), 5, Some(Ns(10.0)));
        assert!(b.0 <= 10.0);
        let unbounded = p.backoff_within(QueryId(3), 5, None);
        assert!(unbounded.0 > 10.0, "attempt 5 should back off far longer");
    }

    #[test]
    fn ladder_ends_at_cpu_radix() {
        let mut op = Operator::triton();
        let mut rungs = vec![op.label()];
        while let Some(next) = downgrade_operator(&op) {
            op = next;
            rungs.push(op.label());
        }
        assert_eq!(rungs, vec!["triton", "cpu-part", "cpu-radix"]);
        assert!(!op.uses_gpu(), "the bottom rung must not need the GPU");
    }

    #[test]
    fn skew_aware_downgrades_to_plain_triton_first() {
        let op = Operator::Triton(TritonJoin {
            skew: SkewPolicy::aware(),
            ..TritonJoin::default()
        });
        let next = downgrade_operator(&op).unwrap();
        match &next {
            Operator::Triton(j) => assert!(
                !j.skew.is_aware(),
                "first rung must only drop the skew policy"
            ),
            other => panic!("expected plain Triton, got {}", other.label()),
        }
        // The rest of the ladder is unchanged and still terminates.
        let mut op = next;
        let mut rungs = vec![op.label()];
        while let Some(next) = downgrade_operator(&op) {
            op = next;
            rungs.push(op.label());
        }
        assert_eq!(rungs, vec!["triton", "cpu-part", "cpu-radix"]);
    }
}
