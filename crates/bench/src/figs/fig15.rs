//! Fig 15: time breakdown of the Triton join — (a) execution time per
//! kernel and (b) a microarchitectural stall analysis per kernel.
//!
//! Configured with a GPU prefix sum (as in the paper) so every phase is a
//! GPU kernel with a full profile. The expected shape: the first
//! partitioning pass dominates (~44%) and is interconnect bound, the
//! first prefix sum takes ~19-23%, and the join phase is compute bound.

use triton_core::TritonJoin;
use triton_datagen::WorkloadSpec;
use triton_hw::kernel::StallProfile;
use triton_hw::HwConfig;

/// Per-kernel share and stall profile.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload size in modeled M tuples.
    pub m_tuples: u64,
    /// Kernel name.
    pub kernel: String,
    /// Share of total kernel time (0..1).
    pub share: f64,
    /// Stall attribution.
    pub stalls: Option<StallProfile>,
}

/// Run for the given workloads.
pub fn run(hw: &HwConfig, sizes: &[u64]) -> Vec<Row> {
    let k = hw.scale;
    let mut rows = Vec::new();
    for &m in sizes {
        let w = WorkloadSpec::paper_default(m, k).generate();
        let rep = TritonJoin {
            gpu_prefix_sum: true,
            ..TritonJoin::default()
        }
        .run(&w, hw);
        let sum: f64 = rep.phases.iter().map(|p| p.time.0).sum();
        for p in &rep.phases {
            rows.push(Row {
                m_tuples: m,
                kernel: p.name.clone(),
                share: if sum > 0.0 { p.time.0 / sum } else { 0.0 },
                stalls: p.stalls,
            });
        }
    }
    rows
}

/// Print both panels.
pub fn print(hw: &HwConfig, sizes: &[u64]) {
    crate::banner("Fig 15", "Triton join time breakdown and stall analysis");
    let mut t = crate::Table::new([
        "M tuples",
        "kernel",
        "time share",
        "issued",
        "mem dep",
        "exec dep",
        "sync",
        "other",
    ]);
    for r in run(hw, sizes) {
        let s = r.stalls.unwrap_or_default();
        t.row([
            r.m_tuples.to_string(),
            r.kernel,
            crate::pct(r.share),
            crate::f1(s.instr_issued),
            crate::f1(s.memory_dep),
            crate::f1(s.exec_dep),
            crate::f1(s.sync),
            crate::f1(s.other),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shares(m: u64) -> Vec<Row> {
        let hw = HwConfig::ac922().scaled(2048);
        run(&hw, &[m])
    }

    #[test]
    fn part1_dominates() {
        for m in [512u64, 2048] {
            let rows = shares(m);
            let part1 = rows.iter().find(|r| r.kernel == "Part 1").unwrap();
            // Paper: 43.8-47.2% of total time.
            assert!(
                (0.25..=0.65).contains(&part1.share),
                "{m} M: Part 1 share {}",
                part1.share
            );
            for r in &rows {
                if r.kernel != "Part 1" {
                    assert!(part1.share >= r.share, "{m} M: {} > Part 1", r.kernel);
                }
            }
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let rows = shares(512);
        let sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn part1_memory_bound_join_compute_bound() {
        let rows = shares(2048);
        let part1 = rows.iter().find(|r| r.kernel == "Part 1").unwrap();
        let join = rows.iter().find(|r| r.kernel == "Join").unwrap();
        let p1 = part1.stalls.unwrap();
        let j = join.stalls.unwrap();
        // Part 1 stalls mostly on memory; the join issues instructions at
        // a much higher rate (compute bound).
        assert!(p1.memory_dep > p1.sync);
        assert!(
            j.instr_issued > p1.instr_issued * 1.4,
            "join {j:?} vs part1 {p1:?}"
        );
    }
}
