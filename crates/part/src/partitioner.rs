//! The GPU partitioner interface and shared emulation pieces.
//!
//! All four algorithms (Standard, Linear, Shared, Hierarchical) implement
//! [`GpuPartitioner`]: they consume a histogram (computed by the prefix-sum
//! kernel), scatter the input into a partition-major output, and account
//! every memory access against the hardware model. Tuples are appended to
//! each partition through a global atomic cursor — one write frontier per
//! partition — which is also what makes the TLB working set of a
//! partitioning pass proportional to the fanout (Section 3.4.2).

use triton_datagen::{multiply_shift, radix, TUPLE_BYTES};
use triton_hw::gpu::split_chunks;
use triton_hw::kernel::KernelCost;
use triton_hw::link::LinkModel;
use triton_hw::tlb::TlbSim;
use triton_hw::HwConfig;

use crate::common::{ChargeCtx, InstrCosts, Partitioned, PassConfig, Span};
use crate::prefix_sum::HistogramResult;

/// Identifier of a partitioning algorithm (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Direct scatter with global atomic offsets.
    Standard,
    /// Linear-allocator software write-combining (in-scratchpad batches,
    /// opportunistic coalescing).
    Linear,
    /// Shared software write-combining (this paper, Section 4.2).
    Shared,
    /// Hierarchical software write-combining (this paper, Section 4.3).
    Hierarchical,
}

impl Algorithm {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Standard => "Standard",
            Algorithm::Linear => "Linear",
            Algorithm::Shared => "Shared",
            Algorithm::Hierarchical => "Hierarchical",
        }
    }

    /// All algorithms, in the paper's comparison order.
    pub fn all() -> [Algorithm; 4] {
        [
            Algorithm::Standard,
            Algorithm::Linear,
            Algorithm::Shared,
            Algorithm::Hierarchical,
        ]
    }
}

/// A GPU radix-partitioning pass.
pub trait GpuPartitioner {
    /// Which algorithm this is.
    fn algorithm(&self) -> Algorithm;

    /// Execute the pass: scatter `(keys, rids)` into a partition-major
    /// output using the `hist` offsets, reading from `input` and writing
    /// to `output`, and return the partitioned data plus the kernel cost.
    #[allow(clippy::too_many_arguments)]
    fn partition(
        &self,
        keys: &[u64],
        rids: &[u64],
        hist: &HistogramResult,
        input: &Span,
        output: &Span,
        pass: &PassConfig,
        hw: &HwConfig,
    ) -> (Partitioned, KernelCost);
}

/// Mutable state shared by every algorithm's emulation loop.
pub(crate) struct Emu<'a> {
    pub keys_out: Vec<u64>,
    pub rids_out: Vec<u64>,
    /// Functional append cursor per partition (tuple index).
    pub cursors: Vec<usize>,
    /// Modeled flush address per partition: the real kernels pad each
    /// partition region to a 128-byte boundary so flushes stay aligned.
    pub model_addr: Vec<u64>,
    pub cost: KernelCost,
    pub link: LinkModel,
    pub tlb: TlbSim,
    pub instr: InstrCosts,
    pub input: &'a Span,
    pub output: &'a Span,
    pub skip_bits: u32,
    pub radix_bits: u32,
}

impl<'a> Emu<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: &str,
        n: usize,
        hist: &HistogramResult,
        input: &'a Span,
        output: &'a Span,
        pass: &PassConfig,
        hw: &HwConfig,
        aligned_regions: bool,
    ) -> Self {
        let mut cost = KernelCost::new(name);
        cost.sms = pass.sms;
        cost.tuples_in = n as u64;
        cost.tuples_out = n as u64;
        let model_addr = hist.offsets[..hist.fanout()]
            .iter()
            .map(|&o| {
                let b = o as u64 * TUPLE_BYTES;
                if aligned_regions {
                    b.div_ceil(128) * 128
                } else {
                    b
                }
            })
            .collect();
        Emu {
            keys_out: vec![0; n],
            rids_out: vec![0; n],
            cursors: hist.offsets[..hist.fanout()].to_vec(),
            model_addr,
            cost,
            link: LinkModel::new(&hw.link),
            tlb: TlbSim::new(hw),
            instr: InstrCosts::default(),
            input,
            output,
            skip_bits: pass.skip_bits,
            radix_bits: pass.radix_bits,
        }
    }

    /// Partition id of a key.
    #[inline]
    pub(crate) fn pid(&self, key: u64) -> usize {
        radix(multiply_shift(key), self.skip_bits, self.radix_bits)
    }

    /// Charge the sequential input read of one warp batch.
    pub(crate) fn charge_input(&mut self, first_tuple: usize, count: usize) {
        let mut ctx = ChargeCtx {
            cost: &mut self.cost,
            link: &self.link,
            tlb: &mut self.tlb,
        };
        ctx.seq_read(
            self.input,
            first_tuple as u64 * TUPLE_BYTES,
            count as u64 * TUPLE_BYTES,
        );
    }

    /// Append `tuples` to partition `p` functionally and charge the flush.
    ///
    /// For `aligned` algorithms the modeled address is re-padded to the
    /// transaction size after a partial flush: the real kernels give each
    /// thread block a padded region per partition, so a block-end drain
    /// never misaligns the next block's flushes.
    pub(crate) fn flush(&mut self, p: usize, tuples: &[(u64, u64)], aligned: bool) {
        if tuples.is_empty() {
            return;
        }
        let c = self.cursors[p];
        for (i, &(k, r)) in tuples.iter().enumerate() {
            self.keys_out[c + i] = k;
            self.rids_out[c + i] = r;
        }
        self.cursors[p] += tuples.len();
        let len = tuples.len() as u64 * TUPLE_BYTES;
        let addr = self.model_addr[p];
        self.model_addr[p] += len;
        if aligned {
            self.model_addr[p] = self.model_addr[p].div_ceil(128) * 128;
        }
        let mut ctx = ChargeCtx {
            cost: &mut self.cost,
            link: &self.link,
            tlb: &mut self.tlb,
        };
        ctx.flush_write(self.output, addr, len, aligned);
    }

    /// Finish: package the partitioned output.
    pub(crate) fn finish(
        self,
        hist: &HistogramResult,
        pass: &PassConfig,
    ) -> (Partitioned, KernelCost) {
        debug_assert!(self
            .cursors
            .iter()
            .zip(hist.offsets[1..].iter())
            .all(|(c, o)| c == o));
        (
            Partitioned {
                keys: self.keys_out,
                rids: self.rids_out,
                offsets: hist.offsets.clone(),
                radix_bits: pass.radix_bits,
                skip_bits: pass.skip_bits,
            },
            self.cost,
        )
    }

    /// Input chunks for the launch geometry.
    ///
    /// `min_tuples_per_block` keeps the emulation faithful at simulation
    /// scale: each block must see enough tuples to fill its buffers many
    /// times over, otherwise block-end drains (a boundary effect that is
    /// negligible at paper scale) would dominate the flush statistics.
    /// The block count is capped so that every block processes at least
    /// that many tuples.
    pub(crate) fn chunks(
        n: usize,
        pass: &PassConfig,
        hw: &HwConfig,
        min_tuples_per_block: usize,
    ) -> Vec<(usize, usize)> {
        let sms = if pass.sms == 0 {
            hw.gpu.num_sms
        } else {
            pass.sms.min(hw.gpu.num_sms)
        };
        let max_blocks = (sms * pass.blocks_per_sm).max(1) as usize;
        let density_cap = (n / min_tuples_per_block.max(1)).max(1);
        split_chunks(n, max_blocks.min(density_cap))
    }
}

/// Run the prefix sum and one partitioning pass back to back, returning
/// both kernel costs (the standalone setup of Fig 4 and Fig 18).
pub fn partition_standalone(
    part: &dyn GpuPartitioner,
    keys: &[u64],
    rids: &[u64],
    input: &Span,
    output: &Span,
    pass: &PassConfig,
    hw: &HwConfig,
) -> (Partitioned, KernelCost, KernelCost) {
    let (hist, ps_cost) = crate::prefix_sum::gpu_prefix_sum(keys, input, pass, hw, false);
    let (out, part_cost) = part.partition(keys, rids, &hist, input, output, pass, hw);
    (out, part_cost, ps_cost)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::prefix_sum::compute_histogram;
    use triton_datagen::WorkloadSpec;

    /// Assert the functional correctness invariants of a partitioner.
    pub fn check_partitioner(part: &dyn GpuPartitioner, radix_bits: u32, skip_bits: u32) {
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(1, 50).generate();
        let pass = PassConfig::new(radix_bits, skip_bits);
        let hist = compute_histogram(&w.r.keys, 160, radix_bits, skip_bits);
        let input = Span::cpu(0);
        let output = Span::cpu(1 << 40);
        let (p, cost) = part.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw);

        // Every tuple present exactly once, in the partition its hash says.
        assert_eq!(p.len(), w.r.len());
        let mut seen = std::collections::HashMap::new();
        for part_id in 0..p.fanout() {
            let (ks, rs) = p.partition(part_id);
            assert_eq!(ks.len(), rs.len());
            for (&k, &r) in ks.iter().zip(rs) {
                assert_eq!(
                    radix(multiply_shift(k), skip_bits, radix_bits),
                    part_id,
                    "tuple in wrong partition"
                );
                *seen.entry((k, r)).or_insert(0u32) += 1;
            }
        }
        for (k, r) in w.r.iter() {
            assert_eq!(seen.get(&(k, r)), Some(&1), "tuple lost or duplicated");
        }

        // Cost sanity: input was read once, output written once.
        let n_bytes = w.r.len() as u64 * 16;
        assert_eq!(cost.link.seq_read.0, n_bytes, "input read volume");
        let written = cost.link.seq_write.0
            + cost.link.rand_write.payload.0
            + cost.gpu_mem.write.0
            + cost.gpu_mem.rand_write.0;
        assert!(
            written >= n_bytes,
            "output write volume {written} < {n_bytes}"
        );
        assert!(cost.instructions > 0);
    }
}
