//! Fig 23: performance per Watt.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig23::print(&hw, &triton_bench::figs::PAPER_WORKLOADS);
}
