//! Criterion microbenchmarks of the four GPU partitioning algorithms
//! (host-side execution speed of the warp-granular emulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;
use triton_part::{compute_histogram, make_partitioner, Algorithm, PassConfig, Span};

fn bench_partitioners(c: &mut Criterion) {
    let hw = HwConfig::ac922().scaled(2048);
    let w = WorkloadSpec::paper_default(64, 2048).generate();
    let n = w.r.len();
    let bits = 8;
    let hist = compute_histogram(&w.r.keys, 8, bits, 0);
    let pass = PassConfig::new(bits, 0);
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);

    let mut g = c.benchmark_group("partition_fanout_256");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for alg in Algorithm::all() {
        let part = make_partitioner(alg);
        g.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, _| {
            b.iter(|| part.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw))
        });
    }
    g.finish();
}

fn bench_fanout_sweep(c: &mut Criterion) {
    let hw = HwConfig::ac922().scaled(2048);
    let w = WorkloadSpec::paper_default(64, 2048).generate();
    let part = make_partitioner(Algorithm::Hierarchical);
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);

    let mut g = c.benchmark_group("hierarchical_fanout");
    g.sample_size(10);
    for bits in [4u32, 8, 11] {
        let hist = compute_histogram(&w.r.keys, 8, bits, 0);
        let pass = PassConfig::new(bits, 0);
        g.bench_with_input(BenchmarkId::from_parameter(1 << bits), &bits, |b, _| {
            b.iter(|| part.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partitioners, bench_fanout_sweep);
criterion_main!(benches);
