//! Output-determinism property tests: the JSON and text reports must be
//! byte-identical across repeated runs and across arbitrary file-walk
//! orders. CI archives `lint-report.json`; a nondeterministic report
//! would make every diff against it noise.

use std::path::{Path, PathBuf};

use triton_lint::{analyze_files, walk};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// Deterministic Fisher-Yates driven by a splitmix64 stream — no
/// ambient entropy, so the test itself is reproducible.
fn shuffle(files: &mut [PathBuf], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..files.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        files.swap(i, j);
    }
}

#[test]
fn json_report_is_byte_identical_across_runs_and_walk_orders() {
    let root = workspace_root();
    let files = walk::workspace_rs_files(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks implausibly small: {} files",
        files.len()
    );

    let baseline = analyze_files(&root, &files).expect("analyze");
    let base_json = baseline.render_json();
    let base_text = baseline.render_text();

    // Repeated run over the same order.
    let again = analyze_files(&root, &files).expect("analyze");
    assert_eq!(base_json, again.render_json(), "same-order rerun diverged");

    // Shuffled, reversed, and re-shuffled walk orders.
    for seed in [3u64, 0xdead_beef, 41] {
        let mut shuffled = files.clone();
        shuffle(&mut shuffled, seed);
        let report = analyze_files(&root, &shuffled).expect("analyze shuffled");
        assert_eq!(
            base_json,
            report.render_json(),
            "walk order (seed {seed}) leaked into the JSON report"
        );
        assert_eq!(
            base_text,
            report.render_text(),
            "walk order (seed {seed}) leaked into the text report"
        );
    }
    let mut reversed = files.clone();
    reversed.reverse();
    let report = analyze_files(&root, &reversed).expect("analyze reversed");
    assert_eq!(base_json, report.render_json(), "reverse order diverged");
}

#[test]
fn json_report_is_json_lines_with_stable_summary() {
    let root = workspace_root();
    let files = walk::workspace_rs_files(&root).expect("walk workspace");
    let report = analyze_files(&root, &files).expect("analyze");
    let json = report.render_json();
    let lines: Vec<&str> = json.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }
    let last = lines.last().expect("summary line");
    assert!(
        last.contains("\"kind\":\"summary\""),
        "report must end with the summary row: {last}"
    );
    assert!(last.contains("\"unused_waivers\""));
}

#[test]
fn ratchet_render_matches_current_counts_and_reparses() {
    let root = workspace_root();
    let files = walk::workspace_rs_files(&root).expect("walk workspace");
    let report = analyze_files(&root, &files).expect("analyze");
    let rendered = report.render_ratchet();
    let parsed = triton_lint::report::Ratchet::parse(&rendered).expect("round-trip");
    assert!(
        report.ratchet_regressions(&parsed).is_empty(),
        "a freshly rendered ratchet can never regress against itself"
    );
}
