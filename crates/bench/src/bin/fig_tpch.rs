//! TPC-H-shaped plan sweep: pipelined vs materialize-everything over
//! scale and skew.
//!
//! Usage: `fig_tpch [--check] [--out PATH]`
//!
//! Prints the sweep table, writes the machine-readable sweep to `PATH`
//! (default `BENCH_tpch.json`), and with `--check` exits non-zero unless
//! the pipelined plan beats materialize-everything at the Q3 operating
//! point (θ = 1.0, the default scale).

use triton_bench::figs::fig_tpch;

fn main() {
    let mut check = false;
    let mut out = String::from("BENCH_tpch.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let hw = triton_bench::hw();
    let rows = fig_tpch::print(&hw, &fig_tpch::M_AXIS);
    let json = fig_tpch::to_json(&hw, &rows);
    std::fs::write(&out, &json).expect("write sweep JSON");
    println!("wrote {out}");

    if check {
        let win = fig_tpch::win_at_q3_operating_point(&rows).expect("operating point in sweep");
        if win <= 0.0 {
            eprintln!(
                "FAIL: pipelined plan not faster than materialize-everything at Q3 \
                 (slower by {:.2}%)",
                -win * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "check ok: pipelined beats materialize-everything at the Q3 operating point \
             ({:.1}% lower)",
            win * 100.0
        );
    }
}
