//! Fig 18: profiling the partitioning algorithms across fanouts.
fn main() {
    triton_bench::figs::fig18::print(&triton_bench::hw(), 3840);
}
