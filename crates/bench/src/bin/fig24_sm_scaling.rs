//! Fig 24: compute-power scaling over the SM count.
fn main() {
    triton_bench::figs::fig24::print(&triton_bench::hw(), 512);
}
