//! Fig 21: varying the build-to-probe ratio from 1:1 to 1:32 while
//! keeping the total data volume constant.
//!
//! Expected shape (Section 6.2.9): the no-partitioning join is extremely
//! ratio-sensitive (the 2048 M workload at 1:32 fits its hash table in
//! GPU memory again — the paper measures a 3414x swing for linear
//! probing), while the Triton join stays flat, because it partitions the
//! large outer relation regardless.

use triton_core::{NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload family in modeled M tuples (1:1 cardinality per side).
    pub m_tuples: u64,
    /// Probe-to-build ratio (1:x).
    pub ratio: u64,
    /// NPJ linear probing (G tuples/s).
    pub npj_lp: f64,
    /// NPJ perfect hashing.
    pub npj_perfect: f64,
    /// Triton bucket chaining.
    pub triton: f64,
}

/// The ratio axis.
pub const RATIOS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Run for the given workload families.
pub fn run(hw: &HwConfig, sizes: &[u64]) -> Vec<Row> {
    let k = hw.scale;
    let mut rows = Vec::new();
    for &m in sizes {
        for &ratio in &RATIOS {
            let w = WorkloadSpec::with_ratio(m, ratio, k).generate();
            rows.push(Row {
                m_tuples: m,
                ratio,
                npj_lp: NoPartitioningJoin::linear_probing()
                    .run(&w, hw)
                    .throughput_gtps(),
                npj_perfect: NoPartitioningJoin::perfect().run(&w, hw).throughput_gtps(),
                triton: TritonJoin::default().run(&w, hw).throughput_gtps(),
            });
        }
    }
    rows
}

/// Print the figure.
pub fn print(hw: &HwConfig, sizes: &[u64]) {
    crate::banner("Fig 21", "build-to-probe ratios at constant data volume");
    let mut t = crate::Table::new(["M tuples", "R:S", "NPJ LP", "NPJ Perfect", "Triton"]);
    for r in run(hw, sizes) {
        t.row([
            r.m_tuples.to_string(),
            format!("1:{}", r.ratio),
            format!("{:.4}", r.npj_lp),
            crate::f3(r.npj_perfect),
            crate::f3(r.triton),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triton_insensitive_npj_very_sensitive() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[2048]);
        let lp_1 = rows.iter().find(|r| r.ratio == 1).unwrap();
        let lp_32 = rows.iter().find(|r| r.ratio == 32).unwrap();
        // Paper: 1:32 is up to 3414x faster than 1:1 for linear probing.
        assert!(
            lp_32.npj_lp > lp_1.npj_lp * 20.0,
            "LP swing {} -> {}",
            lp_1.npj_lp,
            lp_32.npj_lp
        );
        // Triton stays within a narrow band (paper: 1.66-1.88 G/s).
        let t_min = rows.iter().map(|r| r.triton).fold(f64::INFINITY, f64::min);
        let t_max = rows.iter().map(|r| r.triton).fold(0.0f64, f64::max);
        assert!(t_max / t_min < 1.6, "Triton band {t_min}..{t_max}");
    }

    #[test]
    fn npj_preferred_at_extreme_ratios() {
        // Paper conclusion: a no-partitioning join should be preferred
        // for high probe ratios (the small build side stays in-core).
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[2048]);
        let at_32 = rows.iter().find(|r| r.ratio == 32).unwrap();
        assert!(at_32.npj_perfect > at_32.triton, "{at_32:?}");
    }
}
