//! Static power model (Section 6.2.11, Fig 23).
//!
//! The paper measures system energy over 50 joins on the AC922: 290 W idle,
//! GPU joins drawing 62-80 W on the GPU plus 10-11 W of CPU I/O facilities,
//! CPU joins drawing 178-206 W on the CPU. For the CPU-only comparison the
//! idle power of both GPUs (2 x 32 W) is subtracted. Power efficiency is
//! normalised throughput per watt.

use crate::config::PowerConfig;

/// Which processor executes the join (determines the power envelope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// CPU-only join; both GPUs' idle draw is subtracted from the system.
    Cpu,
    /// GPU join; includes the CPU I/O facilities serving the interconnect.
    Gpu,
}

/// Compute the power draw in watts attributed to a join on `exec`.
/// The paper's accounting (Section 6.2.11): a CPU join is charged its
/// *dynamic* package power over idle — the hypothetical CPU-only system
/// after subtracting both idle GPUs — which lands at ~115-135 W and
/// yields the 7-9.4 M tuples/s/W bars. A GPU join cannot shed its host:
/// it carries the whole idle system plus GPU load plus the CPU's I/O
/// facilities serving the interconnect.
pub fn join_power_w(p: &PowerConfig, exec: Executor) -> f64 {
    match exec {
        // Dynamic CPU package power: load minus the idle share already
        // counted in the system baseline.
        Executor::Cpu => p.cpu_load_w - p.cpu_idle_w,
        // System idle plus one loaded GPU plus the CPU I/O facilities.
        Executor::Gpu => p.system_idle_w + p.gpu_load_w + p.cpu_io_w,
    }
}

/// Power efficiency in M tuples/s/W given a throughput in tuples/s.
pub fn efficiency_mtps_per_w(p: &PowerConfig, exec: Executor, tuples_per_sec: f64) -> f64 {
    tuples_per_sec / 1e6 / join_power_w(p, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;

    #[test]
    fn cpu_power_envelope() {
        let p = HwConfig::ac922().power;
        let w = join_power_w(&p, Executor::Cpu);
        // Dynamic package power: 192 - 60 = 132 W, in the range implied
        // by the paper's 7-9.4 M tuples/s/W at ~1.1 G tuples/s.
        assert!((w - 132.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_power_envelope() {
        let p = HwConfig::ac922().power;
        let w = join_power_w(&p, Executor::Gpu);
        // 290 + 71 + 10.5 = 371.5 W.
        assert!((w - 371.5).abs() < 1e-9);
    }

    #[test]
    fn efficiency_scales_with_throughput() {
        let p = HwConfig::ac922().power;
        let e1 = efficiency_mtps_per_w(&p, Executor::Cpu, 1.0e9);
        let e2 = efficiency_mtps_per_w(&p, Executor::Cpu, 2.0e9);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
        // Paper's Fig 23 range for the CPU: ~7-9.4 M tuples/s/W at ~3-3.9
        // G tuples/s equivalent... sanity: 1.1 G tuples/s -> ~2.6.
        assert!(e1 > 0.0);
    }
}
