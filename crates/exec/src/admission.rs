//! Admission control: per-query GPU memory reservations through the
//! simulated allocator, so concurrent joins never oversubscribe device
//! memory.
//!
//! Each operator already sizes its own working set against the full GPU
//! (`TritonJoin` reserves two partition-pair buffers plus an eighth of
//! device memory for the runtime, then caches the rest; the NPJ caches
//! its hash table). Under concurrency the controller makes that budget
//! explicit: it reserves the operator's *pipeline floor* and hands out a
//! *cache grant* from whatever device memory remains, and the query runs
//! with `cache_bytes = Some(grant)` so its internal allocator stays
//! inside the reservation. The sum of reservations can never exceed the
//! (scaled) GPU capacity — that is enforced by a [`SimAllocator`], the
//! same capacity arithmetic the operators use.

use std::collections::HashMap;

use triton_core::TritonJoin;
use triton_datagen::TUPLE_BYTES;
use triton_hw::units::Bytes;
use triton_hw::{HwConfig, MemSide};
use triton_mem::{Allocation, OutOfMemory, SimAllocator};

use crate::query::{JoinQuery, Operator, QueryId};

/// A granted reservation for one admitted query.
#[derive(Debug, Clone, Copy)]
pub struct Reservation {
    /// Total GPU bytes reserved (pipeline floor + cache grant).
    pub reserved: Bytes,
    /// Cache budget the operator may use for its working set; the query
    /// executes with `cache_bytes = Some(cache_grant)`.
    pub cache_grant: Bytes,
}

/// The admission controller. Owns a [`SimAllocator`] whose GPU side is
/// the shared device-memory budget of all in-flight queries.
#[derive(Debug)]
pub struct AdmissionController {
    alloc: SimAllocator,
    capacity: Bytes,
    grants: HashMap<QueryId, (Allocation, Reservation)>,
    /// High-water mark of reserved GPU bytes (for metrics/tests).
    pub peak_reserved: Bytes,
}

impl AdmissionController {
    /// Build for a machine configuration.
    pub fn new(hw: &HwConfig) -> Self {
        AdmissionController {
            alloc: SimAllocator::new(hw),
            capacity: hw.gpu.mem_capacity,
            grants: HashMap::new(),
            peak_reserved: Bytes(0),
        }
    }

    /// Total GPU capacity being arbitrated.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// GPU bytes currently reserved across all in-flight queries.
    pub fn reserved(&self) -> Bytes {
        self.alloc.used(MemSide::Gpu)
    }

    /// GPU bytes still grantable.
    pub fn available(&self) -> Bytes {
        self.alloc.available(MemSide::Gpu)
    }

    /// The minimum GPU reservation `query` needs to start: the pipeline
    /// floor without any cache grant. A query whose floor exceeds the
    /// whole GPU can never be admitted (the caller should reject it
    /// permanently rather than queue it).
    pub fn min_reserve(query: &JoinQuery, hw: &HwConfig) -> Bytes {
        let r_bytes = query.workload.r.len() as u64 * TUPLE_BYTES;
        let s_bytes = query.workload.s.len() as u64 * TUPLE_BYTES;
        let total = r_bytes + s_bytes;
        match &query.op {
            Operator::Triton(_) => {
                // Mirrors TritonJoin::try_run's internal reservation: two
                // partition-pair buffers plus an eighth of device memory
                // for the runtime and staging.
                let b1 = TritonJoin::pass1_bits(r_bytes, total, hw);
                let pair = (total >> b1).max(1);
                Bytes(2 * pair + hw.gpu.mem_capacity.0 / 8)
            }
            // NPJ streams the inputs; only the runtime slice is a floor
            // (the hash table degrades gracefully to CPU memory).
            Operator::NoPartitioning(_) => Bytes(hw.gpu.mem_capacity.0 / 8),
            // CPU operators take no GPU memory at all.
            Operator::CpuRadix(_) => Bytes(0),
        }
    }

    /// The cache bytes `query` could profitably use on top of the floor.
    fn cache_desired(query: &JoinQuery) -> u64 {
        let r_bytes = query.workload.r.len() as u64 * TUPLE_BYTES;
        let s_bytes = query.workload.s.len() as u64 * TUPLE_BYTES;
        match &query.op {
            // The whole partitioned working set, ideally.
            Operator::Triton(_) => r_bytes + s_bytes,
            Operator::NoPartitioning(j) => j.table_bytes(query.workload.r.len()),
            Operator::CpuRadix(_) => 0,
        }
    }

    /// Try to reserve memory for `query`. On success the query may start
    /// immediately; the reservation stays held until [`Self::release`].
    ///
    /// The error carries the floor that could not be met, so the caller
    /// can distinguish *backpressure* (wait for a release) from
    /// *over-capacity* (the floor exceeds the entire GPU: shed).
    pub fn try_admit(
        &mut self,
        id: QueryId,
        query: &JoinQuery,
        hw: &HwConfig,
    ) -> Result<Reservation, OutOfMemory> {
        let floor = Self::min_reserve(query, hw);
        let free = self.available().0;
        if floor.0 > free {
            return Err(OutOfMemory {
                side: MemSide::Gpu,
                requested: floor,
                available: Bytes(free),
            });
        }
        // Grant cache from the remainder, leaving headroom so one greedy
        // query cannot starve the queue: cap each grant at half of what
        // is free after the floor.
        let after_floor = free - floor.0;
        let grant = Self::cache_desired(query).min(after_floor / 2);
        let total = Bytes(floor.0 + grant);
        let allocation = self.alloc.alloc(MemSide::Gpu, total)?;
        let reservation = Reservation {
            reserved: Bytes(allocation.len),
            cache_grant: Bytes(grant),
        };
        self.grants.insert(id, (allocation, reservation));
        let now = self.reserved();
        if now > self.peak_reserved {
            self.peak_reserved = now;
        }
        Ok(reservation)
    }

    /// Release the reservation of a finished (or failed) query.
    pub fn release(&mut self, id: QueryId) {
        if let Some((allocation, _)) = self.grants.remove(&id) {
            self.alloc.free(allocation);
        }
    }

    /// Number of queries currently holding reservations.
    pub fn in_flight(&self) -> usize {
        self.grants.len()
    }
}

/// Clone `query`'s operator with its cache budget clamped to the granted
/// reservation, so the dedicated-run report reflects exactly the memory
/// admission handed out.
pub fn operator_with_grant(query: &JoinQuery, grant: &Reservation) -> Operator {
    match &query.op {
        Operator::Triton(j) => Operator::Triton(TritonJoin {
            cache_bytes: Some(grant.cache_grant),
            ..j.clone()
        }),
        Operator::NoPartitioning(j) => {
            let mut j = j.clone();
            j.cache_bytes = Some(grant.cache_grant);
            Operator::NoPartitioning(j)
        }
        Operator::CpuRadix(j) => Operator::CpuRadix(j.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;
    use triton_hw::units::Ns;

    fn query(m: u64, k: u64) -> JoinQuery {
        JoinQuery::new("q", WorkloadSpec::paper_default(m, k).generate(), Ns::ZERO)
    }

    #[test]
    fn reservations_never_exceed_capacity() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let mut admitted = 0;
        for i in 0..64 {
            match ac.try_admit(QueryId(i), &q, &hw) {
                Ok(_) => admitted += 1,
                Err(e) => {
                    assert_eq!(e.side, MemSide::Gpu);
                    break;
                }
            }
        }
        assert!(admitted >= 2, "the GPU should fit at least two queries");
        assert!(ac.reserved() <= ac.capacity());
        assert_eq!(ac.in_flight(), admitted as usize);
    }

    #[test]
    fn release_returns_budget() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let before = ac.available();
        ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert!(ac.available() < before);
        ac.release(QueryId(0));
        assert_eq!(ac.available(), before);
        assert!(ac.peak_reserved.0 > 0);
    }

    #[test]
    fn cpu_query_needs_no_gpu_memory() {
        let hw = HwConfig::ac922().scaled(512);
        let mut q = query(64, 512);
        q.op = Operator::CpuRadix(triton_core::CpuRadixJoin::power9(
            triton_core::HashScheme::BucketChaining,
        ));
        assert_eq!(AdmissionController::min_reserve(&q, &hw), Bytes(0));
        let mut ac = AdmissionController::new(&hw);
        let r = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert_eq!(r.reserved, Bytes(0));
    }

    #[test]
    fn grant_clamps_operator_cache() {
        let hw = HwConfig::ac922().scaled(512);
        let q = query(64, 512);
        let mut ac = AdmissionController::new(&hw);
        let r = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        match operator_with_grant(&q, &r) {
            Operator::Triton(j) => assert_eq!(j.cache_bytes, Some(r.cache_grant)),
            _ => panic!("expected a Triton operator"),
        }
    }
}
