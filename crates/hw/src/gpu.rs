//! GPU execution geometry: thread blocks, warps, and chunk assignment.
//!
//! The simulator executes kernels functionally at warp granularity. This
//! module provides the launch geometry helpers every kernel shares: how
//! many thread blocks a kernel launches, which contiguous input chunk each
//! block owns, and how items within a chunk group into warp-sized batches.

use crate::config::GpuConfig;

/// Launch geometry for a data-parallel kernel.
#[derive(Debug, Clone, Copy)]
pub struct LaunchGeometry {
    /// Thread blocks launched.
    pub blocks: u32,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Threads per warp.
    pub warp_size: u32,
}

impl LaunchGeometry {
    /// The default occupancy-oriented launch used by the partitioning and
    /// join kernels: `blocks_per_sm` blocks on each available SM.
    pub fn for_gpu(gpu: &GpuConfig, sms: u32, blocks_per_sm: u32, warps_per_block: u32) -> Self {
        let sms = if sms == 0 {
            gpu.num_sms
        } else {
            sms.min(gpu.num_sms)
        };
        LaunchGeometry {
            blocks: sms * blocks_per_sm,
            warps_per_block,
            warp_size: gpu.warp_size,
        }
    }

    /// Total threads in the launch.
    pub fn threads(&self) -> u64 {
        self.blocks as u64 * self.warps_per_block as u64 * self.warp_size as u64
    }

    /// Split `n` items into one contiguous chunk per block. Returns
    /// `(start, end)` ranges; blocks beyond the item count get empty
    /// ranges. Chunks differ in size by at most one item.
    pub fn block_chunks(&self, n: usize) -> Vec<(usize, usize)> {
        split_chunks(n, self.blocks as usize)
    }
}

/// Split `n` items into `parts` contiguous ranges differing by at most one.
pub fn split_chunks(n: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Iterate `range` in warp-sized batches, calling `f(batch_start, batch_len)`.
pub fn for_each_warp_batch(
    range: (usize, usize),
    warp_size: usize,
    mut f: impl FnMut(usize, usize),
) {
    let (start, end) = range;
    let mut i = start;
    while i < end {
        let len = warp_size.min(end - i);
        f(i, len);
        i += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;

    #[test]
    fn chunks_cover_input_exactly() {
        for n in [0usize, 1, 7, 160, 1000, 1001] {
            let chunks = split_chunks(n, 160);
            assert_eq!(chunks.len(), 160);
            assert_eq!(chunks[0].0, 0);
            assert_eq!(chunks.last().unwrap().1, n);
            let total: usize = chunks.iter().map(|(s, e)| e - s).sum();
            assert_eq!(total, n);
            for w in chunks.windows(2) {
                assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
                assert!(w[0].1 - w[0].0 <= w[1].1 - w[1].0 + 1);
            }
        }
    }

    #[test]
    fn warp_batches_cover_range() {
        let mut seen = 0usize;
        let mut batches = 0;
        for_each_warp_batch((10, 75), 32, |start, len| {
            assert!(start >= 10 && start + len <= 75);
            seen += len;
            batches += 1;
        });
        assert_eq!(seen, 65);
        assert_eq!(batches, 3); // 32 + 32 + 1
    }

    #[test]
    fn geometry_respects_sm_cap() {
        let gpu = HwConfig::ac922().gpu;
        let g = LaunchGeometry::for_gpu(&gpu, 200, 2, 8);
        assert_eq!(g.blocks, 160); // capped at 80 SMs x 2
        let g = LaunchGeometry::for_gpu(&gpu, 0, 1, 8);
        assert_eq!(g.blocks, 80);
        assert_eq!(g.threads(), 80 * 8 * 32);
    }
}
