//! Build-side sharing: probe batches against the same build relation
//! reuse its partitioned state instead of re-partitioning R per query.
//!
//! The partitioned build relation (the output of PS 1 + Part 1 restricted
//! to R) lives in the hybrid array whose spill side is CPU memory — which
//! is plentiful — so the cache tracks *which* build relations are
//! resident and reference counts, not GPU bytes; GPU cache pages are
//! re-granted per query by admission control. A hit lets the scheduler
//! discount the build side's share of the first partitioning pass (see
//! [`crate::demand::ResourceDemand::from_report`]).

use std::collections::HashMap;

/// Refcounted registry of resident partitioned build relations.
#[derive(Debug, Default)]
pub struct BuildCache {
    entries: HashMap<u64, Entry>,
    /// Queries that found their build side already partitioned.
    pub hits: u64,
    /// Queries that had to partition their build side themselves.
    pub misses: u64,
}

#[derive(Debug)]
struct Entry {
    refs: usize,
    /// Build-side bytes (reporting only; the state lives in CPU memory).
    r_bytes: u64,
}

impl BuildCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire the build state for `key`, pinning it while the query
    /// runs. Returns `true` on a hit (state already resident — the query
    /// skips re-partitioning R), `false` on a miss (this query
    /// partitions R and leaves the state behind for followers).
    pub fn acquire(&mut self, key: u64, r_bytes: u64) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.refs += 1;
                self.hits += 1;
                true
            }
            None => {
                self.entries.insert(key, Entry { refs: 1, r_bytes });
                self.misses += 1;
                false
            }
        }
    }

    /// Unpin after the query finishes. Idle entries stay resident for
    /// later probe batches until [`Self::evict_idle`].
    pub fn release(&mut self, key: u64) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.refs = e.refs.saturating_sub(1);
        }
    }

    /// Drop all unpinned entries, returning the bytes retired.
    pub fn evict_idle(&mut self) -> u64 {
        let mut freed = 0;
        self.entries.retain(|_, e| {
            if e.refs == 0 {
                freed += e.r_bytes;
                false
            } else {
                true
            }
        });
        freed
    }

    /// Number of resident build relations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_is_miss_then_hits() {
        let mut c = BuildCache::new();
        assert!(!c.acquire(7, 1000));
        assert!(c.acquire(7, 1000));
        assert!(c.acquire(7, 1000));
        assert!(!c.acquire(8, 500));
        assert_eq!((c.hits, c.misses), (2, 2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_spares_pinned_entries() {
        let mut c = BuildCache::new();
        c.acquire(1, 100);
        c.acquire(2, 200);
        c.release(2);
        assert_eq!(c.evict_idle(), 200);
        assert_eq!(c.len(), 1);
        c.release(1);
        assert_eq!(c.evict_idle(), 100);
        assert!(c.is_empty());
    }
}
