//! F2 clean fixture: every KernelCost that accrues link traffic is
//! priced through the roofline model or escapes the function.

pub fn priced_through_timing(hw: &HwConfig, delta: Bytes) -> Ns {
    let mut k = KernelCost::new("reclaim", Tuples(0), Tuples(0));
    k.link.seq_write = delta;
    k.timing(hw).total
}

pub fn pushed_to_caller(delta: Bytes, out: &mut Vec<KernelCost>) {
    let mut k = KernelCost::new("exchange", Tuples(0), Tuples(0));
    k.link.seq_read += delta;
    out.push(k);
}

pub fn returned_for_later_pricing(delta: Bytes) -> KernelCost {
    let mut k = KernelCost::new("handoff", Tuples(0), Tuples(0));
    k.link.seq_write = delta;
    k
}

pub fn no_link_traffic_no_obligation(delta: Bytes) -> u64 {
    let mut k = KernelCost::new("local", Tuples(0), Tuples(0));
    k.gpu_mem.read = delta;
    k.gpu_mem.read.0
}
