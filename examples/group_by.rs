//! Beyond joins: the same GPU-partitioned strategy applied to group-by
//! aggregation and duplicate elimination (the paper's Section 2.2 notes
//! that radix partitioning serves these operators too).
//!
//! ```text
//! cargo run --release --example group_by -p triton-core
//! ```

use triton_core::{gpu_distinct, npj_style_aggregate, reference_aggregate, GpuAggregation};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

fn main() {
    let k = 512;
    let hw = HwConfig::ac922().scaled(k);

    // A heavily duplicated input: the skewed probe side of a 1024 M-tuple
    // workload (think: fact-table column with a hot domain).
    let rel = WorkloadSpec::skewed(1024, 0.8, k).generate().s;
    println!(
        "input: {} tuples, aggregating SUM/COUNT per key\n",
        rel.len()
    );

    let expect = reference_aggregate(&rel);
    let (agg, partitioned) = GpuAggregation::default().run(&rel, &hw);
    let (agg2, npj) = npj_style_aggregate(&rel, &hw);
    assert_eq!(agg, expect, "partitioned aggregation must be exact");
    assert_eq!(agg2, expect, "baseline aggregation must be exact");

    println!("distinct groups: {}", agg.groups);
    println!(
        "GPU-partitioned aggregation: {:8.3} G tuples/s  ({})",
        partitioned.throughput_gtps(),
        partitioned.total
    );
    println!(
        "no-partitioning baseline:    {:8.3} G tuples/s  ({})",
        npj.throughput_gtps(),
        npj.total
    );
    println!("speedup: {:.2}x", npj.total.0 / partitioned.total.0);

    let (distinct, rep) = gpu_distinct(&rel, &hw);
    println!(
        "\nDISTINCT over the same column: {} keys at {:.3} G tuples/s",
        distinct,
        rep.throughput_gtps()
    );

    println!(
        "\nGroup state behaves exactly like join state: once it outgrows\n\
         GPU memory, a global hash table pays a random interconnect access\n\
         per update, while the partitioned operator streams each partition\n\
         through a scratchpad-resident table."
    );
}
