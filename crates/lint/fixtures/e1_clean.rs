//! E1 clean fixture: exhaustive matches over invariant enums, plus the
//! shapes E1 must not flag — `_` nested inside a constructor pattern,
//! and wildcards over enums outside the invariant list.

pub fn explicit_variants(k: &FaultKind) -> f64 {
    match k {
        FaultKind::LinkDegrade { factor } => *factor,
        FaultKind::GpuMemRetire { .. } | FaultKind::KernelFault | FaultKind::CpuSlowdown { .. } => {
            1.0
        }
    }
}

pub fn nested_wildcard_inside_constructor(r: Option<RejectReason>) -> u32 {
    match r {
        Some(RejectReason::QueueFull) => 1,
        Some(_) => 2,
        None => 0,
    }
}

pub fn plain_enums_may_wildcard(op: &Operator) -> bool {
    match op {
        Operator::Scan => true,
        _ => false,
    }
}
