//! Fig 17: partitioning algorithm effect on the radix join.
fn main() {
    let hw = triton_bench::hw();
    triton_bench::figs::fig17::print(&hw, &[128, 512, 1024, 1536, 2048]);
}
