//! Deterministic workspace traversal: which `.rs` files the analyzer
//! scans, in sorted order (directory-listing order is itself
//! nondeterministic — the tool practices what it preaches).

use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS metadata,
/// and the lint fixtures (which violate rules on purpose).
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Collect every `.rs` file under the workspace roots we own:
/// `crates/`, top-level `tests/`, and top-level `examples/`.
pub fn workspace_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative label with forward slashes, for stable reports
/// across platforms.
pub fn rel_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}
