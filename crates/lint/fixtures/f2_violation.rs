//! F2 fixture: KernelCost values that accrue `.link` traffic and are
//! then dropped unpriced. Two hits expected.

pub fn leak_link_write(delta: Bytes) -> Ns {
    let mut k = KernelCost::new("reclaim", Tuples(0), Tuples(0));
    k.link.seq_write = delta;
    k.gpu_mem.read = delta;
    Ns(0.0)
}

pub fn mutate_and_read_only(delta: Bytes) -> u64 {
    let mut c = KernelCost::new("spill", Tuples(0), Tuples(0));
    c.link.seq_read += delta;
    c.link.seq_read.0
}
