//! The Linear radix partitioner: linear-allocator software write-combining.
//!
//! The state of the art for in-GPU partitioning (Section 2.2): a thread
//! block stages a batch of tuples in scratchpad using an atomically
//! incremented linear allocator, sorts the batch by partition, and flushes
//! each partition's run to global memory. Coalescing is only
//! *opportunistic*: a run's length is `batch / fanout` on average and its
//! destination offset is arbitrary, so runs rarely form whole aligned
//! 128-byte lines — the effect Fig 18(b,c) quantifies as low
//! tuples-per-transaction and up to 156% interconnect overhead.

use triton_datagen::TUPLE_BYTES;
use triton_hw::kernel::KernelCost;
use triton_hw::HwConfig;

use crate::common::{Partitioned, PassConfig, Span};
use crate::partitioner::{Algorithm, Emu, GpuPartitioner};
use crate::prefix_sum::HistogramResult;

/// The Linear (linear-allocator SWWC) partitioner.
#[derive(Debug, Clone, Copy)]
pub struct LinearSwwc {
    /// Fraction of the scratchpad usable for the staging batch (the rest
    /// holds the allocator state and per-partition metadata).
    pub scratchpad_fraction: f64,
}

impl Default for LinearSwwc {
    fn default() -> Self {
        LinearSwwc {
            scratchpad_fraction: 1.0,
        }
    }
}

impl LinearSwwc {
    fn batch_tuples(&self, hw: &HwConfig) -> usize {
        ((hw.gpu.scratchpad.as_f64() * self.scratchpad_fraction) as u64 / TUPLE_BYTES).max(32)
            as usize
    }
}

impl GpuPartitioner for LinearSwwc {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Linear
    }

    fn partition(
        &self,
        keys: &[u64],
        rids: &[u64],
        hist: &HistogramResult,
        input: &Span,
        output: &Span,
        pass: &PassConfig,
        hw: &HwConfig,
    ) -> (Partitioned, KernelCost) {
        let n = keys.len();
        let fanout = pass.fanout();
        let batch_cap = self.batch_tuples(hw);
        let mut emu = Emu::new(
            "partition (linear)",
            n,
            hist,
            input,
            output,
            pass,
            hw,
            false,
        );

        // Reused staging area: one bucket per partition (the functional
        // equivalent of sorting the batch by partition id).
        let mut buckets: Vec<Vec<(u64, u64)>> = vec![Vec::new(); fanout];
        let mut staged = 0usize;

        let flush_batch =
            |emu: &mut Emu, buckets: &mut Vec<Vec<(u64, u64)>>, staged: &mut usize| {
                // In-scratchpad counting sort of the staged batch.
                emu.cost.instructions += *staged as u64 * emu.instr.sort_per_tuple;
                for (p, bucket) in buckets.iter_mut().enumerate() {
                    if bucket.is_empty() {
                        continue;
                    }
                    emu.cost.instructions +=
                        emu.instr.flush_fixed + bucket.len() as u64 * emu.instr.flush_per_tuple;
                    // Run start offsets are arbitrary: unaligned flush.
                    emu.flush(p, bucket, false);
                    bucket.clear();
                }
                emu.cost.sync_cycles += 96; // block-wide barrier around the sort
                *staged = 0;
            };

        for (s, e) in Emu::chunks(n, pass, hw, batch_cap * 32) {
            let mut i = s;
            while i < e {
                let wbatch = 32.min(e - i);
                emu.charge_input(i, wbatch);
                emu.cost.instructions += wbatch as u64 * emu.instr.fill_per_tuple;
                for j in i..i + wbatch {
                    let p = emu.pid(keys[j]);
                    buckets[p].push((keys[j], rids[j]));
                    staged += 1;
                    if staged == batch_cap {
                        flush_batch(&mut emu, &mut buckets, &mut staged);
                    }
                }
                i += wbatch;
            }
            // Block end: drain the partial batch.
            if staged > 0 {
                flush_batch(&mut emu, &mut buckets, &mut staged);
            }
        }
        emu.finish(hist, pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::testutil::check_partitioner;
    use crate::prefix_sum::compute_histogram;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn functional_correctness() {
        check_partitioner(&LinearSwwc::default(), 6, 0);
        check_partitioner(&LinearSwwc::default(), 4, 6);
    }

    #[test]
    fn coalescing_degrades_with_fanout() {
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(2, 100).generate();
        let input = Span::cpu(0);
        let output = Span::cpu(1 << 40);
        let tpt = |bits: u32| {
            let pass = PassConfig::new(bits, 0);
            let hist = compute_histogram(&w.r.keys, 160, bits, 0);
            let (_, cost) = LinearSwwc::default()
                .partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw);
            cost.tuples_per_txn()
        };
        let low = tpt(2);
        let high = tpt(10);
        assert!(
            low > high,
            "tuples/txn must fall with fanout: {low} vs {high}"
        );
        // At fanout 1024, the average run is ~4 tuples: far from the
        // 8-tuples-per-line optimum.
        assert!(high < 4.0, "high-fanout tuples/txn {high}");
    }
}
