//! Crate-level behavioural tests for `triton-part`: cost-model effects the
//! unit tests do not cover, exercised across algorithms, destinations, and
//! placements.

use triton_datagen::{WorkloadSpec, TUPLE_BYTES};
use triton_hw::{Bytes, HwConfig, MemSide};
use triton_mem::SimAllocator;
use triton_part::{
    compute_histogram, cpu_swwc_partition, gpu_prefix_sum, make_partitioner, partition_standalone,
    Algorithm, PassConfig, Span,
};

fn hw() -> HwConfig {
    HwConfig::ac922().scaled(2048)
}

fn workload(m: u64) -> triton_datagen::Workload {
    WorkloadSpec::paper_default(m, 2048).generate()
}

#[test]
fn all_algorithms_same_functional_output() {
    let hw = hw();
    let w = workload(8);
    let bits = 6;
    let hist = compute_histogram(&w.r.keys, 1, bits, 0);
    let pass = PassConfig::new(bits, 0);
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);
    let mut outputs = Vec::new();
    for alg in Algorithm::all() {
        let (p, _) = make_partitioner(alg)
            .partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw);
        // Same offsets always; same multiset within each partition.
        let mut per_part: Vec<Vec<(u64, u64)>> = (0..p.fanout())
            .map(|i| {
                let (ks, rs) = p.partition(i);
                let mut v: Vec<_> = ks.iter().copied().zip(rs.iter().copied()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        per_part.insert(0, vec![(p.offsets.len() as u64, 0)]);
        outputs.push(per_part);
    }
    for o in &outputs[1..] {
        assert_eq!(
            o, &outputs[0],
            "partition contents must agree across algorithms"
        );
    }
}

#[test]
fn gpu_destination_avoids_the_link_writes() {
    let hw = hw();
    let w = workload(8);
    let pass = PassConfig::new(6, 0);
    let part = make_partitioner(Algorithm::Shared);
    let input = Span::cpu(0);
    let (_, to_cpu, _) = partition_standalone(
        part.as_ref(),
        &w.r.keys,
        &w.r.rids,
        &input,
        &Span::cpu(1 << 40),
        &pass,
        &hw,
    );
    let (_, to_gpu, _) = partition_standalone(
        part.as_ref(),
        &w.r.keys,
        &w.r.rids,
        &input,
        &Span::gpu(1 << 40),
        &pass,
        &hw,
    );
    assert!(to_cpu.link.rand_write.payload.0 > 0);
    assert_eq!(to_gpu.link.rand_write.payload.0, 0);
    assert!(to_gpu.gpu_mem.write.0 >= w.r.len() as u64 * TUPLE_BYTES);
    // Writing to GPU memory is faster than spilling over the link.
    assert!(to_gpu.timing(&hw).total.0 < to_cpu.timing(&hw).total.0);
}

#[test]
fn hybrid_destination_splits_by_cached_fraction() {
    let hw = hw();
    let w = workload(8);
    let bytes = w.r.len() as u64 * TUPLE_BYTES;
    let mut alloc = SimAllocator::new(&hw);
    let layout = alloc.alloc_hybrid(Bytes(bytes), Bytes(bytes / 2)).unwrap();
    let frac = layout.gpu_bytes() as f64 / bytes as f64;
    let span = Span::hybrid(layout);
    let pass = PassConfig::new(6, 0);
    let (_, cost, _) = partition_standalone(
        make_partitioner(Algorithm::Hierarchical).as_ref(),
        &w.r.keys,
        &w.r.rids,
        &Span::cpu(0),
        &span,
        &pass,
        &hw,
    );
    // Output bytes split between GPU memory and the link roughly by the
    // cached fraction. (Hierarchical also stages everything through its
    // GPU-memory L2 tier, so subtract the input bytes from gpu writes.)
    let link_out = cost.link.rand_write.payload.0 as f64;
    let spilled_expect = bytes as f64 * (1.0 - frac);
    assert!(
        (link_out / spilled_expect - 1.0).abs() < 0.15,
        "link out {link_out} vs expected {spilled_expect} (frac {frac})"
    );
}

#[test]
fn second_pass_skip_bits_compose() {
    // Partitioning by (b1, then b2 skipping b1) refines the first pass:
    // every pass-2 partition is a subset of exactly one pass-1 partition.
    let hw = hw();
    let w = workload(4);
    let (b1, b2) = (4u32, 3u32);
    let h1 = compute_histogram(&w.r.keys, 1, b1, 0);
    let pass1 = PassConfig::new(b1, 0);
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);
    let part = make_partitioner(Algorithm::Shared);
    let (p1, _) = part.partition(&w.r.keys, &w.r.rids, &h1, &input, &output, &pass1, &hw);
    for i in 0..p1.fanout() {
        let (ks, rs) = p1.partition(i);
        let h2 = compute_histogram(ks, 1, b2, b1);
        let mut cfg2 = PassConfig::new(b2, b1);
        cfg2.sms = 8;
        let (p2, _) = part.partition(ks, rs, &h2, &input, &output, &cfg2, &hw);
        for q in 0..p2.fanout() {
            let (qk, _) = p2.partition(q);
            for &k in qk {
                use triton_datagen::{multiply_shift, radix};
                assert_eq!(radix(multiply_shift(k), 0, b1), i);
                assert_eq!(radix(multiply_shift(k), b1, b2), q);
            }
        }
    }
}

#[test]
fn standalone_prefix_sum_reads_only_keys() {
    let hw = hw();
    let w = workload(8);
    let pass = PassConfig::new(8, 0);
    let (_, ps) = gpu_prefix_sum(&w.r.keys, &Span::cpu(0), &pass, &hw, false);
    assert_eq!(ps.link.seq_read.0, w.r.len() as u64 * 8);
}

#[test]
fn cpu_partition_cost_monotone_in_tuples_and_passes() {
    let hw = hw();
    let t1 = triton_part::cpu_partition_time(1_000_000, 12, 1, &hw);
    let t2 = triton_part::cpu_partition_time(2_000_000, 12, 1, &hw);
    let t1p2 = triton_part::cpu_partition_time(1_000_000, 12, 2, &hw);
    assert!(t2.0 > t1.0 * 1.9);
    assert!(t1p2.0 > t1.0 * 1.8);
}

#[test]
fn cpu_partition_is_functional_with_skip_bits() {
    let hw = hw();
    let w = workload(2);
    let res = cpu_swwc_partition(&w.r.keys, &w.r.rids, 4, 5, w.r.len() as u64, &hw);
    use triton_datagen::{multiply_shift, radix};
    for p in 0..res.parts.fanout() {
        let (ks, _) = res.parts.partition(p);
        for &k in ks {
            assert_eq!(radix(multiply_shift(k), 5, 4), p);
        }
    }
}

#[test]
fn span_slicing_shifts_placement() {
    let hw = hw();
    let mut alloc = SimAllocator::new(&hw);
    let page = alloc.page_size();
    // Prefix placement: first half GPU, second half CPU.
    let layout = alloc
        .alloc_hybrid_with(Bytes(page * 8), Bytes(page * 4), false)
        .unwrap();
    let span = Span::hybrid(layout);
    assert_eq!(span.side_of(0), MemSide::Gpu);
    assert_eq!(span.side_of(page * 7), MemSide::Cpu);
    // A slice starting in the CPU half sees CPU at offset 0.
    let slice = span.slice(page * 5);
    assert_eq!(slice.side_of(0), MemSide::Cpu);
    let (g, c) = slice.split_range(0, page * 2);
    assert_eq!((g, c), (0, page * 2));
}

#[test]
fn standard_scatter_serializes_on_walkers_out_of_core() {
    // The Standard algorithm's atomic reads walk the page table; at data
    // sizes beyond the translation coverage this must show up as
    // serialized walks (the mechanism behind its 10-minute runtimes).
    let hw = HwConfig::ac922().scaled(512);
    // ~60 GiB modeled and fanout 2048: the Fig 18 regime where the
    // frontier working set exceeds every translation level.
    let w = WorkloadSpec::paper_default(3840, 512).generate();
    let bits = 11;
    let hist = compute_histogram(&w.r.keys, 1, bits, 0);
    let pass = PassConfig::new(bits, 0);
    let (_, cost) = make_partitioner(Algorithm::Standard).partition(
        &w.r.keys,
        &w.r.rids,
        &hist,
        &Span::cpu(0),
        &Span::cpu(1 << 40),
        &pass,
        &hw,
    );
    assert!(
        cost.tlb.serialized_walks > w.r.len() as u64 / 4,
        "walks {} for {} tuples",
        cost.tlb.serialized_walks,
        w.r.len()
    );
    let timing = cost.timing(&hw);
    assert_eq!(timing.bound(), triton_hw::Bound::TlbService);
}
