//! Hardware configuration: the AC922-class system the paper evaluates on,
//! plus capacity scaling so experiments fit on a small host.
//!
//! Defaults follow Section 2.1 and Section 6.1 of the paper: an IBM AC922
//! with POWER9 CPUs (16 cores, 3.8 GHz, 170 GB/s, 128 GiB/socket) and Nvidia
//! V100 GPUs (80 SMs, 1.53 GHz, 16 GiB @ 900 GB/s) connected via NVLink 2.0
//! (75 GB/s per direction). The Xeon baseline (Skylake-SP Gold 6126) is also
//! provided.
//!
//! # Capacity scaling
//!
//! The paper's workloads reach 61 GiB (122 GiB with the partitioned copy),
//! which cannot be executed functionally here. [`HwConfig::scaled`] divides
//! every *capacity* (GPU memory, CPU memory, TLB coverage, caches) and the
//! *page size* by a factor `K`, while leaving every *rate* (bandwidths,
//! clock frequencies, latencies) and every *granularity tied to the wire*
//! (packet sizes, memory transaction size, scratchpad size) untouched.
//!
//! Dividing data volumes and capacities by the same K preserves: throughput
//! in tuples/s, interconnect utilisation, phase time fractions, and the
//! position of every capacity-ratio cliff (GPU memory, TLB range) relative
//! to the workload axis. Granularity effects (flush bytes vs the 128-byte
//! transaction) remain at true scale. The one distortion is that the
//! second-pass fanout shrinks by log2(K) because first-pass partitions are
//! K-times smaller against an unscaled scratchpad; DESIGN.md discusses this.

use crate::units::{Bytes, BytesPerSec};

/// GPU (Nvidia V100-class) parameters.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors. V100: 80.
    pub num_sms: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// SM clock in GHz.
    pub clock_ghz: f64,
    /// Scratchpad (shared memory) per thread block in bytes. Unscaled.
    pub scratchpad: Bytes,
    /// On-board memory capacity (scaled).
    pub mem_capacity: Bytes,
    /// On-board memory bandwidth.
    pub mem_bandwidth: BytesPerSec,
    /// Memory transaction granularity within GPU memory (an L2 sector).
    pub gpu_mem_txn: Bytes,
    /// Warp instructions issued per cycle per SM (a V100 SM has four
    /// warp schedulers).
    pub issue_per_cycle: f64,
    /// Resident warps per SM used to hide latency.
    pub warps_per_sm: u32,
    /// Independent random *reads* the GPU memory subsystem retires per
    /// second (MSHR/L2-sector limited). Section 6.2.9 dissects the
    /// no-partitioning join into a 4.3 G tuples/s probe rate.
    pub rand_read_rate: f64,
    /// Independent random *writes* per second; the paper measures random
    /// GPU-memory writes 3.2-6x slower than reads (1.8 G tuples/s build).
    pub rand_write_rate: f64,
}

/// CPU parameters (POWER9 or Xeon class).
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Human-readable name used in experiment output.
    pub name: String,
    /// Physical cores per socket.
    pub cores: u32,
    /// SMT ways per core.
    pub smt: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Memory bandwidth per socket.
    pub mem_bandwidth: BytesPerSec,
    /// Memory capacity per socket (scaled).
    pub mem_capacity: Bytes,
    /// Last-level cache capacity available per core. POWER9: 5 MiB/core;
    /// Xeon Gold 6126: 1.25 MiB/core allocatable L3 slice.
    pub llc_per_core: Bytes,
    /// Fraction of peak sequential bandwidth a tuned scan kernel achieves
    /// (the paper measures 129.6 GiB/s of 170 GB/s on POWER9).
    pub seq_scan_efficiency: f64,
    /// Effective tuples partitioned per core-cycle for a tuned SWWC
    /// partitioner (covers hash, histogram-offset lookup, buffered store).
    pub partition_cycles_per_tuple: f64,
    /// Cycles per tuple for the in-cache build+probe phase of a radix join.
    pub join_cycles_per_tuple: f64,
}

/// NVLink 2.0 interconnect parameters (Sections 2.1 and 3.4.1).
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Electrical bandwidth per direction. NVLink 2.0 (3 bricks): 75 GB/s.
    pub raw_bw_per_dir: BytesPerSec,
    /// Packet header size.
    pub header: Bytes,
    /// Extra "byte enable" header extension for small/partial writes.
    pub byte_enable: Bytes,
    /// Maximum payload an SM-originated packet carries (one L1 cacheline).
    pub max_payload: Bytes,
    /// Small reads are padded to this payload size.
    pub min_read_payload: Bytes,
    /// Interconnect transactions per second the GPU sustains for independent
    /// random *reads* (empirically ~0.70e9/s; Fig 6a shows bandwidth growing
    /// linearly with granularity, i.e. an access-rate limit).
    pub read_txn_rate: f64,
    /// Same limit for random *writes* (~0.45e9/s, Fig 6a).
    pub write_txn_rate: f64,
    /// Round-trip base latency of a CPU-memory access over the link with all
    /// translations hit (the paper measures 449.7 ns pointer-chase latency).
    pub base_latency_ns: f64,
    /// Efficiency factor for symmetric read+write streams: request/response
    /// traffic shares the wire with payload in both directions, capping the
    /// bidirectional rate below 2x unidirectional (Fig 18a: 55.9 GiB/s).
    pub bidir_efficiency: f64,
    /// Extra cost factor for partial-line (sub-128 B or misaligned) writes,
    /// modelling read-modify-write at the home node (Fig 6b: a 16-byte
    /// misalignment costs writes 56%).
    pub partial_write_penalty: f64,
}

/// Address-translation hierarchy parameters (Section 3.4.2, Fig 7).
#[derive(Debug, Clone)]
pub struct TlbConfig {
    /// Page size backing large allocations (2 MiB huge pages; scaled).
    pub page_size: Bytes,
    /// Physically adjacent pages coalesced into one TLB entry on a walk
    /// (16 x 2 MiB = 32 MiB reach per entry).
    pub coalesced_pages: u64,
    /// GPU L2 TLB entry count. With 32 MiB reach per entry, 256 entries
    /// give the paper's measured 8 GiB coverage.
    pub gpu_l2_entries: usize,
    /// Entry count of the intermediate translation layer for CPU memory
    /// that the paper calls "L3 TLB*" (1024 x 32 MiB = 32 GiB coverage).
    pub l3_star_entries: usize,
    /// Latency of a CPU-memory access when the GPU L2 TLB hits.
    pub cpu_l2_hit_ns: f64,
    /// Latency when the GPU L2 TLB misses but the L3*/IOTLB layer hits.
    pub l3_star_hit_ns: f64,
    /// Latency of a full translation miss serviced by the IOMMU page-table
    /// walkers ("Miss*").
    pub full_miss_ns: f64,
    /// Latency of a GPU-memory access when the GPU L2 TLB hits.
    pub gpu_l2_hit_ns: f64,
    /// Latency of a GPU-memory access on a GPU L2 TLB miss.
    pub gpu_l2_miss_ns: f64,
    /// Parallel page-table walkers in the IOMMU.
    pub iommu_walkers: u32,
    /// Translations returned per walk (coalesced page-table walk).
    pub translations_per_walk: u32,
    /// Effective service occupancy of one walker per walk, in ns
    /// (including request queuing ahead of the walkers). Calibrated so
    /// that a fully TLB-miss-bound kernel reproduces the paper's ~1.1
    /// M tuples/s linear-probing floor (Section 6.2.2).
    pub walk_service_ns: f64,
    /// IOMMU translation *requests* observed per page-table walk: the
    /// POWER9 counter the paper reads counts the multi-level radix-tree
    /// accesses of a walk, not just the walk itself (it reports 5.3
    /// requests per tuple for a probe stream that misses about twice per
    /// tuple). Used when reporting Fig 14(b)/18(d) request rates.
    pub requests_per_walk: f64,
}

/// Static power model (Section 6.2.11).
#[derive(Debug, Clone)]
pub struct PowerConfig {
    /// Whole-system idle draw in watts (AC922: 290 W).
    pub system_idle_w: f64,
    /// Idle draw of one GPU.
    pub gpu_idle_w: f64,
    /// Idle draw of one CPU package (the paper: 58-62 W).
    pub cpu_idle_w: f64,
    /// Additional draw of a GPU under join load (62-80 W total).
    pub gpu_load_w: f64,
    /// Additional draw of the CPU under join load (178-206 W).
    pub cpu_load_w: f64,
    /// CPU I/O facility draw while serving GPU interconnect transfers.
    pub cpu_io_w: f64,
}

/// Complete system configuration.
#[derive(Debug, Clone)]
pub struct HwConfig {
    /// GPU parameters.
    pub gpu: GpuConfig,
    /// Primary CPU (the socket hosting the GPU).
    pub cpu: CpuConfig,
    /// GPU-CPU interconnect.
    pub link: LinkConfig,
    /// Address translation hierarchy.
    pub tlb: TlbConfig,
    /// Power model.
    pub power: PowerConfig,
    /// Capacity scale factor K this config was scaled by (1 = paper scale).
    pub scale: u64,
}

impl Default for HwConfig {
    fn default() -> Self {
        Self::ac922()
    }
}

impl HwConfig {
    /// The paper's evaluation platform at full scale: IBM AC922 with a
    /// POWER9 CPU and a Tesla V100 connected by NVLink 2.0.
    pub fn ac922() -> Self {
        HwConfig {
            gpu: GpuConfig {
                num_sms: 80,
                warp_size: 32,
                clock_ghz: 1.53,
                scratchpad: Bytes::kib(64),
                mem_capacity: Bytes::gib(16),
                mem_bandwidth: BytesPerSec::gb(900.0),
                gpu_mem_txn: Bytes(32),
                issue_per_cycle: 4.0,
                warps_per_sm: 64,
                rand_read_rate: 4.3e9,
                rand_write_rate: 1.8e9,
            },
            cpu: CpuConfig::power9(),
            link: LinkConfig {
                raw_bw_per_dir: BytesPerSec::gb(75.0),
                header: Bytes(16),
                byte_enable: Bytes(16),
                max_payload: Bytes(128),
                min_read_payload: Bytes(32),
                read_txn_rate: 0.70e9,
                write_txn_rate: 0.45e9,
                base_latency_ns: 449.7,
                bidir_efficiency: 0.90,
                partial_write_penalty: 1.8,
            },
            tlb: TlbConfig {
                page_size: Bytes::mib(2),
                coalesced_pages: 16,
                gpu_l2_entries: 256,
                l3_star_entries: 1024,
                cpu_l2_hit_ns: 449.7,
                l3_star_hit_ns: 532.9,
                full_miss_ns: 3186.4,
                gpu_l2_hit_ns: 151.9,
                gpu_l2_miss_ns: 226.7,
                iommu_walkers: 12,
                translations_per_walk: 16,
                walk_service_ns: 6800.0,
                requests_per_walk: 3.0,
            },
            power: PowerConfig {
                system_idle_w: 290.0,
                gpu_idle_w: 32.0,
                cpu_idle_w: 60.0,
                gpu_load_w: 71.0,
                cpu_load_w: 192.0,
                cpu_io_w: 10.5,
            },
            scale: 1,
        }
    }

    /// Scale all capacities and the page size down by `k`, keeping rates,
    /// latencies, packet/transaction granularities, and the scratchpad
    /// unchanged. See the module docs for why this preserves the paper's
    /// figure shapes.
    pub fn scaled(mut self, k: u64) -> Self {
        assert!(k >= 1, "scale factor must be >= 1");
        let div = |b: Bytes| (b / k).max(Bytes(1));
        self.gpu.mem_capacity = div(self.gpu.mem_capacity);
        self.cpu.mem_capacity = div(self.cpu.mem_capacity);
        // The CPU LLC stays unscaled: like the scratchpad, it interacts
        // with unscaled granularities (SWWC cachelines), and the CPU cost
        // model's capacity decisions are made on scale-invariant ratios.
        // TLB *coverages* scale implicitly: entry counts are hardware
        // constants and the per-entry reach follows the page size.
        self.tlb.page_size = div(self.tlb.page_size);
        self.scale *= k;
        self
    }

    /// Replace the CPU model (e.g. with the Xeon baseline).
    pub fn with_cpu(mut self, cpu: CpuConfig) -> Self {
        // Re-apply the accumulated scale to the fresh CPU's capacities.
        let k = self.scale;
        self.cpu = cpu;
        self.cpu.mem_capacity = (self.cpu.mem_capacity / k).max(Bytes(1));
        self
    }

    /// Restrict the GPU to `n` SMs (compute-power scaling, Fig 24).
    pub fn with_sms(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.gpu.num_sms = n;
        self
    }

    /// Use a different huge-page size, given in *modeled* bytes (the
    /// paper's Section 2.1 lists 4 KiB, 64 KiB, 2 MiB and 1 GiB as the
    /// supported sizes; Section 6.1 preallocates 2 MiB pages). Smaller
    /// pages shrink every TLB level's reach proportionally — the
    /// page-size ablation quantifies how much the huge-page setting
    /// matters.
    pub fn with_page_size_modeled(mut self, bytes: u64) -> Self {
        assert!(bytes >= 1);
        self.tlb.page_size = Bytes((bytes / self.scale).max(1));
        self
    }

    /// Place the base relations on the *far* NUMA node (the paper
    /// allocates "on the NUMA node closest to the GPU"; this models the
    /// mistake). Traffic crosses the inter-socket X-bus: the effective
    /// link bandwidth drops to the X-bus rate (64 GB/s on the AC922,
    /// shared with the remote socket's own traffic) and the base access
    /// latency grows by an inter-socket hop.
    pub fn with_far_numa(mut self) -> Self {
        self.link.raw_bw_per_dir = self.link.raw_bw_per_dir.min(BytesPerSec(38e9));
        self.link.base_latency_ns += 180.0;
        self.tlb.cpu_l2_hit_ns += 180.0;
        self.tlb.l3_star_hit_ns += 180.0;
        self.tlb.full_miss_ns += 180.0;
        self
    }

    /// Coverage of one coalesced TLB entry (page size x coalesced pages).
    pub fn tlb_entry_reach(&self) -> Bytes {
        self.tlb.page_size * self.tlb.coalesced_pages
    }

    /// Number of entries in the GPU L2 TLB.
    pub fn gpu_l2_tlb_entries(&self) -> usize {
        self.tlb.gpu_l2_entries.max(1)
    }

    /// Number of entries in the intermediate (L3*/IOTLB) layer.
    pub fn l3_star_entries(&self) -> usize {
        self.tlb.l3_star_entries.max(1)
    }

    /// GPU L2 TLB coverage (entries x reach): 8 GiB at paper defaults.
    pub fn gpu_l2_coverage(&self) -> Bytes {
        self.tlb_entry_reach() * self.gpu_l2_tlb_entries() as u64
    }

    /// L3*/IOTLB coverage (entries x reach): 32 GiB at paper defaults.
    pub fn l3_star_coverage(&self) -> Bytes {
        self.tlb_entry_reach() * self.l3_star_entries() as u64
    }
}

impl CpuConfig {
    /// IBM POWER9 "Monza": 16 cores @ 3.8 GHz, SMT4, 170 GB/s, 5 MiB/core.
    ///
    /// Cycle costs are calibrated against Section 6.2.1: the POWER9 radix
    /// join runs at 1.1 G tuples/s (fanout 2^12) declining to 0.9 (2^14),
    /// and Fig 4: ~29 GiB/s CPU partitioning throughput.
    pub fn power9() -> Self {
        CpuConfig {
            name: "POWER9".into(),
            cores: 16,
            smt: 4,
            clock_ghz: 3.8,
            mem_bandwidth: BytesPerSec::gb(170.0),
            mem_capacity: Bytes::gib(128),
            llc_per_core: Bytes::mib(5),
            seq_scan_efficiency: 0.78,
            partition_cycles_per_tuple: 36.0,
            join_cycles_per_tuple: 31.0,
        }
    }

    /// Intel Xeon Gold 6126 "Skylake-SP": 12 cores @ 2.6 GHz, 1.25 MiB/core
    /// allocatable L3. Switches to two-pass partitioning once the SWWC
    /// buffers outgrow the L3 (Section 6.2.1).
    pub fn xeon_gold_6126() -> Self {
        CpuConfig {
            name: "Xeon".into(),
            cores: 12,
            smt: 2,
            clock_ghz: 2.6,
            mem_bandwidth: BytesPerSec::gb(128.0),
            mem_capacity: Bytes::gib(128),
            llc_per_core: Bytes((1.25 * (1 << 20) as f64) as u64),
            seq_scan_efficiency: 0.75,
            partition_cycles_per_tuple: 17.0,
            join_cycles_per_tuple: 13.5,
        }
    }

    /// Total last-level cache capacity.
    pub fn llc_total(&self) -> Bytes {
        self.llc_per_core * self.cores as u64
    }

    /// Effective sequential scan bandwidth (tuned kernel).
    pub fn scan_bandwidth(&self) -> BytesPerSec {
        self.mem_bandwidth * self.seq_scan_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_platform() {
        let hw = HwConfig::default();
        assert_eq!(hw.gpu.num_sms, 80);
        assert_eq!(hw.gpu.mem_capacity, Bytes::gib(16));
        assert_eq!(hw.cpu.cores, 16);
        assert_eq!(hw.scale, 1);
    }

    #[test]
    fn scaling_divides_capacities_not_rates() {
        let hw = HwConfig::ac922().scaled(64);
        assert_eq!(hw.gpu.mem_capacity.0, Bytes::gib(16).0 / 64);
        assert_eq!(hw.tlb.page_size.0, Bytes::mib(2).0 / 64);
        assert_eq!(hw.gpu_l2_coverage().0, Bytes::gib(8).0 / 64);
        assert_eq!(hw.gpu.scratchpad, Bytes::kib(64));
        assert_eq!(hw.link.raw_bw_per_dir.0, 75e9);
        assert_eq!(hw.scale, 64);
    }

    #[test]
    fn tlb_entry_counts_invariant_under_scaling() {
        let a = HwConfig::ac922();
        let b = HwConfig::ac922().scaled(256);
        assert_eq!(a.gpu_l2_tlb_entries(), b.gpu_l2_tlb_entries());
        assert_eq!(a.l3_star_entries(), b.l3_star_entries());
        assert_eq!(a.gpu_l2_tlb_entries(), 256);
        assert_eq!(a.l3_star_entries(), 1024);
    }

    #[test]
    fn scaling_composes() {
        let hw = HwConfig::ac922().scaled(4).scaled(16);
        assert_eq!(hw.scale, 64);
        assert_eq!(hw.gpu.mem_capacity.0, Bytes::gib(16).0 / 64);
    }

    #[test]
    fn with_cpu_reapplies_scale() {
        let hw = HwConfig::ac922()
            .scaled(128)
            .with_cpu(CpuConfig::xeon_gold_6126());
        assert_eq!(hw.cpu.mem_capacity.0, Bytes::gib(128).0 / 128);
        assert_eq!(hw.cpu.name, "Xeon");
    }
}
