//! Fig 4: data partitioning throughput of a CPU and a GPU for different
//! destination locations (both read the base relation from CPU memory and
//! split it into 512 partitions).
//!
//! Case (a): all resulting partitions fit into GPU memory; case (b): all
//! partitions are stored back to CPU memory. The paper's take-away, which
//! this experiment reproduces: the GPU out-partitions the CPU in *both*
//! cases, and the CPU cannot saturate the fast interconnect even at
//! alpha = 1 (Section 3.2).

use triton_datagen::{WorkloadSpec, TUPLE_BYTES};
use triton_hw::HwConfig;
use triton_part::{
    cpu_partition_time, gpu_prefix_sum, make_partitioner, Algorithm, PassConfig, Span,
};

/// One bar of Fig 4.
#[derive(Debug, Clone)]
pub struct Row {
    /// "CPU" or "GPU".
    pub processor: &'static str,
    /// Destination memory.
    pub dest: &'static str,
    /// Partitioning throughput in GiB/s of input data.
    pub input_gibs: f64,
}

/// Run the four bars. `m_tuples` is the modeled relation size in million
/// tuples (the paper uses a large base relation; 1024 M by default).
pub fn run(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let k = hw.scale;
    let w = WorkloadSpec::paper_default(m_tuples, k).generate();
    let n = w.r.len();
    let bytes = n as u64 * TUPLE_BYTES;
    let gib = (1u64 << 30) as f64;
    let pass = PassConfig::new(9, 0); // 512 partitions
    let input = Span::cpu(0);
    let part = make_partitioner(Algorithm::Hierarchical);

    let gpu_rate = |span: Span| {
        let (hist, ps_cost) = gpu_prefix_sum(&w.r.keys, &input, &pass, hw, false);
        let (_, cost) = part.partition(&w.r.keys, &w.r.rids, &hist, &input, &span, &pass, hw);
        let t = ps_cost.timing(hw).total + cost.timing(hw).total;
        bytes as f64 / gib / t.as_secs()
    };
    let gpu_to_gpu = gpu_rate(Span::gpu(1 << 40));
    let gpu_to_cpu = gpu_rate(Span::cpu(1 << 40));

    // CPU: destination is CPU memory either way (writing into GPU memory
    // from the CPU crosses the same link; the paper's CPU bars are nearly
    // equal). The to-GPU case additionally caps at the effective link
    // bandwidth on the write path.
    let t_cpu = cpu_partition_time(n as u64, 9, 1, hw);
    let cpu_gibs = bytes as f64 / gib / t_cpu.as_secs();
    let link_eff = triton_hw::LinkModel::new(&hw.link).effective_seq_bw();
    let cpu_to_gpu = cpu_gibs.min(link_eff / gib);

    vec![
        Row {
            processor: "CPU",
            dest: "GPU mem",
            input_gibs: cpu_to_gpu,
        },
        Row {
            processor: "GPU",
            dest: "GPU mem",
            input_gibs: gpu_to_gpu,
        },
        Row {
            processor: "CPU",
            dest: "CPU mem",
            input_gibs: cpu_gibs,
        },
        Row {
            processor: "GPU",
            dest: "CPU mem",
            input_gibs: gpu_to_cpu,
        },
    ]
}

/// Print the figure.
pub fn print(hw: &HwConfig) {
    crate::banner(
        "Fig 4",
        "partitioning throughput by processor and destination",
    );
    let mut t = crate::Table::new(["processor", "destination", "throughput (GiB/s)"]);
    for r in run(hw, 1024) {
        t.row([
            r.processor.to_string(),
            r.dest.to_string(),
            crate::f1(r.input_gibs),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_faster_than_cpu_in_both_cases() {
        let hw = HwConfig::ac922().scaled(1024);
        let rows = run(&hw, 512);
        let get = |proc: &str, dest: &str| {
            rows.iter()
                .find(|r| r.processor == proc && r.dest == dest)
                .unwrap()
                .input_gibs
        };
        assert!(get("GPU", "GPU mem") > get("CPU", "GPU mem"));
        assert!(get("GPU", "CPU mem") > get("CPU", "CPU mem"));
    }

    #[test]
    fn cpu_cannot_saturate_the_link() {
        let hw = HwConfig::ac922().scaled(1024);
        let rows = run(&hw, 512);
        let cpu = rows
            .iter()
            .filter(|r| r.processor == "CPU")
            .map(|r| r.input_gibs)
            .fold(0.0f64, f64::max);
        // Effective link bandwidth is ~62 GiB/s; the CPU partitions at
        // ~29 GiB/s (Fig 4's point).
        assert!(cpu < 40.0, "CPU partitioning rate {cpu} GiB/s");
    }

    #[test]
    fn magnitudes_match_paper() {
        let hw = HwConfig::ac922().scaled(1024);
        let rows = run(&hw, 512);
        for r in &rows {
            match (r.processor, r.dest) {
                ("CPU", _) => assert!(
                    (20.0..=40.0).contains(&r.input_gibs),
                    "CPU {} at {}",
                    r.dest,
                    r.input_gibs
                ),
                ("GPU", _) => assert!(
                    (30.0..=65.0).contains(&r.input_gibs),
                    "GPU {} at {}",
                    r.dest,
                    r.input_gibs
                ),
                _ => unreachable!(),
            }
        }
    }
}
