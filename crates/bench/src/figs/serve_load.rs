//! Serving experiment: offered load vs. delivered throughput and
//! latency for the multi-query scheduler (`triton-exec`).
//!
//! A mixed tenant population — probe batches sharing one build relation,
//! independent Triton joins, and CPU radix joins — arrives as a Poisson
//! stream whose rate is expressed as a fraction of the machine's serial
//! capacity (offered load 1.0 = queries arrive exactly as fast as a
//! dedicated machine could drain them). Expected shape: delivered
//! throughput tracks offered load until saturation, then plateaus while
//! p99 latency grows and the deadline shedder starts dropping queries;
//! concurrency and build-sharing push the saturation point past 1.0.

use triton_core::{CpuRadixJoin, HashScheme, TritonJoin};
use triton_datagen::{Rng, WorkloadSpec};
use triton_exec::{FaultPlan, JoinQuery, Operator, Scheduler, SchedulerConfig, ServeResult};
use triton_hw::units::Ns;
use triton_hw::HwConfig;

/// One measured operating point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Offered load as a fraction of serial capacity.
    pub load: f64,
    /// Queries submitted.
    pub submitted: u64,
    /// Queries completed.
    pub completed: u64,
    /// Queries rejected or shed (all typed reasons).
    pub rejected: u64,
    /// Delivered throughput in G tuples/s over the makespan.
    pub gtps: f64,
    /// Median end-to-end latency, in units of the mean dedicated
    /// service time (1.0 = as fast as running alone).
    pub p50_service_times: f64,
    /// 99th-percentile latency in service-time units.
    pub p99_service_times: f64,
    /// Peak reserved GPU memory as a fraction of capacity.
    pub peak_mem_frac: f64,
    /// Build-cache hits among admitted queries.
    pub cache_hits: u64,
}

/// The offered-load axis (fractions of serial capacity).
pub const LOAD_AXIS: [f64; 7] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

/// Queries per operating point.
const QUERIES: usize = 24;

/// Build the tenant mix, one third each: probe batches over one shared
/// build side, independent Triton joins, and CPU radix joins.
fn tenant_mix(k: u64, arrivals: &[f64]) -> Vec<JoinQuery> {
    assert_eq!(arrivals.len(), QUERIES);
    let dim = WorkloadSpec::paper_default(8, k).generate();
    let mut queries = Vec::with_capacity(QUERIES);
    for (i, &at) in arrivals.iter().enumerate() {
        let mut q = match i % 3 {
            // Probe batches against the shared dimension relation.
            0 => {
                let w = if i == 0 {
                    dim.clone()
                } else {
                    JoinQuery::probe_batch(&dim, 0x5EED + i as u64)
                };
                let mut q = JoinQuery::new(format!("batch-{i}"), w, Ns(at));
                q.build_key = Some(1);
                q
            }
            // Independent fact-to-fact Triton joins.
            1 => {
                let mut spec = WorkloadSpec::paper_default(16, k);
                spec.seed ^= (i as u64) << 24;
                let mut q = JoinQuery::new(format!("fact-{i}"), spec.generate(), Ns(at));
                q.op = Operator::Triton(TritonJoin::default());
                q
            }
            // Ad-hoc CPU joins: no GPU memory, overlap with everything.
            _ => {
                let mut spec = WorkloadSpec::paper_default(8, k);
                spec.seed ^= (0xCCu64 << 8) | i as u64;
                let mut q = JoinQuery::new(format!("cpu-{i}"), spec.generate(), Ns(at));
                q.op = Operator::CpuRadix(CpuRadixJoin::power9(HashScheme::BucketChaining));
                q
            }
        };
        q.priority = 1;
        queries.push(q);
    }
    queries
}

/// Mean dedicated service time of the tenant mix (the load unit).
fn mean_service_time(hw: &HwConfig) -> Ns {
    let queries = tenant_mix(hw.scale, &[0.0; QUERIES]);
    let total: f64 = queries
        .iter()
        .map(|q| match q.op.run(&q.workload, hw) {
            Ok(rep) => rep.total.0,
            Err(_) => 0.0,
        })
        .sum();
    Ns(total / QUERIES as f64)
}

/// The tenant mix with Poisson arrivals at `load` times the serial
/// drain rate, each query carrying the sweep's queueing deadline.
fn queries_at_load(hw: &HwConfig, s_mean: Ns, load: f64) -> Vec<JoinQuery> {
    let rate = load / s_mean.0; // queries per ns
    let mut rng = Rng::seed_from_u64(0x10AD ^ load.to_bits());
    let mut t = 0.0f64;
    let arrivals: Vec<f64> = (0..QUERIES)
        .map(|_| {
            t += -(1.0 - rng.next_f64()).ln() / rate;
            t
        })
        .collect();
    let mut queries = tenant_mix(hw.scale, &arrivals);
    // Queries shed themselves once they have queued for ten mean
    // service times — the overload signal of the sweep.
    for q in &mut queries {
        q.deadline = Some(s_mean * 10.0);
    }
    queries
}

/// Run the sweep.
pub fn run(hw: &HwConfig, loads: &[f64]) -> Vec<Row> {
    let s_mean = mean_service_time(hw);
    let mut rows = Vec::new();
    for &load in loads {
        let queries = queries_at_load(hw, s_mean, load);
        let res = Scheduler::new(hw.clone(), SchedulerConfig::default()).run(queries);
        let m = &res.metrics;
        rows.push(Row {
            load,
            submitted: m.completed + m.rejected,
            completed: m.completed,
            rejected: m.rejected,
            gtps: m.throughput_gtps,
            p50_service_times: m.latency_p50.0 / s_mean.0,
            p99_service_times: m.latency_p99.0 / s_mean.0,
            peak_mem_frac: m.peak_gpu_reserved.ratio_of(m.gpu_capacity),
            cache_hits: m.build_cache_hits,
        });
    }
    rows
}

/// Offered load of the chaos operating point (saturation).
const CHAOS_LOAD: f64 = 1.0;

/// The saturation point rerun under a standard hazard schedule —
/// a halved link for the whole run, plus an ECC retirement of two
/// thirds of device memory and a kernel fault both aimed at the
/// heaviest GPU query's execution window (the degraded link only
/// stretches windows, so the faults land on live reservations) — once
/// with the resilience layer and once without. Returns the full
/// (resilient, fragile) serving results — metrics plus the recorded
/// trace, so callers can account for fault instants and flight dumps.
pub fn run_chaos(hw: &HwConfig) -> (ServeResult, ServeResult) {
    let s_mean = mean_service_time(hw);
    let clean = Scheduler::new(hw.clone(), SchedulerConfig::default())
        .run(queries_at_load(hw, s_mean, CHAOS_LOAD));
    let span = clean.metrics.makespan;
    // Strike while the largest GPU reservation of the clean run is live.
    let strike = clean
        .completed()
        .max_by(|a, b| a.reserved.cmp(&b.reserved).then(a.id.cmp(&b.id)))
        .map_or(span * 0.5, |c| (c.start + c.finish) * 0.5);
    let plan = FaultPlan::with_seed(0xFA11)
        .degrade_link(Ns::ZERO, span * 4.0, 0.5)
        .retire_gpu_mem(strike, hw.gpu.mem_capacity * 2 / 3)
        .kernel_fault(strike);
    let resilient = Scheduler::new(hw.clone(), SchedulerConfig::default())
        .run_with_faults(queries_at_load(hw, s_mean, CHAOS_LOAD), &plan);
    let fragile = Scheduler::new(hw.clone(), SchedulerConfig::no_resilience())
        .run_with_faults(queries_at_load(hw, s_mean, CHAOS_LOAD), &plan);
    (resilient, fragile)
}

/// Print the experiment.
pub fn print(hw: &HwConfig, loads: &[f64]) {
    crate::banner(
        "Serving",
        "offered load vs. throughput and latency under admission control",
    );
    let rows = run(hw, loads);
    let mut t = crate::Table::new([
        "load",
        "done",
        "shed",
        "G tuples/s",
        "p50 (x svc)",
        "p99 (x svc)",
        "peak mem",
        "cache hits",
    ]);
    for r in &rows {
        t.row([
            crate::f3(r.load),
            format!("{}/{}", r.completed, r.submitted),
            r.rejected.to_string(),
            crate::f3(r.gtps),
            crate::f1(r.p50_service_times),
            crate::f1(r.p99_service_times),
            crate::pct(r.peak_mem_frac),
            r.cache_hits.to_string(),
        ]);
    }
    t.print();
    // Machine-readable mirror of the table (one JSON object per point).
    for r in &rows {
        println!(
            "{}",
            crate::json::JsonObject::new()
                .str("fig", "serve_load")
                .num("offered_load", r.load)
                .int("submitted", r.submitted)
                .int("completed", r.completed)
                .int("rejected", r.rejected)
                .num("throughput_gtps", r.gtps)
                .num("latency_p50_service_times", r.p50_service_times)
                .num("latency_p99_service_times", r.p99_service_times)
                .num("peak_gpu_mem_fraction", r.peak_mem_frac)
                .int("build_cache_hits", r.cache_hits)
                .render()
        );
    }

    // The resilience addendum: the saturation point under a degraded
    // link, an ECC retirement, and a kernel fault — with and without
    // the recovery ladder. Full fault accounting lands in the JSON.
    let (resilient, fragile) = run_chaos(hw);
    println!("\nchaos point (load {CHAOS_LOAD}, halved link + 66% ECC retirement + kernel fault):");
    println!("  resilient: {}", resilient.metrics.summary());
    println!("  fragile  : {}", fragile.metrics.summary());
    for (mode, r) in [("resilient", &resilient), ("fragile", &fragile)] {
        println!(
            "{{\"fig\":\"serve_load_chaos\",\"mode\":\"{mode}\",\"metrics\":{}}}",
            r.metrics.to_json()
        );
    }
    // Trace accounting for the resilient run: how much the flight
    // recorder captured around the injected faults.
    let count = |name: &str| {
        resilient
            .trace
            .events()
            .iter()
            .filter(|e| e.name == name)
            .count() as u64
    };
    println!(
        "{}",
        crate::json::JsonObject::new()
            .str("fig", "serve_load_chaos_trace")
            .int("trace_events", resilient.trace.len() as u64)
            .int("flight_dumps", count("flight.dump"))
            .int("kernel_faults", count("kernel-fault"))
            .int("ecc_retirements", count("ecc-retirement"))
            .render()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_exec::to_chrome_json;

    #[test]
    fn sweep_saturates_and_stays_within_memory() {
        let hw = HwConfig::ac922().scaled(2048);
        let rows = run(&hw, &[0.25, 2.0]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.peak_mem_frac <= 1.0, "oversubscribed at load {}", r.load);
            assert!(r.completed > 0);
        }
        // Heavier load must not finish queries faster end-to-end.
        assert!(rows[1].p99_service_times >= rows[0].p99_service_times * 0.99);
    }

    #[test]
    fn chaos_point_recovers_more_than_it_sheds() {
        let hw = HwConfig::ac922().scaled(2048);
        let (resilient, fragile) = run_chaos(&hw);
        assert!(resilient.metrics.completed >= fragile.metrics.completed);
        assert!(
            resilient.metrics.shed_faulted == 0,
            "ladder must absorb the faults"
        );
        // The injected kernel fault must land in the trace and trip the
        // flight recorder.
        let json = to_chrome_json(&resilient.trace);
        assert!(json.contains("kernel-fault"), "fault instant missing");
        assert!(json.contains("flight.dump"), "flight dump missing");
        // Replays are byte-identical: same plan, same seed, same report
        // — and the same trace bytes.
        let (again, _) = run_chaos(&hw);
        assert_eq!(resilient.metrics, again.metrics);
        assert_eq!(resilient.metrics.to_json(), again.metrics.to_json());
        assert_eq!(json, to_chrome_json(&again.trace));
    }
}
