//! The multi-query join scheduler: a fluid discrete-event simulation of
//! concurrent joins sharing one AC922-class machine.
//!
//! Lifecycle of a query: *arrive* → *queue* (priority order, bounded) →
//! *admit* (memory reservation through [`AdmissionController`]) →
//! *execute concurrently* (speed set each event by the weighted max-min
//! arbiter [`triton_hw::fair_share_rates`] over every query's
//! [`ResourceVector`]) → *complete* (release memory, unpin the build
//! cache). Queries can instead be *rejected* (queue full, or a memory
//! floor that exceeds the entire GPU) or *shed* (deadline passed while
//! queued) — always with a typed reason.
//!
//! Execution is functional: every admitted query actually runs its
//! operator (with the granted cache budget) and the scheduler records the
//! verifiable [`JoinReport`]. Only the *timing* is arbitrated; results
//! are exact and independent of the schedule.

use std::collections::VecDeque;

use triton_core::JoinReport;
use triton_datagen::TUPLE_BYTES;
use triton_hw::units::{Bytes, Ns};
use triton_hw::{fair_share_rates, HwConfig, ResourceVector};
use triton_mem::OutOfMemory;

use crate::admission::{operator_with_grant, AdmissionController, Reservation};
use crate::build_cache::BuildCache;
use crate::demand::ResourceDemand;
use crate::metrics::SchedulerMetrics;
use crate::query::{JoinQuery, QueryId};

/// Why the scheduler refused to run a query.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The waiting queue was at its configured limit when the query
    /// arrived (backpressure: the client should retry later).
    QueueFull {
        /// The configured queue capacity.
        limit: usize,
    },
    /// The query's minimum memory floor exceeds the entire GPU — it can
    /// never be admitted on this machine, at any concurrency.
    OverCapacity {
        /// The unmeetable floor.
        needed: Bytes,
        /// Total device capacity.
        capacity: Bytes,
    },
    /// The operator itself ran out of simulated memory (e.g. CPU memory
    /// cannot hold the partitioned spill).
    Oom(OutOfMemory),
    /// The deadline expired while the query waited for memory.
    DeadlineExceeded {
        /// The latency budget that was missed.
        deadline: Ns,
        /// Time the query had already spent queued.
        waited: Ns,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { limit } => write!(f, "queue full ({limit} waiting)"),
            RejectReason::OverCapacity { needed, capacity } => {
                write!(f, "needs {needed} of {capacity} GPU memory")
            }
            RejectReason::Oom(e) => write!(f, "{e}"),
            RejectReason::DeadlineExceeded { deadline, waited } => {
                write!(f, "deadline {deadline} passed after waiting {waited}")
            }
        }
    }
}

/// A query that ran to completion.
#[derive(Debug, Clone)]
pub struct CompletedQuery {
    /// Scheduler-assigned id (submission order).
    pub id: QueryId,
    /// The query's name tag.
    pub name: String,
    /// Arrival time.
    pub arrival: Ns,
    /// Admission time (start of execution).
    pub start: Ns,
    /// Completion time.
    pub finish: Ns,
    /// Dedicated-run service requirement (what the query would take
    /// alone); `finish - start >= dedicated` under contention.
    pub dedicated: Ns,
    /// The functional dedicated-run report (exact join result).
    pub report: JoinReport,
    /// GPU bytes reserved while running.
    pub reserved: Bytes,
    /// Whether the partitioned build side was already resident.
    pub build_cache_hit: bool,
}

impl CompletedQuery {
    /// End-to-end latency (queueing + arbitrated execution).
    pub fn latency(&self) -> Ns {
        self.finish - self.arrival
    }
}

/// Terminal state of one submitted query.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Ran to completion.
    Completed(Box<CompletedQuery>),
    /// Refused with a typed reason (never started executing).
    Rejected {
        /// Scheduler-assigned id.
        id: QueryId,
        /// The query's name tag.
        name: String,
        /// Why it was refused.
        reason: RejectReason,
    },
}

impl Outcome {
    /// The completed record, if this query finished.
    pub fn completed(&self) -> Option<&CompletedQuery> {
        match self {
            Outcome::Completed(c) => Some(c),
            Outcome::Rejected { .. } => None,
        }
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Maximum concurrently executing queries (admission also requires a
    /// memory reservation; this bounds arbitration overheads).
    pub max_inflight: usize,
    /// Maximum queries waiting for admission before new arrivals are
    /// rejected with [`RejectReason::QueueFull`].
    pub max_queue: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_inflight: 8,
            max_queue: 64,
        }
    }
}

impl SchedulerConfig {
    /// One query at a time: the serial baseline concurrency is compared
    /// against.
    pub fn serial() -> Self {
        SchedulerConfig {
            max_inflight: 1,
            ..Self::default()
        }
    }
}

/// Everything a serving run produces.
#[derive(Debug)]
pub struct ServeResult {
    /// One outcome per submitted query, in submission order.
    pub outcomes: Vec<Outcome>,
    /// Aggregate scheduler metrics.
    pub metrics: SchedulerMetrics,
}

/// One in-flight query inside the fluid simulation.
struct Running {
    id: QueryId,
    name: String,
    arrival: Ns,
    start: Ns,
    /// Remaining dedicated-run nanoseconds.
    remaining: f64,
    demand: ResourceVector,
    weight: f64,
    dedicated: Ns,
    report: JoinReport,
    reservation: Reservation,
    build_key: Option<u64>,
    build_cache_hit: bool,
}

/// One query waiting for admission.
struct Queued {
    id: QueryId,
    query: JoinQuery,
}

/// The multi-query join scheduler.
pub struct Scheduler {
    hw: HwConfig,
    config: SchedulerConfig,
}

impl Scheduler {
    /// Build for a machine and configuration.
    pub fn new(hw: HwConfig, config: SchedulerConfig) -> Self {
        Scheduler { hw, config }
    }

    /// Run a batch of queries to completion and report every outcome.
    /// Queries may arrive in any order; they are processed by arrival
    /// time, queued in priority order, and executed concurrently under
    /// memory-budget admission.
    pub fn run(&self, queries: Vec<JoinQuery>) -> ServeResult {
        let mut arrivals: Vec<(QueryId, JoinQuery)> = queries
            .into_iter()
            .enumerate()
            .map(|(i, q)| (QueryId(i as u64), q))
            .collect();
        // Stable by arrival time; ids preserve submission order.
        arrivals.sort_by(|a, b| {
            a.1.arrival
                .0
                .partial_cmp(&b.1.arrival.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut admission = AdmissionController::new(&self.hw);
        let mut cache = BuildCache::new();
        let mut queue: VecDeque<Queued> = VecDeque::new();
        let mut running: Vec<Running> = Vec::new();
        let mut outcomes: Vec<(QueryId, Outcome)> = Vec::new();
        let mut clock = Ns::ZERO;
        let mut arrivals = arrivals.into_iter().peekable();
        let mut peak_concurrency = 0usize;
        let mut busy_time = 0.0f64; // integral of (running > 0) dt
        let mut weighted_conc = 0.0f64; // integral of |running| dt

        loop {
            // --- Admit while memory and the concurrency cap allow.
            self.admit_ready(
                clock,
                &mut queue,
                &mut running,
                &mut admission,
                &mut cache,
                &mut outcomes,
            );
            peak_concurrency = peak_concurrency.max(running.len());

            let next_arrival_at = arrivals.peek().map(|(_, q)| q.arrival.0);
            if running.is_empty() && next_arrival_at.is_none() {
                // Anything still queued can never start (no completions
                // left to free memory): shed it as over-capacity backlog.
                while let Some(q) = queue.pop_front() {
                    let floor = AdmissionController::min_reserve(&q.query, &self.hw);
                    outcomes.push((
                        q.id,
                        Outcome::Rejected {
                            id: q.id,
                            name: q.query.name.clone(),
                            reason: RejectReason::OverCapacity {
                                needed: floor,
                                capacity: admission.capacity(),
                            },
                        },
                    ));
                }
                break;
            }

            // --- Arbitrated speeds for the current in-flight set.
            let loads: Vec<ResourceVector> = running.iter().map(|r| r.demand).collect();
            let weights: Vec<f64> = running.iter().map(|r| r.weight).collect();
            let rates = fair_share_rates(&loads, &weights);

            // --- Time to the next event.
            let t_complete = running
                .iter()
                .zip(&rates)
                .map(|(r, &s)| r.remaining / s.max(1e-12))
                .fold(f64::INFINITY, f64::min);
            let t_arrival = next_arrival_at.map_or(f64::INFINITY, |at| (at - clock.0).max(0.0));
            let dt = t_complete.min(t_arrival);
            if !dt.is_finite() {
                // Nothing running and no arrivals: handled above.
                break;
            }

            // --- Advance the fluid state.
            if !running.is_empty() {
                busy_time += dt;
                weighted_conc += dt * running.len() as f64;
            }
            clock = Ns(clock.0 + dt);
            for (r, &s) in running.iter_mut().zip(&rates) {
                r.remaining = (r.remaining - dt * s).max(0.0);
            }

            // --- Arrivals land in the queue (or bounce off its limit).
            while arrivals.peek().is_some_and(|(_, q)| q.arrival.0 <= clock.0) {
                let (id, query) = arrivals.next().unwrap();
                if queue.len() >= self.config.max_queue {
                    outcomes.push((
                        id,
                        Outcome::Rejected {
                            id,
                            name: query.name.clone(),
                            reason: RejectReason::QueueFull {
                                limit: self.config.max_queue,
                            },
                        },
                    ));
                    continue;
                }
                // Priority order, FIFO within a priority class.
                let pos = queue
                    .iter()
                    .position(|q| q.query.priority < query.priority)
                    .unwrap_or(queue.len());
                queue.insert(pos, Queued { id, query });
            }

            // --- Completions.
            let mut i = 0;
            while i < running.len() {
                if running[i].remaining <= 1e-9 {
                    let r = running.swap_remove(i);
                    admission.release(r.id);
                    if let Some(k) = r.build_key {
                        cache.release(k);
                    }
                    outcomes.push((
                        r.id,
                        Outcome::Completed(Box::new(CompletedQuery {
                            id: r.id,
                            name: r.name,
                            arrival: r.arrival,
                            start: r.start,
                            finish: clock,
                            dedicated: r.dedicated,
                            report: r.report,
                            reserved: r.reservation.reserved,
                            build_cache_hit: r.build_cache_hit,
                        })),
                    ));
                } else {
                    i += 1;
                }
            }
        }

        outcomes.sort_by_key(|(id, _)| *id);
        let outcomes: Vec<Outcome> = outcomes.into_iter().map(|(_, o)| o).collect();
        let metrics = SchedulerMetrics::from_run(
            &outcomes,
            clock,
            admission.peak_reserved,
            admission.capacity(),
            peak_concurrency,
            if busy_time > 0.0 {
                weighted_conc / busy_time
            } else {
                0.0
            },
            cache.hits,
            cache.misses,
        );
        ServeResult { outcomes, metrics }
    }

    /// Admit queued queries in priority order while memory, the
    /// concurrency cap, and deadlines allow.
    fn admit_ready(
        &self,
        clock: Ns,
        queue: &mut VecDeque<Queued>,
        running: &mut Vec<Running>,
        admission: &mut AdmissionController,
        cache: &mut BuildCache,
        outcomes: &mut Vec<(QueryId, Outcome)>,
    ) {
        while running.len() < self.config.max_inflight {
            let Some(q) = queue.front() else { break };

            // Deadline shedding: a query whose budget is already spent
            // queueing will miss it regardless — drop it now.
            if let Some(deadline) = q.query.deadline {
                let waited = clock - q.query.arrival;
                if waited.0 > deadline.0 {
                    let q = queue.pop_front().unwrap();
                    outcomes.push((
                        q.id,
                        Outcome::Rejected {
                            id: q.id,
                            name: q.query.name.clone(),
                            reason: RejectReason::DeadlineExceeded { deadline, waited },
                        },
                    ));
                    continue;
                }
            }

            let floor = AdmissionController::min_reserve(&q.query, &self.hw);
            if floor > admission.capacity() {
                let q = queue.pop_front().unwrap();
                outcomes.push((
                    q.id,
                    Outcome::Rejected {
                        id: q.id,
                        name: q.query.name.clone(),
                        reason: RejectReason::OverCapacity {
                            needed: floor,
                            capacity: admission.capacity(),
                        },
                    },
                ));
                continue;
            }

            let Ok(reservation) = admission.try_admit(q.id, &q.query, &self.hw) else {
                // Backpressure: memory is busy, wait for a completion.
                // (Head-of-line blocking is intentional: priority order
                // is strict, so a big high-priority query is not starved
                // by small ones slipping past it.)
                break;
            };
            let q = queue.pop_front().unwrap();

            // Build-side sharing.
            let r_bytes = q.query.workload.r.len() as u64 * TUPLE_BYTES;
            let s_bytes = q.query.workload.s.len() as u64 * TUPLE_BYTES;
            let hit = match q.query.build_key {
                Some(k) => cache.acquire(k, r_bytes),
                None => false,
            };
            let probe_frac = s_bytes as f64 / (r_bytes + s_bytes).max(1) as f64;

            // Functional dedicated run with the granted cache budget.
            let op = operator_with_grant(&q.query, &reservation);
            let report = match op.run(&q.query.workload, &self.hw) {
                Ok(rep) => rep,
                Err(e) => {
                    admission.release(q.id);
                    if let Some(k) = q.query.build_key {
                        cache.release(k);
                    }
                    outcomes.push((
                        q.id,
                        Outcome::Rejected {
                            id: q.id,
                            name: q.query.name.clone(),
                            reason: RejectReason::Oom(e),
                        },
                    ));
                    continue;
                }
            };

            let demand = ResourceDemand::from_report(&report, hit, probe_frac);
            running.push(Running {
                id: q.id,
                name: q.query.name.clone(),
                arrival: q.query.arrival,
                start: clock,
                remaining: demand.work.0,
                demand: demand.vector,
                weight: q.query.priority.max(1) as f64,
                dedicated: demand.work,
                report,
                reservation,
                build_key: q.query.build_key,
                build_cache_hit: hit,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Operator;
    use triton_core::reference_join;
    use triton_datagen::WorkloadSpec;

    fn hw() -> HwConfig {
        HwConfig::ac922().scaled(512)
    }

    fn batch(n: usize, arrival_gap: f64) -> Vec<JoinQuery> {
        (0..n)
            .map(|i| {
                let mut spec = WorkloadSpec::paper_default(32, 512);
                spec.seed ^= i as u64;
                JoinQuery::new(format!("t{i}"), spec.generate(), Ns(i as f64 * arrival_gap))
            })
            .collect()
    }

    #[test]
    fn all_complete_with_exact_results() {
        let sched = Scheduler::new(hw(), SchedulerConfig::default());
        let queries = batch(4, 0.0);
        let expected: Vec<_> = queries
            .iter()
            .map(|q| reference_join(&q.workload))
            .collect();
        let res = sched.run(queries);
        assert_eq!(res.metrics.completed, 4);
        for (o, exp) in res.outcomes.iter().zip(&expected) {
            let c = o.completed().expect("query should complete");
            assert_eq!(&c.report.result, exp, "{} result mismatch", c.name);
        }
        assert!(res.metrics.peak_gpu_reserved <= res.metrics.gpu_capacity);
        assert!(res.metrics.peak_concurrency >= 2);
    }

    #[test]
    fn concurrent_no_slower_than_serial() {
        let conc = Scheduler::new(hw(), SchedulerConfig::default())
            .run(batch(4, 0.0))
            .metrics
            .makespan;
        let serial = Scheduler::new(hw(), SchedulerConfig::serial())
            .run(batch(4, 0.0))
            .metrics
            .makespan;
        assert!(
            conc.0 <= serial.0 * 1.0001,
            "concurrent {conc} must not exceed serial {serial}"
        );
    }

    #[test]
    fn queue_full_rejects_typed() {
        let sched = Scheduler::new(
            hw(),
            SchedulerConfig {
                max_inflight: 1,
                max_queue: 1,
            },
        );
        let res = sched.run(batch(4, 0.0));
        let rejected = res
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Outcome::Rejected {
                        reason: RejectReason::QueueFull { .. },
                        ..
                    }
                )
            })
            .count();
        assert!(rejected >= 1, "tiny queue must bounce arrivals");
        assert_eq!(res.metrics.completed + res.metrics.rejected, 4);
    }

    #[test]
    fn deadline_sheds_queued_queries() {
        let mut queries = batch(3, 0.0);
        // Arrive together; queue behind each other at concurrency 1 with
        // an impossible deadline for the stragglers.
        for q in &mut queries[1..] {
            q.deadline = Some(Ns(1.0));
        }
        let res = Scheduler::new(hw(), SchedulerConfig::serial()).run(queries);
        let shed = res
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Outcome::Rejected {
                        reason: RejectReason::DeadlineExceeded { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(shed, 2);
        assert_eq!(res.metrics.completed, 1);
    }

    #[test]
    fn build_sharing_hits_and_speeds_up() {
        let base = WorkloadSpec::paper_default(32, 512).generate();
        let mk = |share: bool| {
            (0..4)
                .map(|i| {
                    let w = if i == 0 {
                        base.clone()
                    } else {
                        JoinQuery::probe_batch(&base, 100 + i)
                    };
                    let mut q = JoinQuery::new(format!("b{i}"), w, Ns::ZERO);
                    if share {
                        q.build_key = Some(42);
                    }
                    q
                })
                .collect::<Vec<_>>()
        };
        let shared = Scheduler::new(hw(), SchedulerConfig::serial()).run(mk(true));
        let solo = Scheduler::new(hw(), SchedulerConfig::serial()).run(mk(false));
        assert_eq!(shared.metrics.build_cache_hits, 3);
        assert_eq!(solo.metrics.build_cache_hits, 0);
        assert!(
            shared.metrics.makespan.0 < solo.metrics.makespan.0,
            "sharing the partitioned build side must save work"
        );
        // Results stay exact despite the discount.
        for o in &shared.outcomes {
            let c = o.completed().unwrap();
            assert!(c.report.result.matches > 0);
        }
    }

    #[test]
    fn cpu_and_gpu_queries_overlap() {
        let mut queries = batch(2, 0.0);
        queries[1].op = Operator::CpuRadix(triton_core::CpuRadixJoin::power9(
            triton_core::HashScheme::BucketChaining,
        ));
        let res = Scheduler::new(hw(), SchedulerConfig::default()).run(queries);
        assert_eq!(res.metrics.completed, 2);
        // Disjoint executors: the makespan is close to the slower of the
        // two dedicated runs, far below their sum.
        let durs: Vec<f64> = res
            .outcomes
            .iter()
            .map(|o| o.completed().unwrap().dedicated.0)
            .collect();
        let sum: f64 = durs.iter().sum();
        let max = durs.iter().cloned().fold(0.0, f64::max);
        assert!(res.metrics.makespan.0 < sum * 0.95);
        assert!(res.metrics.makespan.0 >= max * 0.999);
    }
}
