//! Partition lab: compare the four GPU radix-partitioning algorithms with
//! the simulator's hardware counters, sweeping the fanout the way the
//! paper's Fig 18 does.
//!
//! ```text
//! cargo run --release --example partition_lab -p triton-core
//! ```

use triton_datagen::{WorkloadSpec, TUPLE_BYTES};
use triton_hw::HwConfig;
use triton_part::{gpu_prefix_sum, make_partitioner, Algorithm, PassConfig, Span};

fn main() {
    let k = 512;
    let hw = HwConfig::ac922().scaled(k);
    // One large relation, read from and written back to CPU memory.
    let w = WorkloadSpec::paper_default(1024, k).generate();
    let bytes = w.r.len() as u64 * TUPLE_BYTES;
    let gib = (1u64 << 30) as f64;
    let input = Span::cpu(0);
    let output = Span::cpu(1 << 40);

    println!(
        "partitioning {} actual tuples (1024 M modeled, out-of-core)\n",
        w.r.len()
    );
    println!(
        "{:>13} {:>7} {:>9} {:>11} {:>11} {:>14}",
        "algorithm", "fanout", "GiB/s", "tuples/txn", "wire ovh", "IOMMU req/tup"
    );

    for alg in Algorithm::all() {
        let part = make_partitioner(alg);
        for bits in [4u32, 8, 11] {
            let pass = PassConfig::new(bits, 0);
            let (hist, _) = gpu_prefix_sum(&w.r.keys, &input, &pass, &hw, false);
            let (parts, cost) =
                part.partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw);
            assert_eq!(parts.len(), w.r.len(), "no tuple may be lost");
            let t = cost.timing(&hw);
            let link = triton_hw::LinkModel::new(&hw.link);
            let wire =
                (cost.link.wire_cpu_to_gpu(&link).0 + cost.link.wire_gpu_to_cpu(&link).0) as f64;
            println!(
                "{:>13} {:>7} {:>9.1} {:>11.2} {:>10.0}% {:>14.2e}",
                alg.name(),
                1 << bits,
                2.0 * bytes as f64 / gib / t.total.as_secs(),
                cost.tuples_per_txn(),
                (wire / (2 * bytes) as f64 - 1.0) * 100.0,
                cost.tlb.full_misses as f64 * hw.tlb.requests_per_walk / w.r.len() as f64,
            );
        }
        println!();
    }

    println!(
        "Shared flushes whole aligned 128-byte lines (perfect coalescing)\n\
         but its buffers shrink with the fanout; Hierarchical adds a second\n\
         buffer tier in GPU memory and keeps flushes large at any fanout —\n\
         the design Table 1 summarises."
    );
}
