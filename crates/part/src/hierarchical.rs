//! The Hierarchical radix partitioner: two-level software write-combining
//! (Section 4.3 of the paper — the algorithm the Triton join uses for its
//! out-of-core first pass).
//!
//! Hierarchical extends [`Shared`](crate::shared::SharedSwwc) with a
//! second buffer tier in GPU memory. L1 buffers live in scratchpad as
//! before; a full L1 buffer is *evicted* into its partition's L2 buffer in
//! GPU memory, and only a full L2 buffer is flushed — asynchronously,
//! after being swapped against an empty buffer from a spare pool
//! (double-buffering keeps the critical section to a pointer update).
//!
//! The added capacity means flushes to CPU memory are both larger (always
//! whole aligned lines) and rarer, which divides the translation pressure
//! by the L2/L1 size ratio — the mechanism behind the 100-1436x lower
//! IOMMU request rates of Fig 18(d) and the graceful high-fanout scaling
//! of Fig 17.

use triton_datagen::TUPLE_BYTES;
use triton_hw::kernel::KernelCost;
use triton_hw::units::Bytes;
use triton_hw::HwConfig;

use crate::common::{ChargeCtx, Partitioned, PassConfig, Span};
use crate::partitioner::{Algorithm, Emu, GpuPartitioner};
use crate::prefix_sum::HistogramResult;

/// The Hierarchical SWWC partitioner.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalSwwc {
    /// Fraction of the scratchpad for L1 buffers.
    pub scratchpad_fraction: f64,
    /// Explicit L2 buffer size in tuples; 0 = size automatically from the
    /// GPU-memory budget.
    pub l2_tuples: usize,
    /// Fraction of GPU memory reserved for L2 buffers when sizing
    /// automatically.
    pub gpu_budget_fraction: f64,
}

impl Default for HierarchicalSwwc {
    fn default() -> Self {
        HierarchicalSwwc {
            scratchpad_fraction: 1.0,
            l2_tuples: 0,
            gpu_budget_fraction: 0.125,
        }
    }
}

impl HierarchicalSwwc {
    /// L1 buffer size in tuples at `fanout`.
    pub fn l1_tuples(&self, hw: &HwConfig, fanout: usize) -> usize {
        let bytes = (hw.gpu.scratchpad.as_f64() * self.scratchpad_fraction) as u64;
        ((bytes / fanout as u64) / TUPLE_BYTES).max(1) as usize
    }

    /// L2 buffer size in tuples at `fanout`.
    pub fn l2_buffer_tuples(&self, hw: &HwConfig, fanout: usize) -> usize {
        if self.l2_tuples > 0 {
            return self.l2_tuples.max(8);
        }
        let budget = (hw.gpu.mem_capacity.as_f64() * self.gpu_budget_fraction) as u64;
        let per_partition = budget / fanout as u64 / TUPLE_BYTES;
        // Whole 128-byte lines, between 128 and 256 tuples. The floor is
        // a *granularity* (like the scratchpad): at paper scale the GPU
        // budget always affords >= 256-tuple buffers, and flush size is
        // what sets the TLB pressure, so it must not shrink with the
        // capacity scale factor.
        let t = per_partition.clamp(128, 256) as usize;
        (t / 8) * 8
    }
}

impl GpuPartitioner for HierarchicalSwwc {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Hierarchical
    }

    fn partition(
        &self,
        keys: &[u64],
        rids: &[u64],
        hist: &HistogramResult,
        input: &Span,
        output: &Span,
        pass: &PassConfig,
        hw: &HwConfig,
    ) -> (Partitioned, KernelCost) {
        let n = keys.len();
        let fanout = pass.fanout();
        let l1_cap = self.l1_tuples(hw, fanout);
        let l2_cap = self.l2_buffer_tuples(hw, fanout).max(l1_cap);
        let mut emu = Emu::new(
            "partition (hierarchical)",
            n,
            hist,
            input,
            output,
            pass,
            hw,
            true,
        );
        // The L2 buffer area lives in GPU memory; its translations are a
        // handful of GPU-side pages.
        let l2_span = Span::gpu(1 << 44);

        let mut l1: Vec<Vec<(u64, u64)>> =
            (0..fanout).map(|_| Vec::with_capacity(l1_cap)).collect();
        let mut l2: Vec<Vec<(u64, u64)>> =
            (0..fanout).map(|_| Vec::with_capacity(l2_cap)).collect();

        // Evict one L1 buffer into its L2 buffer; flush the L2 buffer when
        // it fills.
        fn evict(
            emu: &mut Emu,
            l2_span: &Span,
            p: usize,
            l1: &mut Vec<(u64, u64)>,
            l2: &mut Vec<(u64, u64)>,
            l2_cap: usize,
        ) {
            if l1.is_empty() {
                return;
            }
            let bytes = l1.len() as u64 * TUPLE_BYTES;
            emu.cost.instructions +=
                emu.instr.flush_fixed + l1.len() as u64 * emu.instr.flush_per_tuple;
            emu.cost.gpu_mem.write += Bytes(bytes);
            {
                let mut ctx = ChargeCtx {
                    cost: &mut emu.cost,
                    link: &emu.link,
                    tlb: &mut emu.tlb,
                };
                // One GPU-side translation for the L2 buffer page.
                ctx.random_read(l2_span, (p as u64) * 4096 % (1 << 20), 0);
            }
            l2.append(l1);
            if l2.len() >= l2_cap {
                flush_l2(emu, p, l2);
            }
        }

        // Swap against a spare and flush the full L2 buffer to the output.
        fn flush_l2(emu: &mut Emu, p: usize, l2: &mut Vec<(u64, u64)>) {
            let bytes = l2.len() as u64 * TUPLE_BYTES;
            emu.cost.gpu_mem.read += Bytes(bytes);
            emu.cost.instructions +=
                emu.instr.flush_fixed + l2.len() as u64 * emu.instr.flush_per_tuple;
            // Double-buffered swap: short critical section.
            emu.cost.sync_cycles += 16;
            let buf = std::mem::take(l2);
            emu.flush(p, &buf, true);
            *l2 = buf;
            l2.clear();
        }

        for (s, e) in Emu::chunks(n, pass, hw, fanout * l1_cap * 32) {
            let mut i = s;
            while i < e {
                let wbatch = 32.min(e - i);
                emu.charge_input(i, wbatch);
                emu.cost.instructions += wbatch as u64 * emu.instr.fill_per_tuple;
                for j in i..i + wbatch {
                    let p = emu.pid(keys[j]);
                    l1[p].push((keys[j], rids[j]));
                    if l1[p].len() == l1_cap {
                        evict(&mut emu, &l2_span, p, &mut l1[p], &mut l2[p], l2_cap);
                    }
                }
                i += wbatch;
            }
            // Block end: evict the partial L1 buffers into L2 (they stay
            // buffered; L2 is shared across blocks).
            for p in 0..fanout {
                if !l1[p].is_empty() {
                    evict(&mut emu, &l2_span, p, &mut l1[p], &mut l2[p], l2_cap);
                }
            }
        }
        // Kernel end: drain all L2 buffers.
        for (p, buf) in l2.iter_mut().enumerate() {
            if !buf.is_empty() {
                flush_l2(&mut emu, p, buf);
            }
        }
        emu.finish(hist, pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::testutil::check_partitioner;
    use crate::prefix_sum::compute_histogram;
    use crate::shared::SharedSwwc;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn functional_correctness() {
        check_partitioner(&HierarchicalSwwc::default(), 6, 0);
        check_partitioner(&HierarchicalSwwc::default(), 10, 0);
        check_partitioner(&HierarchicalSwwc::default(), 4, 8);
    }

    #[test]
    fn l2_buffers_shrink_with_fanout_but_stay_line_sized() {
        let hw = HwConfig::ac922();
        let h = HierarchicalSwwc::default();
        for bits in [2u32, 6, 9, 11] {
            let t = h.l2_buffer_tuples(&hw, 1 << bits);
            assert!(t >= 128, "L2 buffer below floor at 2^{bits}");
            assert_eq!(t % 8, 0, "L2 buffer not line-multiple at 2^{bits}");
        }
    }

    #[test]
    fn fewer_iommu_requests_than_shared_at_high_fanout() {
        // Fig 18 partitions ~60 GiB, well beyond the 32 GiB translation
        // coverage; the scaled equivalent needs the same ratio, so the
        // workload scale factor matches the hardware scale factor.
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(4096, 4096).generate();
        let bits = 11;
        let pass = PassConfig::new(bits, 0);
        let hist = compute_histogram(&w.r.keys, 160, bits, 0);
        let input = Span::cpu(0);
        let output = Span::cpu(1 << 40);
        let (_, shared_cost) = SharedSwwc::default()
            .partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw);
        let (_, hier_cost) = HierarchicalSwwc::default()
            .partition(&w.r.keys, &w.r.rids, &hist, &input, &output, &pass, &hw);
        let s = shared_cost.iommu_requests_per_tuple();
        let h = hier_cost.iommu_requests_per_tuple();
        assert!(
            h * 4.0 < s,
            "Hierarchical ({h:.4}) must cut IOMMU requests vs Shared ({s:.4})"
        );
    }

    #[test]
    fn flushes_always_whole_lines() {
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(2, 100).generate();
        let bits = 11; // Shared would flush 2-tuple (32 B) buffers here.
        let pass = PassConfig::new(bits, 0);
        let hist = compute_histogram(&w.r.keys, 160, bits, 0);
        let (_, cost) = HierarchicalSwwc::default().partition(
            &w.r.keys,
            &w.r.rids,
            &hist,
            &Span::cpu(0),
            &Span::cpu(1 << 40),
            &pass,
            &hw,
        );
        // Only the final drains may be partial.
        let drain_bound = 2 * (1 << bits) as u64;
        assert!(
            cost.link.rand_write.partial_txns <= drain_bound,
            "partials {}",
            cost.link.rand_write.partial_txns
        );
    }

    #[test]
    fn pays_gpu_memory_for_the_second_tier() {
        let hw = HwConfig::ac922().scaled(4096);
        let w = WorkloadSpec::paper_default(1, 100).generate();
        let pass = PassConfig::new(8, 0);
        let hist = compute_histogram(&w.r.keys, 160, 8, 0);
        let (_, cost) = HierarchicalSwwc::default().partition(
            &w.r.keys,
            &w.r.rids,
            &hist,
            &Span::cpu(0),
            &Span::cpu(1 << 40),
            &pass,
            &hw,
        );
        let n_bytes = w.r.len() as u64 * 16;
        // Every tuple passes through the L2 tier: written + read once.
        assert!(cost.gpu_mem.write.0 >= n_bytes);
        assert!(cost.gpu_mem.read.0 >= n_bytes);
    }
}
