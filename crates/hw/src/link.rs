//! NVLink 2.0 transfer cost model.
//!
//! Section 2.1 of the paper describes the packet format: every packet
//! carries a 16-byte header and 1-256 bytes of payload; small reads are
//! padded to a 32-byte payload; small writes carry an extra 16-byte "byte
//! enable" header extension; SM-originated packets carry at most 128 bytes
//! (one L1 cacheline). Section 3.4.1 measures the achieved bandwidth of
//! random accesses: it grows linearly with the access granularity until a
//! 128-byte access matches sequential throughput, i.e. the GPU coalesces
//! CPU-memory accesses into 128-byte cacheline transactions and sustains a
//! bounded *transaction rate* below the saturation point.
//!
//! This module turns those observations into a cost model with two limits:
//!
//! 1. **Wire bytes**: payload plus per-packet overhead divided by the raw
//!    per-direction bandwidth.
//! 2. **Transaction rate**: independent random accesses are issued at a
//!    bounded rate (reads faster than writes, matching Fig 6a).
//!
//! The model is exercised directly by the Fig 6 reproduction and indirectly
//! by every out-of-core kernel.

use crate::config::LinkConfig;
use crate::units::{Bytes, Ns};

/// Transfer direction over the interconnect, named from the GPU's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// GPU reads CPU memory (payload flows CPU -> GPU).
    CpuToGpu,
    /// GPU writes CPU memory (payload flows GPU -> CPU).
    GpuToCpu,
}

/// Alignment classes of Section 3.4.1 / Fig 6(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alignment {
    /// Access aligned to its own granularity (the paper's default).
    Natural,
    /// Aligned only to the 128-byte cacheline.
    Cacheline,
    /// Misaligned by a sub-cacheline amount (the paper uses 16 bytes).
    None,
}

/// Wire cost of a batch of accesses: payload, total wire bytes per
/// direction, and the number of cacheline transactions issued.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WireCost {
    /// Useful payload bytes.
    pub payload: Bytes,
    /// Bytes on the wire in the direction that carries the payload
    /// (includes headers, padding, byte-enable extensions).
    pub wire_data_dir: Bytes,
    /// Bytes on the wire in the opposite direction (read requests or write
    /// acknowledgements).
    pub wire_ctrl_dir: Bytes,
    /// 128-byte-granule interconnect transactions issued.
    pub transactions: u64,
    /// Transactions that carry a *partial* cacheline (sub-128-byte or
    /// misaligned writes). These pay the byte-enable extension and are
    /// subject to the write transaction-rate limit.
    pub partial_txns: u64,
}

impl WireCost {
    /// Accumulate another cost into this one.
    pub fn merge(&mut self, other: &WireCost) {
        self.payload += other.payload;
        self.wire_data_dir += other.wire_data_dir;
        self.wire_ctrl_dir += other.wire_ctrl_dir;
        self.transactions += other.transactions;
        self.partial_txns += other.partial_txns;
    }

    /// Protocol overhead as a fraction of payload (Fig 18c reports overhead
    /// reaching 156% of the transfer volume for poorly coalesced writes).
    pub fn overhead_ratio(&self) -> f64 {
        if self.payload.0 == 0 {
            return 0.0;
        }
        (self.wire_data_dir + self.wire_ctrl_dir)
            .saturating_sub(self.payload)
            .ratio_of(self.payload)
    }
}

/// The NVLink cost model. Cheap to copy; all methods are pure.
///
/// ```
/// use triton_hw::{HwConfig, LinkModel};
/// let link = LinkModel::new(&HwConfig::ac922().link);
/// // A 16-byte write lands in one partial 128-byte line...
/// let wc = link.write_at(0, 16);
/// assert_eq!((wc.transactions, wc.partial_txns), (1, 1));
/// // ...while an aligned 256-byte flush fills two whole lines.
/// let wc = link.write_at(256, 256);
/// assert_eq!((wc.transactions, wc.partial_txns), (2, 0));
/// ```
#[derive(Debug, Clone)]
pub struct LinkModel {
    cfg: LinkConfig,
}

impl LinkModel {
    /// Build a model from the configuration.
    pub fn new(cfg: &LinkConfig) -> Self {
        LinkModel { cfg: cfg.clone() }
    }

    /// Access the configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Maximum effective sequential bandwidth per direction: payload share
    /// of the wire once every 128-byte packet pays its 16-byte header.
    /// The paper calculates 62-65.7 GiB/s.
    pub fn effective_seq_bw(&self) -> f64 {
        let p = self.cfg.max_payload.as_f64();
        self.cfg.raw_bw_per_dir.0 * p / (p + self.cfg.header.as_f64())
    }

    /// Wire cost of one *read* of `granularity` bytes at `alignment`.
    ///
    /// Reads occupy full cachelines on the response path (the GPU fetches
    /// whole 128-byte lines from CPU memory over NVLink); requests cost one
    /// header in the opposite direction per line.
    pub fn read(&self, granularity: Bytes, alignment: Alignment) -> WireCost {
        let lines = self.lines_spanned(granularity, alignment);
        let line = self.cfg.max_payload;
        let header = self.cfg.header;
        WireCost {
            payload: granularity,
            wire_data_dir: (line + header) * lines,
            wire_ctrl_dir: header * lines,
            transactions: lines,
            partial_txns: 0,
        }
    }

    /// Wire cost of one *write* of `granularity` bytes at `alignment`.
    ///
    /// Full aligned lines carry header + payload. Partial lines additionally
    /// carry the byte-enable extension and (in the model) trigger a
    /// read-modify-write at the home node, accounted as extra control
    /// traffic via `partial_write_penalty`.
    pub fn write(&self, granularity: Bytes, alignment: Alignment) -> WireCost {
        let line = self.cfg.max_payload.0;
        let lines = self.lines_spanned(granularity, alignment);
        // Line-aligned writes fill whole cachelines; a misaligned write
        // shifts the data against every cacheline it touches, so *all* of
        // its lines are partial and pay the read-modify-write cost.
        let full_lines = match alignment {
            Alignment::Natural | Alignment::Cacheline => granularity.0 / line,
            Alignment::None => 0,
        }
        .min(lines);
        let partial_lines = lines - full_lines;
        let header = self.cfg.header.0;
        let be = self.cfg.byte_enable.0;
        // Partial lines move a padded payload slot (at least
        // `min_read_payload`) plus the byte-enable extension, and pay the
        // RMW penalty as additional wire occupancy at the home node.
        let mut data_dir = full_lines * (line + header);
        let mut remaining_partial = granularity.0 - full_lines * line;
        for i in 0..partial_lines {
            // Distribute the remaining payload over the partial lines:
            // middle lines of a misaligned span still carry near-full
            // payloads, edge lines carry the remainder.
            let lines_left = partial_lines - i;
            let chunk = if lines_left == 1 {
                remaining_partial
            } else {
                remaining_partial.min(line)
            };
            let slot = chunk.max(1).max(self.cfg.min_read_payload.0).min(line);
            let rmw_extra = ((self.cfg.partial_write_penalty - 1.0) * (slot + be) as f64) as u64;
            data_dir += slot + header + be + rmw_extra;
            remaining_partial = remaining_partial.saturating_sub(chunk);
        }
        WireCost {
            payload: granularity,
            wire_data_dir: Bytes(data_dir),
            wire_ctrl_dir: Bytes(lines * header),
            transactions: lines,
            partial_txns: partial_lines,
        }
    }

    /// Wire cost of one read of `len` bytes at the exact byte `offset`
    /// (lines spanned computed from the offset, not an alignment class).
    pub fn read_at(&self, offset: u64, len: u64) -> WireCost {
        if len == 0 {
            return WireCost::default();
        }
        let line = self.cfg.max_payload.0;
        let lines = (offset % line + len).div_ceil(line);
        let header = self.cfg.header.0;
        WireCost {
            payload: Bytes(len),
            wire_data_dir: Bytes(lines * (line + header)),
            wire_ctrl_dir: Bytes(lines * header),
            transactions: lines,
            partial_txns: 0,
        }
    }

    /// Wire cost of one write of `len` bytes at the exact byte `offset`.
    /// Lines that the write does not fully cover are partial (byte-enable
    /// plus read-modify-write penalty).
    pub fn write_at(&self, offset: u64, len: u64) -> WireCost {
        if len == 0 {
            return WireCost::default();
        }
        let line = self.cfg.max_payload.0;
        let first = offset / line;
        let last = (offset + len - 1) / line;
        let header = self.cfg.header.0;
        let be = self.cfg.byte_enable.0;
        let mut data_dir = 0u64;
        let mut partials = 0u64;
        for l in first..=last {
            let lo = offset.max(l * line);
            let hi = (offset + len).min((l + 1) * line);
            let chunk = hi - lo;
            if chunk == line {
                data_dir += line + header;
            } else {
                let slot = chunk.max(self.cfg.min_read_payload.0).min(line);
                let rmw = ((self.cfg.partial_write_penalty - 1.0) * (slot + be) as f64) as u64;
                data_dir += slot + header + be + rmw;
                partials += 1;
            }
        }
        WireCost {
            payload: Bytes(len),
            wire_data_dir: Bytes(data_dir),
            wire_ctrl_dir: Bytes((last - first + 1) * header),
            transactions: last - first + 1,
            partial_txns: partials,
        }
    }

    /// 128-byte cachelines spanned by one access.
    fn lines_spanned(&self, granularity: Bytes, alignment: Alignment) -> u64 {
        let line = self.cfg.max_payload.0;
        if granularity.0 == 0 {
            return 0;
        }
        match alignment {
            Alignment::Natural | Alignment::Cacheline => granularity.0.div_ceil(line),
            // Misaligned by a sub-line amount: one extra line is touched
            // whenever the access does not already end exactly at a line
            // boundary after the shift.
            Alignment::None => granularity.0.div_ceil(line) + 1,
        }
    }

    /// Time for `n` independent random accesses of `granularity` bytes in
    /// `dir` at `alignment`: the max of the wire-byte limit and the
    /// transaction-rate limit.
    pub fn random_access_time(
        &self,
        n: u64,
        granularity: Bytes,
        dir: Dir,
        alignment: Alignment,
    ) -> Ns {
        let per = match dir {
            Dir::CpuToGpu => self.read(granularity, alignment),
            Dir::GpuToCpu => self.write(granularity, alignment),
        };
        let wire_bytes = per.wire_data_dir * n;
        // Reads are rate-limited per line fetched; writes only per partial
        // line (full aligned lines stream at wire speed; Fig 6a shows
        // writes matching reads at 128 bytes).
        let (txns, rate) = match dir {
            Dir::CpuToGpu => (per.transactions * n, self.cfg.read_txn_rate),
            Dir::GpuToCpu => (per.partial_txns * n, self.cfg.write_txn_rate),
        };
        let t_wire = self.cfg.raw_bw_per_dir.time_for(wire_bytes);
        let t_txn = Ns(txns as f64 / rate * 1e9);
        t_wire.max(t_txn)
    }

    /// Achieved bandwidth (payload bytes/s) of the random-access pattern of
    /// Fig 6: `n` accesses of `granularity` bytes.
    pub fn random_access_bandwidth(
        &self,
        granularity: Bytes,
        dir: Dir,
        alignment: Alignment,
    ) -> f64 {
        let n = 1_000_000;
        let t = self.random_access_time(n, granularity, dir, alignment);
        (granularity.0 * n) as f64 / t.as_secs()
    }

    /// Time to stream `bytes` sequentially in one direction (perfectly
    /// coalesced 128-byte packets).
    pub fn seq_transfer_time(&self, bytes: Bytes) -> Ns {
        if bytes.0 == 0 {
            return Ns::ZERO;
        }
        Ns(bytes.as_f64() / self.effective_seq_bw() * 1e9)
    }

    /// Effective bandwidth ceiling when both directions stream
    /// simultaneously (read input + write output), per direction.
    pub fn bidir_seq_bw(&self) -> f64 {
        self.effective_seq_bw() * self.cfg.bidir_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;
    const GIB: f64 = (1u64 << 30) as f64;

    fn model() -> LinkModel {
        LinkModel::new(&HwConfig::ac922().link)
    }

    #[test]
    fn effective_seq_bw_matches_paper_range() {
        // Paper: 62-65.7 GiB/s effective per direction.
        let bw = model().effective_seq_bw() / GIB;
        assert!((62.0..=65.7).contains(&bw), "got {bw}");
    }

    #[test]
    fn fig6a_read_bandwidth_shape() {
        // Fig 6(a) read series: (granularity, GiB/s) =
        // (4, 2.6) (8, 5.1) (16, 10.4) (32, 22.1) (64, 44.1) (128, 63.8).
        let m = model();
        let expect = [
            (4u64, 2.6),
            (8, 5.1),
            (16, 10.4),
            (32, 22.1),
            (64, 44.1),
            (128, 63.8),
        ];
        for (g, paper) in expect {
            let got = m.random_access_bandwidth(Bytes(g), Dir::CpuToGpu, Alignment::Natural) / GIB;
            let ratio = got / paper;
            assert!(
                (0.7..=1.35).contains(&ratio),
                "read g={g}: got {got:.1} GiB/s vs paper {paper}"
            );
        }
    }

    #[test]
    fn fig6a_write_bandwidth_shape() {
        // Fig 6(a) write series: (4, 1.8) (8, 3.6) (16, 5.9) (32, 12.5)
        // (64, 25.3) (128, 63.6).
        let m = model();
        let expect = [(4u64, 1.8), (8, 3.6), (16, 5.9), (32, 12.5), (64, 25.3)];
        for (g, paper) in expect {
            let got = m.random_access_bandwidth(Bytes(g), Dir::GpuToCpu, Alignment::Natural) / GIB;
            let ratio = got / paper;
            assert!(
                (0.55..=1.6).contains(&ratio),
                "write g={g}: got {got:.1} GiB/s vs paper {paper}"
            );
        }
        // At 128 bytes writes saturate like reads.
        let got = m.random_access_bandwidth(Bytes(128), Dir::GpuToCpu, Alignment::Natural) / GIB;
        assert!(
            got > 55.0,
            "128B writes should approach saturation, got {got}"
        );
    }

    #[test]
    fn reads_faster_than_writes_at_small_granularity() {
        let m = model();
        for g in [4u64, 8, 16, 32, 64] {
            let r = m.random_access_bandwidth(Bytes(g), Dir::CpuToGpu, Alignment::Natural);
            let w = m.random_access_bandwidth(Bytes(g), Dir::GpuToCpu, Alignment::Natural);
            assert!(r > w, "g={g}: read {r} !> write {w}");
        }
    }

    #[test]
    fn fig6b_misalignment_penalty() {
        // Paper: misaligning a 512-byte access by 16 bytes costs reads 20%
        // and writes 56%.
        let m = model();
        let g = Bytes(512);
        let r_al = m.random_access_bandwidth(g, Dir::CpuToGpu, Alignment::Natural);
        let r_mis = m.random_access_bandwidth(g, Dir::CpuToGpu, Alignment::None);
        let read_drop = 1.0 - r_mis / r_al;
        assert!(
            (0.1..=0.3).contains(&read_drop),
            "read misalignment drop {read_drop}"
        );
        let w_al = m.random_access_bandwidth(g, Dir::GpuToCpu, Alignment::Natural);
        let w_mis = m.random_access_bandwidth(g, Dir::GpuToCpu, Alignment::None);
        let write_drop = 1.0 - w_mis / w_al;
        assert!(
            (0.4..=0.7).contains(&write_drop),
            "write misalignment drop {write_drop}"
        );
    }

    #[test]
    fn misaligned_access_spans_extra_line() {
        let m = model();
        assert_eq!(m.read(Bytes(512), Alignment::Natural).transactions, 4);
        assert_eq!(m.read(Bytes(512), Alignment::None).transactions, 5);
    }

    #[test]
    fn wirecost_merge_and_overhead() {
        let m = model();
        let mut acc = WireCost::default();
        acc.merge(&m.write(Bytes(128), Alignment::Natural));
        acc.merge(&m.write(Bytes(128), Alignment::Natural));
        assert_eq!(acc.payload, Bytes(256));
        assert_eq!(acc.transactions, 2);
        // 16B header per 128B line + 16B ctrl header -> 25% overhead.
        assert!((acc.overhead_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_sized_access_is_free() {
        let m = model();
        assert_eq!(m.read(Bytes(0), Alignment::Natural), WireCost::default());
        assert_eq!(
            m.random_access_time(0, Bytes(16), Dir::CpuToGpu, Alignment::Natural),
            Ns::ZERO
        );
    }

    #[test]
    fn seq_transfer_time_linear() {
        let m = model();
        let t1 = m.seq_transfer_time(Bytes::gib(1));
        let t2 = m.seq_transfer_time(Bytes::gib(2));
        assert!((t2.0 / t1.0 - 2.0).abs() < 1e-9);
    }
}
