//! TPC-H-shaped multi-relation workloads for query-plan experiments.
//!
//! Scaled-down analogues of TPC-H Q3 and Q9: a chain of foreign-key
//! joins (customer ⋈ orders ⋈ lineitem, part ⋈ lineitem ⋈ orders) with
//! a selection at the bottom and a group-by at the top. Foreign keys
//! draw from a Zipf(θ) distribution so the plan inherits the skew
//! scenarios of the single-join workloads, and all cardinalities scale
//! with the capacity factor K exactly like [`crate::WorkloadSpec`].
//!
//! The generator produces *relations only*; the plan shape over them
//! lives in `triton-plan` (which depends on this crate, not the other
//! way around).

use crate::distributions::Zipf;
use crate::relation::Relation;
use crate::rng::Rng;
use crate::workload::M;

/// Which TPC-H-shaped query the workload feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchQuery {
    /// Q3-like: σ(customer) ⋈ orders ⋈ lineitem, group by orderkey.
    Q3,
    /// Q9-like: σ(part) ⋈ lineitem ⋈ orders, group by orderkey.
    Q9,
}

impl TpchQuery {
    /// Short label for reports and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            TpchQuery::Q3 => "q3",
            TpchQuery::Q9 => "q9",
        }
    }

    /// Names of the base relations, in input order.
    pub fn input_names(&self) -> &'static [&'static str] {
        match self {
            TpchQuery::Q3 => &["customer", "orders", "lineitem"],
            TpchQuery::Q9 => &["part", "lineitem", "orders"],
        }
    }
}

/// Specification of a TPC-H-shaped workload. Cardinalities follow the
/// TPC-H ratios loosely: lineitem is the fact table, orders is 4x
/// smaller, and the filtered dimension (customer / part) 32x smaller.
#[derive(Debug, Clone)]
pub struct TpchSpec {
    /// Which query shape to feed.
    pub query: TpchQuery,
    /// Lineitem cardinality in *modeled* tuples (paper scale).
    pub lineitem_tuples_modeled: u64,
    /// Capacity scale factor K; actual tuples = modeled / K.
    pub scale: u64,
    /// Zipf exponent of every foreign-key column (0 = uniform).
    pub zipf_theta: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl TpchSpec {
    /// Q3-like default at `m` million modeled lineitem tuples, scale `k`.
    pub fn q3(m: u64, k: u64) -> Self {
        TpchSpec {
            query: TpchQuery::Q3,
            lineitem_tuples_modeled: m * M,
            scale: k,
            zipf_theta: 0.0,
            seed: 0x0712_1703,
        }
    }

    /// Q9-like default at `m` million modeled lineitem tuples, scale `k`.
    pub fn q9(m: u64, k: u64) -> Self {
        TpchSpec {
            query: TpchQuery::Q9,
            lineitem_tuples_modeled: m * M,
            scale: k,
            zipf_theta: 0.0,
            seed: 0x0712_1709,
        }
    }

    /// Actual lineitem tuples executed functionally.
    pub fn lineitem_tuples(&self) -> usize {
        (self.lineitem_tuples_modeled / self.scale).max(8) as usize
    }

    /// Actual orders tuples (lineitem / 4).
    pub fn orders_tuples(&self) -> usize {
        (self.lineitem_tuples() / 4).max(2)
    }

    /// Actual dimension tuples — customer (Q3) or part (Q9): orders / 8.
    pub fn dimension_tuples(&self) -> usize {
        (self.orders_tuples() / 8).max(2)
    }

    /// Total actual tuples across all base relations.
    pub fn total_tuples(&self) -> u64 {
        (self.lineitem_tuples() + self.orders_tuples() + self.dimension_tuples()) as u64
    }

    /// Generate the base relations, in [`TpchQuery::input_names`] order.
    pub fn generate(&self) -> TpchWorkload {
        let mut rng = Rng::seed_from_u64(self.seed);
        let n_l = self.lineitem_tuples();
        let n_o = self.orders_tuples();
        let n_d = self.dimension_tuples();
        let zipf = |n: usize| (self.zipf_theta > 0.0).then(|| Zipf::new(n, self.zipf_theta));

        // A foreign-key column into a dimension of n keys.
        let mut fk_column = |n: usize, count: usize| -> Vec<u64> {
            let z = zipf(n);
            (0..count)
                .map(|_| match &z {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range_u64(1, n as u64),
                })
                .collect()
        };

        let inputs = match self.query {
            TpchQuery::Q3 => {
                // customer(custkey pk, rid) ⋈ orders(custkey fk,
                // orderkey pk) ⋈ lineitem(orderkey fk, rid).
                let o_fk = fk_column(n_d, n_o);
                let l_fk = fk_column(n_o, n_l);
                let mut c_keys: Vec<u64> = (1..=n_d as u64).collect();
                rng.shuffle(&mut c_keys);
                let c_rids: Vec<u64> = (0..n_d).map(|_| rng.next_u64()).collect();
                let mut o_rids: Vec<u64> = (1..=n_o as u64).collect();
                rng.shuffle(&mut o_rids);
                let l_rids: Vec<u64> = (0..n_l).map(|_| rng.next_u64()).collect();
                vec![
                    Relation::from_columns(c_keys, c_rids),
                    Relation::from_columns(o_fk, o_rids),
                    Relation::from_columns(l_fk, l_rids),
                ]
            }
            TpchQuery::Q9 => {
                // part(partkey pk, rid) ⋈ lineitem(partkey fk,
                // orderkey fk) ⋈ orders(orderkey pk, rid).
                let l_fk_part = fk_column(n_d, n_l);
                let l_fk_order = fk_column(n_o, n_l);
                let mut p_keys: Vec<u64> = (1..=n_d as u64).collect();
                rng.shuffle(&mut p_keys);
                let p_rids: Vec<u64> = (0..n_d).map(|_| rng.next_u64()).collect();
                let mut o_keys: Vec<u64> = (1..=n_o as u64).collect();
                rng.shuffle(&mut o_keys);
                let o_rids: Vec<u64> = (0..n_o).map(|_| rng.next_u64()).collect();
                vec![
                    Relation::from_columns(p_keys, p_rids),
                    Relation::from_columns(l_fk_part, l_fk_order),
                    Relation::from_columns(o_keys, o_rids),
                ]
            }
        };

        TpchWorkload {
            inputs,
            spec: self.clone(),
        }
    }
}

/// A generated TPC-H-shaped workload: base relations plus the spec.
#[derive(Debug, Clone)]
pub struct TpchWorkload {
    /// Base relations, in [`TpchQuery::input_names`] order.
    pub inputs: Vec<Relation>,
    /// The spec that produced them.
    pub spec: TpchSpec,
}

impl TpchWorkload {
    /// Total actual tuples across all base relations.
    pub fn total_tuples(&self) -> u64 {
        self.inputs.iter().map(|r| r.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q3_shapes_and_ranges() {
        let spec = TpchSpec::q3(8, 512);
        let w = spec.generate();
        assert_eq!(w.inputs.len(), 3);
        let (c, o, l) = (&w.inputs[0], &w.inputs[1], &w.inputs[2]);
        assert_eq!(l.len(), spec.lineitem_tuples());
        assert_eq!(o.len(), spec.orders_tuples());
        assert_eq!(c.len(), spec.dimension_tuples());
        // customer keys are a permutation of 1..=n_d.
        let mut ck = c.keys.clone();
        ck.sort_unstable();
        assert_eq!(ck, (1..=c.len() as u64).collect::<Vec<_>>());
        // orders: custkey FK in range, orderkey a permutation.
        assert!(o.keys.iter().all(|&k| (1..=c.len() as u64).contains(&k)));
        let mut ok = o.rids.clone();
        ok.sort_unstable();
        assert_eq!(ok, (1..=o.len() as u64).collect::<Vec<_>>());
        // lineitem: orderkey FK in range.
        assert!(l.keys.iter().all(|&k| (1..=o.len() as u64).contains(&k)));
    }

    #[test]
    fn q9_shapes_and_ranges() {
        let spec = TpchSpec::q9(8, 512);
        let w = spec.generate();
        let (p, l, o) = (&w.inputs[0], &w.inputs[1], &w.inputs[2]);
        let mut pk = p.keys.clone();
        pk.sort_unstable();
        assert_eq!(pk, (1..=p.len() as u64).collect::<Vec<_>>());
        let mut ok = o.keys.clone();
        ok.sort_unstable();
        assert_eq!(ok, (1..=o.len() as u64).collect::<Vec<_>>());
        // lineitem: partkey FK as key, orderkey FK as rid.
        assert!(l.keys.iter().all(|&k| (1..=p.len() as u64).contains(&k)));
        assert!(l.rids.iter().all(|&k| (1..=o.len() as u64).contains(&k)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TpchSpec::q3(8, 512).generate();
        let b = TpchSpec::q3(8, 512).generate();
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.keys, y.keys);
            assert_eq!(x.rids, y.rids);
        }
    }

    #[test]
    fn zipf_theta_concentrates_foreign_keys() {
        let mut spec = TpchSpec::q3(8, 512);
        let uniform = spec.generate();
        spec.zipf_theta = 1.5;
        let skewed = spec.generate();
        let head_count = |r: &Relation, n: usize| {
            let head = (n / 100).max(1) as u64;
            r.keys.iter().filter(|&&k| k <= head).count()
        };
        let n_o = spec.orders_tuples();
        assert!(
            head_count(&skewed.inputs[2], n_o) > head_count(&uniform.inputs[2], n_o) * 2,
            "θ must concentrate lineitem FKs on hot orderkeys"
        );
    }
}
