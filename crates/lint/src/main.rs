//! `triton-lint` — scan the workspace for determinism & unit-safety
//! violations.
//!
//! ```text
//! triton-lint [--json <path>] [<workspace-root>]
//! ```
//!
//! Exits 0 when every finding is waived (with a written reason), 1 when
//! any unwaived violation or reasonless waiver exists, 2 on usage/IO
//! errors. `--json <path>` additionally writes a JSON Lines report
//! (bench-harness conventions) to `<path>`.

use std::path::PathBuf;
use std::process::ExitCode;

use triton_lint::analyze_workspace;

/// Default workspace root: two levels above this crate's manifest.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn run() -> Result<bool, String> {
    let mut json_out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let path = args
                    .next()
                    .ok_or_else(|| "--json requires a path argument".to_string())?;
                json_out = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("usage: triton-lint [--json <path>] [<workspace-root>]");
                return Ok(true);
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let report = analyze_workspace(&root)?;
    print!("{}", report.render_text());
    if let Some(path) = json_out {
        std::fs::write(&path, report.render_json())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("json report written to {}", path.display());
    }
    Ok(!report.failed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("triton-lint: {e}");
            ExitCode::from(2)
        }
    }
}
