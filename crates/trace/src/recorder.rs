//! The trace recorder: an append-only event log plus track naming.

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent};

/// An append-only trace. Events keep their recording order — the
/// simulation that produces them is deterministic, so the recorded
/// order (and every exporter built on it) is too.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    process_names: BTreeMap<u64, String>,
    thread_names: BTreeMap<(u64, u64), String>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Label a track group (Chrome "process"). Last writer wins.
    pub fn name_process(&mut self, pid: u64, name: impl Into<String>) {
        self.process_names.insert(pid, name.into());
    }

    /// Label one lane of a track group (Chrome "thread").
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: impl Into<String>) {
        self.thread_names.insert((pid, tid), name.into());
    }

    /// Record a span and return it for attribute chaining.
    pub fn span(
        &mut self,
        pid: u64,
        tid: u64,
        name: impl Into<String>,
        ts_ns: f64,
        dur_ns: f64,
    ) -> &mut TraceEvent {
        self.push(TraceEvent {
            pid,
            tid,
            name: name.into(),
            ts_ns,
            kind: EventKind::Span { dur_ns },
            attrs: Vec::new(),
        })
    }

    /// Record an instant and return it for attribute chaining.
    pub fn instant(
        &mut self,
        pid: u64,
        tid: u64,
        name: impl Into<String>,
        ts_ns: f64,
    ) -> &mut TraceEvent {
        self.push(TraceEvent {
            pid,
            tid,
            name: name.into(),
            ts_ns,
            // triton-lint: allow(d2) -- constructs the Chrome instant variant, not std::time::Instant
            kind: EventKind::Instant,
            attrs: Vec::new(),
        })
    }

    /// Record a counter sample and return it for attribute chaining: the
    /// numeric attributes attached to it become the counter-track series
    /// Perfetto plots under `name` (Chrome `ph: "C"`).
    pub fn counter(
        &mut self,
        pid: u64,
        tid: u64,
        name: impl Into<String>,
        ts_ns: f64,
    ) -> &mut TraceEvent {
        self.push(TraceEvent {
            pid,
            tid,
            name: name.into(),
            ts_ns,
            kind: EventKind::Counter,
            attrs: Vec::new(),
        })
    }

    /// Record a prebuilt event and return it for attribute chaining.
    pub fn push(&mut self, ev: TraceEvent) -> &mut TraceEvent {
        let idx = self.events.len();
        self.events.push(ev);
        &mut self.events[idx]
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Label of a track group, if one was set.
    pub fn process_name(&self, pid: u64) -> Option<&str> {
        self.process_names.get(&pid).map(String::as_str)
    }

    /// Label of a lane, if one was set.
    pub fn thread_name(&self, pid: u64, tid: u64) -> Option<&str> {
        self.thread_names.get(&(pid, tid)).map(String::as_str)
    }

    /// Named track groups, ordered by pid.
    pub fn processes(&self) -> impl Iterator<Item = (u64, &str)> {
        self.process_names.iter().map(|(p, n)| (*p, n.as_str()))
    }

    /// Named lanes, ordered by (pid, tid).
    pub fn threads(&self) -> impl Iterator<Item = (u64, u64, &str)> {
        self.thread_names
            .iter()
            .map(|((p, t), n)| (*p, *t, n.as_str()))
    }

    /// Latest end time over all events (0 for an empty trace).
    pub fn span_ns(&self) -> f64 {
        self.events
            .iter()
            .map(TraceEvent::end_ns)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attr;

    #[test]
    fn records_in_call_order_with_attrs() {
        let mut t = Trace::new();
        t.span(1, 0, "build", 10.0, 5.0)
            .attr(Attr::u64("bytes_moved_link", 4096));
        t.instant(1, 0, "admit", 10.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].name, "build");
        assert_eq!(t.events()[0].attrs[0].key, "bytes_moved_link");
        assert_eq!(t.events()[1].name, "admit");
        assert!((t.span_ns() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn track_names_are_ordered() {
        let mut t = Trace::new();
        t.name_process(2, "q2");
        t.name_process(1, "q1");
        t.name_thread(2, 1, "sm-a");
        t.name_thread(1, 0, "life");
        let pids: Vec<u64> = t.processes().map(|(p, _)| p).collect();
        assert_eq!(pids, vec![1, 2]);
        assert_eq!(t.process_name(1), Some("q1"));
        assert_eq!(t.thread_name(2, 1), Some("sm-a"));
        assert_eq!(t.thread_name(9, 9), None);
    }
}
