//! Report assembly: the per-file analyses roll up into one
//! [`WorkspaceReport`] with text and JSON renderings. The JSON mode
//! follows the workspace's bench conventions (`triton_bench::json`):
//! JSON Lines, one object per row, stable key order.

use triton_bench::json::JsonObject;

use crate::rules::{FileAnalysis, Finding, Rule, Waiver, ALL_RULES};

/// One file's findings, tagged with its workspace-relative path.
#[derive(Debug)]
pub struct FileReport {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The analysis for this file.
    pub analysis: FileAnalysis,
}

/// The whole run's results.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Per-file reports, in path order.
    pub files: Vec<FileReport>,
    /// Total files scanned (including clean ones).
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// Findings that no waiver covers, as `(path, finding)` pairs.
    pub fn unwaived(&self) -> impl Iterator<Item = (&str, &Finding)> {
        self.files.iter().flat_map(|f| {
            f.analysis
                .findings
                .iter()
                .filter(|v| v.waived.is_none())
                .map(move |v| (f.path.as_str(), v))
        })
    }

    /// Findings a waiver covers, as `(path, finding)` pairs.
    pub fn waived(&self) -> impl Iterator<Item = (&str, &Finding)> {
        self.files.iter().flat_map(|f| {
            f.analysis
                .findings
                .iter()
                .filter(|v| v.waived.is_some())
                .map(move |v| (f.path.as_str(), v))
        })
    }

    /// `(path, line)` of every pragma missing its mandatory reason.
    pub fn malformed_waivers(&self) -> impl Iterator<Item = (&str, u32)> {
        self.files.iter().flat_map(|f| {
            f.analysis
                .malformed_waivers
                .iter()
                .map(move |&l| (f.path.as_str(), l))
        })
    }

    /// Pragmas that matched no finding, as `(path, waiver)` pairs.
    pub fn unused_waivers(&self) -> impl Iterator<Item = (&str, &Waiver)> {
        self.files.iter().flat_map(|f| {
            f.analysis
                .unused_waivers
                .iter()
                .map(move |w| (f.path.as_str(), w))
        })
    }

    /// Does the run fail (any unwaived finding, reasonless pragma, or
    /// stale waiver)?
    pub fn failed(&self) -> bool {
        self.unwaived().next().is_some()
            || self.malformed_waivers().next().is_some()
            || self.unused_waivers().next().is_some()
    }

    /// Count of findings for `rule`, waived or not.
    pub fn count_for(&self, rule: Rule) -> usize {
        self.files
            .iter()
            .flat_map(|f| f.analysis.findings.iter())
            .filter(|v| v.rule == rule)
            .count()
    }

    /// Human-readable report: violations, then the waiver inventory
    /// (waiver creep must stay visible), then a per-rule summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (path, v) in self.unwaived() {
            out.push_str(&format!(
                "{path}:{line}: {rule} — {msg}\n",
                line = v.line,
                rule = v.rule.code().to_ascii_uppercase(),
                msg = v.message
            ));
        }
        for (path, line) in self.malformed_waivers() {
            out.push_str(&format!(
                "{path}:{line}: WAIVER — pragma without a `-- reason` clause; \
                 every waiver must say why\n"
            ));
        }
        for (path, w) in self.unused_waivers() {
            out.push_str(&format!(
                "{path}:{line}: WAIVER — allow({rules}) matches no finding; \
                 stale waivers hide future violations, remove it\n",
                line = w.line,
                rules = w.rules.join(","),
            ));
        }
        let waived: Vec<(&str, &Finding)> = self.waived().collect();
        if !waived.is_empty() {
            out.push_str(&format!("\nwaivers in effect ({}):\n", waived.len()));
            for (path, v) in &waived {
                let reason = v.waived.as_deref().unwrap_or("");
                out.push_str(&format!(
                    "  {path}:{line}: {rule} — {reason}\n",
                    line = v.line,
                    rule = v.rule.code().to_ascii_uppercase(),
                ));
            }
        }
        let unwaived = self.unwaived().count();
        let malformed = self.malformed_waivers().count();
        out.push_str(&format!(
            "\n{files} files scanned; {unwaived} violations, {} waived",
            waived.len(),
            files = self.files_scanned,
        ));
        if malformed > 0 {
            out.push_str(&format!(", {malformed} reasonless waivers"));
        }
        let unused = self.unused_waivers().count();
        if unused > 0 {
            out.push_str(&format!(", {unused} stale waivers"));
        }
        out.push('\n');
        for rule in ALL_RULES {
            let n = self.count_for(rule);
            if n > 0 {
                out.push_str(&format!(
                    "  {}: {} ({})\n",
                    rule.code().to_ascii_uppercase(),
                    n,
                    rule.describe()
                ));
            }
        }
        out
    }

    /// JSON Lines report: one `finding` row per hit (waived included),
    /// one `waiver` row per pragma, and a final `summary` row.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for f in &self.files {
            for v in &f.analysis.findings {
                let mut row = JsonObject::new()
                    .str("kind", "finding")
                    .str("file", &f.path)
                    .int("line", u64::from(v.line))
                    .str("rule", v.rule.code())
                    .str("message", &v.message)
                    .bool("waived", v.waived.is_some());
                if let Some(reason) = &v.waived {
                    row = row.str("reason", reason);
                }
                out.push_str(&row.render());
                out.push('\n');
            }
            for w in &f.analysis.waivers {
                out.push_str(
                    &JsonObject::new()
                        .str("kind", "waiver")
                        .str("file", &f.path)
                        .int("line", u64::from(w.line))
                        .str("rules", &w.rules.join(","))
                        .str("reason", &w.reason)
                        .render(),
                );
                out.push('\n');
            }
            for &l in &f.analysis.malformed_waivers {
                out.push_str(
                    &JsonObject::new()
                        .str("kind", "malformed_waiver")
                        .str("file", &f.path)
                        .int("line", u64::from(l))
                        .render(),
                );
                out.push('\n');
            }
            for w in &f.analysis.unused_waivers {
                out.push_str(
                    &JsonObject::new()
                        .str("kind", "unused_waiver")
                        .str("file", &f.path)
                        .int("line", u64::from(w.line))
                        .str("rules", &w.rules.join(","))
                        .render(),
                );
                out.push('\n');
            }
        }
        let mut summary = JsonObject::new()
            .str("kind", "summary")
            .int("files_scanned", self.files_scanned as u64)
            .int("violations", self.unwaived().count() as u64)
            .int("waived", self.waived().count() as u64)
            .int("malformed_waivers", self.malformed_waivers().count() as u64)
            .int("unused_waivers", self.unused_waivers().count() as u64)
            .bool("failed", self.failed());
        for rule in ALL_RULES {
            summary = summary.int(rule.code(), self.count_for(rule) as u64);
        }
        out.push_str(&summary.render());
        out.push('\n');
        out
    }

    /// Per-rule total finding counts (waived included) — the quantity
    /// the ratchet tracks: waived findings still represent debt, so the
    /// baseline keeps waiver creep from hiding growth.
    pub fn rule_totals(&self) -> Vec<(&'static str, usize)> {
        ALL_RULES
            .iter()
            .map(|&r| (r.code(), self.count_for(r)))
            .collect()
    }

    /// Render the ratchet baseline for this run (single JSON object,
    /// stable key order — suitable for committing).
    pub fn render_ratchet(&self) -> String {
        let mut obj = JsonObject::new();
        for (code, n) in self.rule_totals() {
            obj = obj.int(code, n as u64);
        }
        let mut out = obj.render();
        out.push('\n');
        out
    }

    /// Compare this run against a committed baseline. Returns the rules
    /// whose finding count grew, as `(rule, baseline, now)` — any entry
    /// is a ratchet regression and fails the run. Rules absent from the
    /// baseline (newly added) default to 0.
    pub fn ratchet_regressions(&self, baseline: &Ratchet) -> Vec<(&'static str, u64, u64)> {
        self.rule_totals()
            .into_iter()
            .filter_map(|(code, n)| {
                let base = baseline.count(code);
                (n as u64 > base).then_some((code, base, n as u64))
            })
            .collect()
    }
}

/// A committed ratchet baseline: per-rule finding counts that may only
/// go down. Parsed from the flat one-object JSON `render_ratchet`
/// writes.
#[derive(Debug, Default)]
pub struct Ratchet {
    counts: Vec<(String, u64)>,
}

impl Ratchet {
    /// Baseline count for a rule code (0 if the rule is not listed —
    /// new rules start with an implicit zero-debt baseline).
    pub fn count(&self, code: &str) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| k == code)
            .map_or(0, |(_, v)| *v)
    }

    /// Parse the baseline file. The format is a single flat JSON object
    /// of `"rule": count` pairs; anything else is an error (a corrupt
    /// baseline must fail loudly, not silently reset the ratchet).
    pub fn parse(src: &str) -> Result<Ratchet, String> {
        let body = src.trim();
        let body = body
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .ok_or_else(|| "ratchet baseline is not a JSON object".to_string())?;
        let mut counts = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once(':')
                .ok_or_else(|| format!("bad ratchet entry: {part}"))?;
            let key = k.trim().trim_matches('"').to_string();
            let val: u64 = v
                .trim()
                .parse()
                .map_err(|_| format!("bad ratchet count: {part}"))?;
            counts.push((key, val));
        }
        Ok(Ratchet { counts })
    }
}
