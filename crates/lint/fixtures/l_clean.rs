//! L1/L2 clean fixture: grants reach release, handles reach free, and
//! the shapes the lifecycle rules must not flag — match hand-off into
//! arms, `?` into a named binding, and `Vec::resize` (no allocator in
//! the receiver chain).

pub fn releases_grant(
    ac: &mut AdmissionController,
    q: &JoinQuery,
    hw: &HwConfig,
) -> Result<(), AdmissionError> {
    let grant = ac.try_admit(QueryId(1), q, hw)?;
    run_query(&grant);
    ac.release(QueryId(1))?;
    Ok(())
}

pub fn hands_off_through_match(
    ac: &mut AdmissionController,
    q: &JoinQuery,
    hw: &HwConfig,
) -> Option<Reservation> {
    match ac.try_admit_shrunk(QueryId(2), q, hw, 1) {
        Ok(r) => Some(r.reservation),
        Err(_) => None,
    }
}

pub fn frees_allocation(alloc: &mut SimAllocator, len: Bytes) -> Result<(), OutOfMemory> {
    let a = alloc.alloc(MemSide::Gpu, len)?;
    alloc.free(a);
    Ok(())
}

pub fn vec_resize_is_not_an_allocator(buf: &mut Vec<u64>, n: usize) {
    buf.resize(n, 0);
}
