//! Skew sweep: the Triton join under Zipf-distributed probe keys,
//! blind (`SkewPolicy::Off`) vs skew-aware (hotness-weighted placement,
//! LPT pipeline scheduling, heavy-hitter chunking).
//!
//! Expected shape (Section 6.2.6 / Fig 16 workloads): both executors
//! track each other up to θ ≈ 1.0. Past it the hottest partition pair
//! outgrows the staging area the uniform pipeline reservation leaves
//! free, and the blind executor starts paying the overflow round-trip
//! over the interconnect (the `Spill` phase); the skew-aware executor
//! plans placement from the histograms and streams heavy pairs through
//! staging in probe-side chunks, staying flat. At θ = 1.5 the paper
//! workload's skew-aware total is ≥ 15% lower.

use triton_core::{SkewPolicy, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

use crate::json::JsonObject;

/// The Zipf exponent axis of the sweep.
pub const THETA_AXIS: [f64; 8] = [0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75];

/// Default workload size in modeled M tuples (the paper's mid size).
pub const DEFAULT_M_TUPLES: u64 = 512;

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// `off` or `aware`.
    pub policy: &'static str,
    /// Zipf exponent of the probe keys.
    pub theta: f64,
    /// Simulated end-to-end time.
    pub total_ns: f64,
    /// Throughput in G tuples/s.
    pub gtps: f64,
    /// Time spent in the staging-overflow `Spill` phase (blind executor
    /// under heavy skew; always zero for the skew-aware executor).
    pub spill_ns: f64,
    /// Working-set bytes held GPU-resident.
    pub cache_hit_bytes: u64,
    /// Working-set bytes spilled to CPU memory.
    pub cache_spilled_bytes: u64,
    /// Partition pairs fully cached.
    pub pairs_cached: u64,
    /// Pipeline lanes (exceeds the pair count when heavy pairs are
    /// chunked).
    pub lanes: u64,
    /// Join matches, for cross-policy sanity.
    pub matches: u64,
}

fn measure(
    policy: &'static str,
    skew: SkewPolicy,
    w: &triton_datagen::Workload,
    hw: &HwConfig,
    theta: f64,
) -> Row {
    let rep = TritonJoin {
        skew,
        ..TritonJoin::default()
    }
    .run(w, hw);
    let placement = rep.placement.as_ref().expect("triton reports placement");
    Row {
        policy,
        theta,
        total_ns: rep.total.0,
        gtps: rep.throughput_gtps(),
        spill_ns: rep
            .phases
            .iter()
            .find(|p| p.name == "Spill")
            .map(|p| p.time.0)
            .unwrap_or(0.0),
        cache_hit_bytes: placement.cache_hit_bytes,
        cache_spilled_bytes: placement.spilled_bytes,
        pairs_cached: placement.pairs_cached(),
        lanes: rep
            .overlap
            .as_ref()
            .map(|o| o.stage_a.len() as u64)
            .unwrap_or(0),
        matches: rep.result.matches,
    }
}

/// Run the sweep: both policies over [`THETA_AXIS`] on one workload
/// size. Results are asserted identical across policies at every point.
pub fn run(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &theta in &THETA_AXIS {
        let w = WorkloadSpec::skewed(m_tuples, theta, hw.scale).generate();
        let off = measure("off", SkewPolicy::Off, &w, hw, theta);
        let aware = measure("aware", SkewPolicy::aware(), &w, hw, theta);
        assert_eq!(
            off.matches, aware.matches,
            "policies diverged at theta {theta}"
        );
        rows.push(off);
        rows.push(aware);
    }
    rows
}

/// Render the sweep as a stable JSON document (fixed key order): a
/// header object with the run configuration and one row object per
/// measured point.
pub fn to_json(hw: &HwConfig, m_tuples: u64, rows: &[Row]) -> String {
    let header = JsonObject::new()
        .str("schema", "triton-bench/fig-skew/v1")
        .int("scale", hw.scale)
        .int("m_tuples", m_tuples)
        .render();
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .str("policy", r.policy)
                .num("theta", r.theta)
                .num("total_ns", r.total_ns)
                .num("gtps", r.gtps)
                .num("spill_ns", r.spill_ns)
                .int("cache_hit_bytes", r.cache_hit_bytes)
                .int("cache_spilled_bytes", r.cache_spilled_bytes)
                .int("pairs_cached", r.pairs_cached)
                .int("lanes", r.lanes)
                .int("matches", r.matches)
                .render()
        })
        .collect();
    format!(
        "{{\"config\":{},\"rows\":[\n{}\n]}}\n",
        header,
        body.join(",\n")
    )
}

/// Skew-aware total at θ = 1.5 relative to blind; `None` if the axis
/// point is missing.
pub fn win_at_theta_1_5(rows: &[Row]) -> Option<f64> {
    let at = |policy: &str| {
        rows.iter()
            .find(|r| r.policy == policy && (r.theta - 1.5).abs() < 1e-9)
            .map(|r| r.total_ns)
    };
    Some(1.0 - at("aware")? / at("off")?)
}

/// Print the figure.
pub fn print(hw: &HwConfig, m_tuples: u64) -> Vec<Row> {
    crate::banner("Fig skew", "Zipf sweep: blind vs skew-aware Triton");
    let rows = run(hw, m_tuples);
    let mut t = crate::Table::new([
        "policy",
        "theta",
        "total (us)",
        "G tuples/s",
        "spill (us)",
        "cached pairs",
        "lanes",
    ]);
    for r in &rows {
        t.row([
            r.policy.to_string(),
            format!("{:.2}", r.theta),
            format!("{:.1}", r.total_ns / 1e3),
            crate::f3(r.gtps),
            format!("{:.1}", r.spill_ns / 1e3),
            r.pairs_cached.to_string(),
            r.lanes.to_string(),
        ]);
    }
    t.print();
    if let Some(win) = win_at_theta_1_5(&rows) {
        println!("skew-aware win at theta 1.5: {:.1}%", win * 100.0);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(rows: &[Row], policy: &str, theta: f64) -> f64 {
        rows.iter()
            .find(|r| r.policy == policy && (r.theta - theta).abs() < 1e-9)
            .map(|r| r.total_ns)
            .unwrap()
    }

    #[test]
    fn aware_flat_while_blind_degrades() {
        let hw = HwConfig::ac922().scaled(1024);
        let rows = run(&hw, 512);
        // Uniform: the planner declines to plan, and the gated LPT
        // schedule can only match or improve the submission order.
        let off0 = total(&rows, "off", 0.0);
        let aware0 = total(&rows, "aware", 0.0);
        assert!(
            aware0 <= off0,
            "aware must not exceed blind at theta 0: {aware0} vs {off0}"
        );
        // Heavy skew: blind pays the staging overflow, aware does not.
        assert!(
            total(&rows, "aware", 1.5) <= total(&rows, "off", 1.5),
            "aware must not exceed blind at theta 1.5"
        );
        let aware175 = total(&rows, "aware", 1.75);
        assert!(
            aware175 <= aware0 * 1.10,
            "aware should stay near-flat across the sweep: {aware175} vs {aware0}"
        );
        // JSON renders with the expected schema tag and row count.
        let json = to_json(&hw, 512, &rows);
        assert!(json.contains("\"schema\":\"triton-bench/fig-skew/v1\""));
        assert_eq!(json.matches("\"policy\"").count(), rows.len());
    }
}
