//! # triton-plan
//!
//! Multi-operator query plans over the Triton join. A [`Plan`] is a
//! small typed DAG — [`PlanNode::Scan`], [`PlanNode::Select`],
//! [`PlanNode::Bloom`], [`PlanNode::Join`], [`PlanNode::Agg`] — executed
//! by a deterministic topological executor that composes the existing
//! `triton-core` operators functionally. Intermediates stay GPU-resident
//! when the roofline model says they fit ([`plan_footprint`]'s greedy
//! placement); edges that don't fit pay an explicit `Materialize` phase
//! over the interconnect, the same fidelity discipline as the join's
//! Spill phase. [`PlanQuery`] packages a plan for the serving runtime:
//! admission reserves the *peak* concurrent operator footprint along the
//! schedule, not the sum of all operators.
//!
//! # Quick start
//!
//! ```
//! use triton_datagen::TpchSpec;
//! use triton_hw::HwConfig;
//! use triton_plan::{reference_plan, tpch_query};
//!
//! let hw = HwConfig::ac922().scaled(2048);
//! let workload = TpchSpec::q3(4, 2048).generate();
//! let query = tpch_query(&workload);
//! let run = query.run(&hw).unwrap();
//! assert_eq!(run.agg, reference_plan(query.plan(), query.inputs()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dag;
pub mod exec;
pub mod footprint;
pub mod oracle;
pub mod query;
pub mod tpch;

pub use dag::{EmitMap, Plan, PlanError, PlanNode, Predicate};
pub use exec::{execute, record_plan, NodeOutcome, PlanConfig, PlanRun};
pub use footprint::{estimate_cardinalities, plan_footprint, Footprint, FootprintCache};
pub use oracle::reference_plan;
pub use query::PlanQuery;
pub use tpch::{plan_for, tpch_query};
