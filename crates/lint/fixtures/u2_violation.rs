// Fixture: float equality against literals.
pub fn degenerate(x: f64, y: f64) -> bool {
    x == 0.0 || y != 1.5
}
