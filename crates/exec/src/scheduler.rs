//! The multi-query join scheduler: a fluid discrete-event simulation of
//! concurrent joins sharing one AC922-class machine.
//!
//! Lifecycle of a query: *arrive* → *queue* (priority order, bounded) →
//! *admit* (memory reservation through [`AdmissionController`]) →
//! *execute concurrently* (speed set each event by the weighted max-min
//! arbiter [`triton_hw::fair_share_rates`] over every query's
//! [`ResourceVector`]) → *complete* (release memory, unpin the build
//! cache). Queries can instead be *rejected* (queue full, or a memory
//! floor that exceeds the entire GPU) or *shed* (deadline passed while
//! queued) — always with a typed reason.
//!
//! # Fault injection
//!
//! [`Scheduler::run_with_faults`] replays a [`triton_hw::FaultPlan`]
//! against the same timeline: link degradations and CPU slowdowns
//! reshape every in-flight query's demand vector (so the fair-share
//! arbiter prices the *degraded* machine), ECC retirements shrink the
//! admission capacity and revoke reservations that no longer fit, and
//! transient kernel faults kill one GPU-resident attempt. With
//! resilience enabled (the default), victims recover through retry with
//! deterministic backoff, shrunken cache grants, and a degradation
//! ladder ending at the CPU radix join; disabled, they are shed with
//! [`RejectReason::Faulted`] — the baseline chaos tests compare against.
//!
//! # Elastic grants
//!
//! Admission grants are *revisable contracts*: under memory pressure —
//! an ECC retirement overcommitting the device, or a bursty
//! deadline-holding arrival that cannot be admitted — the scheduler
//! first issues priced, traced
//! [`crate::admission::GrantRevision::Shrink`]s against running
//! queries' optional cache shares (coldest victims re-priced through
//! the link cost model, never answers) and only falls back to
//! revocation or shedding once every cache grant is exhausted. See
//! [`crate::resilience::ElasticGrants`];
//! [`SchedulerConfig::fixed_grants`] restores the pre-elastic behavior.
//!
//! Execution is functional: every admitted query actually runs its
//! operator (with the granted cache budget) and the scheduler records the
//! verifiable [`JoinReport`]. Only the *timing* is arbitrated; faults
//! change placement and speed, never answers.

use std::cmp::Reverse;
use std::collections::VecDeque;

use triton_core::JoinReport;
use triton_datagen::TUPLE_BYTES;
use triton_hw::fault::splitmix64;
use triton_hw::units::{Bytes, Ns};
use triton_hw::{
    aggregate_utilization, fair_share_rates, utilization_ppm, FaultPlan, HwConfig, ResourceVector,
};
use triton_mem::OutOfMemory;
use triton_metrics::MetricsRegistry;

use triton_trace::{Attr, Trace};

use crate::admission::{AdmissionController, GrantRevision, Reservation};
use crate::build_cache::{BuildCache, FULL_RANGE};
use crate::cost_cache::CostCache;
use crate::demand::ResourceDemand;
use crate::fault::{degraded_vector, FaultCause, FaultOutcome};
use crate::metrics::{RunTotals, SchedulerMetrics};
use crate::observe::{GaugeSample, Recorder};
use crate::query::{JoinQuery, QueryId};
use crate::resilience::downgrade_operator;
pub use crate::resilience::ResilienceConfig;
use crate::slo::SloAccount;

/// Why the scheduler refused to run a query.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The waiting queue was at its configured limit when the query
    /// arrived (backpressure: the client should retry later).
    QueueFull {
        /// The configured queue capacity.
        limit: usize,
    },
    /// The query's minimum memory floor exceeds the entire GPU — it can
    /// never be admitted on this machine, at any concurrency.
    OverCapacity {
        /// The unmeetable floor.
        needed: Bytes,
        /// Total device capacity.
        capacity: Bytes,
    },
    /// The operator itself ran out of simulated memory (e.g. CPU memory
    /// cannot hold the partitioned spill).
    Oom(OutOfMemory),
    /// The deadline expired while the query waited for memory.
    DeadlineExceeded {
        /// The latency budget that was missed.
        deadline: Ns,
        /// Time the query had already spent queued.
        waited: Ns,
    },
    /// A hardware fault killed the query and resilience could not (or
    /// was not allowed to) recover it.
    Faulted {
        /// Label of the fault that killed the final attempt.
        fault: String,
        /// Transient retries consumed before the query was lost.
        retries: u32,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { limit } => write!(f, "queue full ({limit} waiting)"),
            RejectReason::OverCapacity { needed, capacity } => {
                write!(f, "needs {needed} of {capacity} GPU memory")
            }
            RejectReason::Oom(e) => write!(f, "{e}"),
            RejectReason::DeadlineExceeded { deadline, waited } => {
                write!(f, "deadline {deadline} passed after waiting {waited}")
            }
            RejectReason::Faulted { fault, retries } => {
                write!(f, "lost to {fault} after {retries} retries")
            }
        }
    }
}

/// A query that ran to completion.
#[derive(Debug, Clone)]
pub struct CompletedQuery {
    /// Scheduler-assigned id (submission order).
    pub id: QueryId,
    /// The query's name tag.
    pub name: String,
    /// Arrival time.
    pub arrival: Ns,
    /// Admission time of the final (successful) attempt.
    pub start: Ns,
    /// Completion time.
    pub finish: Ns,
    /// Dedicated-run service requirement (what the query would take
    /// alone); `finish - start >= dedicated` under contention.
    pub dedicated: Ns,
    /// The functional dedicated-run report (exact join result).
    pub report: JoinReport,
    /// GPU bytes reserved while running.
    pub reserved: Bytes,
    /// Whether the partitioned build side was already resident.
    pub build_cache_hit: bool,
    /// Label of the operator that finally completed the query (the
    /// degradation ladder may have moved it off its submitted operator).
    pub operator: &'static str,
    /// What recovering from faults cost this query; all zeros on a
    /// clean run.
    pub fault: FaultOutcome,
}

impl CompletedQuery {
    /// End-to-end latency (queueing + retries + arbitrated execution).
    #[must_use]
    pub fn latency(&self) -> Ns {
        self.finish - self.arrival
    }
}

/// Terminal state of one submitted query.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Ran to completion.
    Completed(Box<CompletedQuery>),
    /// Refused with a typed reason (never produced a result).
    Rejected {
        /// Scheduler-assigned id.
        id: QueryId,
        /// The query's name tag.
        name: String,
        /// Why it was refused.
        reason: RejectReason,
    },
}

impl Outcome {
    /// The completed record, if this query finished.
    #[must_use]
    pub fn completed(&self) -> Option<&CompletedQuery> {
        match self {
            Outcome::Completed(c) => Some(c),
            Outcome::Rejected { .. } => None,
        }
    }

    /// The rejection reason, if this query was refused.
    #[must_use]
    pub fn rejection(&self) -> Option<&RejectReason> {
        match self {
            Outcome::Completed(_) => None,
            Outcome::Rejected { reason, .. } => Some(reason),
        }
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Maximum concurrently executing queries (admission also requires a
    /// memory reservation; this bounds arbitration overheads).
    pub max_inflight: usize,
    /// Maximum queries waiting for admission before new arrivals are
    /// rejected with [`RejectReason::QueueFull`].
    pub max_queue: usize,
    /// Fault-recovery policies (see [`crate::resilience`]).
    pub resilience: ResilienceConfig,
    /// Capacity of the flight-recorder ring (most recent trace events
    /// kept for the automatic dump on faults and ladder steps).
    pub flight_capacity: usize,
    /// Arrival-wake batching (epoch scheduling). With work in flight the
    /// event loop defers its arrival wake until this many pending
    /// arrivals are due — or the next completion / fault / retry wake,
    /// whichever comes first — then drains and admits the whole due
    /// batch in one pass instead of re-running admission and arbitration
    /// per arrival. `1` wakes per arrival: the classic event-per-arrival
    /// loop, reproduced exactly. An idle machine always wakes on the
    /// first arrival regardless.
    pub arrival_batch: usize,
    /// Memoize repeat scheduling work — operator pricing
    /// ([`crate::CostCache`]) and plan-footprint analyses
    /// ([`triton_plan::FootprintCache`]) — across decisions.
    /// Semantically transparent: outcomes, trace, and SLO accounts are
    /// identical with the memos on or off (only the
    /// `sched.cost_cache.*` telemetry counters differ).
    pub cost_caching: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_inflight: 8,
            max_queue: 64,
            resilience: ResilienceConfig::default(),
            flight_capacity: 64,
            arrival_batch: 1,
            cost_caching: true,
        }
    }
}

impl SchedulerConfig {
    /// One query at a time: the serial baseline concurrency is compared
    /// against.
    pub fn serial() -> Self {
        SchedulerConfig {
            max_inflight: 1,
            ..Self::default()
        }
    }

    /// Faults shed their victims instead of recovering — the baseline
    /// the resilient path is compared against.
    #[must_use]
    pub fn no_resilience() -> Self {
        SchedulerConfig {
            resilience: ResilienceConfig::disabled(),
            ..Self::default()
        }
    }

    /// Resilient but with immutable grants: memory pressure goes
    /// straight to revocation/shedding instead of shrink-in-place — the
    /// pre-elastic scheduler, kept as the `fig_elastic` baseline.
    #[must_use]
    pub fn fixed_grants() -> Self {
        SchedulerConfig {
            resilience: ResilienceConfig::fixed_grants(),
            ..Self::default()
        }
    }

    /// The sustained-load throughput path: epoch-batched admission
    /// (arrival wakes amortized over batches of 8) on top of the default
    /// cost/plan memos. Per-query outcomes are unchanged in kind —
    /// every query still terminates with a typed outcome and exact
    /// results — but decision points, and therefore scheduler overhead
    /// per arrival, drop under bursty load.
    #[must_use]
    pub fn throughput() -> Self {
        SchedulerConfig {
            arrival_batch: 8,
            ..Self::default()
        }
    }
}

/// Everything a serving run produces.
#[derive(Debug)]
pub struct ServeResult {
    /// One outcome per submitted query, in submission order.
    pub outcomes: Vec<Outcome>,
    /// Aggregate scheduler metrics.
    pub metrics: SchedulerMetrics,
    /// The run's span/event trace (see [`crate::observe`]): per-query
    /// lifecycle and phase tracks, fault instants, and flight-recorder
    /// dumps, all on the simulated clock. Export with
    /// [`triton_trace::to_chrome_json`] or render with
    /// [`triton_hw::Timeline::from_trace`].
    pub trace: Trace,
    /// Windowed time-series telemetry on the simulated clock: scheduler
    /// counters, allocator gauges, and latency histograms. Deterministic:
    /// equal runs expose byte-identical text/JSON.
    pub telemetry: MetricsRegistry,
    /// Per-tenant SLO accounts (latency attainment, shed counts, error
    /// budget burn, grant revisions), sorted by tenant label.
    pub slo: Vec<SloAccount>,
}

impl ServeResult {
    /// Completed queries, in submission order.
    pub fn completed(&self) -> impl Iterator<Item = &CompletedQuery> {
        self.outcomes.iter().filter_map(Outcome::completed)
    }
}

/// One in-flight query inside the fluid simulation.
struct Running {
    id: QueryId,
    /// Kept whole so a faulted attempt can be requeued and re-run.
    query: JoinQuery,
    start: Ns,
    /// Remaining dedicated-run nanoseconds.
    remaining: f64,
    demand: ResourceVector,
    weight: f64,
    dedicated: Ns,
    report: JoinReport,
    reservation: Reservation,
    build_cache_hit: bool,
    uses_gpu: bool,
    op_label: &'static str,
    fault: FaultOutcome,
    /// Transient failures survived on the current ladder rung.
    attempts_at_rung: u32,
    /// In-place grant revisions absorbed so far (bounded by
    /// [`crate::resilience::ElasticGrants::max_revisions`]).
    revisions: u32,
}

/// One query waiting for admission (fresh, or sleeping out a backoff).
struct Queued {
    id: QueryId,
    query: JoinQuery,
    /// Not considered for admission before this instant (retry backoff).
    eligible_at: Ns,
    fault: FaultOutcome,
    attempts_at_rung: u32,
}

/// Insert preserving priority order, FIFO within a priority class.
fn enqueue(queue: &mut VecDeque<Queued>, q: Queued) {
    let pos = queue
        .iter()
        .position(|e| e.query.priority < q.query.priority)
        .unwrap_or(queue.len());
    queue.insert(pos, q);
}

/// Revocation victim: the lowest-priority reservation holder, breaking
/// ties toward the most recently submitted query (highest id) so the
/// oldest work survives capacity loss.
fn victim_index(running: &[Running]) -> Option<usize> {
    running
        .iter()
        .enumerate()
        .filter(|(_, r)| r.reservation.reserved.0 > 0)
        .min_by_key(|(_, r)| (r.query.priority, Reverse(r.id)))
        .map(|(i, _)| i)
}

/// The multi-query join scheduler.
pub struct Scheduler {
    hw: HwConfig,
    config: SchedulerConfig,
}

impl Scheduler {
    /// Build for a machine and configuration.
    pub fn new(hw: HwConfig, config: SchedulerConfig) -> Self {
        Scheduler { hw, config }
    }

    /// Run a batch of queries to completion and report every outcome.
    /// Queries may arrive in any order; they are processed by arrival
    /// time, queued in priority order, and executed concurrently under
    /// memory-budget admission.
    pub fn run(&self, queries: Vec<JoinQuery>) -> ServeResult {
        self.run_with_faults(queries, &FaultPlan::none())
    }

    /// [`Self::run`] with a [`FaultPlan`] replayed against the timeline.
    /// Fully deterministic: the same queries and the same plan (seed
    /// included) produce identical outcomes and metrics.
    pub fn run_with_faults(&self, queries: Vec<JoinQuery>, plan: &FaultPlan) -> ServeResult {
        let mut arrivals: Vec<(QueryId, JoinQuery)> = queries
            .into_iter()
            .enumerate()
            .map(|(i, q)| (QueryId(i as u64), q))
            .collect();
        // Stable by arrival time (total order — NaN arrivals cannot
        // scramble the timeline); ids preserve submission order.
        arrivals.sort_by(|a, b| a.1.arrival.0.total_cmp(&b.1.arrival.0));

        let retirements = plan.retirements();
        let kernel_faults = plan.kernel_faults();
        let transitions = plan.transitions();
        let mut next_retire = 0usize;
        let mut next_kfault = 0usize;
        let mut next_transition = 0usize;
        let mut faults_injected = 0u64;
        let mut builds_quarantined = 0u64;
        let mut gpu_retired = Bytes(0);
        let mut grant_revisions = 0u64;
        let mut grant_reclaimed = Bytes(0);

        let mut obs = Recorder::new(self.config.flight_capacity);
        let mut admission = AdmissionController::new(&self.hw);
        admission.set_plan_caching(self.config.cost_caching);
        let mut cache = BuildCache::new();
        let mut costs = CostCache::new(self.config.cost_caching);
        let mut queue: VecDeque<Queued> = VecDeque::new();
        let mut running: Vec<Running> = Vec::new();
        let mut outcomes: Vec<(QueryId, Outcome)> = Vec::new();
        let mut clock = Ns::ZERO;
        let mut arrivals: VecDeque<(QueryId, JoinQuery)> = arrivals.into();
        let mut peak_concurrency = 0usize;
        let mut busy_time = 0.0f64; // integral of (running > 0) dt
        let mut weighted_conc = 0.0f64; // integral of |running| dt

        loop {
            // --- Fault events due at this instant.
            while next_retire < retirements.len() && retirements[next_retire].0 .0 <= clock.0 {
                let (_, bytes) = retirements[next_retire];
                next_retire += 1;
                faults_injected += 1;
                let before = admission.capacity();
                admission.retire(bytes);
                let retired_now = before.saturating_sub(admission.capacity());
                gpu_retired += retired_now;
                // The retired pages tear resident partitioned builds:
                // trip the circuit breaker so followers rebuild instead
                // of sharing stale state. Memoized pricings go with them
                // (the capacity change alters future grants; a wholesale
                // flush keeps the invalidation story uniform).
                let quarantined = cache.quarantine_all() as u64;
                builds_quarantined += quarantined;
                costs.flush();
                obs.fault(
                    "ecc-retirement",
                    clock,
                    vec![
                        Attr::u64("retired_bytes", retired_now.0),
                        Attr::u64("builds_quarantined", quarantined),
                    ],
                );
                // Shrink-in-place rungs: before revoking anyone, reclaim
                // running queries' optional cache shares — each a priced,
                // traced revision — until the shrunk device fits its
                // reservations again or no cache grant is left to take.
                if self.config.resilience.enabled && self.config.resilience.elastic.enabled {
                    self.reclaim_cache(
                        |a| a.overcommitted(),
                        "ecc-retirement",
                        clock,
                        &mut running,
                        &mut admission,
                        &mut costs,
                        &mut obs,
                        &mut grant_revisions,
                        &mut grant_reclaimed,
                    );
                }
                // Revoke reservations until the shrunk device fits them.
                while admission.overcommitted().0 > 0 {
                    let Some(vi) = victim_index(&running) else {
                        break;
                    };
                    let victim = running.swap_remove(vi);
                    self.recover_or_shed(
                        victim,
                        FaultCause::Revoked,
                        clock,
                        &mut queue,
                        &mut admission,
                        &mut cache,
                        &mut outcomes,
                        &mut obs,
                    );
                }
            }
            while next_kfault < kernel_faults.len() && kernel_faults[next_kfault].0 <= clock.0 {
                let strike = next_kfault as u64;
                next_kfault += 1;
                // Deterministic victim among GPU-resident queries: rank
                // by id, pick by a seed-derived roll. An idle GPU means
                // the fault fizzles.
                let mut ids: Vec<QueryId> = running
                    .iter()
                    .filter(|r| r.uses_gpu)
                    .map(|r| r.id)
                    .collect();
                if ids.is_empty() {
                    continue;
                }
                ids.sort_unstable();
                faults_injected += 1;
                let pick =
                    ids[(splitmix64(plan.seed ^ 0xC0DE ^ strike) % ids.len() as u64) as usize];
                let Some(vi) = running.iter().position(|r| r.id == pick) else {
                    continue;
                };
                obs.fault(
                    "kernel-fault",
                    clock,
                    vec![Attr::str("victim", pick.to_string())],
                );
                let victim = running.swap_remove(vi);
                self.recover_or_shed(
                    victim,
                    FaultCause::Transient,
                    clock,
                    &mut queue,
                    &mut admission,
                    &mut cache,
                    &mut outcomes,
                    &mut obs,
                );
            }

            // --- Admit while memory and the concurrency cap allow.
            self.admit_ready(
                clock,
                &mut queue,
                &mut running,
                &mut admission,
                &mut cache,
                &mut costs,
                &mut outcomes,
                &mut obs,
                &mut grant_revisions,
                &mut grant_reclaimed,
            );
            peak_concurrency = peak_concurrency.max(running.len());

            let next_arrival_at = arrivals.front().map(|(_, q)| q.arrival.0);
            if running.is_empty() && next_arrival_at.is_none() {
                // Sleeping retries may still wake; jump to the earliest.
                let next_wake = queue
                    .iter()
                    .map(|q| q.eligible_at.0)
                    .filter(|&t| t > clock.0)
                    .fold(f64::INFINITY, f64::min);
                if next_wake.is_finite() {
                    clock = Ns(next_wake);
                    continue;
                }
                // Anything still queued can never start (no completions
                // left to free memory): shed it as over-capacity backlog.
                while let Some(q) = queue.pop_front() {
                    let floor = admission.min_reserve_of(&q.query, &self.hw);
                    let reason = RejectReason::OverCapacity {
                        needed: floor,
                        capacity: admission.capacity(),
                    };
                    obs.shed(q.id, clock, &reason);
                    outcomes.push((
                        q.id,
                        Outcome::Rejected {
                            id: q.id,
                            name: q.query.name.clone(),
                            reason,
                        },
                    ));
                }
                break;
            }

            // --- Arbitrated speeds for the current in-flight set, priced
            // on the degraded machine (factors are piecewise-constant
            // between fault transitions, which bound every step below).
            let link_factor = plan.link_factor(clock);
            let cpu_factor = plan.cpu_factor(clock);
            let loads: Vec<ResourceVector> = running
                .iter()
                .map(|r| degraded_vector(r.demand, link_factor, cpu_factor))
                .collect();
            let weights: Vec<f64> = running.iter().map(|r| r.weight).collect();
            let rates = fair_share_rates(&loads, &weights);

            // --- Gauge observation at this decision point: allocator
            // occupancy plus aggregate utilization priced off the same
            // arbitrated rates that drive the fluid state.
            let util = aggregate_utilization(&loads, &rates);
            obs.sample_gauges(
                clock,
                &GaugeSample {
                    gpu_used: admission.reserved(),
                    gpu_capacity: admission.capacity(),
                    gpu_requested: admission.requested(),
                    gpu_fragmentation: admission.fragmentation(),
                    gpu_occupancy_ppm: admission.occupancy_ppm(),
                    link_util_ppm: utilization_ppm(util.link),
                    sm_util_ppm: utilization_ppm(util.compute),
                    gpu_mem_util_ppm: utilization_ppm(util.gpu_mem),
                    cpu_util_ppm: utilization_ppm(util.cpu),
                    running: running.len() as u64,
                    queued: queue.len() as u64,
                },
            );

            // --- Time to the next event.
            let t_complete = running
                .iter()
                .zip(&rates)
                .map(|(r, &s)| r.remaining / s.max(1e-12))
                .fold(f64::INFINITY, f64::min);
            // Epoch batching: with work already in flight, the arrival
            // wake is deferred to the k-th pending arrival (k =
            // min(arrival_batch, pending)) so a burst is drained and
            // admitted in one pass; completions, fault transitions, and
            // retry wakes still fire on time and drain whatever is due.
            // An idle machine (or batch = 1) wakes on the very next
            // arrival — the classic loop, reproduced exactly.
            let t_arrival = if self.config.arrival_batch > 1 && !running.is_empty() {
                let k = self.config.arrival_batch.min(arrivals.len());
                arrivals
                    .get(k.saturating_sub(1))
                    .map_or(f64::INFINITY, |(_, q)| (q.arrival.0 - clock.0).max(0.0))
            } else {
                next_arrival_at.map_or(f64::INFINITY, |at| (at - clock.0).max(0.0))
            };
            while next_transition < transitions.len() && transitions[next_transition].0 <= clock.0 {
                next_transition += 1;
            }
            let t_fault = transitions
                .get(next_transition)
                .map_or(f64::INFINITY, |t| t.0 - clock.0);
            let t_wake = queue
                .iter()
                .map(|q| q.eligible_at.0 - clock.0)
                .filter(|&d| d > 0.0)
                .fold(f64::INFINITY, f64::min);
            let dt = t_complete.min(t_arrival).min(t_fault).min(t_wake);
            if !dt.is_finite() {
                // Nothing running and no arrivals: handled above.
                break;
            }

            // --- Advance the fluid state.
            if !running.is_empty() {
                busy_time += dt;
                weighted_conc += dt * running.len() as f64;
            }
            clock += Ns(dt);
            for (r, &s) in running.iter_mut().zip(&rates) {
                r.remaining = (r.remaining - dt * s).max(0.0);
            }

            // --- Arrivals land in the queue (or bounce off its limit);
            // under epoch batching the whole due batch lands here at
            // once and the next admit pass handles it in a single sweep.
            while arrivals
                .front()
                .is_some_and(|(_, q)| q.arrival.0 <= clock.0)
            {
                let Some((id, query)) = arrivals.pop_front() else {
                    break;
                };
                if queue.len() >= self.config.max_queue {
                    let reason = RejectReason::QueueFull {
                        limit: self.config.max_queue,
                    };
                    obs.shed(id, clock, &reason);
                    outcomes.push((
                        id,
                        Outcome::Rejected {
                            id,
                            name: query.name.clone(),
                            reason,
                        },
                    ));
                    continue;
                }
                obs.enqueue(id, &query, query.arrival);
                let eligible_at = query.arrival;
                enqueue(
                    &mut queue,
                    Queued {
                        id,
                        query,
                        eligible_at,
                        fault: FaultOutcome::default(),
                        attempts_at_rung: 0,
                    },
                );
            }

            // --- Completions.
            let mut i = 0;
            while i < running.len() {
                if running[i].remaining <= 1e-9 {
                    let r = running.swap_remove(i);
                    let _ = admission.release(r.id);
                    if let Some(k) = r.query.build_key {
                        cache.release_range(k, r.query.build_range.unwrap_or(FULL_RANGE));
                    }
                    let c = CompletedQuery {
                        id: r.id,
                        name: r.query.name.clone(),
                        arrival: r.query.arrival,
                        start: r.start,
                        finish: clock,
                        dedicated: r.dedicated,
                        report: r.report,
                        reserved: r.reservation.reserved,
                        build_cache_hit: r.build_cache_hit,
                        operator: r.op_label,
                        fault: r.fault,
                    };
                    obs.complete(&c, &self.hw);
                    outcomes.push((c.id, Outcome::Completed(Box::new(c))));
                } else {
                    i += 1;
                }
            }
        }

        outcomes.sort_by_key(|(id, _)| *id);
        let outcomes: Vec<Outcome> = outcomes.into_iter().map(|(_, o)| o).collect();
        let metrics = SchedulerMetrics::from_run(
            &outcomes,
            RunTotals {
                makespan: clock,
                peak_gpu_reserved: admission.peak_reserved,
                gpu_capacity: admission.initial_capacity(),
                gpu_retired,
                peak_concurrency,
                mean_concurrency: if busy_time > 0.0 {
                    weighted_conc / busy_time
                } else {
                    0.0
                },
                build_cache_hits: cache.hits,
                build_cache_prefix_hits: cache.prefix_hits,
                build_cache_misses: cache.misses,
                builds_quarantined,
                faults_injected,
                grant_revisions,
                grant_reclaimed,
                cost_cache_hits: costs.hits,
                cost_cache_misses: costs.misses,
            },
            obs.rollups(),
        );
        let (trace, telemetry, slo) = obs.into_parts();
        ServeResult {
            outcomes,
            metrics,
            trace,
            telemetry,
            slo,
        }
    }

    /// Recover a faulted in-flight query (retry / shrink / downgrade per
    /// the resilience config) or shed it with a typed reason. The
    /// victim's reservation and cache pin are released either way; its
    /// partial work is lost and a recovered attempt restarts from
    /// scratch.
    #[allow(clippy::too_many_arguments)]
    fn recover_or_shed(
        &self,
        victim: Running,
        cause: FaultCause,
        clock: Ns,
        queue: &mut VecDeque<Queued>,
        admission: &mut AdmissionController,
        cache: &mut BuildCache,
        outcomes: &mut Vec<(QueryId, Outcome)>,
        obs: &mut Recorder,
    ) {
        let _ = admission.release(victim.id);
        if let Some(k) = victim.query.build_key {
            cache.release_range(k, victim.query.build_range.unwrap_or(FULL_RANGE));
        }
        let mut query = victim.query;
        let mut fault = victim.fault;
        let mut attempts = victim.attempts_at_rung;
        match cause {
            FaultCause::Transient => {
                fault.retries += 1;
                attempts += 1;
            }
            FaultCause::Revoked => {
                fault.revocations += 1;
                obs.revoked(victim.id, clock);
            }
        }
        if !self.config.resilience.enabled {
            let reason = RejectReason::Faulted {
                fault: cause.label().to_string(),
                retries: fault.retries,
            };
            obs.shed(victim.id, clock, &reason);
            outcomes.push((
                victim.id,
                Outcome::Rejected {
                    id: victim.id,
                    name: query.name.clone(),
                    reason,
                },
            ));
            return;
        }
        let retry = &self.config.resilience.retry;
        match cause {
            // First revocation: retry on the same rung asking for less
            // optional cache. Repeat offenders descend the ladder.
            FaultCause::Revoked => {
                if fault.revocations <= 1 {
                    fault.grant_shrinks += 1;
                } else if let Some(op) = downgrade_operator(&query.op) {
                    let from = query.op.label();
                    query.op = op;
                    fault.downgrades += 1;
                    attempts = 0;
                    obs.downgrade(
                        victim.id,
                        clock,
                        from,
                        query.op.label(),
                        "repeat-revocation",
                    );
                }
            }
            // Retries exhausted on this rung: descend.
            FaultCause::Transient => {
                if attempts > retry.max_retries {
                    if let Some(op) = downgrade_operator(&query.op) {
                        let from = query.op.label();
                        query.op = op;
                        fault.downgrades += 1;
                        attempts = 0;
                        obs.downgrade(
                            victim.id,
                            clock,
                            from,
                            query.op.label(),
                            "retries-exhausted",
                        );
                    }
                }
            }
        }
        // Back off before re-admission, spending at most the remaining
        // deadline budget (a wake past the deadline is a guaranteed
        // shed).
        let attempt = fault.retries + fault.revocations - 1;
        let slack = query.deadline.map(|d| d - (clock - query.arrival));
        let delay = retry.backoff_within(victim.id, attempt, slack);
        obs.retry(victim.id, clock, cause.label(), attempt, delay);
        enqueue(
            queue,
            Queued {
                id: victim.id,
                query,
                eligible_at: clock + delay,
                fault,
                attempts_at_rung: attempts,
            },
        );
    }

    /// Shrink-in-place: reclaim optional cache from running queries —
    /// lowest priority first, biggest cache grant first within a class,
    /// most recent submission on ties — until `need` reports zero bytes
    /// missing or no eligible victim remains. Every revision is priced
    /// through the link cost model ([`AdmissionController::revise`]),
    /// traced as a `grant-revision` event, and re-prices the victim's
    /// remaining work under its revised grant; the victim's *answer*
    /// cannot change (a cache budget only moves placement and time).
    /// Returns the total bytes reclaimed.
    #[allow(clippy::too_many_arguments)]
    fn reclaim_cache(
        &self,
        need: impl Fn(&AdmissionController) -> Bytes,
        reason: &'static str,
        clock: Ns,
        running: &mut [Running],
        admission: &mut AdmissionController,
        costs: &mut CostCache,
        obs: &mut Recorder,
        grant_revisions: &mut u64,
        grant_reclaimed: &mut Bytes,
    ) -> Bytes {
        let max_rev = self.config.resilience.elastic.max_revisions;
        let mut reclaimed = Bytes(0);
        loop {
            let missing = need(admission);
            if missing.0 == 0 {
                break;
            }
            let Some(vi) = running
                .iter()
                .enumerate()
                .filter(|(_, r)| r.reservation.cache_grant.0 > 0 && r.revisions < max_rev)
                .min_by_key(|(_, r)| {
                    (
                        r.query.priority,
                        Reverse(r.reservation.cache_grant.0),
                        Reverse(r.id),
                    )
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let r = &mut running[vi];
            let ask = missing.min(r.reservation.cache_grant);
            let out = match admission.revise(r.id, GrantRevision::Shrink(ask), &self.hw) {
                Ok(out) if out.delta.0 > 0 => out,
                // Nothing movable on this victim: exhaust it so the
                // search cannot pick it again and spin.
                _ => {
                    r.revisions = max_rev;
                    continue;
                }
            };
            r.revisions += 1;
            r.reservation = out.grant;
            *grant_revisions += 1;
            *grant_reclaimed += out.delta;
            reclaimed += out.delta;
            // Re-price the rest of the query under the revised grant:
            // same workload, same operator, smaller cache — placement
            // and timing change, the answer cannot. Re-pricings go
            // through the memo too: a repeat shrink to a grant already
            // priced replays the identical report.
            let (h0, m0) = (costs.hits, costs.misses);
            let (priced, _) = costs.price(&r.query, &out.grant, &self.hw);
            if costs.hits > h0 {
                obs.cost_cache(true, clock);
            } else if costs.misses > m0 {
                obs.cost_cache(false, clock);
            }
            if let Ok(rep) = priced {
                let r_bytes = r.query.workload.r.len() as u64 * TUPLE_BYTES;
                let s_bytes = r.query.workload.s.len() as u64 * TUPLE_BYTES;
                let probe_frac = s_bytes as f64 / (r_bytes + s_bytes).max(1) as f64;
                let demand = ResourceDemand::from_report(&rep, r.build_cache_hit, probe_frac);
                let frac = if r.dedicated.0 > 0.0 {
                    (r.remaining / r.dedicated.0).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                r.remaining = demand.work.0 * frac + out.reclaim.0;
                r.demand = demand.vector;
                r.dedicated = demand.work;
                r.report = rep;
            } else {
                // A shrunk re-run cannot OOM harder than the original;
                // if it somehow does, keep the old pricing and only pay
                // the reclaim time.
                r.remaining += out.reclaim.0;
            }
            obs.revise(
                r.id,
                clock,
                "shrink",
                out.delta,
                out.grant.reserved,
                out.reclaim,
                reason,
            );
        }
        reclaimed
    }

    /// Admit queued queries in priority order while memory, the
    /// concurrency cap, and deadlines allow. Entries sleeping out a
    /// retry backoff are skipped until eligible.
    ///
    /// The walk is a single sweep: a cursor remembers how far the
    /// priority order has been scanned at this instant, so admitting a
    /// whole epoch batch is one pass over the queue instead of a
    /// from-the-front rescan per admission (entries before the cursor
    /// were already found ineligible and the clock does not move inside
    /// an admit pass; only a re-enqueue can seat an eligible entry in
    /// scanned territory, which rewinds the cursor).
    #[allow(clippy::too_many_arguments)]
    fn admit_ready(
        &self,
        clock: Ns,
        queue: &mut VecDeque<Queued>,
        running: &mut Vec<Running>,
        admission: &mut AdmissionController,
        cache: &mut BuildCache,
        costs: &mut CostCache,
        outcomes: &mut Vec<(QueryId, Outcome)>,
        obs: &mut Recorder,
        grant_revisions: &mut u64,
        grant_reclaimed: &mut Bytes,
    ) {
        let mut cursor = 0usize;
        'admit: while running.len() < self.config.max_inflight {
            // Highest-priority eligible entry (sleepers excluded) at or
            // past the cursor.
            let Some(off) = queue
                .iter()
                .skip(cursor)
                .position(|q| q.eligible_at.0 <= clock.0)
            else {
                break;
            };
            let pos = cursor + off;
            cursor = pos;

            // Deadline shedding: a query whose budget is already spent
            // queueing will miss it regardless — drop it now.
            if let Some(deadline) = queue[pos].query.deadline {
                let waited = clock - queue[pos].query.arrival;
                if waited.0 > deadline.0 {
                    let Some(q) = queue.remove(pos) else { continue };
                    let reason = RejectReason::DeadlineExceeded { deadline, waited };
                    obs.shed(q.id, clock, &reason);
                    outcomes.push((
                        q.id,
                        Outcome::Rejected {
                            id: q.id,
                            name: q.query.name.clone(),
                            reason,
                        },
                    ));
                    continue;
                }
            }

            // Floors exceeding the (possibly retired) capacity: when the
            // shortfall comes from a retirement, resilience descends the
            // ladder in place — the CPU radix floor is zero, so descent
            // always terminates. A query too big for the *pristine*
            // machine is shed with the typed reason as always.
            loop {
                let floor = admission.min_reserve_of(&queue[pos].query, &self.hw);
                if floor <= admission.capacity() {
                    break;
                }
                let shrunk_by_fault = admission.capacity() < admission.initial_capacity();
                if self.config.resilience.enabled && shrunk_by_fault {
                    if let Some(op) = downgrade_operator(&queue[pos].query.op) {
                        let from = queue[pos].query.op.label();
                        queue[pos].query.op = op;
                        queue[pos].fault.downgrades += 1;
                        queue[pos].attempts_at_rung = 0;
                        let (id, to) = (queue[pos].id, queue[pos].query.op.label());
                        obs.downgrade(id, clock, from, to, "capacity-floor");
                        continue;
                    }
                }
                let Some(q) = queue.remove(pos) else {
                    continue 'admit;
                };
                let reason = RejectReason::OverCapacity {
                    needed: floor,
                    capacity: admission.capacity(),
                };
                obs.shed(q.id, clock, &reason);
                outcomes.push((
                    q.id,
                    Outcome::Rejected {
                        id: q.id,
                        name: q.query.name.clone(),
                        reason,
                    },
                ));
                continue 'admit;
            }

            let shrink = queue[pos].fault.grant_shrinks;
            let id = queue[pos].id;
            let reservation =
                match admission.try_admit_shrunk(id, &queue[pos].query, &self.hw, shrink) {
                    Ok(r) => r,
                    Err(_) => {
                        // Backpressure: memory is busy. A query *without* a
                        // deadline just waits for a completion (head-of-line
                        // blocking is intentional: priority order is strict,
                        // so a big high-priority query is not starved by
                        // small ones slipping past it). Under the elastic
                        // policy a deadline-holding arrival cannot afford
                        // the wait: it reclaims running queries' optional
                        // cache down to its own floor and retries once.
                        let elastic = self.config.resilience.enabled
                            && self.config.resilience.elastic.enabled;
                        if !(elastic && queue[pos].query.deadline.is_some()) {
                            break;
                        }
                        let floor = admission.min_reserve_of(&queue[pos].query, &self.hw);
                        self.reclaim_cache(
                            |a| floor.saturating_sub(a.available()),
                            "burst-admission",
                            clock,
                            running,
                            admission,
                            costs,
                            obs,
                            grant_revisions,
                            grant_reclaimed,
                        );
                        match admission.try_admit_shrunk(id, &queue[pos].query, &self.hw, shrink) {
                            Ok(r) => r,
                            Err(_) => break,
                        }
                    }
                };
            let Some(mut q) = queue.remove(pos) else {
                // Unreachable (pos indexes a live entry); stop admitting
                // rather than panic with the reservation held.
                let _ = admission.release(id);
                break;
            };

            // Build-side sharing: exact builds hit as always, and a
            // query over a sub-range of a resident build of the same
            // family rides the covering state ([`crate::BuildHit`]).
            let r_bytes = q.query.workload.r.len() as u64 * TUPLE_BYTES;
            let s_bytes = q.query.workload.s.len() as u64 * TUPLE_BYTES;
            let range = q.query.build_range.unwrap_or(FULL_RANGE);
            let hit = match q.query.build_key {
                Some(k) => {
                    let served = cache.acquire_range(k, r_bytes, range);
                    obs.build_cache(served, clock);
                    served.is_hit()
                }
                None => false,
            };
            let probe_frac = s_bytes as f64 / (r_bytes + s_bytes).max(1) as f64;

            // Functional dedicated run with the granted cache budget,
            // memoized: a repeat (workload, grant) pricing replays the
            // byte-identical report instead of re-running the operator.
            let (h0, m0) = (costs.hits, costs.misses);
            let priced = costs.price(&q.query, &reservation, &self.hw).0;
            if costs.hits > h0 {
                obs.cost_cache(true, clock);
            } else if costs.misses > m0 {
                obs.cost_cache(false, clock);
            }
            let report = match priced {
                Ok(rep) => rep,
                Err(e) => {
                    let _ = admission.release(q.id);
                    if let Some(k) = q.query.build_key {
                        cache.release_range(k, range);
                    }
                    if self.config.resilience.enabled {
                        if let Some(next) = downgrade_operator(&q.query.op) {
                            // OOM inside the operator: descend and retry
                            // immediately (the radix floor never OOMs).
                            let from = q.query.op.label();
                            q.query.op = next;
                            q.fault.downgrades += 1;
                            q.attempts_at_rung = 0;
                            q.eligible_at = clock;
                            obs.downgrade(q.id, clock, from, q.query.op.label(), "oom");
                            enqueue(queue, q);
                            // The requeued entry is eligible now and may
                            // land anywhere in priority order: rescan.
                            cursor = 0;
                            continue;
                        }
                    }
                    let reason = RejectReason::Oom(e);
                    obs.shed(q.id, clock, &reason);
                    outcomes.push((
                        q.id,
                        Outcome::Rejected {
                            id: q.id,
                            name: q.query.name.clone(),
                            reason,
                        },
                    ));
                    continue;
                }
            };

            obs.admit(
                q.id,
                clock,
                q.query.op.label(),
                reservation.reserved,
                reservation.cache_grant,
                hit,
                q.fault.grant_shrinks,
            );
            let demand = ResourceDemand::from_report(&report, hit, probe_frac);
            running.push(Running {
                id: q.id,
                start: clock,
                remaining: demand.work.0,
                demand: demand.vector,
                weight: q.query.priority.max(1) as f64,
                dedicated: demand.work,
                report,
                reservation,
                build_cache_hit: hit,
                uses_gpu: q.query.op.uses_gpu(),
                op_label: q.query.op.label(),
                fault: q.fault,
                attempts_at_rung: q.attempts_at_rung,
                revisions: 0,
                query: q.query,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Operator;
    use triton_core::reference_join;
    use triton_datagen::WorkloadSpec;

    fn hw() -> HwConfig {
        HwConfig::ac922().scaled(512)
    }

    fn batch(n: usize, arrival_gap: f64) -> Vec<JoinQuery> {
        (0..n)
            .map(|i| {
                let mut spec = WorkloadSpec::paper_default(32, 512);
                spec.seed ^= i as u64;
                JoinQuery::new(format!("t{i}"), spec.generate(), Ns(i as f64 * arrival_gap))
            })
            .collect()
    }

    #[test]
    fn all_complete_with_exact_results() {
        let sched = Scheduler::new(hw(), SchedulerConfig::default());
        let queries = batch(4, 0.0);
        let expected: Vec<_> = queries
            .iter()
            .map(|q| reference_join(&q.workload))
            .collect();
        let res = sched.run(queries);
        assert_eq!(res.metrics.completed, 4);
        for (o, exp) in res.outcomes.iter().zip(&expected) {
            let c = o.completed().expect("query should complete");
            assert_eq!(&c.report.result, exp, "{} result mismatch", c.name);
            assert!(c.fault.clean(), "no faults on a clean run");
            assert_eq!(c.operator, "triton");
        }
        assert!(res.metrics.peak_gpu_reserved <= res.metrics.gpu_capacity);
        assert!(res.metrics.peak_concurrency >= 2);
        assert_eq!(res.metrics.faults_injected, 0);
    }

    #[test]
    fn empty_fault_plan_matches_plain_run() {
        let a = Scheduler::new(hw(), SchedulerConfig::default()).run(batch(4, 0.0));
        let b = Scheduler::new(hw(), SchedulerConfig::default())
            .run_with_faults(batch(4, 0.0), &FaultPlan::none());
        assert_eq!(a.metrics, b.metrics, "FaultPlan::none must be a no-op");
    }

    #[test]
    fn concurrent_no_slower_than_serial() {
        let conc = Scheduler::new(hw(), SchedulerConfig::default())
            .run(batch(4, 0.0))
            .metrics
            .makespan;
        let serial = Scheduler::new(hw(), SchedulerConfig::serial())
            .run(batch(4, 0.0))
            .metrics
            .makespan;
        assert!(
            conc.0 <= serial.0 * 1.0001,
            "concurrent {conc} must not exceed serial {serial}"
        );
    }

    #[test]
    fn queue_full_rejects_typed() {
        let sched = Scheduler::new(
            hw(),
            SchedulerConfig {
                max_inflight: 1,
                max_queue: 1,
                ..SchedulerConfig::default()
            },
        );
        let res = sched.run(batch(4, 0.0));
        let rejected = res
            .outcomes
            .iter()
            .filter(|o| matches!(o.rejection(), Some(RejectReason::QueueFull { .. })))
            .count();
        assert!(rejected >= 1, "tiny queue must bounce arrivals");
        assert_eq!(res.metrics.completed + res.metrics.rejected, 4);
    }

    #[test]
    fn deadline_sheds_queued_queries() {
        let mut queries = batch(3, 0.0);
        // Arrive together; queue behind each other at concurrency 1 with
        // an impossible deadline for the stragglers.
        for q in &mut queries[1..] {
            q.deadline = Some(Ns(1.0));
        }
        let res = Scheduler::new(hw(), SchedulerConfig::serial()).run(queries);
        let shed = res
            .outcomes
            .iter()
            .filter(|o| matches!(o.rejection(), Some(RejectReason::DeadlineExceeded { .. })))
            .count();
        assert_eq!(shed, 2);
        assert_eq!(res.metrics.completed, 1);
    }

    #[test]
    fn build_sharing_hits_and_speeds_up() {
        let base = WorkloadSpec::paper_default(32, 512).generate();
        let mk = |share: bool| {
            (0..4)
                .map(|i| {
                    let w = if i == 0 {
                        base.clone()
                    } else {
                        JoinQuery::probe_batch(&base, 100 + i)
                    };
                    let mut q = JoinQuery::new(format!("b{i}"), w, Ns::ZERO);
                    if share {
                        q.build_key = Some(42);
                    }
                    q
                })
                .collect::<Vec<_>>()
        };
        let shared = Scheduler::new(hw(), SchedulerConfig::serial()).run(mk(true));
        let solo = Scheduler::new(hw(), SchedulerConfig::serial()).run(mk(false));
        assert_eq!(shared.metrics.build_cache_hits, 3);
        assert_eq!(solo.metrics.build_cache_hits, 0);
        assert!(
            shared.metrics.makespan.0 < solo.metrics.makespan.0,
            "sharing the partitioned build side must save work"
        );
        // Results stay exact despite the discount.
        for c in shared.completed() {
            assert!(c.report.result.matches > 0);
        }
    }

    #[test]
    fn cpu_and_gpu_queries_overlap() {
        let mut queries = batch(2, 0.0);
        queries[1].op = Operator::CpuRadix(triton_core::CpuRadixJoin::power9(
            triton_core::HashScheme::BucketChaining,
        ));
        let res = Scheduler::new(hw(), SchedulerConfig::default()).run(queries);
        assert_eq!(res.metrics.completed, 2);
        // Disjoint executors: the makespan is close to the slower of the
        // two dedicated runs, far below their sum.
        let durs: Vec<f64> = res.completed().map(|c| c.dedicated.0).collect();
        let sum: f64 = durs.iter().sum();
        let max = durs.iter().cloned().fold(0.0, f64::max);
        assert!(res.metrics.makespan.0 < sum * 0.95);
        assert!(res.metrics.makespan.0 >= max * 0.999);
    }

    #[test]
    fn kernel_fault_retries_and_completes_exactly() {
        let queries = batch(2, 0.0);
        let expected: Vec<_> = queries
            .iter()
            .map(|q| reference_join(&q.workload))
            .collect();
        // Strike mid-run: the clean makespan bounds where "mid-run" is.
        let clean = Scheduler::new(hw(), SchedulerConfig::default()).run(batch(2, 0.0));
        let plan = FaultPlan::with_seed(11).kernel_fault(Ns(clean.metrics.makespan.0 * 0.5));
        let res = Scheduler::new(hw(), SchedulerConfig::default()).run_with_faults(queries, &plan);
        assert_eq!(res.metrics.completed, 2, "retry must recover the victim");
        assert_eq!(res.metrics.retries, 1);
        assert_eq!(res.metrics.faults_injected, 1);
        assert!(
            res.metrics.makespan.0 > clean.metrics.makespan.0,
            "lost work plus backoff must cost time"
        );
        for (o, exp) in res.outcomes.iter().zip(&expected) {
            assert_eq!(&o.completed().unwrap().report.result, exp);
        }
    }

    #[test]
    fn no_resilience_sheds_the_kernel_fault_victim() {
        let clean = Scheduler::new(hw(), SchedulerConfig::default()).run(batch(2, 0.0));
        let plan = FaultPlan::with_seed(11).kernel_fault(Ns(clean.metrics.makespan.0 * 0.5));
        let res = Scheduler::new(hw(), SchedulerConfig::no_resilience())
            .run_with_faults(batch(2, 0.0), &plan);
        assert_eq!(res.metrics.shed_faulted, 1);
        assert_eq!(res.metrics.completed, 1);
        let lost = res
            .outcomes
            .iter()
            .find_map(Outcome::rejection)
            .expect("one query must be lost");
        assert!(lost.to_string().contains("kernel-fault"), "{lost}");
    }
}
