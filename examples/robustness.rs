//! Robustness under skew: the paper motivates the Triton join with the
//! observation that "cardinality estimates can be significantly wrong"
//! (Section 1). A Zipf-distributed probe side is the classic way that
//! happens in practice. This example sweeps the skew exponent: the
//! Triton join barely moves, while the no-partitioning join loses more
//! than half its throughput once the hot keys concentrate on unlucky
//! (spilled) hash-table pages.
//!
//! ```text
//! cargo run --release --example robustness -p triton-core
//! ```

use triton_core::{reference_join, NoPartitioningJoin, TritonJoin};
use triton_datagen::WorkloadSpec;
use triton_hw::HwConfig;

fn main() {
    let k = 512;
    let hw = HwConfig::ac922().scaled(k);

    println!(
        "{:>8} {:>14} {:>14}",
        "zipf θ", "Triton (G/s)", "NPJ-PF (G/s)"
    );
    let mut triton_band = (f64::INFINITY, 0.0f64);
    for theta in [0.0f64, 0.25, 0.5, 0.75, 1.0, 1.25] {
        let w = WorkloadSpec::skewed(1024, theta, k).generate();
        let triton = TritonJoin::default().run(&w, &hw);
        let npj = NoPartitioningJoin::perfect().run(&w, &hw);
        assert_eq!(triton.result, reference_join(&w));
        assert_eq!(npj.result, triton.result);
        let t = triton.throughput_gtps();
        triton_band = (triton_band.0.min(t), triton_band.1.max(t));
        println!("{theta:>8.2} {t:>14.3} {:>14.3}", npj.throughput_gtps());
    }

    println!(
        "\nTriton stays within a {:.1}% band across the sweep: partitioning\n\
         hashes the probe side too, so skewed keys spread over sub-partitions\n\
         whose build tables are unchanged (R's keys stay unique and uniform).\n\
         The no-partitioning join has no such insulation — its hottest keys\n\
         map to fixed hash-table pages, and whenever those pages sit in the\n\
         spilled share of the table, nearly every probe crosses the\n\
         interconnect at 16-byte granularity.",
        (triton_band.1 / triton_band.0 - 1.0) * 100.0
    );
}
