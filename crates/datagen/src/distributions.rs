//! Foreign-key distributions beyond uniform.
//!
//! The paper evaluates uniform foreign keys (Section 6.1) and motivates
//! robustness with the observation that "cardinality estimates can be
//! significantly wrong" (Section 1). A skewed probe side is the classic
//! way such estimates go wrong in practice, so the reproduction also
//! ships a Zipf generator: it exercises the Triton join's robustness the
//! same way the paper's cache sweeps do — some partitions become much
//! larger than planned.

use crate::rng::Rng;

/// A Zipf(θ) sampler over `1..=n` using the classic CDF-inversion with a
/// precomputed harmonic table for small `n` and rejection-free binary
/// search.
///
/// ```
/// use triton_datagen::Zipf;
/// use triton_datagen::Rng;
/// let z = Zipf::new(100, 1.0);
/// let mut rng = Rng::seed_from_u64(7);
/// let v = z.sample(&mut rng);
/// assert!((1..=100).contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `1..=n` with exponent `theta` (0 = uniform,
    /// ~1 = heavily skewed).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "domain must be non-empty");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample one value in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u: f64 = rng.next_f64();
        // First index with cdf >= u.
        let mut lo = 0usize;
        let mut hi = self.cdf.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cdf[mid] < u {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u64 + 1
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn samples_within_domain() {
        let z = Zipf::new(100, 0.9);
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1..=100).contains(&v));
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        for c in counts {
            let dev = (c as f64 - n as f64 / 10.0).abs() / (n as f64 / 10.0);
            assert!(dev < 0.05, "uniform deviation {dev}");
        }
    }

    #[test]
    fn high_theta_concentrates_mass() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = Rng::seed_from_u64(3);
        let n = 100_000;
        let head = (0..n).filter(|_| z.sample(&mut rng) <= 10).count();
        // Zipf(1.0) over 1000 values puts ~39% of mass on the top 10.
        let frac = head as f64 / n as f64;
        assert!((0.3..0.5).contains(&frac), "head mass {frac}");
    }

    #[test]
    fn singleton_domain() {
        let z = Zipf::new(1, 1.2);
        let mut rng = Rng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 1);
    }
}
