//! Fig 22: payload width and materialization strategy.
fn main() {
    triton_bench::figs::fig22::print(&triton_bench::hw(), 512);
}
