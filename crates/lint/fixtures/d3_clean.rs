// Fixture: a local function named `spawn` is not `thread::spawn`.
fn spawn(n: u64) -> u64 {
    n + 1
}

pub fn not_threading() -> u64 {
    spawn(41)
}
