//! Admission control: per-query GPU memory reservations through the
//! simulated allocator, so concurrent joins never oversubscribe device
//! memory.
//!
//! Each operator already sizes its own working set against the full GPU
//! (`TritonJoin` reserves two partition-pair buffers plus an eighth of
//! device memory for the runtime, then caches the rest; the NPJ caches
//! its hash table). Under concurrency the controller makes that budget
//! explicit: it reserves the operator's *pipeline floor* and hands out a
//! *cache grant* from whatever device memory remains, and the query runs
//! with `cache_bytes = Some(grant)` so its internal allocator stays
//! inside the reservation. The sum of reservations can never exceed the
//! (scaled) GPU capacity — that is enforced by a [`SimAllocator`], the
//! same capacity arithmetic the operators use.
//!
//! Grants are *elastic*: a [`MemoryGrant`] is a revisable contract, and
//! the scheduler issues [`GrantRevision`]s at phase boundaries as
//! concurrent queries arrive/finish or devices retire. A revision moves
//! only the optional cache share (the pipeline floor is untouchable),
//! resizes the reservation in place — so shrinking works even while the
//! controller is overcommitted after an ECC retirement — and is *priced*:
//! evicting cached state streams it back over the interconnect, reloading
//! it streams it in again ([`RevisionOutcome::reclaim`]).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use triton_core::TritonJoin;
use triton_datagen::TUPLE_BYTES;
use triton_hw::kernel::KernelCost;
use triton_hw::units::{Bytes, Ns};
use triton_hw::{HwConfig, MemSide};
use triton_mem::{Allocation, OutOfMemory, SimAllocator};
use triton_plan::FootprintCache;

use crate::query::{JoinQuery, Operator, QueryId};

/// A granted memory reservation for one admitted query — a *revisable
/// contract*: the scheduler may issue a [`GrantRevision`] at a phase
/// boundary ([`AdmissionController::revise`]) and the grant's optional
/// share (everything above `floor`) shrinks or grows in place, priced
/// through the real link cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryGrant {
    /// Total GPU bytes reserved (pipeline floor + cache grant).
    pub reserved: Bytes,
    /// Cache budget the operator may use for its working set; the query
    /// executes with `cache_bytes = Some(cache_grant)`.
    pub cache_grant: Bytes,
    /// The pipeline floor the grant can never shrink below — revisions
    /// only move the optional cache share.
    pub floor: Bytes,
}

/// Historical name of [`MemoryGrant`], kept so pre-elastic callers keep
/// compiling.
pub type Reservation = MemoryGrant;

/// Accounting bugs the controller surfaces as typed errors in *release*
/// builds (they used to be a `debug_assert`, which silently corrupted
/// the budget once assertions were compiled out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The query's grant was already released — the fault path and the
    /// completion path raced to the release. Harmless (the accounting is
    /// untouched) but worth surfacing.
    DoubleRelease {
        /// The query released twice.
        id: QueryId,
    },
    /// The query never held a grant at all: a caller accounting bug.
    NeverAdmitted {
        /// The unknown query.
        id: QueryId,
    },
    /// A revision named a query that is not currently in flight.
    NotInFlight {
        /// The query without a live grant.
        id: QueryId,
    },
    /// A [`GrantRevision::Grow`] asked for pages the device cannot spare.
    GrowDenied(OutOfMemory),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::DoubleRelease { id } => {
                write!(f, "grant of query {id} was already released")
            }
            AdmissionError::NeverAdmitted { id } => {
                write!(f, "query {id} was never admitted")
            }
            AdmissionError::NotInFlight { id } => {
                write!(f, "query {id} holds no live grant to revise")
            }
            AdmissionError::GrowDenied(oom) => write!(f, "grant grow denied: {oom}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A mid-query change to a live [`MemoryGrant`], issued by the scheduler
/// at a phase boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantRevision {
    /// Take back up to this many bytes of the optional cache share
    /// (clamped so the grant never drops below its floor).
    Shrink(Bytes),
    /// Hand back up to this many bytes of previously reclaimed cache
    /// (clamped to what the device has free).
    Grow(Bytes),
}

/// What a [`GrantRevision`] actually did: the revised grant, the bytes
/// that moved, and the priced reclaim traffic. Shrinking is *not* free —
/// the evicted working set streams back over the interconnect
/// (GPU-memory read + link sequential write); growing reloads it (link
/// sequential read + GPU-memory write). The scheduler charges `reclaim`
/// onto the query's remaining work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevisionOutcome {
    /// The grant after the revision.
    pub grant: MemoryGrant,
    /// Bytes actually moved (may be less than asked, after clamping).
    pub delta: Bytes,
    /// Time the eviction (or reload) traffic costs on the dedicated
    /// machine, through the same roofline model as the join's kernels.
    pub reclaim: Ns,
}

/// The admission controller. Owns a [`SimAllocator`] whose GPU side is
/// the shared device-memory budget of all in-flight queries.
#[derive(Debug)]
pub struct AdmissionController {
    alloc: SimAllocator,
    capacity: Bytes,
    initial_capacity: Bytes,
    grants: BTreeMap<QueryId, (Allocation, MemoryGrant)>,
    /// Every id that ever held a grant — distinguishes a benign double
    /// release ([`AdmissionError::DoubleRelease`]) from a release of a
    /// query that was never admitted ([`AdmissionError::NeverAdmitted`],
    /// an accounting bug in the caller).
    ever_admitted: BTreeSet<QueryId>,
    /// High-water mark of reserved GPU bytes (for metrics/tests).
    pub peak_reserved: Bytes,
    /// Memoized plan-footprint analyses for [`Operator::Plan`] queries;
    /// admission re-derives the same peak on every scheduling decision,
    /// so repeat lookups skip the placement pass. Purely an evaluation
    /// shortcut: hits return byte-identical floors.
    plans: FootprintCache,
    /// Whether min-reserve lookups go through the footprint memo.
    plan_caching: bool,
}

impl AdmissionController {
    /// Build for a machine configuration.
    pub fn new(hw: &HwConfig) -> Self {
        AdmissionController {
            alloc: SimAllocator::new(hw),
            capacity: hw.gpu.mem_capacity,
            initial_capacity: hw.gpu.mem_capacity,
            grants: BTreeMap::new(),
            ever_admitted: BTreeSet::new(),
            peak_reserved: Bytes(0),
            plans: FootprintCache::new(),
            plan_caching: true,
        }
    }

    /// Toggle the plan-footprint memo (the scheduler's cost-caching
    /// knob). Off forces every lookup through the full placement pass;
    /// results are identical either way.
    pub fn set_plan_caching(&mut self, on: bool) {
        self.plan_caching = on;
    }

    /// Footprint-memo effectiveness: `(hits, misses)`.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (self.plans.hits, self.plans.misses)
    }

    /// [`Self::min_reserve`] through the controller's footprint memo
    /// when enabled — identical floors, cached placement passes.
    pub fn min_reserve_of(&mut self, query: &JoinQuery, hw: &HwConfig) -> Bytes {
        if self.plan_caching {
            if let Operator::Plan(p) = &query.op {
                return p.min_reserve_cached(hw, &mut self.plans);
            }
        }
        Self::min_reserve(query, hw)
    }

    /// Current GPU capacity being arbitrated (initial capacity minus any
    /// ECC retirements).
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// The machine's GPU capacity before any retirement.
    pub fn initial_capacity(&self) -> Bytes {
        self.initial_capacity
    }

    /// Permanently retire `bytes` of GPU capacity (ECC page
    /// retirement). Existing reservations stay live — the caller must
    /// revoke queries until [`Self::overcommitted`] returns zero.
    pub fn retire(&mut self, bytes: Bytes) -> Bytes {
        self.capacity = self.alloc.retire(MemSide::Gpu, bytes);
        // Retirement changes what admission may grant; drop the memoized
        // plan analyses so nothing priced against the old capacity can
        // ever be consulted again (a flush only costs recomputation).
        self.plans.flush();
        self.capacity
    }

    /// Reserved bytes in excess of the (possibly retired) capacity.
    pub fn overcommitted(&self) -> Bytes {
        self.reserved().saturating_sub(self.capacity)
    }

    /// GPU bytes currently reserved across all in-flight queries.
    pub fn reserved(&self) -> Bytes {
        self.alloc.used(MemSide::Gpu)
    }

    /// GPU bytes still grantable.
    pub fn available(&self) -> Bytes {
        self.alloc.available(MemSide::Gpu)
    }

    /// GPU bytes grant holders actually asked for (before page
    /// rounding) — the occupancy-gauge companion of [`Self::reserved`].
    pub fn requested(&self) -> Bytes {
        self.alloc.requested(MemSide::Gpu)
    }

    /// Page-rounding waste on the GPU side: reserved minus requested.
    pub fn fragmentation(&self) -> Bytes {
        self.alloc.fragmentation(MemSide::Gpu)
    }

    /// GPU occupancy in integer ppm of the (possibly retired) capacity;
    /// exceeds 1 000 000 while overcommitted after a retirement.
    pub fn occupancy_ppm(&self) -> u64 {
        self.alloc.occupancy_ppm(MemSide::Gpu)
    }

    /// The minimum GPU reservation `query` needs to start: the pipeline
    /// floor without any cache grant. A query whose floor exceeds the
    /// whole GPU can never be admitted (the caller should reject it
    /// permanently rather than queue it).
    pub fn min_reserve(query: &JoinQuery, hw: &HwConfig) -> Bytes {
        let r_bytes = query.workload.r.len() as u64 * TUPLE_BYTES;
        let s_bytes = query.workload.s.len() as u64 * TUPLE_BYTES;
        let total = r_bytes + s_bytes;
        match &query.op {
            Operator::Triton(_) => {
                // Mirrors TritonJoin::try_run's internal reservation: two
                // partition-pair buffers plus an eighth of device memory
                // for the runtime and staging.
                let b1 = TritonJoin::pass1_bits(r_bytes, total, hw);
                let pair = (total >> b1).max(1);
                Bytes(2 * pair) + hw.gpu.mem_capacity / 8
            }
            // NPJ streams the inputs; only the runtime slice is a floor
            // (the hash table degrades gracefully to CPU memory).
            Operator::NoPartitioning(_) => hw.gpu.mem_capacity / 8,
            // The CPU partitions into CPU memory; the GPU only holds the
            // current working-set pair plus a small staging slice — the
            // cheap middle rung of the degradation ladder.
            Operator::CpuPartitioned(_) => {
                let b1 = TritonJoin::pass1_bits(r_bytes, total, hw);
                let pair = (total >> b1).max(1);
                Bytes(2 * pair) + hw.gpu.mem_capacity / 16
            }
            // CPU operators take no GPU memory at all.
            Operator::CpuRadix(_) => Bytes(0),
            // Plans reserve the peak concurrent operator footprint along
            // the schedule — never the sum of all operators.
            Operator::Plan(p) => p.min_reserve(hw),
        }
    }

    /// The cache bytes `query` could profitably use on top of the floor.
    fn cache_desired(query: &JoinQuery) -> u64 {
        let r_bytes = query.workload.r.len() as u64 * TUPLE_BYTES;
        let s_bytes = query.workload.s.len() as u64 * TUPLE_BYTES;
        match &query.op {
            // The whole partitioned working set, ideally.
            Operator::Triton(_) => r_bytes + s_bytes,
            Operator::NoPartitioning(j) => j.table_bytes(query.workload.r.len()),
            // The CPU writes partitions to CPU memory; nothing to cache.
            Operator::CpuPartitioned(_) => 0,
            Operator::CpuRadix(_) => 0,
            Operator::Plan(p) => p.cache_desired().0,
        }
    }

    /// Try to reserve memory for `query`. On success the query may start
    /// immediately; the reservation stays held until [`Self::release`].
    ///
    /// The error carries the floor that could not be met, so the caller
    /// can distinguish *backpressure* (wait for a release) from
    /// *over-capacity* (the floor exceeds the entire GPU: shed).
    pub fn try_admit(
        &mut self,
        id: QueryId,
        query: &JoinQuery,
        hw: &HwConfig,
    ) -> Result<Reservation, OutOfMemory> {
        self.try_admit_shrunk(id, query, hw, 0)
    }

    /// [`Self::try_admit`] with the cache desire halved `grant_shrink`
    /// times — the degradation ladder's first rung: a query revoked by a
    /// capacity fault retries asking for less optional memory before it
    /// gives up GPU execution entirely.
    pub fn try_admit_shrunk(
        &mut self,
        id: QueryId,
        query: &JoinQuery,
        hw: &HwConfig,
        grant_shrink: u32,
    ) -> Result<Reservation, OutOfMemory> {
        let floor = self.min_reserve_of(query, hw);
        let free = self.available().0;
        if floor.0 > free {
            return Err(OutOfMemory {
                side: MemSide::Gpu,
                requested: floor,
                available: Bytes(free),
            });
        }
        // Grant cache from the remainder, leaving headroom so one greedy
        // query cannot starve the queue: cap each grant at half of what
        // is free after the floor.
        let after_floor = free - floor.0;
        let desired = Self::cache_desired(query) >> grant_shrink.min(63);
        let grant = desired.min(after_floor / 2);
        let total = floor + Bytes(grant);
        let allocation = self.alloc.alloc(MemSide::Gpu, total)?;
        let reservation = MemoryGrant {
            reserved: Bytes(allocation.len),
            cache_grant: Bytes(grant),
            floor,
        };
        self.grants.insert(id, (allocation, reservation));
        self.ever_admitted.insert(id);
        let now = self.reserved();
        if now > self.peak_reserved {
            self.peak_reserved = now;
        }
        Ok(reservation)
    }

    /// Release the reservation of a finished (or failed) query.
    ///
    /// Returns the bytes freed. The fault path can revoke a query the
    /// completion path also releases; the second call surfaces a typed
    /// [`AdmissionError::DoubleRelease`] and — crucially — leaves the
    /// reserved-bytes accounting untouched, so release builds detect the
    /// race instead of silently corrupting the budget. Releasing an id
    /// that was *never admitted* is a caller accounting bug and comes
    /// back as [`AdmissionError::NeverAdmitted`].
    pub fn release(&mut self, id: QueryId) -> Result<Bytes, AdmissionError> {
        if let Some((allocation, grant)) = self.grants.remove(&id) {
            self.alloc.free(allocation);
            Ok(grant.reserved)
        } else if self.ever_admitted.contains(&id) {
            Err(AdmissionError::DoubleRelease { id })
        } else {
            Err(AdmissionError::NeverAdmitted { id })
        }
    }

    /// Revise the live grant of query `id` in place.
    ///
    /// A `Shrink` clamps to the grant's optional cache share (the floor
    /// is untouchable), releases the pages back to the device budget —
    /// in place, so it works even while the controller is overcommitted
    /// after an ECC retirement — and prices the eviction of the cached
    /// working set through the link cost model. A `Grow` clamps to what
    /// the device has free, charges the delta, and prices the reload.
    /// Either way the returned [`RevisionOutcome`] carries the revised
    /// grant and the reclaim time the caller must account to the query.
    pub fn revise(
        &mut self,
        id: QueryId,
        revision: GrantRevision,
        hw: &HwConfig,
    ) -> Result<RevisionOutcome, AdmissionError> {
        let Some((allocation, grant)) = self.grants.get(&id).map(|(a, g)| (*a, *g)) else {
            return Err(AdmissionError::NotInFlight { id });
        };
        let (delta, new_cache, evict) = match revision {
            GrantRevision::Shrink(ask) => {
                // Round the ask *up* to whole pages (still clamped to the
                // cache share): the freed physical pages then equal the
                // delta exactly, so shrinking by `overcommitted()` clears
                // an overcommit in one revision instead of converging by
                // sub-page slivers.
                let page = self.alloc.page_size();
                let aligned = ask.min(grant.cache_grant).0.div_ceil(page) * page;
                let delta = Bytes(aligned).min(grant.cache_grant);
                (delta, grant.cache_grant - delta, true)
            }
            GrantRevision::Grow(ask) => {
                // Round the clamp *down* to whole pages: the in-place
                // resize then charges exactly `delta` physical bytes and
                // can never bounce off a fractional-page shortfall.
                let page = self.alloc.page_size();
                let usable = self.available().0 / page * page;
                let delta = ask.min(Bytes(usable));
                (delta, grant.cache_grant + delta, false)
            }
        };
        let new_total = grant.floor + new_cache;
        let allocation = match self.alloc.resize(allocation, new_total) {
            Ok(a) => a,
            Err(oom) => return Err(AdmissionError::GrowDenied(oom)),
        };
        let revised = MemoryGrant {
            reserved: new_total,
            cache_grant: new_cache,
            floor: grant.floor,
        };
        self.grants.insert(id, (allocation, revised));
        let now = self.reserved();
        if now > self.peak_reserved {
            self.peak_reserved = now;
        }
        Ok(RevisionOutcome {
            grant: revised,
            delta,
            reclaim: reclaim_cost(delta, evict, hw),
        })
    }

    /// The live grant of query `id`, if it is in flight.
    pub fn grant_of(&self, id: QueryId) -> Option<MemoryGrant> {
        self.grants.get(&id).map(|(_, g)| *g)
    }

    /// Number of queries currently holding reservations.
    pub fn in_flight(&self) -> usize {
        self.grants.len()
    }
}

/// Price the traffic a grant revision moves: a shrink *evicts* the
/// reclaimed share of the cached working set (GPU-memory read + link
/// sequential write, the same shape as the join's staging-overflow
/// `Spill`), a grow *reloads* it (link sequential read + GPU-memory
/// write). Zero bytes cost zero time.
fn reclaim_cost(delta: Bytes, evict: bool, hw: &HwConfig) -> Ns {
    if delta.0 == 0 {
        return Ns::ZERO;
    }
    let mut k = KernelCost::new(if evict { "GrantShrink" } else { "GrantGrow" });
    k.sms = (hw.gpu.num_sms / 2).max(1);
    k.tuples_in = delta.0 / TUPLE_BYTES;
    if evict {
        k.gpu_mem.read += delta;
        k.link.seq_write += delta;
    } else {
        k.gpu_mem.write += delta;
        k.link.seq_read += delta;
    }
    k.timing(hw).total
}

/// Clone `query`'s operator with its cache budget clamped to the granted
/// reservation, so the dedicated-run report reflects exactly the memory
/// admission handed out.
pub fn operator_with_grant(query: &JoinQuery, grant: &Reservation) -> Operator {
    match &query.op {
        Operator::Triton(j) => Operator::Triton(TritonJoin {
            cache_bytes: Some(grant.cache_grant),
            ..j.clone()
        }),
        Operator::NoPartitioning(j) => {
            let mut j = j.clone();
            j.cache_bytes = Some(grant.cache_grant);
            Operator::NoPartitioning(j)
        }
        // CPU-side operators have no GPU cache budget to clamp.
        Operator::CpuPartitioned(j) => Operator::CpuPartitioned(j.clone()),
        Operator::CpuRadix(j) => Operator::CpuRadix(j.clone()),
        // The plan's placement runs under exactly the granted budget, and
        // its join nodes split the cache grant.
        Operator::Plan(p) => {
            let mut p = p.clone();
            p.budget = Some(grant.reserved);
            p.cache_grant = Some(grant.cache_grant);
            Operator::Plan(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;
    use triton_hw::units::Ns;

    fn query(m: u64, k: u64) -> JoinQuery {
        JoinQuery::new("q", WorkloadSpec::paper_default(m, k).generate(), Ns::ZERO)
    }

    #[test]
    fn reservations_never_exceed_capacity() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let mut admitted = 0;
        for i in 0..64 {
            match ac.try_admit(QueryId(i), &q, &hw) {
                Ok(_) => admitted += 1,
                Err(e) => {
                    assert_eq!(e.side, MemSide::Gpu);
                    break;
                }
            }
        }
        assert!(admitted >= 2, "the GPU should fit at least two queries");
        assert!(ac.reserved() <= ac.capacity());
        assert_eq!(ac.in_flight(), admitted as usize);
    }

    #[test]
    fn release_returns_budget() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let before = ac.available();
        let r = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert!(ac.available() < before);
        assert_eq!(ac.release(QueryId(0)), Ok(r.reserved));
        assert_eq!(ac.available(), before);
        assert!(ac.peak_reserved.0 > 0);
    }

    #[test]
    fn double_release_is_a_typed_error_not_a_corruption() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let before = ac.available();
        ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert!(ac.release(QueryId(0)).is_ok(), "first release frees");
        let after_first = ac.available();
        // The fault path may race the completion path to the release: the
        // second call surfaces the race as a typed error — in *release*
        // builds too, where the old debug_assert compiled away — and the
        // accounting stays intact.
        assert_eq!(
            ac.release(QueryId(0)),
            Err(AdmissionError::DoubleRelease { id: QueryId(0) })
        );
        assert_eq!(ac.available(), after_first);
        assert_eq!(ac.available(), before);
        assert_eq!(ac.in_flight(), 0);
        // Re-admission after a release works and frees again cleanly.
        ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert!(ac.release(QueryId(0)).is_ok());
        assert_eq!(ac.available(), before);
    }

    #[test]
    fn releasing_a_never_admitted_query_is_a_typed_error() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        assert_eq!(
            ac.release(QueryId(77)),
            Err(AdmissionError::NeverAdmitted { id: QueryId(77) })
        );
    }

    #[test]
    fn shrink_revision_reclaims_cache_and_prices_the_eviction() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let full = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert!(full.cache_grant.0 > 0);
        let before = ac.reserved();
        let ask = Bytes(full.cache_grant.0 / 2);
        let out = ac
            .revise(QueryId(0), GrantRevision::Shrink(ask), &hw)
            .unwrap();
        // The shrink delta rounds *up* to whole pages so the freed
        // physical pages match it exactly (one revision clears an
        // overcommit instead of converging by slivers).
        let page = hw.tlb.page_size.0.max(1);
        assert!(out.delta >= ask && out.delta.0 - ask.0 < page);
        assert_eq!(out.delta.0 % page, 0);
        assert_eq!(out.grant.cache_grant, full.cache_grant - out.delta);
        assert_eq!(out.grant.floor, full.floor);
        assert!(out.reclaim.0 > 0.0, "shrink is never free");
        assert!(ac.reserved() < before, "pages returned to the budget");
        assert_eq!(ac.grant_of(QueryId(0)), Some(out.grant));
        // A shrink past the cache share clamps at the floor.
        let all = ac
            .revise(QueryId(0), GrantRevision::Shrink(Bytes(u64::MAX)), &hw)
            .unwrap();
        assert_eq!(all.grant.cache_grant, Bytes(0));
        assert_eq!(all.grant.reserved, full.floor);
        // Nothing left to shrink: zero delta, zero reclaim.
        let noop = ac
            .revise(QueryId(0), GrantRevision::Shrink(Bytes(1)), &hw)
            .unwrap();
        assert_eq!(noop.delta, Bytes(0));
        assert_eq!(noop.reclaim, Ns::ZERO);
        ac.release(QueryId(0)).unwrap();
    }

    #[test]
    fn grow_revision_restores_cache_and_prices_the_reload() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let full = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        let shrunk = ac
            .revise(QueryId(0), GrantRevision::Shrink(full.cache_grant), &hw)
            .unwrap();
        assert_eq!(shrunk.grant.cache_grant, Bytes(0));
        let regrown = ac
            .revise(QueryId(0), GrantRevision::Grow(full.cache_grant), &hw)
            .unwrap();
        assert!(regrown.delta.0 > 0);
        assert!(regrown.reclaim.0 > 0.0, "the reload is priced too");
        assert!(regrown.grant.cache_grant <= full.cache_grant);
        // A grow can never outrun the device: ask for everything and the
        // delta clamps to whole free pages.
        let greedy = ac
            .revise(QueryId(0), GrantRevision::Grow(Bytes(u64::MAX)), &hw)
            .unwrap();
        assert!(greedy.grant.reserved <= ac.capacity());
        assert_eq!(ac.overcommitted(), Bytes(0));
        ac.release(QueryId(0)).unwrap();
    }

    #[test]
    fn shrink_works_while_overcommitted_after_retirement() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let full = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        // Retire down to the floor plus half the cache grant: the
        // controller is overcommitted and available() saturates at zero,
        // exactly where a free-then-realloc shrink would deadlock.
        let target = full.floor + Bytes(full.cache_grant.0 / 2);
        ac.retire(ac.capacity() - target);
        assert!(ac.overcommitted().0 > 0);
        assert_eq!(ac.available(), Bytes(0));
        let out = ac
            .revise(QueryId(0), GrantRevision::Shrink(ac.overcommitted()), &hw)
            .unwrap();
        assert!(out.delta.0 > 0);
        assert_eq!(ac.overcommitted(), Bytes(0), "shrink-in-place clears it");
        assert!(
            ac.revise(QueryId(7), GrantRevision::Shrink(Bytes(1)), &hw)
                .is_err(),
            "revising a query with no live grant is a typed error"
        );
        ac.release(QueryId(0)).unwrap();
    }

    #[test]
    fn retirement_shrinks_capacity_and_reports_overcommit() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        ac.try_admit(QueryId(0), &q, &hw).unwrap();
        let reserved = ac.reserved();
        let initial = ac.initial_capacity();
        // Retire everything except half of what is reserved.
        ac.retire(Bytes(initial.0 - reserved.0 / 2));
        assert_eq!(ac.capacity(), Bytes(reserved.0 / 2));
        assert_eq!(ac.initial_capacity(), initial);
        assert_eq!(ac.overcommitted(), Bytes(reserved.0 - reserved.0 / 2));
        assert_eq!(ac.available(), Bytes(0));
        // Revoking the query clears the overcommit.
        ac.release(QueryId(0)).unwrap();
        assert_eq!(ac.overcommitted(), Bytes(0));
    }

    #[test]
    fn shrunk_grants_ask_for_less_cache() {
        let hw = HwConfig::ac922().scaled(512);
        let q = query(64, 512);
        let mut ac = AdmissionController::new(&hw);
        let full = ac.try_admit_shrunk(QueryId(0), &q, &hw, 0).unwrap();
        ac.release(QueryId(0)).unwrap();
        let halved = ac.try_admit_shrunk(QueryId(0), &q, &hw, 1).unwrap();
        assert!(
            halved.cache_grant.0 <= full.cache_grant.0 / 2 + 1,
            "shrink 1 must halve the desire: {} vs {}",
            halved.cache_grant,
            full.cache_grant
        );
    }

    #[test]
    fn cpu_query_needs_no_gpu_memory() {
        let hw = HwConfig::ac922().scaled(512);
        let mut q = query(64, 512);
        q.op = Operator::CpuRadix(triton_core::CpuRadixJoin::power9(
            triton_core::HashScheme::BucketChaining,
        ));
        assert_eq!(AdmissionController::min_reserve(&q, &hw), Bytes(0));
        let mut ac = AdmissionController::new(&hw);
        let r = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert_eq!(r.reserved, Bytes(0));
    }

    #[test]
    fn grant_clamps_operator_cache() {
        let hw = HwConfig::ac922().scaled(512);
        let q = query(64, 512);
        let mut ac = AdmissionController::new(&hw);
        let r = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        match operator_with_grant(&q, &r) {
            Operator::Triton(j) => assert_eq!(j.cache_bytes, Some(r.cache_grant)),
            _ => panic!("expected a Triton operator"),
        }
    }
}
