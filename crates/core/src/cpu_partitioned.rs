//! The CPU-partitioned GPU join strategy (Section 3.1, re-evaluated in
//! Section 6.2.4 — the approach of Sioulas et al., re-optimised for the
//! POWER9 and NVLink 2.0).
//!
//! The CPU radix-partitions both relations into working sets that fit GPU
//! memory; working sets are then transferred to the GPU, which runs the
//! second partitioning pass and the join. The pipeline overlaps the
//! transfer and second pass over R with the CPU's first pass over S, and
//! caches the current working set in GPU memory.
//!
//! The strategy's structural weakness (Section 3.1): to keep a fast
//! interconnect saturated, the CPU would have to partition several times
//! faster than the link transfers — beyond its memory bandwidth — so the
//! GPU idles behind the CPU. The paper measures 1.3-1.8 G tuples/s, a
//! 1.2-1.3x disadvantage against the Triton join.

use triton_datagen::{Workload, TUPLE_BYTES};
use triton_hw::kernel::{pipeline2, KernelCost};
use triton_hw::power::Executor;
use triton_hw::units::{Bytes, Ns};
use triton_hw::HwConfig;
use triton_part::{
    cpu_swwc_partition, gpu_prefix_sum, make_partitioner, Algorithm, PassConfig, Span,
};

use crate::hash_table::{BucketChainTable, HashScheme, BUCKET_CHAIN_ENTRIES};
use crate::report::{JoinReport, JoinResult, PhaseReport};
use crate::triton::TritonJoin;

/// Configuration of the CPU-partitioned GPU join.
#[derive(Debug, Clone)]
pub struct CpuPartitionedJoin {
    /// Second-pass algorithm on the GPU.
    pub pass2: Algorithm,
    /// Hashing scheme of the join phase.
    pub scheme: HashScheme,
}

impl Default for CpuPartitionedJoin {
    fn default() -> Self {
        CpuPartitionedJoin {
            pass2: Algorithm::Shared,
            scheme: HashScheme::BucketChaining,
        }
    }
}

impl CpuPartitionedJoin {
    /// Execute the join.
    pub fn run(&self, w: &Workload, hw: &HwConfig) -> JoinReport {
        let n_r = w.r.len();
        let n_s = w.s.len();
        let total_bytes = (n_r + n_s) as u64 * TUPLE_BYTES;
        let b1 = TritonJoin::pass1_bits(n_r as u64 * TUPLE_BYTES, total_bytes, hw);
        let fanout1 = 1usize << b1;
        let half_sms = (hw.gpu.num_sms / 2).max(1);

        // --- CPU first pass over both relations (histogram + scatter in
        // CPU memory; this also consumes the memory bandwidth the paper
        // notes the strategy wastes on the extra write+read).
        let pr = cpu_swwc_partition(&w.r.keys, &w.r.rids, b1, 0, n_r as u64, hw);
        let ps = cpu_swwc_partition(&w.s.keys, &w.s.rids, b1, 0, n_s as u64, hw);

        let mut phases = vec![PhaseReport::cpu(
            format!("CPU Part 1 (2^{b1})"),
            pr.time + ps.time,
        )];

        // --- GPU side, per working set: transfer (implicit in the reads),
        // second pass, join. The partitioned data always lives in CPU
        // memory — no hybrid caching of the *partitioned copy* is
        // possible because the CPU produced it there.
        let p2 = make_partitioner(self.pass2);
        let triton_like = TritonJoin::default();
        let mut result = JoinResult::empty();
        let mut stage_a = Vec::with_capacity(fanout1);
        let mut stage_b = Vec::with_capacity(fanout1);
        let mut gpu_cost_all = KernelCost::new("GPU Part 2 + Join");
        let r_span = Span::cpu(1 << 40);
        let s_span = Span::cpu(1 << 41);

        for i in 0..fanout1 {
            let (rk, rr) = pr.parts.partition(i);
            let (sk, sr) = ps.parts.partition(i);
            if rk.is_empty() && sk.is_empty() {
                continue;
            }
            let b2 = triton_like.pass2_bits(rk.len());
            let r_off = pr.parts.offsets[i] as u64 * TUPLE_BYTES;
            let s_off = ps.parts.offsets[i] as u64 * TUPLE_BYTES;
            let r_slice = r_span.slice(r_off);
            let s_slice = s_span.slice(s_off);
            let mut a_time = Ns::ZERO;

            let (sub_r, sub_s) = if b2 > 0 {
                let mut cfg = PassConfig::new(b2, b1);
                cfg.sms = half_sms;
                // The transfer doubles as PS2 + staging copy into GPU
                // memory (pinned-buffer streaming in the original; here
                // the same bytes cross the link exactly once).
                let (h2r, mut cps) = gpu_prefix_sum(rk, &r_slice, &cfg, hw, true);
                let (h2s, cps_s) = gpu_prefix_sum(sk, &s_slice, &cfg, hw, true);
                cps.merge(&cps_s);
                a_time += cps.timing(hw).total;
                gpu_cost_all.merge(&cps);

                let gpu_in = Span::gpu(1 << 46);
                let gpu_out = Span::gpu(1 << 47);
                let (pr2, mut cp2) = p2.partition(rk, rr, &h2r, &gpu_in, &gpu_out, &cfg, hw);
                let (ps2p, cp2s) = p2.partition(sk, sr, &h2s, &gpu_in, &gpu_out, &cfg, hw);
                cp2.merge(&cp2s);
                a_time += cp2.timing(hw).total;
                gpu_cost_all.merge(&cp2);
                (Some(pr2), Some(ps2p))
            } else {
                (None, None)
            };

            // Join kernel.
            let mut join = KernelCost::new("Join");
            join.sms = half_sms;
            join.tuples_in = (rk.len() + sk.len()) as u64;
            let from_gpu = sub_r.is_some();
            if from_gpu {
                join.gpu_mem.read += Bytes((rk.len() + sk.len()) as u64 * TUPLE_BYTES);
            } else {
                join.link.seq_read += Bytes((rk.len() + sk.len()) as u64 * TUPLE_BYTES);
            }
            let mut pair = JoinResult::empty();
            match (&sub_r, &sub_s) {
                (Some(pr2), Some(ps2p)) => {
                    for p in 0..pr2.fanout() {
                        let (srk, srr) = pr2.partition(p);
                        let (ssk, ssr) = ps2p.partition(p);
                        if srk.is_empty() || ssk.is_empty() {
                            continue;
                        }
                        let table =
                            BucketChainTable::build(srk, srr, BUCKET_CHAIN_ENTRIES, b1 + b2);
                        for (&k, &srid) in ssk.iter().zip(ssr) {
                            for rrid in table.probe_all(k) {
                                pair.add(rrid, srid);
                            }
                        }
                    }
                }
                _ => {
                    if !rk.is_empty() && !sk.is_empty() {
                        let table = BucketChainTable::build(rk, rr, BUCKET_CHAIN_ENTRIES, b1);
                        for (&k, &srid) in sk.iter().zip(sr) {
                            for rrid in table.probe_all(k) {
                                pair.add(rrid, srid);
                            }
                        }
                    }
                }
            }
            join.instructions = rk.len() as u64 * 14 + sk.len() as u64 * 12;
            result.merge(&pair);
            let t = join.timing(hw).total;
            gpu_cost_all.merge(&join);
            stage_a.push(a_time);
            stage_b.push(t);
        }

        let gpu_pipeline = pipeline2(&stage_a, &stage_b);
        phases.push(PhaseReport {
            time: gpu_pipeline,
            ..PhaseReport::gpu(gpu_cost_all, hw)
        });

        // --- Overlap model (Section 6.2.4): R's CPU pass runs first;
        // S's CPU pass overlaps the GPU pipeline over R's working sets;
        // S's GPU side follows. Two second-order effects the paper calls
        // out are folded in: (1) transfers from pageable staging buffers
        // consume CPU memory bandwidth, slowing the concurrent CPU
        // partitioning (Section 3.1's core argument); (2) when the whole
        // partitioned working set fits GPU memory, the trailing join
        // overlaps entirely with the transfers (the 38% caching gain at
        // 128 M tuples).
        let fits =
            (hw.gpu.mem_capacity.0 - hw.gpu.mem_capacity.0 / 8) as f64 / total_bytes.max(1) as f64;
        let f = fits.min(1.0);
        let contention = 1.0 + 0.5 * (1.0 - f);
        let overlap_stage = gpu_pipeline * (0.5 + 0.5 * (1.0 - f));
        let tail = gpu_pipeline * (0.5 * (1.0 - f));
        let total = pr.time + (ps.time * contention).max(overlap_stage) + tail;

        JoinReport {
            name: "CPU-Partitioned Radix Join".into(),
            phases,
            total,
            tuples_actual: w.total_tuples(),
            tuples_modeled: w.total_tuples_modeled(),
            result,
            executor: Executor::Gpu,
            overlap: None,
            placement: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use triton_datagen::WorkloadSpec;

    #[test]
    fn result_matches_reference() {
        let hw = HwConfig::ac922().scaled(2048);
        let w = WorkloadSpec::paper_default(8, 512).generate();
        let rep = CpuPartitionedJoin::default().run(&w, &hw);
        assert_eq!(rep.result, reference_join(&w));
    }

    #[test]
    fn triton_outperforms_cpu_partitioned() {
        // Section 6.2.4: the Triton join achieves a 1.2-1.3x speedup.
        let hw = HwConfig::ac922().scaled(512);
        let w = WorkloadSpec::paper_default(512, 512).generate();
        let cpu_part = CpuPartitionedJoin::default().run(&w, &hw);
        let triton = TritonJoin::default().run(&w, &hw);
        let speedup = cpu_part.total.0 / triton.total.0;
        assert!(
            speedup > 1.05,
            "Triton speedup over CPU-partitioned: {speedup}"
        );
    }
}
