//! Fig 6: GPU interconnect bandwidth of a random access pattern to CPU
//! memory, (a) with varying access granularities and (b) alignments.
//!
//! Exercises the NVLink packet model directly, the way the paper's
//! microbenchmark exercises the hardware: random accesses within a 1 GiB
//! array in LCG order, scaling the granularity from 4 bytes (a 32-bit
//! integer) up to 512 bytes (a coalesced 32-thread warp access).

use triton_hw::link::{Alignment, Dir, LinkModel};
use triton_hw::units::Bytes;
use triton_hw::HwConfig;

/// One measured point of Fig 6(a).
#[derive(Debug, Clone)]
pub struct GranularityRow {
    /// Access granularity in bytes.
    pub granularity: u64,
    /// Random-read bandwidth in GiB/s.
    pub read_gibs: f64,
    /// Random-write bandwidth in GiB/s.
    pub write_gibs: f64,
}

/// One measured point of Fig 6(b) (512-byte accesses).
#[derive(Debug, Clone)]
pub struct AlignmentRow {
    /// Alignment class label.
    pub alignment: &'static str,
    /// Read bandwidth in GiB/s.
    pub read_gibs: f64,
    /// Write bandwidth in GiB/s.
    pub write_gibs: f64,
}

const GIB: f64 = (1u64 << 30) as f64;

/// Fig 6(a): bandwidth vs granularity 4-512 bytes.
pub fn run_granularity(hw: &HwConfig) -> Vec<GranularityRow> {
    let link = LinkModel::new(&hw.link);
    [4u64, 8, 16, 32, 64, 128, 256, 512]
        .into_iter()
        .map(|g| GranularityRow {
            granularity: g,
            read_gibs: link.random_access_bandwidth(Bytes(g), Dir::CpuToGpu, Alignment::Natural)
                / GIB,
            write_gibs: link.random_access_bandwidth(Bytes(g), Dir::GpuToCpu, Alignment::Natural)
                / GIB,
        })
        .collect()
}

/// Fig 6(b): 512-byte accesses at the three alignment classes.
pub fn run_alignment(hw: &HwConfig) -> Vec<AlignmentRow> {
    let link = LinkModel::new(&hw.link);
    [
        ("Sequential", Alignment::Natural),
        ("Cacheline", Alignment::Cacheline),
        ("None", Alignment::None),
    ]
    .into_iter()
    .map(|(label, a)| AlignmentRow {
        alignment: label,
        read_gibs: link.random_access_bandwidth(Bytes(512), Dir::CpuToGpu, a) / GIB,
        write_gibs: link.random_access_bandwidth(Bytes(512), Dir::GpuToCpu, a) / GIB,
    })
    .collect()
}

/// Print both panels.
pub fn print(hw: &HwConfig) {
    crate::banner(
        "Fig 6",
        "interconnect bandwidth of random CPU-memory accesses",
    );
    let mut t = crate::Table::new(["granularity (B)", "read (GiB/s)", "write (GiB/s)"]);
    for r in run_granularity(hw) {
        t.row([
            r.granularity.to_string(),
            crate::f1(r.read_gibs),
            crate::f1(r.write_gibs),
        ]);
    }
    t.print();
    println!();
    let mut t = crate::Table::new(["alignment (512 B)", "read (GiB/s)", "write (GiB/s)"]);
    for r in run_alignment(hw) {
        t.row([
            r.alignment.to_string(),
            crate::f1(r.read_gibs),
            crate::f1(r.write_gibs),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_grows_linearly_then_saturates() {
        let hw = HwConfig::ac922();
        let rows = run_granularity(&hw);
        // Linear growth region: each doubling of granularity roughly
        // doubles bandwidth up to 64 B.
        for w in rows.windows(2).take(4) {
            let ratio = w[1].read_gibs / w[0].read_gibs;
            assert!((1.6..=2.4).contains(&ratio), "read ratio {ratio}");
        }
        // Saturation: 128-512 B all near the sequential limit.
        for r in &rows[5..] {
            assert!(r.read_gibs > 55.0 && r.write_gibs > 55.0, "{r:?}");
        }
    }

    #[test]
    fn misalignment_penalties_match_paper() {
        let hw = HwConfig::ac922();
        let rows = run_alignment(&hw);
        let seq = &rows[0];
        let mis = &rows[2];
        let read_drop = 1.0 - mis.read_gibs / seq.read_gibs;
        let write_drop = 1.0 - mis.write_gibs / seq.write_gibs;
        // Paper: 20% for reads, 56% for writes.
        assert!((0.1..=0.3).contains(&read_drop), "read drop {read_drop}");
        assert!((0.4..=0.7).contains(&write_drop), "write drop {write_drop}");
    }
}
