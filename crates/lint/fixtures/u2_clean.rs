// Fixture: epsilon comparisons, integer equality, and float
// *inequalities* are all fine.
pub fn compare(x: f64, n: u64) -> bool {
    (x - 1.5).abs() < 1e-9 && n == 0 && x <= 0.0 && x >= -1.0
}
