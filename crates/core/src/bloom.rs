//! Bloom-filter pre-filtering of the outer relation.
//!
//! An *extension* beyond the paper's evaluation: Section 7 lists
//! "filtering [...] the outer relation" (e.g. Gubner et al.'s GPU Bloom
//! filters) as complementary work that "remains an open challenge for
//! GPUs with fast interconnects". This module closes the loop for the
//! Triton join: a Bloom filter over the build keys is created alongside
//! the first pass over R, and S's first pass probes it, dropping tuples
//! that cannot match *before* they are partitioned and spilled. For
//! selective joins this removes most of the outer relation's partition,
//! spill, reload, and probe traffic.
//!
//! The filter itself is classic: a power-of-two bit array with two
//! multiply-shift-derived hash functions (a split-and-mix double-hashing
//! scheme), sized at a configurable bits-per-key.

use triton_datagen::{multiply_shift, TUPLE_BYTES};
use triton_hw::kernel::KernelCost;
use triton_hw::units::Bytes;
use triton_hw::HwConfig;
use triton_trace::Attr;

use crate::report::PhaseReport;

/// A Bloom filter over 64-bit join keys.
///
/// ```
/// use triton_core::BloomFilter;
/// let mut f = BloomFilter::for_build_side(1000);
/// for k in 1..=1000u64 { f.insert(k); }
/// assert!(f.may_contain(42));        // no false negatives, ever
/// let fps = (100_000..110_000u64).filter(|&k| f.may_contain(k)).count();
/// assert!(fps < 500);                // few false positives
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    words: Vec<u64>,
    bit_mask: u64,
    hashes: u32,
}

impl BloomFilter {
    /// Create a filter sized for `n` keys at `bits_per_key` (rounded up
    /// to a power of two), probing with `hashes` hash functions.
    pub fn new(n: usize, bits_per_key: usize, hashes: u32) -> Self {
        assert!((1..=8).contains(&hashes));
        let bits = (n.max(1) * bits_per_key.max(1)).next_power_of_two() as u64;
        BloomFilter {
            words: vec![0u64; (bits / 64).max(1) as usize],
            bit_mask: bits - 1,
            hashes,
        }
    }

    /// The paper-adjacent default: 10 bits/key, 2 hashes (~1.7% false
    /// positives).
    pub fn for_build_side(n: usize) -> Self {
        BloomFilter::new(n, 10, 2)
    }

    #[inline]
    fn hash_pair(key: u64) -> (u64, u64) {
        // Double hashing: h_i = h1 + i*h2. The two bases come from two
        // independently-mixed multiply-shift products (the low bits of a
        // single product are too structured for dense key ranges).
        let h1 = multiply_shift(key) >> 16;
        let h2 = (multiply_shift(key ^ 0x517c_c1b7_2722_0a95) >> 16) | 1;
        (h1, h2)
    }

    #[inline]
    fn probes(&self, key: u64) -> impl Iterator<Item = u64> + '_ {
        let (h1, h2) = Self::hash_pair(key);
        (0..self.hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2))) & self.bit_mask)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        let mask = self.bit_mask;
        let (h1, h2) = Self::hash_pair(key);
        for i in 0..self.hashes as u64 {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2))) & mask;
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Whether `key` may be in the set (false = definitely absent).
    pub fn may_contain(&self, key: u64) -> bool {
        self.probes(key)
            .all(|bit| self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0)
    }

    /// Filter size in bytes.
    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Bytes a [`BloomFilter::for_build_side`] filter over `n` keys
    /// occupies, without allocating it — what a planner charges against
    /// an admission grant before the filter exists.
    pub fn build_side_bytes(n: usize) -> u64 {
        let bits = (n.max(1) * 10).next_power_of_two() as u64;
        (bits / 64).max(1) * 8
    }

    /// Kernel cost of building this filter from `n_build` keys and
    /// probing it with `n_probe` tuples, `dropped` of which fail the
    /// filter. Matches the Triton join's in-line prefilter accounting:
    /// the filter array lives in GPU memory, the build keys stream in
    /// once, probes are random single-word reads, and dropped tuples are
    /// read exactly once (survivors are charged by whoever consumes
    /// them). `build_resident` / `probe_resident` price the input
    /// streams against GPU memory instead of the interconnect, for
    /// pipelined plan intermediates.
    pub fn kernel_cost(
        &self,
        n_build: u64,
        n_probe: u64,
        dropped: u64,
        build_resident: bool,
        probe_resident: bool,
    ) -> KernelCost {
        let mut c = KernelCost::new("Bloom");
        c.tuples_in = n_build + n_probe;
        c.instructions = (n_build + n_probe) * 6;
        // The filter array lives in GPU memory (a few MiB: cached).
        c.gpu_mem.write += Bytes(self.bytes());
        c.gpu_mem.rand_read += Bytes(n_probe * 8);
        // Building the filter streams the build key column once.
        if build_resident {
            c.gpu_mem.read += Bytes(n_build * 8);
        } else {
            c.link.seq_read += Bytes(n_build * 8);
        }
        // Dropped tuples are read exactly once (they must be tested).
        if probe_resident {
            c.gpu_mem.read += Bytes(dropped * TUPLE_BYTES);
        } else {
            c.link.seq_read += Bytes(dropped * TUPLE_BYTES);
        }
        c
    }

    /// [`Self::kernel_cost`] wrapped as a timed phase report, like the
    /// join phases — what a plan node contributes to a `JoinReport`.
    pub fn phase_report(
        &self,
        n_build: u64,
        n_probe: u64,
        dropped: u64,
        build_resident: bool,
        probe_resident: bool,
        hw: &HwConfig,
    ) -> PhaseReport {
        PhaseReport::gpu(
            self.kernel_cost(n_build, n_probe, dropped, build_resident, probe_resident),
            hw,
        )
    }

    /// Trace attributes describing the filter geometry, attached to
    /// Bloom phase spans the same way kernel costs attach theirs.
    pub fn trace_attrs(&self) -> Vec<Attr> {
        vec![
            Attr::u64("filter_bytes", self.bytes()),
            Attr::u64("filter_bits", self.bit_mask + 1),
            Attr::u64("filter_hashes", u64::from(self.hashes)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_build_side(10_000);
        for k in 1..=10_000u64 {
            f.insert(k);
        }
        for k in 1..=10_000u64 {
            assert!(f.may_contain(k), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let n = 50_000u64;
        let mut f = BloomFilter::for_build_side(n as usize);
        for k in 1..=n {
            f.insert(k);
        }
        let fps = (n + 1..=3 * n).filter(|&k| f.may_contain(k)).count();
        let rate = fps as f64 / (2 * n) as f64;
        // 10 bits/key, 2 hashes: ~1-3% in practice.
        assert!(rate < 0.05, "false-positive rate {rate}");
        assert!(
            rate > 0.0,
            "a Bloom filter always has some FPs at this size"
        );
    }

    #[test]
    fn sizes_round_to_power_of_two() {
        let f = BloomFilter::new(1000, 10, 2);
        assert!(f.bytes().is_power_of_two() || f.bytes() == (f.bit_mask + 1) / 8);
        assert_eq!((f.bit_mask + 1).count_ones(), 1);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::for_build_side(100);
        assert!(!(1..100u64).any(|k| f.may_contain(k)));
    }

    #[test]
    fn build_side_bytes_predicts_allocation() {
        for n in [1usize, 100, 1000, 65_536, 1_000_000] {
            assert_eq!(
                BloomFilter::build_side_bytes(n),
                BloomFilter::for_build_side(n).bytes(),
                "size formula diverged at n = {n}"
            );
        }
    }

    #[test]
    fn kernel_cost_charges_the_right_side() {
        let f = BloomFilter::for_build_side(1000);
        let host = f.kernel_cost(1000, 4000, 500, false, false);
        assert_eq!(host.link.seq_read.0, 1000 * 8 + 500 * TUPLE_BYTES);
        assert_eq!(host.gpu_mem.write.0, f.bytes());
        assert_eq!(host.gpu_mem.rand_read.0, 4000 * 8);
        let res = f.kernel_cost(1000, 4000, 500, true, true);
        assert_eq!(
            res.link.seq_read.0, 0,
            "resident inputs never touch the link"
        );
        assert_eq!(res.gpu_mem.read.0, 1000 * 8 + 500 * TUPLE_BYTES);
    }

    #[test]
    fn trace_attrs_describe_geometry() {
        let f = BloomFilter::for_build_side(1000);
        let attrs = f.trace_attrs();
        let keys: Vec<&str> = attrs.iter().map(|a| a.key.as_str()).collect();
        assert_eq!(keys, vec!["filter_bytes", "filter_bits", "filter_hashes"]);
    }
}
