//! # triton-part
//!
//! Radix partitioning over the simulated AC922-class machine: the
//! substrate of the Triton join's out-of-core strategy.
//!
//! * [`prefix_sum`] — histogram + prefix-sum kernels (CPU and GPU), the
//!   pass that determines every partition's output offset;
//! * [`standard`] / [`linear`] — state-of-the-art GPU baselines
//!   (direct atomic scatter; linear-allocator SWWC);
//! * [`shared`] — the paper's Shared SWWC algorithm (Section 4.2):
//!   block-shared buffers, perfectly coalesced flushes;
//! * [`hierarchical`] — the paper's Hierarchical SWWC algorithm
//!   (Section 4.3): a second buffer tier in GPU memory for high fanouts;
//! * [`cpu_swwc`] — the CPU SWWC partitioner (baseline strategies);
//! * [`common`] — locations, cost charging, and the partition-major
//!   output layout shared by all of them.
//!
//! All GPU partitioners execute functionally at warp granularity and
//! account every access against `triton-hw`'s link/TLB/memory models.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod common;
pub mod cpu_swwc;
pub mod hierarchical;
pub mod linear;
pub mod partitioner;
pub mod prefix_sum;
pub mod shared;
pub mod standard;

pub use common::{ChargeCtx, InstrCosts, Location, Partitioned, PassConfig, Span};
pub use cpu_swwc::{cpu_partition_time, cpu_swwc_partition, plan_passes, CpuPartitionResult};
pub use hierarchical::HierarchicalSwwc;
pub use linear::LinearSwwc;
pub use partitioner::{partition_standalone, Algorithm, GpuPartitioner};
pub use prefix_sum::{compute_histogram, cpu_prefix_sum_cost, gpu_prefix_sum, HistogramResult};
pub use shared::SharedSwwc;
pub use standard::StandardScatter;

/// Construct a partitioner by algorithm id.
pub fn make_partitioner(alg: Algorithm) -> Box<dyn GpuPartitioner> {
    match alg {
        Algorithm::Standard => Box::new(StandardScatter),
        Algorithm::Linear => Box::new(LinearSwwc::default()),
        Algorithm::Shared => Box::new(SharedSwwc::default()),
        Algorithm::Hierarchical => Box::new(HierarchicalSwwc::default()),
    }
}
