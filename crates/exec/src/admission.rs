//! Admission control: per-query GPU memory reservations through the
//! simulated allocator, so concurrent joins never oversubscribe device
//! memory.
//!
//! Each operator already sizes its own working set against the full GPU
//! (`TritonJoin` reserves two partition-pair buffers plus an eighth of
//! device memory for the runtime, then caches the rest; the NPJ caches
//! its hash table). Under concurrency the controller makes that budget
//! explicit: it reserves the operator's *pipeline floor* and hands out a
//! *cache grant* from whatever device memory remains, and the query runs
//! with `cache_bytes = Some(grant)` so its internal allocator stays
//! inside the reservation. The sum of reservations can never exceed the
//! (scaled) GPU capacity — that is enforced by a [`SimAllocator`], the
//! same capacity arithmetic the operators use.

use std::collections::{BTreeMap, BTreeSet};

use triton_core::TritonJoin;
use triton_datagen::TUPLE_BYTES;
use triton_hw::units::Bytes;
use triton_hw::{HwConfig, MemSide};
use triton_mem::{Allocation, OutOfMemory, SimAllocator};

use crate::query::{JoinQuery, Operator, QueryId};

/// A granted reservation for one admitted query.
#[derive(Debug, Clone, Copy)]
pub struct Reservation {
    /// Total GPU bytes reserved (pipeline floor + cache grant).
    pub reserved: Bytes,
    /// Cache budget the operator may use for its working set; the query
    /// executes with `cache_bytes = Some(cache_grant)`.
    pub cache_grant: Bytes,
}

/// The admission controller. Owns a [`SimAllocator`] whose GPU side is
/// the shared device-memory budget of all in-flight queries.
#[derive(Debug)]
pub struct AdmissionController {
    alloc: SimAllocator,
    capacity: Bytes,
    initial_capacity: Bytes,
    grants: BTreeMap<QueryId, (Allocation, Reservation)>,
    /// Every id that ever held a grant — the debug guard distinguishing
    /// an idempotent double release from a release of a query that was
    /// never admitted (an accounting bug in the caller).
    ever_admitted: BTreeSet<QueryId>,
    /// High-water mark of reserved GPU bytes (for metrics/tests).
    pub peak_reserved: Bytes,
}

impl AdmissionController {
    /// Build for a machine configuration.
    pub fn new(hw: &HwConfig) -> Self {
        AdmissionController {
            alloc: SimAllocator::new(hw),
            capacity: hw.gpu.mem_capacity,
            initial_capacity: hw.gpu.mem_capacity,
            grants: BTreeMap::new(),
            ever_admitted: BTreeSet::new(),
            peak_reserved: Bytes(0),
        }
    }

    /// Current GPU capacity being arbitrated (initial capacity minus any
    /// ECC retirements).
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// The machine's GPU capacity before any retirement.
    pub fn initial_capacity(&self) -> Bytes {
        self.initial_capacity
    }

    /// Permanently retire `bytes` of GPU capacity (ECC page
    /// retirement). Existing reservations stay live — the caller must
    /// revoke queries until [`Self::overcommitted`] returns zero.
    pub fn retire(&mut self, bytes: Bytes) -> Bytes {
        self.capacity = self.alloc.retire(MemSide::Gpu, bytes);
        self.capacity
    }

    /// Reserved bytes in excess of the (possibly retired) capacity.
    pub fn overcommitted(&self) -> Bytes {
        self.reserved().saturating_sub(self.capacity)
    }

    /// GPU bytes currently reserved across all in-flight queries.
    pub fn reserved(&self) -> Bytes {
        self.alloc.used(MemSide::Gpu)
    }

    /// GPU bytes still grantable.
    pub fn available(&self) -> Bytes {
        self.alloc.available(MemSide::Gpu)
    }

    /// The minimum GPU reservation `query` needs to start: the pipeline
    /// floor without any cache grant. A query whose floor exceeds the
    /// whole GPU can never be admitted (the caller should reject it
    /// permanently rather than queue it).
    pub fn min_reserve(query: &JoinQuery, hw: &HwConfig) -> Bytes {
        let r_bytes = query.workload.r.len() as u64 * TUPLE_BYTES;
        let s_bytes = query.workload.s.len() as u64 * TUPLE_BYTES;
        let total = r_bytes + s_bytes;
        match &query.op {
            Operator::Triton(_) => {
                // Mirrors TritonJoin::try_run's internal reservation: two
                // partition-pair buffers plus an eighth of device memory
                // for the runtime and staging.
                let b1 = TritonJoin::pass1_bits(r_bytes, total, hw);
                let pair = (total >> b1).max(1);
                Bytes(2 * pair) + hw.gpu.mem_capacity / 8
            }
            // NPJ streams the inputs; only the runtime slice is a floor
            // (the hash table degrades gracefully to CPU memory).
            Operator::NoPartitioning(_) => hw.gpu.mem_capacity / 8,
            // The CPU partitions into CPU memory; the GPU only holds the
            // current working-set pair plus a small staging slice — the
            // cheap middle rung of the degradation ladder.
            Operator::CpuPartitioned(_) => {
                let b1 = TritonJoin::pass1_bits(r_bytes, total, hw);
                let pair = (total >> b1).max(1);
                Bytes(2 * pair) + hw.gpu.mem_capacity / 16
            }
            // CPU operators take no GPU memory at all.
            Operator::CpuRadix(_) => Bytes(0),
            // Plans reserve the peak concurrent operator footprint along
            // the schedule — never the sum of all operators.
            Operator::Plan(p) => p.min_reserve(hw),
        }
    }

    /// The cache bytes `query` could profitably use on top of the floor.
    fn cache_desired(query: &JoinQuery) -> u64 {
        let r_bytes = query.workload.r.len() as u64 * TUPLE_BYTES;
        let s_bytes = query.workload.s.len() as u64 * TUPLE_BYTES;
        match &query.op {
            // The whole partitioned working set, ideally.
            Operator::Triton(_) => r_bytes + s_bytes,
            Operator::NoPartitioning(j) => j.table_bytes(query.workload.r.len()),
            // The CPU writes partitions to CPU memory; nothing to cache.
            Operator::CpuPartitioned(_) => 0,
            Operator::CpuRadix(_) => 0,
            Operator::Plan(p) => p.cache_desired().0,
        }
    }

    /// Try to reserve memory for `query`. On success the query may start
    /// immediately; the reservation stays held until [`Self::release`].
    ///
    /// The error carries the floor that could not be met, so the caller
    /// can distinguish *backpressure* (wait for a release) from
    /// *over-capacity* (the floor exceeds the entire GPU: shed).
    pub fn try_admit(
        &mut self,
        id: QueryId,
        query: &JoinQuery,
        hw: &HwConfig,
    ) -> Result<Reservation, OutOfMemory> {
        self.try_admit_shrunk(id, query, hw, 0)
    }

    /// [`Self::try_admit`] with the cache desire halved `grant_shrink`
    /// times — the degradation ladder's first rung: a query revoked by a
    /// capacity fault retries asking for less optional memory before it
    /// gives up GPU execution entirely.
    pub fn try_admit_shrunk(
        &mut self,
        id: QueryId,
        query: &JoinQuery,
        hw: &HwConfig,
        grant_shrink: u32,
    ) -> Result<Reservation, OutOfMemory> {
        let floor = Self::min_reserve(query, hw);
        let free = self.available().0;
        if floor.0 > free {
            return Err(OutOfMemory {
                side: MemSide::Gpu,
                requested: floor,
                available: Bytes(free),
            });
        }
        // Grant cache from the remainder, leaving headroom so one greedy
        // query cannot starve the queue: cap each grant at half of what
        // is free after the floor.
        let after_floor = free - floor.0;
        let desired = Self::cache_desired(query) >> grant_shrink.min(63);
        let grant = desired.min(after_floor / 2);
        let total = floor + Bytes(grant);
        let allocation = self.alloc.alloc(MemSide::Gpu, total)?;
        let reservation = Reservation {
            reserved: Bytes(allocation.len),
            cache_grant: Bytes(grant),
        };
        self.grants.insert(id, (allocation, reservation));
        self.ever_admitted.insert(id);
        let now = self.reserved();
        if now > self.peak_reserved {
            self.peak_reserved = now;
        }
        Ok(reservation)
    }

    /// Release the reservation of a finished (or failed) query.
    ///
    /// Idempotent: the fault path can revoke a query the completion path
    /// also releases, and the second call must not corrupt the
    /// reserved-bytes accounting. Returns whether a reservation was
    /// actually freed. Releasing an id that was *never admitted* is a
    /// caller bug and trips a debug assertion.
    pub fn release(&mut self, id: QueryId) -> bool {
        if let Some((allocation, _)) = self.grants.remove(&id) {
            self.alloc.free(allocation);
            true
        } else {
            debug_assert!(
                self.ever_admitted.contains(&id),
                "release of never-admitted query {id}"
            );
            false
        }
    }

    /// Number of queries currently holding reservations.
    pub fn in_flight(&self) -> usize {
        self.grants.len()
    }
}

/// Clone `query`'s operator with its cache budget clamped to the granted
/// reservation, so the dedicated-run report reflects exactly the memory
/// admission handed out.
pub fn operator_with_grant(query: &JoinQuery, grant: &Reservation) -> Operator {
    match &query.op {
        Operator::Triton(j) => Operator::Triton(TritonJoin {
            cache_bytes: Some(grant.cache_grant),
            ..j.clone()
        }),
        Operator::NoPartitioning(j) => {
            let mut j = j.clone();
            j.cache_bytes = Some(grant.cache_grant);
            Operator::NoPartitioning(j)
        }
        // CPU-side operators have no GPU cache budget to clamp.
        Operator::CpuPartitioned(j) => Operator::CpuPartitioned(j.clone()),
        Operator::CpuRadix(j) => Operator::CpuRadix(j.clone()),
        // The plan's placement runs under exactly the granted budget, and
        // its join nodes split the cache grant.
        Operator::Plan(p) => {
            let mut p = p.clone();
            p.budget = Some(grant.reserved);
            p.cache_grant = Some(grant.cache_grant);
            Operator::Plan(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triton_datagen::WorkloadSpec;
    use triton_hw::units::Ns;

    fn query(m: u64, k: u64) -> JoinQuery {
        JoinQuery::new("q", WorkloadSpec::paper_default(m, k).generate(), Ns::ZERO)
    }

    #[test]
    fn reservations_never_exceed_capacity() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let mut admitted = 0;
        for i in 0..64 {
            match ac.try_admit(QueryId(i), &q, &hw) {
                Ok(_) => admitted += 1,
                Err(e) => {
                    assert_eq!(e.side, MemSide::Gpu);
                    break;
                }
            }
        }
        assert!(admitted >= 2, "the GPU should fit at least two queries");
        assert!(ac.reserved() <= ac.capacity());
        assert_eq!(ac.in_flight(), admitted as usize);
    }

    #[test]
    fn release_returns_budget() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let before = ac.available();
        ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert!(ac.available() < before);
        ac.release(QueryId(0));
        assert_eq!(ac.available(), before);
        assert!(ac.peak_reserved.0 > 0);
    }

    #[test]
    fn double_release_is_idempotent() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        let before = ac.available();
        ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert!(ac.release(QueryId(0)), "first release frees the grant");
        let after_first = ac.available();
        // The fault path may race the completion path to the release:
        // the second call must be a no-op, not an accounting corruption.
        assert!(!ac.release(QueryId(0)), "second release is a no-op");
        assert_eq!(ac.available(), after_first);
        assert_eq!(ac.available(), before);
        assert_eq!(ac.in_flight(), 0);
        // Re-admission after a release works and frees again cleanly.
        ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert!(ac.release(QueryId(0)));
        assert_eq!(ac.available(), before);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "never-admitted")]
    fn releasing_a_never_admitted_query_trips_the_debug_guard() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        ac.release(QueryId(77));
    }

    #[test]
    fn retirement_shrinks_capacity_and_reports_overcommit() {
        let hw = HwConfig::ac922().scaled(512);
        let mut ac = AdmissionController::new(&hw);
        let q = query(64, 512);
        ac.try_admit(QueryId(0), &q, &hw).unwrap();
        let reserved = ac.reserved();
        let initial = ac.initial_capacity();
        // Retire everything except half of what is reserved.
        ac.retire(Bytes(initial.0 - reserved.0 / 2));
        assert_eq!(ac.capacity(), Bytes(reserved.0 / 2));
        assert_eq!(ac.initial_capacity(), initial);
        assert_eq!(ac.overcommitted(), Bytes(reserved.0 - reserved.0 / 2));
        assert_eq!(ac.available(), Bytes(0));
        // Revoking the query clears the overcommit.
        ac.release(QueryId(0));
        assert_eq!(ac.overcommitted(), Bytes(0));
    }

    #[test]
    fn shrunk_grants_ask_for_less_cache() {
        let hw = HwConfig::ac922().scaled(512);
        let q = query(64, 512);
        let mut ac = AdmissionController::new(&hw);
        let full = ac.try_admit_shrunk(QueryId(0), &q, &hw, 0).unwrap();
        ac.release(QueryId(0));
        let halved = ac.try_admit_shrunk(QueryId(0), &q, &hw, 1).unwrap();
        assert!(
            halved.cache_grant.0 <= full.cache_grant.0 / 2 + 1,
            "shrink 1 must halve the desire: {} vs {}",
            halved.cache_grant,
            full.cache_grant
        );
    }

    #[test]
    fn cpu_query_needs_no_gpu_memory() {
        let hw = HwConfig::ac922().scaled(512);
        let mut q = query(64, 512);
        q.op = Operator::CpuRadix(triton_core::CpuRadixJoin::power9(
            triton_core::HashScheme::BucketChaining,
        ));
        assert_eq!(AdmissionController::min_reserve(&q, &hw), Bytes(0));
        let mut ac = AdmissionController::new(&hw);
        let r = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        assert_eq!(r.reserved, Bytes(0));
    }

    #[test]
    fn grant_clamps_operator_cache() {
        let hw = HwConfig::ac922().scaled(512);
        let q = query(64, 512);
        let mut ac = AdmissionController::new(&hw);
        let r = ac.try_admit(QueryId(0), &q, &hw).unwrap();
        match operator_with_grant(&q, &r) {
            Operator::Triton(j) => assert_eq!(j.cache_bytes, Some(r.cache_grant)),
            _ => panic!("expected a Triton operator"),
        }
    }
}
