// Fixture: raw `.0` arithmetic re-wrapped in unit constructors, and
// `.0 as` casts, outside units.rs.
use triton_hw::units::{Bytes, Ns};

pub fn floor(total: Bytes, cap: Bytes) -> Bytes {
    Bytes(2 * total.0 + cap.0 / 8)
}

pub fn advance(clock: Ns, dt: f64) -> Ns {
    Ns(clock.0 + dt)
}

pub fn frac(used: Bytes, cap: Bytes) -> f64 {
    used.0 as f64 / cap.as_f64()
}
