// Fixture: waivers with written reasons cover their own line or the
// next, and only the named rule.
use std::collections::HashMap; // triton-lint: allow(d1) -- lookup-only registry, never iterated

// triton-lint: allow(d2) -- fixture exercising the preceding-line form
pub fn stamped() -> std::time::Instant { std::time::Instant::now() }

// triton-lint: allow(d1) -- same registry; point lookups only
pub fn lookups(m: &HashMap<u64, u64>, k: u64) -> Option<u64> { m.get(&k).copied() }
