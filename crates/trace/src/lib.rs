//! # triton-trace
//!
//! A dependency-free span/event tracing layer for the simulated Triton
//! join stack. Every layer above it — the hardware model, the join
//! operators, the serving scheduler — records what it did as typed
//! [`TraceEvent`]s on a shared [`Trace`], and exporters turn the record
//! into something a human can read: Chrome `trace_event` JSON for
//! `chrome://tracing` / Perfetto ([`to_chrome_json`]), or lanes for the
//! ASCII timeline renderer in `triton-hw`.
//!
//! # Determinism contract
//!
//! This crate sits *below* `triton-hw`, so it cannot use the unit
//! newtypes; timestamps are raw `f64` nanoseconds of the **simulated**
//! clock, named `ts_ns`/`dur_ns` to keep the unit visible. The crate
//! never reads the wall clock (`Instant`/`SystemTime` are banned here by
//! triton-lint rule D2), never hashes (no `HashMap`), and records events
//! in call order — so a deterministic simulation produces a
//! byte-identical trace on every same-seed replay. `tests/replay.rs` in
//! `triton-exec` pins that property end to end.
//!
//! # Attribute conventions
//!
//! Attribute keys are `snake_case` with the unit as a suffix
//! (`bytes_moved_link`, `time_ns`, `backoff_ns`); counts carry no
//! suffix (`tlb_full_misses`, `retries`). Values are typed
//! ([`AttrValue`]) so exporters never guess.
//!
//! # Flight recorder
//!
//! [`FlightRecorder`] is a bounded ring of recent lifecycle events.
//! When a fault, quarantine, or degradation-ladder step strikes, the
//! scheduler dumps the ring onto a dedicated trace track
//! ([`FlightRecorder::dump`]), so every incident ships with the events
//! that led up to it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chrome;
mod event;
mod flight;
mod json;
mod recorder;

pub use chrome::{to_chrome_json, validate_chrome};
pub use event::{Attr, AttrValue, EventKind, TraceEvent};
pub use flight::FlightRecorder;
pub use recorder::Trace;
