//! # triton-hw
//!
//! Hardware model of an AC922-class system: an Nvidia V100 GPU connected to
//! an IBM POWER9 CPU via NVLink 2.0. This crate is the substrate every
//! other crate of the Triton-join reproduction builds on.
//!
//! The original system's hardware does not exist here, so the join
//! algorithms execute *functionally* (producing verifiable results on real
//! data) while this crate accounts for every memory access against models
//! of:
//!
//! * the NVLink 2.0 packet format and its overheads ([`link`]),
//! * the GPU/IOMMU address-translation hierarchy ([`tlb`]),
//! * SM/warp geometry ([`gpu`]) and issue throughput,
//! * kernel roofline timing and concurrent-kernel pipelines ([`kernel`]),
//! * the CPU baselines' bandwidth/core throughput ([`cpu`]),
//! * the system power envelope ([`power`]),
//! * deterministic hardware fault schedules — link degradation/flaps,
//!   ECC page retirement, transient kernel failures, NUMA slowdowns
//!   ([`fault`]).
//!
//! All model parameters live in [`config::HwConfig`], whose defaults are
//! the values the paper reports or measures. [`config::HwConfig::scaled`]
//! shrinks capacities so experiments fit on a small host while preserving
//! the paper's figure shapes (see the module docs in [`config`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod cpu;
pub mod fault;
pub mod gpu;
pub mod kernel;
pub mod link;
pub mod power;
pub mod timeline;
pub mod tlb;
pub mod units;

pub use config::{CpuConfig, GpuConfig, HwConfig, LinkConfig, PowerConfig, TlbConfig};
pub use fault::{splitmix64, unit_f64, FaultEvent, FaultKind, FaultPlan};
pub use kernel::{
    aggregate_utilization, fair_share_rates, lpt_order, pipeline2_scheduled, utilization_ppm,
    Bound, KernelCost, KernelTiming, ResourceVector, StallProfile,
};
pub use link::{Alignment, Dir, LinkModel, WireCost};
pub use timeline::Timeline;
pub use tlb::{MemSide, TlbLevel, TlbSim, TlbStats};
pub use units::{Bytes, BytesPerSec, Cycles, Ns};
